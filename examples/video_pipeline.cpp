// The face-blurring demo of Section 2 (Figure 3), reconstructed.
//
// A customer-premise box (CPE) hosts a webcam and a laptop; a remote cloud
// site runs a GPU-backed face-anonymization VNF.  Before activation, the
// default chain (no VNFs) routes the webcam's stream straight to the
// laptop.  Activating the chain inserts the video-processing VNF at the
// remote site: frames now detour through the cloud and come back blurred,
// with end-to-end latency dominated by the GPU processing — under a
// second, as measured on the paper's testbed.
//
//   ./video_pipeline
#include <cstdio>

#include "switchboard/switchboard.hpp"

using namespace switchboard;

int main() {
  // CPE at node 0 and a third-party cloud (EC2-like) at node 1, 35 ms away
  // (one way) over the Internet.
  net::Topology topo;
  const NodeId cpe_node = topo.add_node("cpe", 0, 0);
  const NodeId cloud_node = topo.add_node("ec2", 7000, 0);
  topo.add_duplex_link(cpe_node, cloud_node, 100.0, 35.0);

  model::NetworkModel m{std::move(topo)};
  const SiteId cpe = m.add_site(cpe_node, 10.0, "cpe");
  const SiteId cloud = m.add_site(cloud_node, 1000.0, "ec2");
  (void)cpe;

  const VnfId face_blur = m.add_vnf("face-blur-gpu", 1.0);
  m.deploy_vnf(face_blur, cloud, 100.0);

  // The GPU inference dominates the frame latency (paper: most of the
  // <1 s end-to-end came from video processing).
  core::DeploymentConfig config;
  config.vnf_processing_ms = 700.0;
  core::Middleware mw{std::move(m), config};
  const EdgeServiceId lan = mw.register_edge_service("cpe-lan");

  // --- before activation: default chain, no VNFs ----------------------
  control::ChainSpec passthrough;
  passthrough.name = "webcam-to-laptop";
  passthrough.ingress_service = lan;
  passthrough.ingress_node = cpe_node;   // webcam subnet
  passthrough.egress_service = lan;
  passthrough.egress_node = cpe_node;    // laptop subnet, same premises
  const auto plain = mw.create_chain(passthrough);
  if (!plain.ok()) {
    std::printf("default chain failed: %s\n",
                plain.error().to_string().c_str());
    return 1;
  }

  const dataplane::FiveTuple stream{0x0A000010, 0x0A000020, 5004, 5004, 17};
  const auto direct = mw.send(plain->chain, stream);
  std::printf("[before activation] frame delivered=%s, latency %.1f ms "
              "(original video, no processing)\n",
              direct.delivered ? "yes" : "no", direct.latency_ms);

  // --- activation: insert the face-blur VNF ---------------------------
  control::ChainSpec blurred;
  blurred.name = "webcam-blur-laptop";
  blurred.ingress_service = lan;
  blurred.ingress_node = cpe_node;
  blurred.egress_service = lan;
  blurred.egress_node = cpe_node;
  blurred.vnfs = {face_blur};
  blurred.forward_traffic = 0.5;   // ~a video stream
  const auto active = mw.create_chain(blurred);
  if (!active.ok()) {
    std::printf("chain activation failed: %s\n",
                active.error().to_string().c_str());
    return 1;
  }
  std::printf("[activation] chain ready in %.0f ms\n",
              sim::to_ms(active->elapsed()));

  const auto processed = mw.send(active->chain, stream);
  if (!processed.delivered) {
    std::printf("frame dropped: %s\n", processed.failure.c_str());
    return 1;
  }
  std::printf("[after activation] frame delivered via %zu VNF instance(s), "
              "end-to-end %.1f ms (%.0f ms WAN transit + %.0f ms GPU)\n",
              processed.vnf_instances().size(), processed.latency_ms,
              processed.latency_ms - config.vnf_processing_ms,
              config.vnf_processing_ms);
  std::printf("faces are anonymized; latency stays under a second, as in\n"
              "the paper's CPE + EC2 demo.\n");
  return 0;
}
