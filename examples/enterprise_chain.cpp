// An enterprise VPN scenario exercising the full middleware lifecycle:
//
//   1. firewall + NAT chain between two office locations,
//   2. traffic with flow affinity and symmetric return,
//   3. demand grows -> Global Switchboard adds a second wide-area route
//      (Fig. 10's dynamic chaining),
//   4. an employee roams to a third city -> the chain follows them to the
//      new edge site (Section 6 / Table 2 mobility).
//
//   ./enterprise_chain
#include <cstdio>
#include <map>

#include "switchboard/switchboard.hpp"

using namespace switchboard;

int main() {
  // A small national backbone.
  model::ScenarioParams scenario;
  scenario.topology.core_count = 4;
  scenario.topology.access_per_core = 1;
  scenario.vnf_count = 0;        // we add our own VNFs below
  scenario.chain_count = 0;      // and our own chain
  model::NetworkModel m = model::make_scenario(scenario);

  // Firewall and NAT available at two metro sites.
  const SiteId metro1 = m.sites()[1].id;
  const SiteId metro2 = m.sites()[2].id;
  const VnfId firewall = m.add_vnf("firewall", 1.0);
  const VnfId nat = m.add_vnf("nat", 1.0);
  m.deploy_vnf(firewall, metro1, 20.0);
  m.deploy_vnf(firewall, metro2, 20.0);
  m.deploy_vnf(nat, metro1, 20.0);
  m.deploy_vnf(nat, metro2, 20.0);

  const NodeId office_a = m.sites()[4].node;
  const NodeId office_b = m.sites()[5].node;
  const SiteId roaming_site = m.sites()[3].id;

  core::Middleware mw{std::move(m)};
  const EdgeServiceId vpn = mw.register_edge_service("enterprise-vpn");

  // --- 1. create the chain --------------------------------------------
  control::ChainSpec spec;
  spec.name = "acme-vpn";
  spec.ingress_service = vpn;
  spec.ingress_node = office_a;
  spec.egress_service = vpn;
  spec.egress_node = office_b;
  spec.vnfs = {firewall, nat};
  spec.forward_traffic = 7.0;
  spec.reverse_traffic = 1.0;
  const auto created = mw.create_chain(spec);
  if (!created.ok()) {
    std::printf("creation failed: %s\n", created.error().to_string().c_str());
    return 1;
  }
  std::printf("chain '%s' active in %.0f ms; control-plane events:\n",
              spec.name.c_str(), sim::to_ms(created->elapsed()));
  for (const auto& event : created->events) {
    std::printf("  %6.0f ms  %s\n", sim::to_ms(event.at - created->started),
                event.name.c_str());
  }

  // --- 2. traffic -------------------------------------------------------
  auto& elements = mw.deployment().elements();
  std::map<std::uint32_t, int> site_use;
  for (std::uint32_t f = 0; f < 20; ++f) {
    const dataplane::FiveTuple t{0x0A000100 + f, 0xC0A80002,
                                 static_cast<std::uint16_t>(30000 + f), 22, 6};
    const auto walk = mw.send(created->chain, t);
    if (!walk.delivered) {
      std::printf("flow %u dropped: %s\n", f, walk.failure.c_str());
      continue;
    }
    for (const auto instance : walk.vnf_instances()) {
      site_use[elements.info(instance).site.value()]++;
    }
  }
  std::printf("\n20 flows, VNF hops per site:");
  for (const auto& [site, count] : site_use) {
    std::printf("  site%u:%d", site, count);
  }
  std::printf("\n");

  // --- 3. demand spike: add a second wide-area route -------------------
  const auto added = mw.add_route(created->chain, {});
  if (added.ok()) {
    std::printf("\nsecond route added in %.0f ms; weights now:\n",
                sim::to_ms(added->elapsed()));
    for (const auto& route : mw.chain_record(created->chain).routes) {
      std::printf("  route %u:", route.id.value());
      for (const auto site : route.vnf_sites) {
        std::printf(" site%u", site.value());
      }
      std::printf("  (weight %.2f)\n", route.weight);
    }
  } else {
    std::printf("\nroute addition: %s\n", added.error().to_string().c_str());
  }

  // --- 4. user mobility: extend the chain to a new edge site -----------
  const auto attached =
      mw.attach_edge(created->chain, roaming_site, vpn);
  if (attached.ok()) {
    const auto& t = attached.value();
    std::printf("\nroaming employee joined at site%u: data plane stitched in "
                "%.0f ms\n",
                roaming_site.value(),
                sim::to_ms(t.remote_config_finished - t.started));
  } else {
    std::printf("\nedge addition: %s\n",
                attached.error().to_string().c_str());
  }
  return 0;
}
