// Capacity planning with Switchboard's optimizer (Section 4.2):
//
//   * chain routing — where should existing demand run? (SB-LP vs SB-DP)
//   * cloud capacity planning — where should the operator add compute?
//   * VNF capacity planning — which new sites should a VNF vendor pick?
//
//   ./capacity_planner
#include <cstdio>

#include "switchboard/switchboard.hpp"

using namespace switchboard;

int main() {
  model::ScenarioParams params;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.vnf_count = 6;
  params.chain_count = 15;
  params.coverage = 0.4;
  params.total_chain_traffic = 200.0;
  params.site_capacity = 150.0;
  params.seed = 9;
  model::NetworkModel m = model::make_scenario(params);

  std::printf("network: %zu nodes, %zu links, %zu sites, %zu VNFs, "
              "%zu chains\n",
              m.topology().node_count(), m.topology().link_count(),
              m.sites().size(), m.vnfs().size(), m.chains().size());

  // --- routing today ----------------------------------------------------
  te::LpRoutingOptions lp_options;
  lp_options.objective = te::LpObjective::kMaxThroughput;
  const te::LpRoutingResult lp = te::solve_lp_routing(m, lp_options);
  const te::DpResult dp = te::solve_dp_routing(m);
  const te::RoutingMetrics dp_metrics = te::evaluate(m, dp.routing);
  std::printf("\n-- chain routing --\n");
  if (lp.optimal()) {
    const te::RoutingMetrics lp_metrics = te::evaluate(m, lp.routing);
    std::printf("SB-LP: %.1f units carried at %.2f ms mean latency\n",
                lp_metrics.feasible_throughput, lp_metrics.mean_latency_ms);
  }
  std::printf("SB-DP: %.1f units carried at %.2f ms mean latency "
              "(%zu/%zu chains fully routed)\n",
              dp_metrics.feasible_throughput, dp_metrics.mean_latency_ms,
              dp.fully_routed_chains, m.chains().size());

  // --- cloud capacity planning ------------------------------------------
  std::printf("\n-- cloud capacity planning: +25%% compute budget --\n");
  const double budget =
      0.25 * params.site_capacity * static_cast<double>(m.sites().size());
  const te::CloudPlanResult plan = te::plan_cloud_capacity(m, budget);
  if (plan.status == lp::SolveStatus::kOptimal) {
    std::printf("sustainable demand growth with planned placement: %.2fx\n",
                plan.alpha);
    std::printf("allocation (site: extra):");
    for (const model::CloudSite& site : m.sites()) {
      const double extra = plan.extra_site_capacity[site.id.value()];
      if (extra > 0.5) std::printf("  %s:+%.0f", site.name.c_str(), extra);
    }
    std::printf("\n");
    model::NetworkModel uniform = model::make_scenario(params);
    te::apply_capacity_increase(uniform, te::uniform_allocation(uniform,
                                                                budget));
    const te::CloudPlanResult baseline = te::plan_cloud_capacity(uniform, 0.0);
    if (baseline.status == lp::SolveStatus::kOptimal && baseline.alpha > 0) {
      std::printf("uniform spreading sustains %.2fx -> planning is %+.1f%%\n",
                  baseline.alpha,
                  100.0 * (plan.alpha / baseline.alpha - 1.0));
    }
  } else {
    std::printf("planning LP: %s\n", lp::to_string(plan.status));
  }

  // --- VNF placement hints -----------------------------------------------
  std::printf("\n-- VNF placement hints: one new site per VNF --\n");
  te::VnfPlacementOptions placement;
  placement.new_sites_per_vnf = 1;
  const te::VnfPlacementResult hints =
      te::plan_vnf_placement_greedy(m, placement);
  std::printf("mean chain latency: %.2f ms -> %.2f ms after expansion\n",
              hints.latency_before_ms, hints.latency_after_ms);
  for (const model::Vnf& vnf : m.vnfs()) {
    for (const SiteId site : hints.new_sites[vnf.id.value()]) {
      std::printf("  %s -> %s\n", vnf.name.c_str(),
                  m.site(site).name.c_str());
    }
  }
  return 0;
}
