// Quickstart: the smallest useful Switchboard deployment.
//
// Three sites on a line (edge - metro - regional), one firewall VNF, one
// customer chain.  Shows the portal-level workflow of Section 2:
// register services -> define the chain -> activate -> traffic flows
// through the chain with flow affinity and symmetric return.
//
//   ./quickstart
#include <cstdio>

#include "switchboard/switchboard.hpp"

using namespace switchboard;

int main() {
  // 1. The operator's network: three nodes, 5 ms per hop, a cloud site at
  //    each node.
  model::NetworkModel m{net::make_line_topology(3, /*capacity=*/50.0,
                                                /*latency_ms=*/5.0)};
  const SiteId edge_site = m.add_site(NodeId{0}, 100.0, "edge");
  const SiteId metro_site = m.add_site(NodeId{1}, 500.0, "metro");
  const SiteId regional_site = m.add_site(NodeId{2}, 1000.0, "regional");
  (void)edge_site;

  // 2. VNF vendors list their functions in the catalog and choose sites.
  const VnfId firewall = m.add_vnf("firewall", /*load_per_unit=*/1.0);
  m.deploy_vnf(firewall, metro_site, 50.0);
  m.deploy_vnf(firewall, regional_site, 200.0);

  // 3. Bring up the middleware over this model.
  core::Middleware mw{std::move(m)};
  const EdgeServiceId broadband = mw.register_edge_service("broadband");

  // 4. A customer defines a chain through the portal: broadband ingress at
  //    the edge, firewall, egress toward the regional site.
  control::ChainSpec spec;
  spec.name = "customer-42";
  spec.ingress_service = broadband;
  spec.ingress_node = NodeId{0};
  spec.egress_service = broadband;
  spec.egress_node = NodeId{2};
  spec.vnfs = {firewall};
  spec.forward_traffic = 2.0;

  const auto report = mw.create_chain(spec);
  if (!report.ok()) {
    std::printf("chain creation failed: %s\n",
                report.error().to_string().c_str());
    return 1;
  }
  std::printf("chain '%s' active in %.0f ms of control-plane time\n",
              spec.name.c_str(), sim::to_ms(report->elapsed()));
  std::printf("labels: chain=%u egress-site=%u\n", report->labels.chain,
              report->labels.egress_site);

  // 5. Traffic.  Each 5-tuple is one customer connection.
  const dataplane::FiveTuple connection{0x0A000001, 0xC0A80001, 40000, 443, 6};
  const auto forward = mw.send(report->chain, connection);
  if (!forward.delivered) {
    std::printf("forward packet dropped: %s\n", forward.failure.c_str());
    return 1;
  }
  std::printf("forward path (%u hops, %.2f ms):", (unsigned)forward.path.size(),
              forward.latency_ms);
  auto& elements = mw.deployment().elements();
  for (const auto& hop : forward.path) {
    const char* kind = hop.type == control::ElementType::kForwarder ? "fwd"
        : hop.type == control::ElementType::kVnfInstance ? "vnf"
                                                         : "edge";
    std::printf(" %s#%u", kind, hop.element);
  }
  std::printf("\n");

  // Reverse traffic of the same connection retraces the path (symmetric
  // return, so stateful VNFs see both directions).
  const auto reverse =
      mw.send(report->chain, connection, dataplane::Direction::kReverse);
  std::printf("reverse delivered=%s via the same firewall instance: %s\n",
              reverse.delivered ? "yes" : "no",
              (reverse.delivered &&
               reverse.vnf_instances() == forward.vnf_instances())
                  ? "yes"
                  : "no");

  // 6. Where did the firewall run?
  for (const auto instance : forward.vnf_instances()) {
    const auto& info = elements.info(instance);
    std::printf("firewall instance #%u at site %s\n", instance,
                mw.deployment().network_model().site(info.site).name.c_str());
  }
  return 0;
}
