#!/usr/bin/env python3
"""Perf gate: diff a merged bench-smoke JSON against the seed baseline.

Usage:
    python3 tools/bench_diff.py --baseline BENCH_seed.json \
        --current BENCH_pr.json [--tolerance 0.25]

Both files are the `jq -s` merge CI produces:

    {"git_sha": ..., "smoke": true, "benches": [
        {"bench": "bench_fig10_route_update", "results": [
            {"name": "route_update", "params": {...}, "metrics": {...}}]}]}

Only DETERMINISTIC metrics are gated — solver outputs and simulated
control-plane times, which are machine-independent for a fixed seed.
Wall-clock series (the TE engine's `cached` / `parallel_build` /
`incremental` microbenchmarks, forwarder throughputs, ...) are noisy on
shared CI runners and are deliberately not part of the gate; they are
tracked through the uploaded BENCH_pr.json artifact instead.

A gated metric's spec is either a direction string ("up" / "down" /
"flat" / "exact") or a dict {"direction": ..., "tolerance": ...}
overriding the global --tolerance for that metric (mode-vs-mode
throughput ratios get a loose per-metric tolerance: the *shape* is
gated, runner noise is not).

A metric fails the gate when it moves more than its tolerance in its bad
direction; moves in the good direction only get reported.  "flat"
metrics have no good direction — they fail on a move beyond the
tolerance EITHER way (LP objective values: a "better" objective than the
baseline optimum is just as much a solver bug as a worse one).  "exact"
metrics (packet counts, pinning digests — bit-deterministic by
construction) fail on ANY change.  A gated record present in the
baseline but missing from the current run fails too (a silently-dropped
bench is a regression).
"""

from __future__ import annotations

import argparse
import json
import sys

# (bench, record name) -> {metric: spec}.  A spec is either a direction
# string ("up"/"down" = the GOOD way, "exact" = any change fails) or a
# dict {"direction": ..., "tolerance": ...} with a per-metric tolerance.
GATED = {
    ("bench_fig10_route_update", "route_update"): {
        "chain_create_ms": "down",
        "route_update_ms": "down",
    },
    ("bench_fig12_te_comparison", "throughput_vs_coverage"): {
        "sb_lp": "up",
        "sb_dp": "up",
        "anycast": "up",
    },
    ("bench_fig12_te_comparison", "throughput_vs_cpu_per_byte"): {
        "sb_lp": "up",
        "sb_dp": "up",
        "anycast": "up",
    },
    ("bench_fig12_te_comparison", "max_sustainable_load"): {
        "sb_lp_alpha": "up",
        "sb_dp_alpha": "up",
        "anycast_alpha": "up",
    },
    # Recovery work done is simulated-time deterministic for a fixed fault
    # seed: losing reroutes or rerouted volume means failover regressed.
    ("bench_fig13_recovery", "recovery"): {
        "routes_rerouted": "up",
        "rerouted_volume": "up",
    },
    # Controller crash-with-amnesia recovery is simulated-time
    # deterministic: journal growth or a slower cold start is a real
    # durability-layer regression, not runner noise.
    ("bench_fig13_recovery", "controller_restart"): {
        "replay_ms": "down",
        "recovery_ms": "down",
    },
    # Replicated failover (DESIGN.md §18): all simulated-time deterministic
    # for the fixed fault seed.  The hot window must not grow (a slower
    # promotion means the standby started replaying or the fence round
    # got slower); detection tracks the suspicion threshold; elections is
    # bit-deterministic (exactly one leader death is scripted).
    ("bench_fig13_recovery", "failover"): {
        "detection_ms": "down",
        "hot_failover_ms": "down",
        "elections": "exact",
    },
    # Decentralization chaos window (DESIGN.md §17): everything here is
    # simulated-time deterministic for the fixed fault seed.  Packet
    # counts and the anycast steering-trace digest are bit-deterministic
    # (gated exact); availability must never drop (the controller-dead
    # survival claim IS this metric); re-convergence and announcement
    # overhead must not grow.
    ("bench_fig14_decentralization", "decentralization"): {
        "packets_forwarded": "exact",
        "availability": "up",
        "reconverge_ms": "down",
        "announce_messages": "down",
        "trace_digest": "exact",
    },
    # Flow-scale sweep (DESIGN.md §15): packet counts and the pinning
    # digest are bit-deterministic across modes AND thread counts, so any
    # drift is a correctness bug, not noise.  ns_per_pkt / mpps_per_core
    # are wall-clock and stay artifact-only.
    ("bench_fig8_forwarder_scaling", "flow_scale_sweep"): {
        "packets_forwarded": "exact",
        "pinning_digest": "exact",
    },
    # Epoch-read vs mutex-read throughput ratio: the gate only protects
    # the shape (the lock-free path must not collapse relative to the
    # mutex path); the loose tolerance absorbs oversubscribed runners.
    ("bench_fig8_forwarder_scaling", "flow_scale_mode_ratio"): {
        "epoch_vs_mutex": {"direction": "up", "tolerance": 0.6},
    },
    # LP engine gates (DESIGN.md §16).  Solve status is bit-deterministic;
    # the optimal objective is FP-deterministic to far better than 1e-6 on
    # any one toolchain, so it is gated flat with a tight tolerance (both
    # "better" and "worse" values mean the solver broke).  The sparse/
    # dense and warm/cold speedups are wall-clock shape gates with loose
    # tolerances, like epoch_vs_mutex above.
    ("bench_ext_scale", "lp_sparse_vs_dense"): {
        "status_optimal": "exact",
        "speedup": {"direction": "up", "tolerance": 0.6},
    },
    ("bench_ext_scale", "lp_large_scale"): {
        "status_optimal": "exact",
        "objective": {"direction": "flat", "tolerance": 1e-6},
    },
    ("bench_ext_scale", "lp_warm_vs_cold"): {
        "speedup": {"direction": "up", "tolerance": 0.6},
    },
}

EPSILON = 1e-9


def load_records(path):
    """-> {(bench, record_name, frozen_params): {metric: value}}"""
    with open(path, encoding="utf-8") as f:
        merged = json.load(f)
    records = {}
    for bench in merged.get("benches", []):
        bench_name = bench.get("bench", "?")
        for result in bench.get("results", []):
            key = (
                bench_name,
                result.get("name", "?"),
                tuple(sorted(result.get("params", {}).items())),
            )
            records[key] = result.get("metrics", {})
    return records


def describe(key):
    bench, name, params = key
    param_text = ", ".join(f"{k}={v}" for k, v in params)
    return f"{bench}/{name}({param_text})" if param_text else f"{bench}/{name}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional move in the bad direction")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = load_records(args.current)

    failures = []
    compared = 0
    for key, base_metrics in sorted(baseline.items()):
        gated = GATED.get((key[0], key[1]))
        if not gated:
            continue
        cur_metrics = current.get(key)
        if cur_metrics is None:
            failures.append(f"{describe(key)}: record missing from current run")
            continue
        for metric, spec in sorted(gated.items()):
            if isinstance(spec, dict):
                direction = spec["direction"]
                tolerance = spec.get("tolerance", args.tolerance)
            else:
                direction = spec
                tolerance = args.tolerance
            if metric not in base_metrics:
                continue  # baseline predates the metric; nothing to gate
            if metric not in cur_metrics:
                failures.append(f"{describe(key)}: metric {metric} disappeared")
                continue
            base = base_metrics[metric]
            cur = cur_metrics[metric]
            compared += 1
            if direction == "exact":
                if cur != base:
                    failures.append(f"{describe(key)}: {metric} changed "
                                    f"{base!r} -> {cur!r} (gated exact)")
                continue
            delta = (cur - base) / max(abs(base), EPSILON)
            if direction == "flat":
                bad = abs(delta)
            else:
                bad = -delta if direction == "up" else delta
            arrow = f"{base:.4g} -> {cur:.4g} ({delta:+.1%})"
            if bad > tolerance:
                failures.append(f"{describe(key)}: {metric} regressed {arrow}")
            elif abs(delta) > EPSILON:
                print(f"ok   {describe(key)}: {metric} {arrow}")

    print(f"bench_diff: compared {compared} gated metrics "
          f"(tolerance {args.tolerance:.0%})")
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
