#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Run directly (``python3 tools/lint.py``) or via ``ctest -R lint``.

Style rules enforced over ``src/``:

  R1  no ``assert(`` outside ``src/common/result.hpp`` — invariants use the
      SWB_CHECK / SWB_DCHECK family (common/check.hpp), which survives
      RelWithDebInfo and prints operand values.
  R2  every public API returning ``Result<T>`` or ``Status`` declared in a
      header is ``[[nodiscard]]`` — control-plane errors are values; dropping
      one silently loses a 2PC vote or a resolution failure.
  R3  no ``#include <iostream>`` in headers — it injects static init order
      dependencies into every TU; use common/log.hpp (sources may still use
      streams explicitly).
  R4  header guards are ``#pragma once`` — no ``#ifndef``-style guards.

Determinism rules (the repo's determinism contract, DESIGN.md §14: same
seed => byte-identical traces, digests, and journals):

  D1  iterating an ``unordered_map``/``unordered_set`` — iteration order is
      hash-seed and libc++-vs-libstdc++ dependent, so anything it feeds
      (digests, journal records, route selection, serialized state) diverges
      across toolchains.  Iterate a sorted copy or an ordered container.
  D2  banned randomness: ``std::rand``/``srand``/``std::random_device`` —
      all randomness flows through the seeded common/rng.hpp stream.
  D3  wall-clock reads (``system_clock``/``steady_clock``/
      ``high_resolution_clock``/``gettimeofday``/``clock_gettime``/
      ``time(...)``/``localtime``/``strftime``) — simulation time comes from
      sim::Simulator::now(); host time makes runs unreproducible.
  D4  pointer-keyed ordering / address-dependent hashing
      (``std::map``/``std::set`` keyed on a pointer, ``std::hash`` of a
      pointer, ``reinterpret_cast<std::uintptr_t>``) — allocation addresses
      differ run to run, so the order (or hash) is nondeterministic.

Concurrency-contract guard rule (a regex mini-TSA for the compilers that
lack -Wthread-safety; clang enforces the real thing):

  T1  a field declared ``SWB_GUARDED_BY(...)`` is referenced in a function
      body with no visible locking evidence (swb::MutexLock, scoped_lock,
      unique_lock, lock_all, a SWB_REQUIRES/SWB_NO_THREAD_SAFETY_ANALYSIS
      declaration).  Scoped per header/source pair.

  M1  a raw ``std::atomic`` access (``.load``/``.store``/``.exchange``/
      ``.fetch_*``/``.compare_exchange_*``) on data-plane shared state
      (``src/dataplane/``, ``src/common/epoch*``) without an explicit
      ``std::memory_order`` argument.  The seq_cst default silently hides
      the ordering contract; the epoch-read protocol (DESIGN.md §15) hangs
      on acquire/release pairings, so every data-plane atomic must *state*
      its ordering — even when the answer really is seq_cst.

Escapes (both are printed, so suppressions stay visible):

  * inline, per line:  ``// swb-lint: allow(D1): why this one is safe``
  * ``tools/lint_allowlist.txt``: ``path:rule:count`` entries.  A finding
    count *below* an entry is an error too — the allowlist must shrink as
    sites are fixed, never silently go stale.

``--self-test`` runs the determinism/guard rules over the known-bad
fixtures in ``tests/lint_selftest/`` and checks the findings against their
``// expect-lint: <rule>`` markers in both directions (missed expectation
or unexpected finding both fail), proving the linter still catches what it
claims to catch.

Exit status 0 when clean; 1 with one ``file:line: rule: message`` diagnostic
per violation otherwise.
"""

import argparse
import pathlib
import re
import sys

ASSERT_ALLOWLIST = {"src/common/result.hpp"}

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
GUARD_RE = re.compile(r"#\s*ifndef\s+\w*_(?:H|HPP|H_|HPP_)\b")
# A function declaration returning Result<...> or Status.  Anchored at line
# start (plus indentation) so `return Status{...}` bodies and member fields
# do not match; requires an identifier then `(` so constructors like
# `Status() = default;` do not match.
RESULT_DECL_RE = re.compile(
    r"^\s*(?:(?:static|virtual|constexpr|inline|friend)\s+)*"
    r"(?:Result<[^;{}()]+>|Status)\s+(\w+)\s*\(")
NODISCARD_RE = re.compile(r"\[\[nodiscard\]\]")

# --- determinism rules -------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set)\s*<")
# Range-for over something; the iterated expression's last identifier is
# checked against the unordered symbol table.
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^();]*?:\s*([\w.\->\[\]]+)\s*\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")

RANDOM_RE = re.compile(r"\bstd\s*::\s*rand\b|(?<![\w:])srand\s*\(|"
                       r"\brandom_device\b")
CLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\b|"
    r"(?<![\w:])(?:gettimeofday|clock_gettime|localtime|gmtime|strftime)"
    r"\s*\(|"
    r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
PTR_KEY_RE = re.compile(
    r"\bstd\s*::\s*(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*|"
    r"\bstd\s*::\s*hash\s*<\s*(?:const\s+)?[\w:]*\s*\*\s*>|"
    r"\breinterpret_cast\s*<\s*std\s*::\s*uintptr_t\s*>")

# M1: atomic member-function accesses that accept a memory_order argument.
# Scoped to the lock-free data-plane files (and the self-test fixtures);
# elsewhere a bare `.load(` is too often some other class's method.
ATOMIC_OP_RE = re.compile(
    r"[.]\s*(load|store|exchange|fetch_(?:add|sub|and|or|xor)|"
    r"compare_exchange_(?:weak|strong))\s*\(")
M1_SCOPE = ("src/dataplane/", "src/common/epoch", "tests/lint_selftest/")

GUARDED_FIELD_RE = re.compile(r"\b(\w+)\s+SWB_GUARDED_BY\s*\(")
REQUIRES_DECL_RE = re.compile(
    r"\b(\w+)\s*\([^;{}]*\)[^;{}]*\b"
    r"(?:SWB_REQUIRES|SWB_NO_THREAD_SAFETY_ANALYSIS)\b")
LOCK_EVIDENCE_RE = re.compile(
    r"\bMutexLock\b|\bscoped_lock\b|\bunique_lock\b|\block_all\s*\(|"
    r"\bSWB_REQUIRES\b|\bSWB_NO_THREAD_SAFETY_ANALYSIS\b|\.\s*lock\s*\(")

ALLOW_RE = re.compile(r"//\s*swb-lint:\s*allow\(\s*([A-Za-z0-9_,\s]+?)\s*\)")
EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([A-Za-z0-9_,\s]+)")

CONTROL_KEYWORDS = {"for", "if", "while", "switch", "catch", "return",
                    "sizeof", "decltype", "static_assert", "alignas",
                    "noexcept", "defined"}


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so diagnostics keep real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def unordered_names(code: str) -> set:
    """Variable/field names declared as unordered_map/unordered_set,
    including multi-line declarations (balanced angle brackets)."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        depth = 1
        i = m.end()
        while i < len(code) and depth > 0:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        # Skip refs/pointers/whitespace, then take the declared identifier.
        tail = code[i:i + 200]
        name = re.match(r"[\s&*]*([A-Za-z_]\w*)", tail)
        if name and name.group(1) not in CONTROL_KEYWORDS:
            names.add(name.group(1))
    return names


def function_bodies(code: str):
    """Yields (name, signature, body, body_start_line) for each function
    definition, found by `name(...)` followed by qualifiers then `{`, with
    the body consumed so nested control-flow braces are not re-visited."""
    pos = 0
    n = len(code)
    call_re = re.compile(r"([A-Za-z_][\w:~]*)\s*\(")
    while pos < n:
        m = call_re.search(code, pos)
        if not m:
            return
        name = m.group(1).split("::")[-1]
        if name in CONTROL_KEYWORDS:
            pos = m.end()
            continue
        # Find the matching close paren of the parameter list.
        depth = 1
        i = m.end()
        while i < n and depth > 0:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
            i += 1
        if depth != 0:
            return
        # Qualifiers/attributes between `)` and `{`; a `;`, `=`, `:` or `,`
        # means declaration / init-list / call — not a definition body.
        qual = re.match(
            r"(?:\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>*&\s]+"
            r"|SWB_\w+\s*\([^()]*\)|SWB_\w+|\[\[[^\]]*\]\]))*\s*\{",
            code[i:])
        if not qual:
            pos = i
            continue
        body_start = i + qual.end()   # one past the `{`
        depth = 1
        j = body_start
        while j < n and depth > 0:
            if code[j] == "{":
                depth += 1
            elif code[j] == "}":
                depth -= 1
            j += 1
        signature = code[m.start():body_start]
        body = code[body_start:j]
        yield name, signature, body, line_of(code, body_start - 1), body_start
        pos = j


def collect_allows(raw: str) -> dict:
    """Per-line inline escapes: line number -> set of allowed rules."""
    allows = {}
    for ln, line in enumerate(raw.splitlines(), 1):
        m = ALLOW_RE.search(line)
        if m:
            allows[ln] = {r.strip() for r in m.group(1).split(",")}
    return allows


def lint_style(rel: str, path: pathlib.Path, code: str) -> list:
    lines = code.splitlines()
    is_header = path.suffix == ".hpp"
    problems = []

    # R1: assert() is banned outside the allowlist.
    if rel not in ASSERT_ALLOWLIST:
        for ln, line in enumerate(lines, 1):
            if "static_assert" in line:
                line = line.replace("static_assert", "")
            if ASSERT_RE.search(line):
                problems.append(
                    (rel, ln, "R1",
                     "assert() is banned; use SWB_CHECK / SWB_DCHECK "
                     "(common/check.hpp)"))

    if is_header:
        # R2: Result<T>/Status-returning declarations must be [[nodiscard]].
        for ln, line in enumerate(lines, 1):
            m = RESULT_DECL_RE.match(line)
            if not m:
                continue
            # [[nodiscard]] may sit on the same line or the line above.
            prev = lines[ln - 2] if ln >= 2 else ""
            if not (NODISCARD_RE.search(line) or NODISCARD_RE.search(prev)):
                problems.append(
                    (rel, ln, "R2",
                     f"'{m.group(1)}' returns Result/Status and must be "
                     "[[nodiscard]]"))

        # R3: no <iostream> in headers.
        for ln, line in enumerate(lines, 1):
            if IOSTREAM_RE.search(line):
                problems.append(
                    (rel, ln, "R3",
                     "<iostream> in a header; use common/log.hpp"))

        # R4: #pragma once, not include guards.
        if "#pragma once" not in code:
            problems.append((rel, 1, "R4", "header lacks '#pragma once'"))
        for ln, line in enumerate(lines, 1):
            if GUARD_RE.search(line):
                problems.append(
                    (rel, ln, "R4",
                     "#ifndef-style include guard; use '#pragma once'"))

    return problems


def lint_determinism(rel: str, code: str, unordered: set) -> list:
    problems = []
    # D1: iterating an unordered container.
    for m in RANGE_FOR_RE.finditer(code):
        target = re.split(r"[.\->\[\]]+", m.group(1))[-1] or \
            re.split(r"[.\->\[\]]+", m.group(1))[0]
        if target in unordered:
            problems.append(
                (rel, line_of(code, m.start()), "D1",
                 f"iterating unordered container '{target}': order is "
                 "hash-seed dependent; sort first or use an ordered "
                 "container"))
    for m in BEGIN_CALL_RE.finditer(code):
        if m.group(1) in unordered:
            problems.append(
                (rel, line_of(code, m.start()), "D1",
                 f"'{m.group(1)}.begin()' on an unordered container: "
                 "iteration order is hash-seed dependent"))
    # D2: banned randomness.
    for m in RANDOM_RE.finditer(code):
        problems.append(
            (rel, line_of(code, m.start()), "D2",
             "banned randomness source; draw from the seeded common/rng.hpp "
             "stream"))
    # D3: wall-clock reads.
    for m in CLOCK_RE.finditer(code):
        problems.append(
            (rel, line_of(code, m.start()), "D3",
             "wall-clock read; simulated time comes from "
             "sim::Simulator::now()"))
    # D4: pointer-keyed ordering / address hashing.
    for m in PTR_KEY_RE.finditer(code):
        problems.append(
            (rel, line_of(code, m.start()), "D4",
             "pointer-keyed ordering/hash: allocation addresses are "
             "nondeterministic; key on a stable id"))
    return problems


def lint_atomics(rel: str, code: str) -> list:
    """M1 over one file: atomic access without an explicit memory_order."""
    if not rel.startswith(M1_SCOPE):
        return []
    problems = []
    for m in ATOMIC_OP_RE.finditer(code):
        # Balanced-paren argument list (calls can span lines).
        depth = 1
        i = m.end()
        while i < len(code) and depth > 0:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        if "memory_order" not in code[m.end():i]:
            problems.append(
                (rel, line_of(code, m.start()), "M1",
                 f"atomic .{m.group(1)}() without an explicit "
                 "std::memory_order: the data plane states every ordering "
                 "(DESIGN.md §15) — spell out seq_cst if that is what you "
                 "mean"))
    return problems


def lint_guards(rel: str, code: str, guarded: set, exempt: set) -> list:
    """T1 over one file: guarded-field reference with no locking evidence.
    `guarded` and `exempt` are collected over the header/source pair."""
    if not guarded:
        return []
    problems = []
    for name, signature, body, body_line, body_off in function_bodies(code):
        if name in exempt:
            continue
        if LOCK_EVIDENCE_RE.search(signature) or LOCK_EVIDENCE_RE.search(body):
            continue
        for field in sorted(guarded):
            m = re.search(rf"(?<![\w.]){re.escape(field)}\b(?!\s*\()", body)
            if m:
                problems.append(
                    (rel, line_of(code, body_off + m.start()), "T1",
                     f"'{field}' is SWB_GUARDED_BY but '{name}' takes no "
                     "lock (no MutexLock/scoped_lock/SWB_REQUIRES "
                     "evidence)"))
    return problems


def pair_key(path: pathlib.Path) -> str:
    return path.with_suffix("").as_posix()


def scan(root: pathlib.Path, files: list, rules: str) -> tuple:
    """Lints `files`; returns (problems, allowed) after applying inline
    escapes.  `rules` selects 'style', 'determinism', or 'all'."""
    stripped = {}
    raws = {}
    for path in files:
        raw = path.read_text(encoding="utf-8")
        raws[path] = raw
        stripped[path] = strip_comments(raw)

    # Project-wide unordered symbol table over the scan set.
    unordered = set()
    for code in stripped.values():
        unordered |= unordered_names(code)

    # Guarded fields / exempt functions, scoped per header/source pair.
    guarded_by_pair = {}
    exempt_by_pair = {}
    for path, code in stripped.items():
        key = pair_key(path)
        fields = {m.group(1) for m in GUARDED_FIELD_RE.finditer(code)}
        exempt = {m.group(1) for m in REQUIRES_DECL_RE.finditer(code)}
        guarded_by_pair.setdefault(key, set()).update(fields)
        exempt_by_pair.setdefault(key, set()).update(exempt)

    problems, allowed = [], []
    for path in files:
        rel = path.relative_to(root).as_posix()
        code = stripped[path]
        found = []
        if rules in ("style", "all"):
            found += lint_style(rel, path, code)
        if rules in ("determinism", "all"):
            found += lint_determinism(rel, code, unordered)
            found += lint_atomics(rel, code)
            key = pair_key(path)
            found += lint_guards(rel, code, guarded_by_pair.get(key, set()),
                                 exempt_by_pair.get(key, set()))
        allows = collect_allows(raws[path])
        for item in found:
            if item[2] in allows.get(item[1], set()):
                allowed.append(item)
            else:
                problems.append(item)
    return problems, allowed


def load_allowlist(path: pathlib.Path) -> dict:
    """`path:rule:count` entries; '#' comments and blank lines ignored."""
    entries = {}
    if not path.exists():
        return entries
    for ln, line in enumerate(path.read_text().splitlines(), 1):
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.rsplit(":", 2)
        if len(parts) != 3 or not parts[2].isdigit() or int(parts[2]) < 1:
            print(f"{path}:{ln}: malformed allowlist entry: '{line}'")
            entries[None] = 1   # poison: forces failure
            continue
        entries[(parts[0], parts[1])] = int(parts[2])
    return entries


def apply_allowlist(problems: list, entries: dict) -> tuple:
    """Splits problems into (errors, allowed).  An entry whose count does
    not match the live finding count exactly is itself an error: too few
    findings means the entry went stale and must shrink; too many means a
    new hazard appeared at an already-excused site."""
    errors, allowed = [], []
    counts = {}
    for item in problems:
        counts.setdefault((item[0], item[2]), []).append(item)
    stale = []
    for key, budget in entries.items():
        if key is None:
            stale.append(("tools/lint_allowlist.txt", 0, "ALLOWLIST",
                          "malformed entry"))
            continue
        found = counts.pop(key, [])
        if len(found) == budget:
            allowed.extend(found)
        elif len(found) < budget:
            stale.append(
                (key[0], 0, "ALLOWLIST",
                 f"stale entry '{key[0]}:{key[1]}:{budget}': only "
                 f"{len(found)} finding(s) remain — shrink the entry"))
            allowed.extend(found)
        else:
            stale.append(
                (key[0], 0, "ALLOWLIST",
                 f"entry '{key[0]}:{key[1]}:{budget}' exceeded: "
                 f"{len(found)} findings — fix the new site, do not grow "
                 "the allowlist"))
            errors.extend(found)
    for remaining in counts.values():
        errors.extend(remaining)
    errors.extend(stale)
    return errors, allowed


def self_test(root: pathlib.Path) -> int:
    """Runs the determinism/guard rules over tests/lint_selftest and
    checks findings against `// expect-lint:` markers both ways."""
    fixture_dir = root / "tests" / "lint_selftest"
    files = sorted(fixture_dir.rglob("*.hpp")) + \
        sorted(fixture_dir.rglob("*.cpp"))
    if not files:
        print(f"lint.py --self-test: no fixtures under {fixture_dir}")
        return 1
    problems, allowed = scan(root, files, "determinism")

    expected = set()
    for path in files:
        rel = path.relative_to(root).as_posix()
        for ln, line in enumerate(path.read_text().splitlines(), 1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in m.group(1).split(","):
                    expected.add((rel, ln, rule.strip()))

    found = {(rel, ln, rule) for rel, ln, rule, _ in problems}
    missed = expected - found
    unexpected = found - expected
    status = 0
    for rel, ln, rule in sorted(missed):
        print(f"{rel}:{ln}: self-test: expected {rule} but the linter "
              "missed it")
        status = 1
    for rel, ln, rule in sorted(unexpected):
        print(f"{rel}:{ln}: self-test: unexpected {rule} finding")
        status = 1
    for rel, ln, rule, _ in allowed:
        print(f"{rel}:{ln}: note: {rule} suppressed by inline allow "
              "(negative control)")
    if status == 0:
        print(f"lint.py --self-test: OK ({len(expected)} expected findings "
              f"over {len(files)} fixtures, {len(allowed)} inline-allowed)")
    return status


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (defaults to the checkout "
                             "containing this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the determinism rules against the "
                             "known-bad fixtures in tests/lint_selftest")
    parser.add_argument("--allowlist", type=pathlib.Path, default=None,
                        help="allowlist file (default "
                             "tools/lint_allowlist.txt under --root)")
    args = parser.parse_args()
    root = args.root.resolve()

    if args.self_test:
        return self_test(root)

    files = sorted((root / "src").rglob("*.hpp")) + \
        sorted((root / "src").rglob("*.cpp"))
    problems, inline_allowed = scan(root, files, "all")
    allowlist_path = args.allowlist or root / "tools" / "lint_allowlist.txt"
    errors, list_allowed = apply_allowlist(problems,
                                           load_allowlist(allowlist_path))

    for rel, ln, rule, message in inline_allowed:
        print(f"{rel}:{ln}: note: {rule} suppressed inline: {message}")
    for rel, ln, rule, message in list_allowed:
        print(f"{rel}:{ln}: note: {rule} allowlisted: {message}")
    for rel, ln, rule, message in sorted(errors):
        print(f"{rel}:{ln}: {rule}: {message}")
    if errors:
        print(f"lint.py: {len(errors)} problem(s) in {len(files)} files")
        return 1
    print(f"lint.py: OK ({len(files)} files, "
          f"{len(inline_allowed) + len(list_allowed)} allowed finding(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
