#!/usr/bin/env python3
"""Repo-specific lint rules that clang-tidy cannot express.

Run directly (``python3 tools/lint.py``) or via ``ctest -R lint``.

Rules enforced over ``src/``:

  R1  no ``assert(`` outside ``src/common/result.hpp`` — invariants use the
      SWB_CHECK / SWB_DCHECK family (common/check.hpp), which survives
      RelWithDebInfo and prints operand values.
  R2  every public API returning ``Result<T>`` or ``Status`` declared in a
      header is ``[[nodiscard]]`` — control-plane errors are values; dropping
      one silently loses a 2PC vote or a resolution failure.
  R3  no ``#include <iostream>`` in headers — it injects static init order
      dependencies into every TU; use common/log.hpp (sources may still use
      streams explicitly).
  R4  header guards are ``#pragma once`` — no ``#ifndef``-style guards.

Exit status 0 when clean; 1 with one ``file:line: rule: message`` diagnostic
per violation otherwise.
"""

import argparse
import pathlib
import re
import sys

ASSERT_ALLOWLIST = {"src/common/result.hpp"}

ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
IOSTREAM_RE = re.compile(r'#\s*include\s*[<"]iostream[>"]')
GUARD_RE = re.compile(r"#\s*ifndef\s+\w*_(?:H|HPP|H_|HPP_)\b")
# A function declaration returning Result<...> or Status.  Anchored at line
# start (plus indentation) so `return Status{...}` bodies and member fields
# do not match; requires an identifier then `(` so constructors like
# `Status() = default;` do not match.
RESULT_DECL_RE = re.compile(
    r"^\s*(?:(?:static|virtual|constexpr|inline|friend)\s+)*"
    r"(?:Result<[^;{}()]+>|Status)\s+(\w+)\s*\(")
NODISCARD_RE = re.compile(r"\[\[nodiscard\]\]")


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so diagnostics keep real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def lint_file(root: pathlib.Path, path: pathlib.Path) -> list:
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8")
    code = strip_comments(raw)
    lines = code.splitlines()
    is_header = path.suffix == ".hpp"
    problems = []

    # R1: assert() is banned outside the allowlist.
    if rel not in ASSERT_ALLOWLIST:
        for ln, line in enumerate(lines, 1):
            if "static_assert" in line:
                line = line.replace("static_assert", "")
            if ASSERT_RE.search(line):
                problems.append(
                    (rel, ln, "R1",
                     "assert() is banned; use SWB_CHECK / SWB_DCHECK "
                     "(common/check.hpp)"))

    if is_header:
        # R2: Result<T>/Status-returning declarations must be [[nodiscard]].
        for ln, line in enumerate(lines, 1):
            m = RESULT_DECL_RE.match(line)
            if not m:
                continue
            # [[nodiscard]] may sit on the same line or the line above.
            prev = lines[ln - 2] if ln >= 2 else ""
            if not (NODISCARD_RE.search(line) or NODISCARD_RE.search(prev)):
                problems.append(
                    (rel, ln, "R2",
                     f"'{m.group(1)}' returns Result/Status and must be "
                     "[[nodiscard]]"))

        # R3: no <iostream> in headers.
        for ln, line in enumerate(lines, 1):
            if IOSTREAM_RE.search(line):
                problems.append(
                    (rel, ln, "R3",
                     "<iostream> in a header; use common/log.hpp"))

        # R4: #pragma once, not include guards.
        if "#pragma once" not in code:
            problems.append((rel, 1, "R4", "header lacks '#pragma once'"))
        for ln, line in enumerate(lines, 1):
            if GUARD_RE.search(line):
                problems.append(
                    (rel, ln, "R4",
                     "#ifndef-style include guard; use '#pragma once'"))

    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (defaults to the checkout "
                             "containing this script)")
    args = parser.parse_args()
    root = args.root.resolve()

    files = sorted((root / "src").rglob("*.hpp")) + \
        sorted((root / "src").rglob("*.cpp"))
    problems = []
    for path in files:
        problems.extend(lint_file(root, path))

    for rel, ln, rule, message in problems:
        print(f"{rel}:{ln}: {rule}: {message}")
    if problems:
        print(f"lint.py: {len(problems)} problem(s) in {len(files)} files")
        return 1
    print(f"lint.py: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
