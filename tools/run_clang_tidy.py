#!/usr/bin/env python3
"""Runs clang-tidy over every src/ translation unit using the build tree's
compile_commands.json.  Exposed to ctest as the ``lint.clang-tidy`` test
(registered only when a clang-tidy binary is found at configure time).

Usage: run_clang_tidy.py --build <build-dir> [--clang-tidy <binary>] [-j N]
"""

import argparse
import concurrent.futures
import json
import pathlib
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", required=True, type=pathlib.Path)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("-j", "--jobs", type=int, default=4)
    args = parser.parse_args()

    db_path = args.build / "compile_commands.json"
    if not db_path.exists():
        print(f"no compile database at {db_path}; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 2
    with open(db_path, encoding="utf-8") as fh:
        database = json.load(fh)

    sources = sorted({entry["file"] for entry in database
                      if "/src/" in entry["file"].replace("\\", "/")})
    if not sources:
        print("compile database holds no src/ entries", file=sys.stderr)
        return 2

    def run(source: str):
        proc = subprocess.run(
            [args.clang_tidy, "-p", str(args.build), "--quiet", source],
            capture_output=True, text=True)
        return source, proc.returncode, proc.stdout, proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, code, out, err in pool.map(run, sources):
            if code != 0 or "warning:" in out or "error:" in out:
                failures += 1
                print(f"--- clang-tidy: {source}")
                sys.stdout.write(out)
                sys.stderr.write(err)

    print(f"clang-tidy: {len(sources) - failures}/{len(sources)} clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
