// Extension experiments from the paper's future-work list (Section 7.3):
//
//   1. Time-varying traffic matrices — chain demands oscillate with
//      per-chain phases; compare a static routing (computed once) against
//      periodic SB-DP re-optimization.
//   2. Compute failures — the busiest VNF site fails; how much traffic a
//      static routing strands vs what re-optimization recovers.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_json.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;

model::ScenarioParams base_params() {
  model::ScenarioParams params;
  params.topology.core_count = 5;
  params.topology.access_per_core = 2;
  params.vnf_count = 10;
  params.chain_count = 60;
  params.coverage = 0.4;
  params.total_chain_traffic = 900.0;
  params.site_capacity = 600.0;
  params.seed = 404;
  return params;
}

/// Applies epoch t's sinusoidal demand to a fresh copy of the scenario.
model::NetworkModel scenario_at_epoch(int epoch, int epochs) {
  model::NetworkModel m = model::make_scenario(base_params());
  const double phase_step = 2.0 * M_PI / static_cast<double>(epochs);
  for (const model::Chain& chain : m.chains()) {
    const double phase =
        static_cast<double>(chain.id.value() % 8) * (M_PI / 4.0);
    const double factor =
        1.0 + 0.6 * std::sin(phase + epoch * phase_step);
    model::Chain& mutable_chain = m.chain_mutable(chain.id);
    for (auto& w : mutable_chain.forward_traffic) w *= factor;
    for (auto& v : mutable_chain.reverse_traffic) v *= factor;
  }
  return m;
}

void time_varying_experiment(swb_bench::Session& session) {
  std::printf("\n-- 1. time-varying traffic: static routing vs periodic "
              "re-optimization --\n");
  const int kEpochs = static_cast<int>(session.scaled(8, 2, 4));

  // Static: SB-DP routing computed on the epoch-0 matrix, reused.
  const model::NetworkModel base = scenario_at_epoch(0, kEpochs);
  const te::DpResult static_routing = te::solve_dp_routing(base);

  std::printf("%8s %16s %16s %14s %14s\n", "epoch", "static tput",
              "reopt tput", "static ms", "reopt ms");
  double static_total = 0.0;
  double reopt_total = 0.0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const model::NetworkModel m = scenario_at_epoch(epoch, kEpochs);
    const te::RoutingMetrics stale = te::evaluate(m, static_routing.routing);
    const te::DpResult fresh = te::solve_dp_routing(m);
    const te::RoutingMetrics reopt = te::evaluate(m, fresh.routing);
    static_total += stale.feasible_throughput;
    reopt_total += reopt.feasible_throughput;
    std::printf("%8d %16.1f %16.1f %14.2f %14.2f\n", epoch,
                stale.feasible_throughput, reopt.feasible_throughput,
                stale.mean_latency_ms, reopt.mean_latency_ms);
  }
  std::printf("mean gain from re-optimization: %+.1f%% throughput\n",
              100.0 * (reopt_total / static_total - 1.0));
  session.add("time_varying_traffic")
      .param("epochs", kEpochs)
      .metric("static_total_tput", static_total)
      .metric("reopt_total_tput", reopt_total)
      .metric("reopt_gain_pct", 100.0 * (reopt_total / static_total - 1.0));
}

void failure_experiment(swb_bench::Session& session) {
  std::printf("\n-- 2. compute-site failure: stranded vs recovered traffic "
              "--\n");
  model::NetworkModel m = model::make_scenario(base_params());
  const te::DpResult before = te::solve_dp_routing(m);
  const te::RoutingMetrics healthy = te::evaluate(m, before.routing);

  // Find the VNF site carrying the most load under the healthy routing.
  const te::Loads loads = te::accumulate_loads(m, before.routing);
  SiteId victim;
  double victim_load = -1.0;
  for (const model::CloudSite& site : m.sites()) {
    if (loads.site_load(site.id) > victim_load) {
      victim_load = loads.site_load(site.id);
      victim = site.id;
    }
  }
  const NodeId victim_node = m.site(victim).node;

  // Traffic the static routing sends through the dead site is stranded.
  double stranded = 0.0;
  for (const model::Chain& chain : m.chains()) {
    double through_victim = 0.0;
    for (std::size_t z = 1; z < chain.stage_count(); ++z) {
      double fraction = 0.0;
      for (const te::StageFlow& flow : before.routing.flows(chain.id, z)) {
        if (flow.dst == victim_node) fraction += flow.fraction;
      }
      through_victim = std::max(through_victim, fraction);
    }
    stranded += through_victim * chain.total_traffic();
  }

  // Fail the site: its VNF deployments disappear; re-optimize.
  std::vector<std::pair<VnfId, SiteId>> removed;
  for (const model::Vnf& vnf : m.vnfs()) {
    if (vnf.deployed_at(victim)) removed.push_back({vnf.id, victim});
  }
  for (const auto& [vnf, site] : removed) m.undeploy_vnf(vnf, site);
  m.set_site_capacity(victim, 0.0);

  const te::DpResult after = te::solve_dp_routing(m);
  const te::RoutingMetrics recovered = te::evaluate(m, after.routing);

  std::printf("healthy routing:       %.1f units at %.2f ms\n",
              healthy.feasible_throughput, healthy.mean_latency_ms);
  std::printf("site %u fails (%zu VNF deployments, %.1f load):\n",
              victim.value(), removed.size(), victim_load);
  std::printf("  static routing strands %.1f units (%.0f%% of demand)\n",
              stranded, 100.0 * stranded / healthy.demand_volume);
  std::printf("  re-optimized routing:  %.1f units at %.2f ms "
              "(%.0f%% of healthy)\n",
              recovered.feasible_throughput, recovered.mean_latency_ms,
              100.0 * recovered.feasible_throughput /
                  healthy.feasible_throughput);
  session.add("site_failure")
      .metric("healthy_tput", healthy.feasible_throughput)
      .metric("stranded_tput", stranded)
      .metric("recovered_tput", recovered.feasible_throughput);
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_ext_dynamics"};
  std::printf("=== Extension: dynamics (time-varying traffic, failures) "
              "===\n");
  time_varying_experiment(session);
  failure_experiment(session);
  return 0;
}
