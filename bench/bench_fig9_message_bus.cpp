// Figure 9: global message bus vs full-mesh broadcast.
//
// Paper setup: VMs at one site with emulated wide-area delays; a publisher
// fans control state out to subscribers spread over many sites.  Full mesh
// sends one copy per *subscriber* and suffers queuing at the publisher's
// egress (an order of magnitude higher latency) plus buffer-overflow drops
// (Switchboard delivers 57% more).  The proxy topology sends one copy per
// subscribed *site*.
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "bench_json.hpp"
#include "bus/message_bus.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace switchboard;
using namespace switchboard::bus;

struct RunResult {
  double mean_latency_ms{0.0};
  double p99_latency_ms{0.0};
  std::uint64_t delivered{0};
  std::uint64_t drops{0};
  std::map<std::string, std::uint64_t> drops_by_topic;
  std::uint64_t wide_area_messages{0};
  double delivered_rate{0.0};   // deliveries per second of sim time
};

RunResult run(bool full_mesh, std::size_t sites, int subscribers_per_site,
              int burst, sim::Duration inter_publish) {
  sim::Simulator sim;
  BusConfig config;
  config.site_count = sites;
  config.inter_site_delay = [](SiteId, SiteId) { return sim::from_ms(25.0); };
  config.per_message_service = sim::microseconds(100);
  config.egress_buffer = 3000;
  config.retain_messages = false;   // a live feed, not config state

  std::unique_ptr<MessageBus> bus;
  if (full_mesh) {
    bus = std::make_unique<FullMeshBus>(sim, config);
  } else {
    bus = std::make_unique<ProxyBus>(sim, config);
  }

  const Topic topic{"/telemetry", SiteId{0}};
  for (std::size_t s = 1; s < sites; ++s) {
    for (int i = 0; i < subscribers_per_site; ++i) {
      bus->subscribe(SiteId{static_cast<SiteId::underlying_type>(s)}, topic,
                     [](const Message&) {});
    }
  }

  for (int i = 0; i < burst; ++i) {
    sim.schedule(i * inter_publish, [&bus, topic] {
      bus->publish(topic, "state-update");
    });
  }
  const sim::SimTime end = sim.run();

  RunResult result;
  const BusStats& stats = bus->stats();
  result.delivered = stats.local_deliveries;
  result.drops = stats.drops;
  result.drops_by_topic = stats.drops_by_topic;
  result.wide_area_messages = stats.wide_area_messages;
  if (stats.delivery_latency_ms.count() > 0) {
    result.mean_latency_ms = stats.delivery_latency_ms.mean();
    result.p99_latency_ms = stats.delivery_latency_ms.percentile(99.0);
  }
  result.delivered_rate = end > 0
      ? static_cast<double>(result.delivered) / sim::to_seconds(end)
      : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig9_message_bus"};
  constexpr std::size_t kSites = 12;
  constexpr int kSubsPerSite = 10;
  const int kBurst = static_cast<int>(session.scaled(400, 8, 50));
  // 2 ms between publishes: one copy per *site* fits in the interval
  // (proxy topology), one copy per *subscriber* does not (full mesh).
  const sim::Duration kInterPublish = sim::milliseconds(2);

  std::printf("=== Figure 9: message bus vs full-mesh broadcast ===\n");
  std::printf("sites=%zu, subscribers/site=%d, burst=%d messages\n\n", kSites,
              kSubsPerSite, kBurst);
  std::printf("%-12s %12s %12s %10s %8s %10s %12s\n", "scheme", "mean-ms",
              "p99-ms", "delivered", "drops", "wan-msgs", "delivs/sec");

  const RunResult proxy =
      run(false, kSites, kSubsPerSite, kBurst, kInterPublish);
  const RunResult mesh = run(true, kSites, kSubsPerSite, kBurst, kInterPublish);

  std::printf("%-12s %12.2f %12.2f %10llu %8llu %10llu %12.0f\n",
              "switchboard", proxy.mean_latency_ms, proxy.p99_latency_ms,
              static_cast<unsigned long long>(proxy.delivered),
              static_cast<unsigned long long>(proxy.drops),
              static_cast<unsigned long long>(proxy.wide_area_messages),
              proxy.delivered_rate);
  std::printf("%-12s %12.2f %12.2f %10llu %8llu %10llu %12.0f\n", "full-mesh",
              mesh.mean_latency_ms, mesh.p99_latency_ms,
              static_cast<unsigned long long>(mesh.delivered),
              static_cast<unsigned long long>(mesh.drops),
              static_cast<unsigned long long>(mesh.wide_area_messages),
              mesh.delivered_rate);

  std::printf("\nlatency ratio (mesh/proxy): %.1fx   throughput gain: +%.0f%%\n",
              proxy.mean_latency_ms > 0
                  ? mesh.mean_latency_ms / proxy.mean_latency_ms
                  : 0.0,
              mesh.delivered > 0
                  ? 100.0 * (static_cast<double>(proxy.delivered) /
                                 static_cast<double>(mesh.delivered) -
                             1.0)
                  : 0.0);
  const auto record = [&](const char* scheme, const RunResult& r) {
    session.add("bus_fanout")
        .param("scheme", std::string{scheme})
        .param("sites", static_cast<double>(kSites))
        .param("burst", kBurst)
        .metric("mean_ms", r.mean_latency_ms)
        .metric("p99_ms", r.p99_latency_ms)
        .metric("delivered", static_cast<double>(r.delivered))
        .metric("drops", static_cast<double>(r.drops))
        .metric("throughput_pps", r.delivered_rate);
    // Egress-overflow drops broken out per topic: previously these were
    // counted only in aggregate and invisible in the JSON artifact.
    for (const auto& [topic_path, dropped] : r.drops_by_topic) {
      session.add("bus_drops_by_topic")
          .param("scheme", std::string{scheme})
          .param("topic", topic_path)
          .metric("drops", static_cast<double>(dropped));
    }
  };
  record("switchboard", proxy);
  record("full_mesh", mesh);

  std::printf(
      "Paper: full mesh suffers >10x higher latency from publisher-side\n"
      "queuing; Switchboard delivers 57%% more due to mesh buffer drops.\n");
  return 0;
}
