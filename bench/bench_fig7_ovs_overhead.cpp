// Figure 7: overhead of the OVS-based forwarder.
//
// Paper setup: 1-50 concurrent flows between two VNF instances via the
// forwarders; measured throughput of
//   (c) a plain bridge,
//   (b) bridge + overlay labels (VXLAN + MPLS)  -> 19-29% overhead,
//   (a) labels + flow-affinity learn rules      -> further 33-44%,
// with (a) scaling poorly as flows grow (linear rule lists).
//
// This benchmark drives the same three pipelines with the same flow
// counts and reports packets/sec plus the relative overheads.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

#include "bench_json.hpp"
#include "dataplane/ovs_forwarder.hpp"
#include "dataplane/traffic_gen.hpp"

namespace {

using switchboard::dataplane::make_packet_batch;
using switchboard::dataplane::OvsForwarder;
using switchboard::dataplane::OvsMode;
using switchboard::dataplane::Packet;
using switchboard::dataplane::TrafficGenConfig;

// flows -> mode -> measured packets/sec (filled by the benchmarks, printed
// as the Figure 7 table at exit).
std::map<int, std::map<int, double>> g_results;

void run_mode(benchmark::State& state, OvsMode mode) {
  const int flows = static_cast<int>(state.range(0));
  TrafficGenConfig config;
  config.flow_count = static_cast<std::uint32_t>(flows);
  const auto packets = make_packet_batch(config, 4096);

  OvsForwarder forwarder{mode};
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forwarder.process(packets[index]));
    index = (index + 1) % packets.size();
  }
  state.SetItemsProcessed(state.iterations());
  g_results[flows][static_cast<int>(mode)] =
      static_cast<double>(state.iterations());
}

void BM_Bridge(benchmark::State& state) { run_mode(state, OvsMode::kBridge); }
void BM_Labels(benchmark::State& state) { run_mode(state, OvsMode::kLabels); }
void BM_LabelsAffinity(benchmark::State& state) {
  run_mode(state, OvsMode::kLabelsAffinity);
}

BENCHMARK(BM_Bridge)->Arg(1)->Arg(10)->Arg(25)->Arg(50);
BENCHMARK(BM_Labels)->Arg(1)->Arg(10)->Arg(25)->Arg(50);
BENCHMARK(BM_LabelsAffinity)->Arg(1)->Arg(10)->Arg(25)->Arg(50);

/// Direct throughput measurement (wall-clock), printed as the Fig. 7 table.
/// Best of several short runs, to shrug off scheduler noise.
double measure_pps(OvsMode mode, int flows, std::size_t packets_target) {
  TrafficGenConfig config;
  config.flow_count = static_cast<std::uint32_t>(flows);
  const auto packets = make_packet_batch(config, 8192);
  OvsForwarder forwarder{mode};
  // Warm up (learn rules for affinity mode).
  for (const Packet& p : packets) forwarder.process(p);

  double best = 0.0;
  for (int run = 0; run < 5; ++run) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t processed = 0;
    std::uint64_t sink = 0;
    while (processed < packets_target) {
      for (const Packet& p : packets) sink += forwarder.process(p);
      processed += packets.size();
    }
    const auto elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    benchmark::DoNotOptimize(sink);
    best = std::max(best, static_cast<double>(processed) / elapsed);
  }
  return best;
}

void print_figure7_table(swb_bench::Session& session) {
  const std::size_t target = session.scaled(1'500'000, 64);
  std::printf("\n=== Figure 7: OVS forwarder overhead ===\n");
  std::printf("%8s %14s %14s %14s %10s %10s\n", "flows", "(c)bridge pps",
              "(b)labels pps", "(a)affinity pps", "b-ovhd%", "a-ovhd%");
  for (const int flows : {1, 10, 25, 50}) {
    const double bridge = measure_pps(OvsMode::kBridge, flows, target);
    const double labels = measure_pps(OvsMode::kLabels, flows, target);
    const double affinity =
        measure_pps(OvsMode::kLabelsAffinity, flows, target);
    std::printf("%8d %14.3e %14.3e %14.3e %9.1f%% %9.1f%%\n", flows, bridge,
                labels, affinity, 100.0 * (bridge - labels) / bridge,
                100.0 * (labels - affinity) / labels);
    session.add("ovs_overhead")
        .param("flows", flows)
        .metric("bridge_pps", bridge)
        .metric("labels_pps", labels)
        .metric("affinity_pps", affinity)
        .metric("labels_overhead_pct", 100.0 * (bridge - labels) / bridge)
        .metric("affinity_overhead_pct",
                100.0 * (labels - affinity) / labels);
  }
  std::printf(
      "Paper: labels add 19-29%% overhead over bridge; affinity rules add a\n"
      "further 33-44%%; affinity mode degrades as flow count grows.\n");
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig7_ovs_overhead"};
  if (!session.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  print_figure7_table(session);
  return 0;
}
