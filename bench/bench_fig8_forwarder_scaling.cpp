// Figure 8: DPDK-based forwarder throughput scaling.
//
// Paper setup: forwarder instances pinned one per core behind SR-IOV VFs;
// 64-byte UDP packets uniform over a fixed number of flows.  Findings:
//   * ~7 Mpps on one core,
//   * +3-4 Mpps per additional forwarder instance,
//   * 6 instances with 512K flows each (3M total) still >20 Mpps,
//   * throughput decreases with flow count (flow-table entries fall out
//     of the CPU cache), converging to >3 Mpps/core for huge tables.
//
// Here each "core" is a thread running an independent Switchboard
// forwarder engine (the real flow-table/rule pipeline, shared-nothing as
// in the paper's deployment).  Absolute Mpps depends on the host; the
// scaling *shape* is the reproduction target.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "dataplane/forwarder.hpp"
#include "dataplane/traffic_gen.hpp"

namespace {

using namespace switchboard::dataplane;

/// Builds a forwarder with an installed rule and pre-learned flows.
Forwarder make_loaded_forwarder(std::uint32_t flows, std::uint64_t seed) {
  Forwarder forwarder{1, flows * 2};
  LoadBalanceRule rule;
  rule.vnf_instances.add(100, 1.0);
  rule.next_forwarders.add(200, 1.0);
  forwarder.rules().install(Labels{1, 1}, std::move(rule));

  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = seed;
  PacketStream stream{config};
  for (std::uint32_t f = 0; f < flows; ++f) {
    Packet packet = stream.next();
    packet.arrival_source = 50;
    forwarder.process_from_wire(packet);   // create the flow entry
  }
  return forwarder;
}

/// Packets/sec of one forwarder core over `flows` established flows.
double run_single_core(std::uint32_t flows, std::uint64_t seed,
                       std::size_t packets_target) {
  Forwarder forwarder = make_loaded_forwarder(flows, seed);
  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = seed;
  // Stream packets round-robin over ALL flows so the whole flow table is
  // touched (that is what creates the cache-miss effect at large tables).
  PacketStream stream{config};

  std::size_t processed = 0;
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  while (processed < packets_target) {
    for (std::size_t burst = 0; burst < 8192; ++burst) {
      Packet p = stream.next();
      p.arrival_source = 50;
      const ForwardAction action = forwarder.process_from_wire(p);
      sink += action.element;
    }
    processed += 8192;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(processed) / elapsed;
}

/// Aggregate packets/sec of `cores` shared-nothing forwarders.
double run_multi_core(std::size_t cores, std::uint32_t flows_per_core,
                      std::size_t packets_per_core) {
  std::vector<std::thread> threads;
  std::vector<double> pps(cores, 0.0);
  for (std::size_t c = 0; c < cores; ++c) {
    threads.emplace_back([&, c] {
      pps[c] = run_single_core(flows_per_core, 7'000 + c, packets_per_core);
    });
  }
  for (auto& t : threads) t.join();
  double total = 0.0;
  for (const double p : pps) total += p;
  return total;
}

void BM_SingleCoreByFlows(benchmark::State& state) {
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  Forwarder forwarder = make_loaded_forwarder(flows, 42);
  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = 42;
  PacketStream stream{config};
  for (auto _ : state) {
    Packet p = stream.next();
    p.arrival_source = 50;
    benchmark::DoNotOptimize(forwarder.process_from_wire(p));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SingleCoreByFlows)
    ->Arg(1024)
    ->Arg(65536)
    ->Arg(524288)
    ->Arg(2097152);

void print_figure8_tables() {
  std::printf("\n=== Figure 8: forwarder scaling (this host) ===\n");
  std::printf("-- single core, throughput vs established flows --\n");
  std::printf("%12s %14s\n", "flows", "Mpps");
  double single_core_512k = 0.0;
  for (const std::uint32_t flows : {1u << 10, 1u << 16, 1u << 19, 1u << 21}) {
    const double pps = run_single_core(flows, 42, 8'000'000);
    if (flows == (1u << 19)) single_core_512k = pps;
    std::printf("%12u %14.2f\n", flows, pps / 1e6);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("-- scale-out: cores x 512K flows each (host has %u CPU%s) --\n",
              hw, hw == 1 ? "" : "s");
  std::printf("%8s %12s %14s %18s\n", "cores", "flows", "measured Mpps",
              "shared-nothing Mpps");
  const double per_core = run_single_core(1u << 19, 4242, 6'000'000);
  for (const std::size_t cores : {1, 2, 4, 6}) {
    const double pps = run_multi_core(cores, 1u << 19, 6'000'000);
    // The forwarders share no state, so aggregate throughput on a machine
    // with enough cores is cores x single-core rate; the measured column
    // collapses when threads contend for fewer physical CPUs.
    std::printf("%8zu %12zu %14.2f %18.2f\n", cores,
                cores * (std::size_t{1} << 19), pps / 1e6,
                static_cast<double>(cores) * per_core / 1e6);
  }
  std::printf(
      "Paper (Xeon E5-2470 + XL710): 7 Mpps @ 1 core, +3-4 Mpps/core, \n"
      ">20 Mpps @ 6 cores x 512K flows; throughput declines with flow count\n"
      "as the table falls out of cache (steady-state >3 Mpps/core).\n");
  (void)single_core_512k;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure8_tables();
  return 0;
}
