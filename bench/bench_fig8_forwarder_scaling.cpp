// Figure 8: forwarder throughput scaling.
//
// Paper setup: DPDK forwarder instances pinned one per core behind SR-IOV
// VFs; 64-byte UDP packets uniform over a fixed number of flows.  Findings:
//   * ~7 Mpps on one core,
//   * +3-4 Mpps per additional forwarder instance,
//   * 6 instances with 512K flows each (3M total) still >20 Mpps,
//   * throughput decreases with flow count (flow-table entries fall out
//     of the CPU cache), converging to >3 Mpps/core for huge tables.
//
// Two scale-out shapes are measured on this host:
//   1. shared-nothing: one independent Forwarder per thread (the paper's
//      process-per-core deployment);
//   2. sharded: ONE Forwarder driven by N RSS workers over its
//      ShardedFlowTable — each worker owns a disjoint shard set and a
//      per-worker traffic generator, so steady-state lookups take only
//      uncontended locks.
//
// A third series (DESIGN.md §15) sweeps live-flow count 10^5 -> 10^7 across
// the three data-plane read modes — epoch (lock-free batched SoA pipeline),
// mutex (per-shard-lock ablation) and annotation (Active-Switching-style
// steering affix, no per-packet table lookup) — reporting ns/pkt and
// Mpps/core.  Packet counts and the flow-pinning digest are bit-identical
// across modes and thread counts; the binary aborts if they are not.
//
// Flags: --threads N (sharded sweep up to N; default 8 capped at the host),
// --json <path>, --smoke (see bench_json.hpp).  Absolute Mpps depends on
// the host; the scaling *shape* is the reproduction target.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/check.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/traffic_gen.hpp"

namespace {

using namespace switchboard::dataplane;

void install_rule(Forwarder& forwarder) {
  LoadBalanceRule rule;
  rule.vnf_instances.add(100, 1.0);
  rule.next_forwarders.add(200, 1.0);
  forwarder.rules().install(Labels{1, 1}, std::move(rule));
}

/// Pre-creates flow state for every flow of `config` (worker filter off).
void preload_flows(Forwarder& forwarder, std::uint32_t flows,
                   std::uint64_t seed) {
  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = seed;
  PacketStream stream{config};
  for (std::uint32_t f = 0; f < flows; ++f) {
    Packet packet = stream.next();
    packet.arrival_source = 50;
    forwarder.process_from_wire(packet);
  }
}

/// Packets/sec of one forwarder over `flows` established flows
/// (single-threaded classic path).
double run_single_core(std::uint32_t flows, std::uint64_t seed,
                       std::size_t packets_target) {
  Forwarder forwarder{1, flows * 2};
  install_rule(forwarder);
  preload_flows(forwarder, flows, seed);
  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = seed;
  // Stream packets round-robin over ALL flows so the whole flow table is
  // touched (that is what creates the cache-miss effect at large tables).
  PacketStream stream{config};

  std::size_t processed = 0;
  std::uint64_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  while (processed < packets_target) {
    for (std::size_t burst = 0; burst < 8192; ++burst) {
      Packet p = stream.next();
      p.arrival_source = 50;
      const ForwardAction action = forwarder.process_from_wire(p);
      sink += action.element;
    }
    processed += 8192;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(processed) / elapsed;
}

/// Aggregate packets/sec of `cores` shared-nothing forwarders (the paper's
/// process-per-core model).
double run_shared_nothing(std::size_t cores, std::uint32_t flows_per_core,
                          std::size_t packets_per_core) {
  std::vector<std::thread> threads;
  std::vector<double> pps(cores, 0.0);
  for (std::size_t c = 0; c < cores; ++c) {
    threads.emplace_back([&pps, c, flows_per_core, packets_per_core] {
      pps[c] = run_single_core(flows_per_core, 7'000 + c, packets_per_core);
    });
  }
  for (auto& t : threads) t.join();
  double total = 0.0;
  for (const double p : pps) total += p;
  return total;
}

/// Aggregate packets/sec of ONE sharded forwarder driven by `workers` RSS
/// worker threads, each with a per-worker traffic generator over its share
/// of `flows_total` established flows.
double run_sharded(std::size_t workers, std::uint32_t flows_total,
                   std::size_t packets_per_worker) {
  Forwarder forwarder{1, flows_total * 2, workers};
  install_rule(forwarder);
  preload_flows(forwarder, flows_total, 42);

  // Materialize each worker's batch up front (round-robin over its owned
  // flows) so the measured loop is pure forwarder work.
  std::vector<std::vector<Packet>> batches(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    TrafficGenConfig config;
    config.flow_count = flows_total;
    config.seed = 42;
    config.worker_count = static_cast<std::uint32_t>(workers);
    config.worker_index = static_cast<std::uint32_t>(w);
    PacketStream stream{config};
    const std::size_t batch_size =
        std::max<std::size_t>(stream.owned_flow_count(), 1);
    batches[w].reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      Packet p = stream.next();
      p.arrival_source = 50;
      batches[w].push_back(p);
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::size_t> processed(workers, 0);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&forwarder, &batches, &processed, w,
                          packets_per_worker] {
      const std::vector<Packet>& batch = batches[w];
      std::size_t done = 0;
      std::size_t delivered = 0;
      while (done < packets_per_worker) {
        delivered += forwarder.process_batch(batch);
        done += batch.size();
      }
      benchmark::DoNotOptimize(delivered);
      processed[w] = done;
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::size_t total = 0;
  for (const std::size_t p : processed) total += p;
  return static_cast<double>(total) / elapsed;
}

// ---------------------------------------------------------------------------
// Flow-scale sweep across data-plane read modes (DESIGN.md §15).

struct SweepRun {
  double pps{0.0};
  std::uint64_t packets_forwarded{0};
  std::uint64_t pinning_digest{0};
};

// 52 bits round-trip exactly through the JSON double in the bench record,
// so bench_diff.py can gate the digest with an exact comparison.
constexpr std::uint64_t kDigestMask = (std::uint64_t{1} << 52) - 1;

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  return hash * 1099511628211ULL;
}

/// FNV-1a over every flow's (vnf_instance, next_forwarder) pinning in flow
/// order.  Pinning is a pure function of (forwarder id, flow key), so the
/// digest is bit-identical across read modes and thread counts; any drift
/// is a determinism bug.
template <typename PinningFn>
std::uint64_t pinning_digest(std::uint32_t flows, PinningFn&& pin_of) {
  std::uint64_t digest = 14695981039346656037ULL;
  for (std::uint32_t f = 0; f < flows; ++f) {
    const FlowEntry entry = pin_of(f);
    digest = fnv1a_mix(digest, entry.vnf_instance);
    digest = fnv1a_mix(digest, entry.next_forwarder);
  }
  return digest & kDigestMask;
}

/// Per-worker RSS batches, one packet per owned flow (the materialization
/// run_sharded uses, shared by all three sweep modes).
std::vector<std::vector<Packet>> make_worker_batches(std::size_t workers,
                                                     std::uint32_t flows) {
  std::vector<std::vector<Packet>> batches(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    TrafficGenConfig config;
    config.flow_count = flows;
    config.seed = 42;
    config.worker_count = static_cast<std::uint32_t>(workers);
    config.worker_index = static_cast<std::uint32_t>(w);
    PacketStream stream{config};
    const std::size_t batch_size = stream.owned_flow_count();
    batches[w].reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      Packet p = stream.next();
      p.arrival_source = 50;
      batches[w].push_back(p);
    }
  }
  return batches;
}

/// Timed section shared by the sweep runners: every worker makes `passes`
/// full passes over its batch, so the total packet count is exactly
/// passes * flows — independent of the worker count (RSS partitions the
/// flow set) and of the read mode (every packet hits an established pin).
template <typename PassFn>
SweepRun run_timed_passes(std::vector<std::vector<Packet>>& batches,
                          std::size_t passes, PassFn&& run_pass) {
  const std::size_t workers = batches.size();
  std::vector<std::thread> threads;
  std::vector<std::size_t> delivered(workers, 0);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&batches, &delivered, &run_pass, w, passes] {
      std::size_t count = 0;
      for (std::size_t pass = 0; pass < passes; ++pass) {
        count += run_pass(batches[w]);
      }
      benchmark::DoNotOptimize(count);
      delivered[w] = count;
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  SweepRun run;
  for (const std::size_t d : delivered) run.packets_forwarded += d;
  run.pps = static_cast<double>(run.packets_forwarded) / elapsed;
  return run;
}

/// Flow-table modes: epoch (lock-free batched pipeline) or mutex (per-shard
/// lock ablation), over `flows` preloaded flows.
SweepRun run_flow_scale_table(ReadMode mode, std::size_t workers,
                              std::uint32_t flows, std::size_t passes) {
  Forwarder forwarder{1, flows * 2, workers};
  forwarder.set_read_mode(mode);
  install_rule(forwarder);
  preload_flows(forwarder, flows, 42);
  auto batches = make_worker_batches(workers, flows);

  SweepRun run = run_timed_passes(batches, passes, [&](std::vector<Packet>& b) {
    return forwarder.process_batch(b);
  });

  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = 42;
  PacketStream stream{config};
  run.pinning_digest = pinning_digest(flows, [&](std::uint32_t f) {
    const auto entry =
        forwarder.flow_table().find(Labels{1, 1}, stream.flow_tuple(f));
    SWB_CHECK(entry.has_value()) << "flow " << f << " lost its pin";
    return *entry;
  });
  return run;
}

/// Annotation mode: steering state rides in the packet (Active-Switching
/// ablation) — no per-flow table entries, so the affix pass replaces the
/// table modes' preload and later passes are the pure validate-and-forward
/// fast path.
SweepRun run_flow_scale_annotation(std::size_t workers, std::uint32_t flows,
                                   std::size_t passes) {
  Forwarder forwarder{1, /*flow_capacity=*/64, workers};
  install_rule(forwarder);
  auto batches = make_worker_batches(workers, flows);
  for (auto& batch : batches) {
    (void)forwarder.process_batch_annotated(batch);  // affix (untimed)
  }

  SweepRun run = run_timed_passes(batches, passes, [&](std::vector<Packet>& b) {
    return forwarder.process_batch_annotated(b);
  });

  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = 42;
  PacketStream stream{config};
  run.pinning_digest = pinning_digest(flows, [&](std::uint32_t f) {
    Packet probe;
    probe.flow = stream.flow_tuple(f);
    probe.labels = Labels{1, 1};
    probe.arrival_source = 50;
    (void)forwarder.process_annotated(probe);
    SWB_CHECK(probe.steering.valid_for(forwarder.route_epoch()))
        << "flow " << f << " not annotated";
    return probe.steering.pinning;
  });
  return run;
}

/// The 10^5 -> 10^7 live-flow sweep over the three read modes.  Emits
/// ns/pkt + Mpps/core (wall-clock, artifact-only) and packets_forwarded +
/// pinning_digest (bit-deterministic, gated exact by bench_diff.py), plus
/// an epoch-vs-mutex throughput ratio record per cell.  Aborts in-binary
/// if packet counts or digests diverge across modes or thread counts.
void flow_scale_sweep(swb_bench::Session& session) {
  const std::size_t packets_target = session.scaled(4'000'000, 100, 40'000);

  std::printf("\n-- flow-scale sweep: live flows x read mode (DESIGN.md §15) "
              "--\n");
  std::printf("%10s %8s %12s %12s %12s\n", "flows", "threads", "mode",
              "ns/pkt", "Mpps/core");
  for (const std::uint32_t flows_full : {100'000u, 1'000'000u, 10'000'000u}) {
    const auto flows =
        static_cast<std::uint32_t>(session.scaled(flows_full, 100, 1'000));
    const std::size_t passes =
        std::max<std::size_t>(packets_target / flows, 1);
    bool have_reference = false;
    std::uint64_t expect_packets = 0;
    std::uint64_t expect_digest = 0;
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      double epoch_pps = 0.0;
      double mutex_pps = 0.0;
      const struct {
        const char* name;
        SweepRun run;
      } rows[] = {
          {"epoch", run_flow_scale_table(ReadMode::kEpochRead, threads, flows,
                                         passes)},
          {"mutex", run_flow_scale_table(ReadMode::kMutexRead, threads, flows,
                                         passes)},
          {"annotation", run_flow_scale_annotation(threads, flows, passes)},
      };
      for (const auto& [name, run] : rows) {
        // Determinism contract: byte-identical results across read modes
        // and thread counts (ISSUE: thread-count-independent results).
        if (!have_reference) {
          have_reference = true;
          expect_packets = run.packets_forwarded;
          expect_digest = run.pinning_digest;
        }
        SWB_CHECK_EQ(run.packets_forwarded, expect_packets)
            << "mode " << name << " threads " << threads;
        SWB_CHECK_EQ(run.pinning_digest, expect_digest)
            << "mode " << name << " threads " << threads;

        const double ns_per_pkt =
            static_cast<double>(threads) * 1e9 / run.pps;
        const double mpps_per_core =
            run.pps / 1e6 / static_cast<double>(threads);
        std::printf("%10u %8zu %12s %12.1f %12.2f\n", flows, threads, name,
                    ns_per_pkt, mpps_per_core);
        session.add("flow_scale_sweep")
            .param("flows", flows)
            .param("threads", static_cast<double>(threads))
            .param("mode", name)
            .metric("ns_per_pkt", ns_per_pkt)
            .metric("mpps_per_core", mpps_per_core)
            .metric("packets_forwarded",
                    static_cast<double>(run.packets_forwarded))
            .metric("pinning_digest",
                    static_cast<double>(run.pinning_digest));
        if (std::strcmp(name, "epoch") == 0) epoch_pps = run.pps;
        if (std::strcmp(name, "mutex") == 0) mutex_pps = run.pps;
      }
      session.add("flow_scale_mode_ratio")
          .param("flows", flows)
          .param("threads", static_cast<double>(threads))
          .metric("epoch_vs_mutex", epoch_pps / mutex_pps);
    }
  }
}

void BM_SingleCoreByFlows(benchmark::State& state) {
  const auto flows = static_cast<std::uint32_t>(state.range(0));
  Forwarder forwarder{1, flows * 2};
  install_rule(forwarder);
  preload_flows(forwarder, flows, 42);
  TrafficGenConfig config;
  config.flow_count = flows;
  config.seed = 42;
  PacketStream stream{config};
  for (auto _ : state) {
    Packet p = stream.next();
    p.arrival_source = 50;
    benchmark::DoNotOptimize(forwarder.process_from_wire(p));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SingleCoreByFlows)
    ->Arg(1024)
    ->Arg(65536)
    ->Arg(524288)
    ->Arg(2097152);

void print_figure8_tables(swb_bench::Session& session,
                          std::size_t max_threads) {
  const std::size_t packets = session.scaled(8'000'000, 64);
  const std::uint32_t big_flows =
      static_cast<std::uint32_t>(session.scaled(1u << 19, 64));

  std::printf("\n=== Figure 8: forwarder scaling (this host) ===\n");
  std::printf("-- single core, throughput vs established flows --\n");
  std::printf("%12s %14s\n", "flows", "Mpps");
  for (const std::uint32_t flows : {1u << 10, 1u << 16, 1u << 19, 1u << 21}) {
    const std::uint32_t f =
        static_cast<std::uint32_t>(session.scaled(flows, 64, 16));
    const double pps = run_single_core(f, 42, packets);
    std::printf("%12u %14.2f\n", f, pps / 1e6);
    session.add("single_core_by_flows")
        .param("flows", f)
        .metric("throughput_pps", pps);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t scale_packets = session.scaled(6'000'000, 64);

  std::printf("\n-- shared-nothing: independent forwarders x %u flows "
              "(host has %u CPU%s) --\n", big_flows, hw, hw == 1 ? "" : "s");
  std::printf("%8s %12s %14s\n", "cores", "flows", "Mpps");
  for (const std::size_t cores : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{6}}) {
    const double pps = run_shared_nothing(cores, big_flows, scale_packets);
    std::printf("%8zu %12zu %14.2f\n", cores,
                cores * static_cast<std::size_t>(big_flows), pps / 1e6);
    session.add("shared_nothing_scaling")
        .param("cores", static_cast<double>(cores))
        .param("flows_per_core", big_flows)
        .metric("throughput_pps", pps);
  }

  std::printf("\n-- sharded: ONE forwarder, N RSS workers over %u flows --\n",
              big_flows);
  std::printf("%8s %14s %10s\n", "threads", "Mpps", "speedup");
  const double single = run_sharded(1, big_flows, scale_packets);
  for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
    const double pps = threads == 1
        ? single
        : run_sharded(threads, big_flows, scale_packets / threads);
    std::printf("%8zu %14.2f %9.2fx\n", threads, pps / 1e6, pps / single);
    session.add("sharded_scaling")
        .param("threads", static_cast<double>(threads))
        .param("flows", big_flows)
        .metric("throughput_pps", pps)
        .metric("speedup_vs_1_thread", pps / single);
  }
  std::printf(
      "Paper (Xeon E5-2470 + XL710): 7 Mpps @ 1 core, +3-4 Mpps/core, \n"
      ">20 Mpps @ 6 cores x 512K flows; throughput declines with flow count\n"
      "as the table falls out of cache (steady-state >3 Mpps/core).\n");
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig8_forwarder_scaling"};

  // --threads N: upper end of the sharded-worker sweep.
  std::size_t max_threads = 8;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      max_threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[out] = nullptr;
  max_threads = std::max<std::size_t>(max_threads, 1);

  if (!session.smoke()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  print_figure8_tables(session, max_threads);
  flow_scale_sweep(session);
  return 0;
}
