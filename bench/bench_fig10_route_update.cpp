// Figure 10: dynamic chain-route creation.
//
// Paper setup: one AWS site split into virtual sites A and B; a chain
// (ingress A, egress B) initially runs its NAT only at site A.  A new
// route via B is requested at runtime.  Findings:
//   (a) the route update completes in 595 ms and load is balanced evenly
//       between the two routes afterwards;
//   (b) total chain throughput doubles, commensurate with the added
//       capacity, while the existing route is unaffected.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <string>

#include "bench_json.hpp"
#include "common/check.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;

dataplane::FiveTuple flow_tuple(std::uint32_t i) {
  return dataplane::FiveTuple{0x0A000000u + i, 0xC0A80001u,
                              static_cast<std::uint16_t>(1024 + i % 50000),
                              80, 6};
}

/// Minimum wall time of `fn` over `repeats` runs, in milliseconds.
template <typename Fn>
double min_wall_ms(int repeats, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = std::min(best, ms);
  }
  return best;
}

/// (c) companion microbenchmark: the cost of reacting to a single-chain
/// delta with the TE engine's incremental re-solve versus re-running the
/// whole DP solver, on a scenario-sized model.  Wall-clock metrics; the
/// CI perf gate diffs only the deterministic control-plane timings.
void bench_incremental_resolve(swb_bench::Session& session) {
  model::ScenarioParams params;
  params.topology.core_count = 5;
  params.topology.access_per_core = 1;   // 10 nodes / sites
  params.vnf_count = 8;
  params.chain_count = 40;
  params.coverage = 0.5;
  params.total_chain_traffic = 400.0;
  params.site_capacity = 500.0;
  params.seed = 7;
  model::NetworkModel m = model::make_scenario(params);
  const int repeats = session.smoke() ? 5 : 9;

  // Full re-solve: what a stateless control plane pays per chain delta.
  const te::DpResult reference = te::solve_dp_routing(m);
  const double full_ms = min_wall_ms(repeats, [&] {
    const te::DpResult r = te::solve_dp_routing(m);
    SWB_CHECK(r.routed_volume == reference.routed_volume);
  });

  // Incremental: drop and re-add the last chain; only the timed add_chain
  // call routes against the residual loads of the other 39 chains.
  te::TeEngine engine{m};
  engine.solve();
  const ChainId delta = m.chains().back().id;
  double incremental_ms = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    engine.remove_chain(delta);
    const auto start = std::chrono::steady_clock::now();
    engine.add_chain(delta);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    incremental_ms = std::min(incremental_ms, ms);
  }
  const double rel_err =
      std::abs(engine.result().routed_volume - reference.routed_volume) /
      std::max(reference.routed_volume, 1e-9);
  SWB_CHECK(rel_err <= 0.01);   // remove+add must not degrade the solution

  std::printf("\n-- (c) single-chain delta: incremental vs full re-solve --\n");
  std::printf("full DP re-solve %8.3f ms   incremental add_chain %8.3f ms   "
              "(%.1fx, volume drift %.2e)\n",
              full_ms, incremental_ms, full_ms / incremental_ms, rel_err);
  session.add("incremental")
      .param("chains", static_cast<double>(m.chains().size()))
      .metric("full_resolve_ms", full_ms)
      .metric("incremental_ms", incremental_ms)
      .metric("speedup", full_ms / incremental_ms)
      .metric("routed_volume_rel_err", rel_err);
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig10_route_update"};
  // Two virtual sites joined by a fast local link (same-site split).
  net::Topology topo;
  const NodeId node_a = topo.add_node("A", 0, 0);
  const NodeId node_b = topo.add_node("B", 100, 0);
  topo.add_duplex_link(node_a, node_b, 1000.0, 0.5);

  model::NetworkModel m{std::move(topo)};
  const SiteId site_a = m.add_site(node_a, 1000.0, "A");
  const SiteId site_b = m.add_site(node_b, 1000.0, "B");
  const VnfId nat = m.add_vnf("nat", 1.0);
  const double kInstanceCapacity = 10.0;   // traffic units of NAT capacity
  m.deploy_vnf(nat, site_a, kInstanceCapacity);
  m.deploy_vnf(nat, site_b, kInstanceCapacity);

  core::Middleware mw{std::move(m)};
  const EdgeServiceId edge = mw.register_edge_service("edge");

  control::ChainSpec spec;
  spec.name = "nat-chain";
  spec.ingress_service = edge;
  spec.ingress_node = node_a;
  spec.egress_service = edge;
  spec.egress_node = node_b;
  spec.vnfs = {nat};
  spec.forward_traffic = 4.0;
  const auto created = mw.create_chain(spec);
  if (!created.ok()) {
    std::printf("chain creation failed: %s\n",
                created.error().to_string().c_str());
    return 1;
  }
  const ChainId chain = created->chain;

  std::printf("=== Figure 10: dynamic route addition ===\n\n");
  std::printf("chain created in %.0f ms (simulated control plane)\n",
              sim::to_ms(created->elapsed()));

  // ---- throughput timeline ------------------------------------------
  // Each second, 50 new connections arrive, each demanding 0.4 units:
  // 20 units/s offered against 10 units of single-instance capacity.
  // The new route is requested at t = 10 s.
  constexpr int kSeconds = 20;
  constexpr int kFlowsPerSecond = 50;
  constexpr double kPerFlowDemand = 0.4;
  auto& elements = mw.deployment().elements();

  std::printf("\n-- (b) offered 20.0 units/s; instance capacity %.0f --\n",
              kInstanceCapacity);
  std::printf("%6s %12s %12s %12s %14s\n", "t(s)", "via-A", "via-B", "total",
              "update");

  std::uint32_t next_flow = 0;
  double update_ms = 0.0;
  for (int second = 0; second < kSeconds; ++second) {
    if (second == 10) {
      const auto added = mw.add_route(chain, {site_b});
      if (!added.ok()) {
        std::printf("route addition failed: %s\n",
                    added.error().to_string().c_str());
        return 1;
      }
      update_ms = sim::to_ms(added->elapsed());
    }

    // New connections of this interval pick routes via the current rules.
    std::map<std::uint32_t, int> flows_at_site;
    for (int f = 0; f < kFlowsPerSecond; ++f) {
      const auto walk = mw.send(chain, flow_tuple(next_flow++));
      if (!walk.delivered) continue;
      for (const auto instance : walk.vnf_instances()) {
        flows_at_site[elements.info(instance).site.value()]++;
      }
    }
    const double demand_a = flows_at_site[site_a.value()] * kPerFlowDemand;
    const double demand_b = flows_at_site[site_b.value()] * kPerFlowDemand;
    const double tput_a = std::min(demand_a, kInstanceCapacity);
    const double tput_b = std::min(demand_b, kInstanceCapacity);
    const std::string note =
        second == 10
            ? "+route (" + std::to_string(static_cast<int>(update_ms)) + " ms)"
            : "";
    std::printf("%6d %12.1f %12.1f %12.1f %14s\n", second, tput_a, tput_b,
                tput_a + tput_b, note.c_str());
  }

  const auto& record = mw.chain_record(chain);
  std::printf("\n-- (a) route weights after update --\n");
  for (const auto& route : record.routes) {
    std::printf("route %u via site %u: weight %.2f\n", route.id.value(),
                route.vnf_sites[0].value(), route.weight);
  }
  session.add("route_update")
      .metric("chain_create_ms", sim::to_ms(created->elapsed()))
      .metric("route_update_ms", update_ms);

  bench_incremental_resolve(session);

  std::printf(
      "\nroute update completed in %.0f ms (paper prototype: 595 ms);\n"
      "throughput doubles after the update and load splits evenly.\n",
      update_ms);
  return 0;
}
