// Figure 13: SB-DP ablations and capacity planning.
//
// Paper findings:
//   (a) SB-DP beats DP-LATENCY (latency-only cost) by up to 6x and ONEHOP
//       (per-hop greedy with the full cost) by up to 2.3x in throughput;
//       DP-LATENCY catches up only at coverage >= 0.75;
//   (b) LP-planned cloud capacity placement sustains up to 22% more
//       throughput than spreading the same budget uniformly;
//   (c) Switchboard's VNF placement hints give up to 27% lower latency
//       than adding the same number of sites at random.
#include <cstdio>

#include "bench_json.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;

model::ScenarioParams dp_params() {
  model::ScenarioParams params;
  params.topology.core_count = 6;
  params.topology.access_per_core = 2;   // 18 nodes
  params.vnf_count = 12;
  params.chain_count = 80;
  params.total_chain_traffic = 2000.0;
  params.site_capacity = 900.0;
  params.seed = 77;
  return params;
}

model::ScenarioParams lp_params() {
  model::ScenarioParams params;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;   // 8 nodes (LP-friendly)
  // Fat links + thin sites: compute is the binding resource, which is the
  // regime where capacity *placement* matters (Fig. 13b).
  params.topology.core_link_capacity = 400.0;
  params.topology.access_link_capacity = 250.0;
  params.background_ratio = 0.05;
  params.vnf_count = 6;
  params.chain_count = 15;
  params.total_chain_traffic = 250.0;
  params.site_capacity = 120.0;
  params.coverage = 0.5;
  params.seed = 31;
  return params;
}

double dp_throughput(const model::NetworkModel& m, const te::DpOptions& options) {
  const te::DpResult result = te::solve_dp_routing(m, options);
  return te::evaluate(m, result.routing).feasible_throughput;
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig13_ablation_planning"};
  std::printf("=== Figure 13: DP ablations and capacity planning ===\n");

  // ---- (a) SB-DP vs DP-LATENCY vs ONEHOP ------------------------------
  std::printf("\n-- (a) throughput of SB-DP cost/holism ablations --\n");
  std::printf("%10s %12s %14s %12s %10s %10s\n", "coverage", "SB-DP",
              "DP-LATENCY", "ONEHOP", "vs-lat", "vs-1hop");
  for (const double coverage : {0.25, 0.5, 0.75, 1.0}) {
    model::ScenarioParams params = dp_params();
    params.chain_count = session.scaled(params.chain_count, 4, 10);
    params.coverage = coverage;
    const model::NetworkModel m = model::make_scenario(params);

    const double full = dp_throughput(m, {});
    te::DpOptions latency_only;
    latency_only.use_utilization_costs = false;
    const double dp_latency = dp_throughput(m, latency_only);
    te::DpOptions one_hop;
    one_hop.per_hop = true;
    const double onehop = dp_throughput(m, one_hop);

    std::printf("%10.2f %12.1f %14.1f %12.1f %9.2fx %9.2fx\n", coverage, full,
                dp_latency, onehop,
                dp_latency > 0 ? full / dp_latency : 0.0,
                onehop > 0 ? full / onehop : 0.0);
    session.add("dp_ablation")
        .param("coverage", coverage)
        .metric("sb_dp", full)
        .metric("dp_latency_only", dp_latency)
        .metric("onehop", onehop);
  }

  // ---- (b) cloud capacity planning ------------------------------------
  std::printf("\n-- (b) cloud capacity planning: LP-planned vs uniform --\n");
  std::printf("%12s %14s %14s %10s\n", "budget", "planned-alpha",
              "uniform-alpha", "gain");
  for (const double budget_fraction : {0.1, 0.25, 0.5}) {
    const model::ScenarioParams params = lp_params();
    const model::NetworkModel planned_model = model::make_scenario(params);
    const double total_capacity =
        params.site_capacity *
        static_cast<double>(planned_model.sites().size());
    const double budget = budget_fraction * total_capacity;

    const te::CloudPlanResult planned =
        te::plan_cloud_capacity(planned_model, budget);

    model::NetworkModel uniform_model = model::make_scenario(params);
    te::apply_capacity_increase(uniform_model,
                                te::uniform_allocation(uniform_model, budget));
    const te::CloudPlanResult uniform =
        te::plan_cloud_capacity(uniform_model, 0.0);

    if (planned.status == lp::SolveStatus::kOptimal &&
        uniform.status == lp::SolveStatus::kOptimal && uniform.alpha > 0) {
      std::printf("%11.0f%% %14.3f %14.3f %9.1f%%\n", budget_fraction * 100.0,
                  planned.alpha, uniform.alpha,
                  100.0 * (planned.alpha / uniform.alpha - 1.0));
      session.add("capacity_planning")
          .param("budget_fraction", budget_fraction)
          .metric("planned_alpha", planned.alpha)
          .metric("uniform_alpha", uniform.alpha);
    } else {
      std::printf("%11.0f%% %14s %14s\n", budget_fraction * 100.0,
                  lp::to_string(planned.status), lp::to_string(uniform.status));
    }
  }

  // ---- (c) VNF placement hints ----------------------------------------
  std::printf("\n-- (c) VNF placement: greedy hints vs random sites --\n");
  model::ScenarioParams placement_params = lp_params();
  placement_params.coverage = 0.25;
  placement_params.chain_count = 25;

  model::NetworkModel greedy_model = model::make_scenario(placement_params);
  te::VnfPlacementOptions options;
  options.new_sites_per_vnf = 1;
  const te::VnfPlacementResult greedy =
      te::plan_vnf_placement_greedy(greedy_model, options);

  double random_after = 0.0;
  const int kTrials = 5;
  for (int t = 0; t < kTrials; ++t) {
    model::NetworkModel random_model = model::make_scenario(placement_params);
    Rng rng{static_cast<std::uint64_t>(500 + t)};
    random_after +=
        te::plan_vnf_placement_random(random_model, options, rng)
            .latency_after_ms;
  }
  random_after /= kTrials;

  std::printf("%-28s %12s\n", "placement", "latency-ms");
  std::printf("%-28s %12.2f\n", "before (no new sites)",
              greedy.latency_before_ms);
  std::printf("%-28s %12.2f\n", "switchboard greedy hints",
              greedy.latency_after_ms);
  std::printf("%-28s %12.2f\n", "random sites (mean of 5)", random_after);
  std::printf("greedy vs random: %.1f%% lower latency\n",
              100.0 * (1.0 - greedy.latency_after_ms / random_after));
  session.add("vnf_placement")
      .metric("latency_before_ms", greedy.latency_before_ms)
      .metric("greedy_latency_ms", greedy.latency_after_ms)
      .metric("random_latency_ms", random_after);

  std::printf(
      "\nPaper: SB-DP up to 6x over DP-LATENCY and 2.3x over ONEHOP; planned\n"
      "capacity +22%% throughput over uniform; placement hints -27%% latency\n"
      "vs random.\n");
  return 0;
}
