// Extension: optimizer runtime scaling (Section 7.3's operational claim).
//
// The paper reports SB-LP taking up to 3 hours on the tier-1 dataset while
// SB-DP "should perform well in practice and scale to larger topologies" —
// hence DP as the primary scheme with LP refining in the background.  This
// benchmark measures both solvers' wall-clock across instance sizes, up to
// the paper's full scale of 10,000 chains for SB-DP, plus the LP engine's
// own scaling story: sparse vs the dense reference, SB-LP at 1,000+
// chains, and warm-started re-solves vs cold ones.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_json.hpp"
#include "common/check.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

model::NetworkModel make_lp_instance(std::size_t chains) {
  model::ScenarioParams params;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;
  params.vnf_count = 6;
  params.chain_count = chains;
  params.coverage = 0.5;
  params.total_chain_traffic = 150.0;
  params.seed = 3;
  return model::make_scenario(params);
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_ext_scale"};
  std::printf("=== Extension: optimizer runtime scaling ===\n");

  // ---- SB-LP vs SB-DP on growing joint instances ----------------------
  std::printf("\n-- SB-LP vs SB-DP wall-clock (same instance) --\n");
  std::printf("%8s %8s %12s %12s %14s\n", "chains", "sites", "LP sec",
              "DP sec", "LP/DP");
  for (const std::size_t chains_full : {5, 10, 20, 40}) {
    const std::size_t chains = session.scaled(chains_full, 4, 5);
    const model::NetworkModel m = make_lp_instance(chains);

    auto start = std::chrono::steady_clock::now();
    te::LpRoutingOptions options;
    options.objective = te::LpObjective::kMaxThroughput;
    const te::LpRoutingResult lp = te::solve_lp_routing(m, options);
    const double lp_sec = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const te::DpResult dp = te::solve_dp_routing(m);
    const double dp_sec = seconds_since(start);
    (void)dp;

    std::printf("%8zu %8zu %12.3f %12.4f %13.0fx%s\n", chains,
                m.sites().size(), lp_sec, dp_sec, lp_sec / dp_sec,
                lp.optimal() ? "" : "  (LP not optimal)");
    session.add("lp_vs_dp_runtime")
        .param("chains", static_cast<double>(chains))
        .metric("lp_sec", lp_sec)
        .metric("dp_sec", dp_sec);
  }

  // ---- SB-DP at the paper's full scale ---------------------------------
  std::printf("\n-- SB-DP at paper scale (LP would take hours) --\n");
  std::printf("%8s %8s %8s %12s %16s %12s\n", "chains", "sites", "vnfs",
              "DP sec", "throughput", "latency ms");
  for (const std::size_t chains_full : {1000, 5000, 10000}) {
    const std::size_t chains = session.scaled(chains_full, 64, 50);
    model::ScenarioParams params;
    params.topology.core_count = 8;
    params.topology.access_per_core = 3;   // 32 nodes, paper-like scale
    params.vnf_count = 100;                // the paper's catalog size
    params.chain_count = chains;
    params.coverage = 0.5;
    params.total_chain_traffic = 4000.0;
    params.site_capacity = 2000.0;
    params.seed = 3;
    const model::NetworkModel m = model::make_scenario(params);

    const auto start = std::chrono::steady_clock::now();
    const te::DpResult dp = te::solve_dp_routing(m);
    const double dp_sec = seconds_since(start);
    const te::RoutingMetrics metrics = te::evaluate(m, dp.routing);
    std::printf("%8zu %8zu %8zu %12.2f %16.1f %12.2f\n", chains,
                m.sites().size(), m.vnfs().size(), dp_sec,
                metrics.feasible_throughput, metrics.mean_latency_ms);
    session.add("dp_paper_scale")
        .param("chains", static_cast<double>(chains))
        .metric("dp_sec", dp_sec)
        .metric("throughput", metrics.feasible_throughput)
        .metric("latency_ms", metrics.mean_latency_ms);
  }
  // ---- sparse engine vs dense reference on the same LP -----------------
  // Both engines solve the identical formulation; status parity and
  // objective agreement (1e-6 relative) are asserted in-binary so the
  // nightly run doubles as a large-instance correctness check.
  std::printf("\n-- sparse simplex vs dense reference (same LP) --\n");
  std::printf("%8s %12s %12s %10s\n", "chains", "sparse sec", "dense sec",
              "speedup");
  for (const std::size_t chains_full : {5, 10, 20, 40}) {
    const std::size_t chains = session.scaled(chains_full, 4, 5);
    const model::NetworkModel m = make_lp_instance(chains);
    te::LpRoutingOptions options;
    options.objective = te::LpObjective::kMaxThroughput;

    auto start = std::chrono::steady_clock::now();
    const te::LpRoutingResult sparse = te::solve_lp_routing(m, options);
    const double sparse_sec = seconds_since(start);

    options.simplex.algorithm = lp::SimplexAlgorithm::kDenseReference;
    start = std::chrono::steady_clock::now();
    const te::LpRoutingResult dense = te::solve_lp_routing(m, options);
    const double dense_sec = seconds_since(start);

    SWB_CHECK(sparse.status == dense.status)
        << "sparse/dense status divergence at " << chains << " chains";
    if (sparse.optimal()) {
      SWB_CHECK(std::abs(sparse.objective - dense.objective) <=
                1e-6 * (1.0 + std::abs(dense.objective)))
          << "sparse=" << sparse.objective << " dense=" << dense.objective;
    }
    std::printf("%8zu %12.4f %12.4f %9.1fx\n", chains, sparse_sec, dense_sec,
                dense_sec / sparse_sec);
    session.add("lp_sparse_vs_dense")
        .param("chains", static_cast<double>(chains))
        .metric("sparse_sec", sparse_sec)
        .metric("dense_sec", dense_sec)
        .metric("speedup", dense_sec / sparse_sec)
        .metric("status_optimal", sparse.optimal() ? 1.0 : 0.0);
  }

  // ---- SB-LP alone at large chain counts (sparse engine only) ----------
  std::printf("\n-- SB-LP large-scale (sparse engine) --\n");
  std::printf("%8s %12s %10s %12s %10s\n", "chains", "LP sec", "iters",
              "refactors", "fill nnz");
  for (const std::size_t chains_full : {200, 1000}) {
    const std::size_t chains = session.scaled(chains_full, 50, 4);
    const model::NetworkModel m = make_lp_instance(chains);
    te::LpRoutingOptions options;
    options.objective = te::LpObjective::kMaxThroughput;

    const auto start = std::chrono::steady_clock::now();
    const te::LpRoutingResult r = te::solve_lp_routing(m, options);
    const double lp_sec = seconds_since(start);
    SWB_CHECK(r.optimal()) << "large-scale SB-LP must solve to optimality";

    std::printf("%8zu %12.3f %10zu %12zu %10zu\n", chains, lp_sec,
                r.stats.iterations(), r.stats.refactorizations,
                r.stats.basis_nonzeros);
    session.add("lp_large_scale")
        .param("chains", static_cast<double>(chains))
        .metric("lp_sec", lp_sec)
        .metric("status_optimal", 1.0)
        .metric("objective", r.objective)
        .metric("iterations", static_cast<double>(r.stats.iterations()))
        .metric("refactorizations",
                static_cast<double>(r.stats.refactorizations))
        .metric("basis_nonzeros",
                static_cast<double>(r.stats.basis_nonzeros));
  }

  // ---- warm-started background refinement vs cold re-solve -------------
  // The paper's operational split keeps SB-LP refining in the background;
  // after a small state change the warm re-solve from the previous basis
  // should be far cheaper than solving from scratch.
  std::printf("\n-- warm vs cold SB-LP re-solve (one rhs perturbation) --\n");
  std::printf("%8s %12s %12s %10s %12s\n", "chains", "cold sec", "warm sec",
              "speedup", "warm iters");
  for (const std::size_t chains_full : {20, 40}) {
    const std::size_t chains = session.scaled(chains_full, 4, 5);
    model::NetworkModel m = make_lp_instance(chains);
    te::TeEngine engine{m};
    te::LpRoutingOptions options;
    options.objective = te::LpObjective::kMaxThroughput;

    // Cold refinement establishes the basis.
    engine.refine_with_lp(options);
    SWB_CHECK(engine.lp_refinement().optimal());

    // Perturb one link's background traffic: same LP shape, one rhs moves.
    const LinkId link{0};
    m.set_background_traffic(link, m.background_traffic(link) + 1.0);

    auto start = std::chrono::steady_clock::now();
    const te::LpRoutingResult cold = te::solve_lp_routing(m, options);
    const double cold_sec = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const te::LpRoutingResult& warm = engine.refine_with_lp(options);
    const double warm_sec = seconds_since(start);

    SWB_CHECK(cold.status == warm.status);
    SWB_CHECK(warm.stats.warm_started)
        << "warm refinement must reuse the previous basis";
    if (cold.optimal()) {
      SWB_CHECK(std::abs(cold.objective - warm.objective) <=
                1e-6 * (1.0 + std::abs(cold.objective)))
          << "cold=" << cold.objective << " warm=" << warm.objective;
    }
    std::printf("%8zu %12.4f %12.4f %9.1fx %12zu\n", chains, cold_sec,
                warm_sec, cold_sec / std::max(warm_sec, 1e-9),
                warm.stats.iterations());
    session.add("lp_warm_vs_cold")
        .param("chains", static_cast<double>(chains))
        .metric("cold_sec", cold_sec)
        .metric("warm_sec", warm_sec)
        .metric("speedup", cold_sec / std::max(warm_sec, 1e-9))
        .metric("warm_iterations",
                static_cast<double>(warm.stats.iterations()))
        .metric("cold_iterations",
                static_cast<double>(cold.stats.iterations()));
  }

  std::printf(
      "\nPaper: SB-LP ran for up to 3 hours on the tier-1 dataset; SB-DP's\n"
      "simple heuristic makes it usable as the primary online scheme.\n"
      "The sparse warm-startable engine is what makes background SB-LP\n"
      "refinement at 1,000+ chains practical in this reproduction.\n");
  return 0;
}
