// Extension: optimizer runtime scaling (Section 7.3's operational claim).
//
// The paper reports SB-LP taking up to 3 hours on the tier-1 dataset while
// SB-DP "should perform well in practice and scale to larger topologies" —
// hence DP as the primary scheme with LP refining in the background.  This
// benchmark measures both solvers' wall-clock across instance sizes, up to
// the paper's full scale of 10,000 chains for SB-DP.
#include <chrono>
#include <cstdio>

#include "bench_json.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_ext_scale"};
  std::printf("=== Extension: optimizer runtime scaling ===\n");

  // ---- SB-LP vs SB-DP on growing joint instances ----------------------
  std::printf("\n-- SB-LP vs SB-DP wall-clock (same instance) --\n");
  std::printf("%8s %8s %12s %12s %14s\n", "chains", "sites", "LP sec",
              "DP sec", "LP/DP");
  for (const std::size_t chains_full : {5, 10, 20, 40}) {
    const std::size_t chains = session.scaled(chains_full, 4, 5);
    model::ScenarioParams params;
    params.topology.core_count = 4;
    params.topology.access_per_core = 1;
    params.vnf_count = 6;
    params.chain_count = chains;
    params.coverage = 0.5;
    params.total_chain_traffic = 150.0;
    params.seed = 3;
    const model::NetworkModel m = model::make_scenario(params);

    auto start = std::chrono::steady_clock::now();
    te::LpRoutingOptions options;
    options.objective = te::LpObjective::kMaxThroughput;
    const te::LpRoutingResult lp = te::solve_lp_routing(m, options);
    const double lp_sec = seconds_since(start);

    start = std::chrono::steady_clock::now();
    const te::DpResult dp = te::solve_dp_routing(m);
    const double dp_sec = seconds_since(start);
    (void)dp;

    std::printf("%8zu %8zu %12.3f %12.4f %13.0fx%s\n", chains,
                m.sites().size(), lp_sec, dp_sec, lp_sec / dp_sec,
                lp.optimal() ? "" : "  (LP not optimal)");
    session.add("lp_vs_dp_runtime")
        .param("chains", static_cast<double>(chains))
        .metric("lp_sec", lp_sec)
        .metric("dp_sec", dp_sec);
  }

  // ---- SB-DP at the paper's full scale ---------------------------------
  std::printf("\n-- SB-DP at paper scale (LP would take hours) --\n");
  std::printf("%8s %8s %8s %12s %16s %12s\n", "chains", "sites", "vnfs",
              "DP sec", "throughput", "latency ms");
  for (const std::size_t chains_full : {1000, 5000, 10000}) {
    const std::size_t chains = session.scaled(chains_full, 64, 50);
    model::ScenarioParams params;
    params.topology.core_count = 8;
    params.topology.access_per_core = 3;   // 32 nodes, paper-like scale
    params.vnf_count = 100;                // the paper's catalog size
    params.chain_count = chains;
    params.coverage = 0.5;
    params.total_chain_traffic = 4000.0;
    params.site_capacity = 2000.0;
    params.seed = 3;
    const model::NetworkModel m = model::make_scenario(params);

    const auto start = std::chrono::steady_clock::now();
    const te::DpResult dp = te::solve_dp_routing(m);
    const double dp_sec = seconds_since(start);
    const te::RoutingMetrics metrics = te::evaluate(m, dp.routing);
    std::printf("%8zu %8zu %8zu %12.2f %16.1f %12.2f\n", chains,
                m.sites().size(), m.vnfs().size(), dp_sec,
                metrics.feasible_throughput, metrics.mean_latency_ms);
    session.add("dp_paper_scale")
        .param("chains", static_cast<double>(chains))
        .metric("dp_sec", dp_sec)
        .metric("throughput", metrics.feasible_throughput)
        .metric("latency_ms", metrics.mean_latency_ms);
  }
  std::printf(
      "\nPaper: SB-LP ran for up to 3 hours on the tier-1 dataset; SB-DP's\n"
      "simple heuristic makes it usable as the primary online scheme.\n");
  return 0;
}
