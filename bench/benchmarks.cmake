# Benchmark targets are defined from the root so that build/bench/ contains
# ONLY the benchmark executables (the standard experiment runner iterates
# over build/bench/*).

function(sb_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE switchboard benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

sb_add_bench(bench_fig7_ovs_overhead)
sb_add_bench(bench_fig8_forwarder_scaling)
sb_add_bench(bench_fig9_message_bus)
sb_add_bench(bench_fig10_route_update)
sb_add_bench(bench_fig11_e2e_comparison)
sb_add_bench(bench_fig12_te_comparison)
sb_add_bench(bench_fig13_ablation_planning)
sb_add_bench(bench_fig13_recovery)
sb_add_bench(bench_fig14_decentralization)
sb_add_bench(bench_table2_edge_addition)
sb_add_bench(bench_table3_shared_cache)
sb_add_bench(bench_ablation_dataplane)
sb_add_bench(bench_ext_dynamics)
sb_add_bench(bench_ext_scale)
