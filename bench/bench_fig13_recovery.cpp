// Recovery-time experiment: VNF-pool failure under the heartbeat
// detector, as a function of the detector period.
//
// Scenario: chains spanning a 4-node line, firewall pools at the two
// middle sites.  At a scripted time every instance of the pool carrying
// the chains crashes.  Measured per detector period, all in *simulated*
// time (machine-independent for a fixed fault seed, so the headline
// reroute metrics are CI-gated):
//   - detection_ms: crash -> first element-down report at the detector;
//   - reroute_ms:   crash -> every affected chain active again with all
//                   routes off the dead pool;
//   - packets_lost / packets_sent: a fixed-cadence probe stream during
//     the failover window (lost = dropped, dead-pinned, or the chain was
//     between retirement and replacement activation);
//   - routes_rerouted / rerouted_volume: recovery work actually done.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/check.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;
using core::Middleware;

dataplane::FiveTuple flow_tuple(std::uint32_t chain, std::uint32_t k) {
  return dataplane::FiveTuple{0x0A300000u + chain, 0xC0A80003u + k, 9000,
                              443, 6};
}

struct RecoveryRun {
  double detection_ms{-1.0};
  double reroute_ms{-1.0};
  double routes_rerouted{0.0};
  double rerouted_volume{0.0};
  double packets_sent{0.0};
  double packets_lost{0.0};
};

RecoveryRun run_recovery(double period_ms, std::size_t chain_count) {
  model::NetworkModel m{net::make_line_topology(4, 400.0, 5.0)};
  m.add_site(NodeId{0}, 400.0, "A");
  m.add_site(NodeId{1}, 400.0, "X");
  m.add_site(NodeId{2}, 400.0, "Y");
  m.add_site(NodeId{3}, 400.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 400.0);
  m.deploy_vnf(fw, SiteId{2}, 400.0);

  core::DeploymentConfig config;
  config.fault_seed = 0x13FA17;
  config.detector.period = sim::from_ms(period_ms);
  config.detector.suspicion_threshold = 3;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();
  const EdgeServiceId edge = mw.register_edge_service("vpn");

  std::vector<ChainId> chains;
  for (std::size_t c = 0; c < chain_count; ++c) {
    control::ChainSpec spec;
    spec.name = "chain" + std::to_string(c);
    spec.ingress_service = edge;
    spec.egress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_node = NodeId{3};
    spec.vnfs = {fw};
    spec.forward_traffic = 1.0;
    spec.reverse_traffic = 0.5;
    const auto report = mw.create_chain(spec);
    SWB_CHECK(report.ok()) << report.error().to_string();
    chains.push_back(report->chain);
    // Pin one flow per chain so the failover drains real state.
    SWB_CHECK(mw.send(chains.back(), flow_tuple(
        static_cast<std::uint32_t>(c), 0)).delivered);
  }

  // Everything on the pool chain 0 uses dies; the other pool survives.
  const SiteId dead_site = mw.chain_record(chains[0]).routes[0].vnf_sites[0];
  RecoveryRun run;
  std::vector<ChainId> affected;
  for (const ChainId chain : chains) {
    const control::ChainRecord& record = mw.chain_record(chain);
    bool chain_affected = false;
    for (const control::RouteRecord& route : record.routes) {
      bool doomed = false;
      for (const SiteId site : route.vnf_sites) doomed |= site == dead_site;
      if (!doomed) continue;
      chain_affected = true;
      run.routes_rerouted += 1.0;
      run.rerouted_volume += route.weight *
          (record.spec.forward_traffic + record.spec.reverse_traffic);
    }
    if (chain_affected) affected.push_back(chain);
  }

  dep.enable_recovery();
  sim::Simulator& sim = dep.simulator();
  const sim::SimTime crash_at = sim.now() + sim::from_ms(100.0);
  for (const dataplane::ElementId id :
       dep.elements().vnf_instances_at(dead_site, fw)) {
    dep.fault_injector().crash_at(crash_at, "element:" + std::to_string(id));
  }

  // 1 ms probes: first detector report, then full reroute convergence.
  sim::SimTime detect_at = -1;
  sim::SimTime reroute_at = -1;
  const sim::SimTime horizon = crash_at + sim::from_ms(3000.0);
  for (sim::SimTime t = crash_at; t <= horizon; t += sim::from_ms(1.0)) {
    sim.schedule_at(t, [&, dead_site] {
      if (detect_at < 0 &&
          dep.failure_detector().element_failures_reported() > 0) {
        detect_at = sim.now();
      }
      if (reroute_at >= 0) return;
      for (const ChainId chain : affected) {
        const control::ChainRecord& record = mw.chain_record(chain);
        if (!record.active || record.routes.empty()) return;
        for (const control::RouteRecord& route : record.routes) {
          for (const SiteId site : route.vnf_sites) {
            if (site == dead_site) return;
          }
        }
      }
      reroute_at = sim.now();
    });
  }

  // 5 ms probe stream per chain across the failover window.
  const sim::SimTime stream_end = crash_at + sim::from_ms(1500.0);
  std::uint32_t k = 1;
  for (sim::SimTime t = crash_at; t <= stream_end;
       t += sim::from_ms(5.0), ++k) {
    for (std::size_t c = 0; c < chains.size(); ++c) {
      sim.schedule_at(t, [&, c, k] {
        const auto walk = mw.send(
            chains[c], flow_tuple(static_cast<std::uint32_t>(c), k));
        run.packets_sent += 1.0;
        if (!walk.delivered) run.packets_lost += 1.0;
      });
    }
  }

  sim.run_until(horizon + sim::from_ms(1.0));
  dep.stop_recovery();

  SWB_CHECK(detect_at >= 0) << "failure never detected";
  SWB_CHECK(reroute_at >= 0) << "chains never converged off the dead pool";
  run.detection_ms = sim::to_ms(detect_at - crash_at);
  run.reroute_ms = sim::to_ms(reroute_at - crash_at);
  return run;
}

// --- controller restart (DESIGN.md §13) ----------------------------------
// Crash-with-amnesia on the Global Switchboard: recovery replays the
// journal (snapshot + log), re-publishes every route under the new epoch,
// and reconciles participants.  Measured per (chain count, snapshot
// interval), all in simulated time:
//   - replay_records / replay_ms: journal size at crash time and the
//     simulated replay cost it charges;
//   - recovery_ms: restore -> every Local Switchboard fenced at the new
//     epoch and every chain active again;
//   - reconciliation_messages: sweep + re-publish traffic of the fresh
//     incarnation.

struct RestartRun {
  double replay_records{0.0};
  double replay_ms{0.0};
  double recovery_ms{-1.0};
  double reconciliation_messages{0.0};
  double snapshots_taken{0.0};
};

RestartRun run_restart(std::size_t chain_count,
                       std::uint32_t snapshot_interval,
                       sim::Duration replay_cost_per_record =
                           control::JournalConfig{}.replay_cost_per_record) {
  model::NetworkModel m{net::make_line_topology(4, 400.0, 5.0)};
  m.add_site(NodeId{0}, 400.0, "A");
  m.add_site(NodeId{1}, 400.0, "X");
  m.add_site(NodeId{2}, 400.0, "Y");
  m.add_site(NodeId{3}, 400.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 400.0);
  m.deploy_vnf(fw, SiteId{2}, 400.0);
  const std::size_t site_count = m.sites().size();

  core::DeploymentConfig config;
  config.fault_seed = 0x13FA17;
  config.durable_controller = true;
  config.journal.snapshot_interval = snapshot_interval;
  config.journal.replay_cost_per_record = replay_cost_per_record;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();
  const EdgeServiceId edge = mw.register_edge_service("vpn");

  std::vector<ChainId> chains;
  for (std::size_t c = 0; c < chain_count; ++c) {
    control::ChainSpec spec;
    spec.name = "chain" + std::to_string(c);
    spec.ingress_service = edge;
    spec.egress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_node = NodeId{3};
    spec.vnfs = {fw};
    spec.forward_traffic = 1.0;
    spec.reverse_traffic = 0.5;
    const auto report = mw.create_chain(spec);
    SWB_CHECK(report.ok()) << report.error().to_string();
    chains.push_back(report->chain);
  }

  dep.register_fault_targets();
  sim::Simulator& sim = dep.simulator();
  const sim::SimTime restore_at = sim.now() + sim::from_ms(100.0);
  dep.fault_injector().crash_at(sim.now() + sim::from_ms(50.0),
                                "controller:global");
  dep.fault_injector().restore_at(restore_at, "controller:global");

  // 1 ms probes: recovery is complete when every Local Switchboard's route
  // fence reached the new incarnation's epoch (the re-publish landed
  // everywhere) and every chain is active again.
  sim::SimTime recovered_at = -1;
  const sim::SimTime horizon = restore_at + sim::from_ms(3000.0);
  for (sim::SimTime t = restore_at; t <= horizon; t += sim::from_ms(1.0)) {
    sim.schedule_at(t, [&] {
      if (recovered_at >= 0) return;
      const std::uint64_t epoch = dep.global().epoch();
      if (epoch < 2) return;
      for (std::size_t s = 0; s < site_count; ++s) {
        if (dep.local(SiteId{static_cast<std::uint32_t>(s)})
                .highest_route_epoch() < epoch) {
          return;
        }
      }
      for (const ChainId chain : chains) {
        if (!mw.chain_record(chain).active) return;
      }
      recovered_at = sim.now();
    });
  }

  sim.run_until(horizon + sim::from_ms(1.0));
  SWB_CHECK(recovered_at >= 0) << "controller never finished recovering";
  for (const ChainId chain : chains) {
    SWB_CHECK(mw.send(chain, flow_tuple(chain.value(), 7)).delivered);
  }

  const control::ColdStartReport& report = dep.global().last_cold_start();
  RestartRun run;
  run.replay_records = static_cast<double>(report.replayed_records);
  run.replay_ms = sim::to_ms(report.replay_cost);
  run.recovery_ms = sim::to_ms(recovered_at - restore_at);
  run.reconciliation_messages =
      static_cast<double>(report.reconciliation_messages);
  run.snapshots_taken =
      static_cast<double>(dep.state_journal()->snapshots_taken());
  return run;
}

// --- replicated failover (DESIGN.md §18) ---------------------------------
// Hot failover vs cold restart at matched journal length (snapshots off,
// so the journal holds every record of the run).  `hot`: a 3-replica
// group loses its leader for good; detection elects the freshest hot
// standby, which promotes with ZERO replay charged and re-publishes.
// `cold`: the single durable controller restores from disk and replays
// the identical journal.  Both windows start where the recovery work
// starts (election / restore) — detection latency is reported separately —
// so the difference is exactly the replay cost the hot standby never pays.

struct FailoverRun {
  double detection_ms{-1.0};     // crash -> election fired
  double hot_failover_ms{-1.0};  // election -> fences + chains recovered
  double cold_recovery_ms{-1.0}; // restore -> same condition, cold path
  double records_streamed{0.0};
  double quorum_ack_ms{0.0};
  double elections{0.0};
};

FailoverRun run_failover(std::size_t chain_count,
                         sim::Duration replay_cost_per_record) {
  model::NetworkModel m{net::make_line_topology(4, 400.0, 5.0)};
  m.add_site(NodeId{0}, 400.0, "A");
  m.add_site(NodeId{1}, 400.0, "X");
  m.add_site(NodeId{2}, 400.0, "Y");
  m.add_site(NodeId{3}, 400.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 400.0);
  m.deploy_vnf(fw, SiteId{2}, 400.0);
  const std::size_t site_count = m.sites().size();

  core::DeploymentConfig config;
  config.fault_seed = 0x13FA17;
  config.reliable_bus = true;
  config.replication.journal.snapshot_interval = 0;   // keep every record
  config.replication.journal.replay_cost_per_record = replay_cost_per_record;
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();
  dep.enable_replication(3);
  control::ReplicaGroup& group = *dep.replica_group();
  const EdgeServiceId edge = mw.register_edge_service("vpn");

  std::vector<ChainId> chains;
  for (std::size_t c = 0; c < chain_count; ++c) {
    control::ChainSpec spec;
    spec.name = "chain" + std::to_string(c);
    spec.ingress_service = edge;
    spec.egress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_node = NodeId{3};
    spec.vnfs = {fw};
    spec.forward_traffic = 1.0;
    spec.reverse_traffic = 0.5;
    const auto report = mw.create_chain(spec);
    SWB_CHECK(report.ok()) << report.error().to_string();
    chains.push_back(report->chain);
  }

  sim::Simulator& sim = dep.simulator();
  const sim::SimTime crash_at = sim.now() + sim::from_ms(50.0);
  dep.fault_injector().crash_at(crash_at, "controller:leader");

  // Same recovered condition as the cold series: new epoch fenced at every
  // Local Switchboard and every chain active again.
  sim::SimTime recovered_at = -1;
  const sim::SimTime horizon = crash_at + sim::from_ms(3000.0);
  for (sim::SimTime t = crash_at; t <= horizon; t += sim::from_ms(1.0)) {
    sim.schedule_at(t, [&] {
      if (recovered_at >= 0) return;
      const std::uint64_t epoch = dep.global().epoch();
      if (epoch < 2) return;
      for (std::size_t s = 0; s < site_count; ++s) {
        if (dep.local(SiteId{static_cast<std::uint32_t>(s)})
                .highest_route_epoch() < epoch) {
          return;
        }
      }
      for (const ChainId chain : chains) {
        if (!mw.chain_record(chain).active) return;
      }
      recovered_at = sim.now();
    });
  }

  sim.run_until(horizon + sim::from_ms(1.0));
  dep.stop_replication();
  SWB_CHECK(recovered_at >= 0) << "failover never finished recovering";
  SWB_CHECK(group.elections() == 1) << "expected exactly one election";
  SWB_CHECK(group.cold_restarts() == 0) << "hot path must not cold start";
  for (const ChainId chain : chains) {
    SWB_CHECK(mw.send(chain, flow_tuple(chain.value(), 7)).delivered);
  }
  group.verify_convergence();

  // Election time from the deterministic trace: "t=<us>;winner=...".
  long long election_us = -1;
  SWB_CHECK(std::sscanf(group.election_string().c_str(), "t=%lld",
                        &election_us) == 1);
  SWB_CHECK(election_us >= crash_at);

  FailoverRun run;
  run.detection_ms = sim::to_ms(election_us - crash_at);
  run.hot_failover_ms = sim::to_ms(recovered_at - election_us);
  run.records_streamed = static_cast<double>(group.records_streamed());
  run.quorum_ack_ms = group.mean_quorum_ack_ms();
  run.elections = static_cast<double>(group.elections());

  // The cold contrast: one durable controller, the identical chain load
  // and journal economics, restored from disk after a scripted outage.
  const RestartRun cold = run_restart(chain_count, /*snapshot_interval=*/0,
                                      replay_cost_per_record);
  run.cold_recovery_ms = cold.recovery_ms;

  // The §18 acceptance property, checked in-binary on every run: the hot
  // window must beat the cold window, because the standby replays nothing.
  SWB_CHECK(run.hot_failover_ms < run.cold_recovery_ms)
      << "hot " << run.hot_failover_ms << " ms vs cold "
      << run.cold_recovery_ms << " ms";
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig13_recovery"};
  const std::size_t kChains = 6;

  std::printf("=== Recovery: detection + reroute latency vs beat period ===\n");
  std::printf("%-12s %14s %12s %16s %18s %14s\n", "period-ms", "detect-ms",
              "reroute-ms", "routes-rerouted", "rerouted-volume", "pkt-loss");

  for (const double period_ms : {25.0, 50.0, 100.0}) {
    const RecoveryRun run = run_recovery(period_ms, kChains);
    std::printf("%-12.0f %14.1f %12.1f %16.0f %18.2f %10.0f/%.0f\n",
                period_ms, run.detection_ms, run.reroute_ms,
                run.routes_rerouted, run.rerouted_volume, run.packets_lost,
                run.packets_sent);
    session.add("recovery")
        .param("period_ms", period_ms)
        .param("chains", static_cast<double>(kChains))
        .metric("detection_ms", run.detection_ms)
        .metric("reroute_ms", run.reroute_ms)
        .metric("routes_rerouted", run.routes_rerouted)
        .metric("rerouted_volume", run.rerouted_volume)
        .metric("packets_sent", run.packets_sent)
        .metric("packets_lost", run.packets_lost);
  }

  std::printf(
      "\nDetection tracks the beat period (one beat carries the element\n"
      "report); reroute adds compute + 2PC + rule install on top.\n");

  std::printf(
      "\n=== Controller restart: journal replay + re-publish convergence ===\n");
  std::printf("%-8s %10s %16s %12s %14s %12s %12s\n", "chains", "snap-int",
              "replay-records", "replay-ms", "recovery-ms", "reconcile",
              "snapshots");
  struct RestartPoint {
    std::size_t chains;
    std::uint32_t snapshot_interval;
  };
  // Journal size scales with chain count; the snapshot interval trades
  // steady-state compaction work against replay length (0 = never
  // compact, the worst case).
  for (const RestartPoint point :
       {RestartPoint{2, 64}, RestartPoint{6, 64}, RestartPoint{12, 64},
        RestartPoint{6, 8}, RestartPoint{6, 0}}) {
    const RestartRun run =
        run_restart(point.chains, point.snapshot_interval);
    std::printf("%-8zu %10u %16.0f %12.2f %14.2f %12.0f %12.0f\n",
                point.chains, point.snapshot_interval, run.replay_records,
                run.replay_ms, run.recovery_ms, run.reconciliation_messages,
                run.snapshots_taken);
    session.add("controller_restart")
        .param("chains", static_cast<double>(point.chains))
        .param("snapshot_interval",
               static_cast<double>(point.snapshot_interval))
        .metric("replay_records", run.replay_records)
        .metric("replay_ms", run.replay_ms)
        .metric("recovery_ms", run.recovery_ms)
        .metric("reconciliation_messages", run.reconciliation_messages)
        .metric("snapshots_taken", run.snapshots_taken);
  }

  std::printf(
      "\nReplay cost scales with journal records; compaction caps it.\n"
      "Recovery adds the epoch-fenced re-publish round trip on top.\n");

  std::printf(
      "\n=== Replicated failover: hot standby vs cold restart ===\n");
  std::printf("%-8s %12s %16s %16s %10s %12s %14s\n", "chains", "detect-ms",
              "hot-failover-ms", "cold-recover-ms", "streamed", "elections",
              "quorum-ack-ms");
  {
    // Replay priced high enough that the cold window is dominated by it:
    // the hot/cold gap is the replay bill the standby never pays.
    const std::size_t kFailoverChains = 12;
    const FailoverRun run =
        run_failover(kFailoverChains, sim::from_ms(0.2));
    std::printf("%-8zu %12.1f %16.2f %16.2f %10.0f %12.0f %14.2f\n",
                kFailoverChains, run.detection_ms, run.hot_failover_ms,
                run.cold_recovery_ms, run.records_streamed, run.elections,
                run.quorum_ack_ms);
    session.add("failover")
        .param("chains", static_cast<double>(kFailoverChains))
        .param("replicas", 3.0)
        .metric("detection_ms", run.detection_ms)
        .metric("hot_failover_ms", run.hot_failover_ms)
        .metric("cold_recovery_ms", run.cold_recovery_ms)
        .metric("records_streamed", run.records_streamed)
        .metric("elections", run.elections)
        .metric("quorum_ack_ms", run.quorum_ack_ms);
  }

  std::printf(
      "\nThe hot standby mirrors every journal record in memory, so\n"
      "promotion skips replay entirely; the cold path pays for every\n"
      "record in the journal before it can re-publish.\n");
  return 0;
}
