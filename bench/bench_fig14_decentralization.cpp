// Decentralization experiment: what forwarding survives when the Global
// Switchboard is dead for the whole chaos window?
//
// Scenario: chains spanning the 4-node line with firewall pools at both
// middle sites and two installed routes each (one per pool).  At window
// start the Global Switchboard crashes and STAYS crashed; a quarter of
// the way in, every instance of the pool carrying route 0 dies.  The
// same fixed-cadence probe stream then measures, per routing mode:
//
//   - sb_dp / sb_lp:  the centralized modes keep forwarding on installed
//     rules, but flows pinned to the dead pool stay black-holed — the
//     only entity that could reroute them is the crashed controller;
//   - sb_anycast_d:   per-stage steering off the AnycastRouters'
//     link-state tables detours around the dead pool immediately (the
//     dead site refutes its own stale advertisement) and re-converges to
//     the direct path as soon as the next announcement flood lands —
//     no controller involved.
//
// All headline metrics are simulated-time deterministic for the fixed
// fault seed: packet counts gate exactly, availability gates
// direction-aware, and the anycast announcement/steering trace digest is
// checked in-binary across a duplicate run AND gated exactly in CI
// (tools/bench_diff.py).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/check.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;
using core::Middleware;

enum class Mode { kSbDp, kSbLp, kSbAnycastD };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kSbDp: return "sb_dp";
    case Mode::kSbLp: return "sb_lp";
    case Mode::kSbAnycastD: return "sb_anycast_d";
  }
  return "?";
}

dataplane::FiveTuple flow_tuple(std::uint32_t chain, std::uint32_t k) {
  return dataplane::FiveTuple{0x0A140000u + chain, 0xC0A80005u + k, 9100,
                              443, 6};
}

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

struct ModeRun {
  double packets_sent{0.0};
  double packets_forwarded{0.0};
  double availability{0.0};
  /// Kill -> last anomalous probe (failed, or detoured through the dead
  /// site after the kill).  0 when nothing after the kill was anomalous.
  double reconverge_ms{0.0};
  /// Wide-area announcement traffic (originals + re-floods); 0 for the
  /// centralized modes, which pay their coordination cost at the (dead)
  /// controller instead.
  double announce_messages{0.0};
  /// FNV-1a over the fault trace + every router's steering trace
  /// (sb_anycast_d only) — the determinism artifact.
  std::uint64_t trace_digest{0};
};

ModeRun run_mode(Mode mode, std::size_t chain_count, double window_ms) {
  model::NetworkModel m{net::make_line_topology(4, 400.0, 5.0)};
  m.add_site(NodeId{0}, 400.0, "A");
  m.add_site(NodeId{1}, 400.0, "X");
  m.add_site(NodeId{2}, 400.0, "Y");
  m.add_site(NodeId{3}, 400.0, "B");
  const VnfId fw = m.add_vnf("fw", 1.0);
  m.deploy_vnf(fw, SiteId{1}, 400.0);
  m.deploy_vnf(fw, SiteId{2}, 400.0);

  core::DeploymentConfig config;
  config.fault_seed = 0x14DECE;
  if (mode == Mode::kSbLp) {
    config.te_mode = control::GlobalSwitchboard::TeMode::kSbLp;
  }
  if (mode == Mode::kSbAnycastD) {
    config.enable_anycast = true;
    config.anycast.announce_period = sim::from_ms(20.0);
    config.anycast.stale_after_periods = 3;
  }
  Middleware mw{std::move(m), config};
  core::Deployment& dep = mw.deployment();
  const EdgeServiceId edge = mw.register_edge_service("vpn");

  std::vector<ChainId> chains;
  for (std::size_t c = 0; c < chain_count; ++c) {
    control::ChainSpec spec;
    spec.name = "chain" + std::to_string(c);
    spec.ingress_service = edge;
    spec.egress_service = edge;
    spec.ingress_node = NodeId{0};
    spec.egress_node = NodeId{3};
    spec.vnfs = {fw};
    spec.forward_traffic = 1.0;
    spec.reverse_traffic = 0.5;
    const auto report = mw.create_chain(spec);
    SWB_CHECK(report.ok()) << report.error().to_string();
    chains.push_back(report->chain);
    // Second route on the other pool: the centralized modes get the best
    // possible starting position (half their flows survive the kill on
    // installed rules alone).
    const SiteId primary = mw.chain_record(chains.back())
                               .routes[0].vnf_sites[0];
    const SiteId other = primary == SiteId{1} ? SiteId{2} : SiteId{1};
    const auto second = mw.add_route(chains.back(), {other});
    SWB_CHECK(second.ok()) << second.error().to_string();
  }
  dep.register_fault_targets();

  sim::Simulator& sim = dep.simulator();
  if (mode == Mode::kSbAnycastD) {
    // Announcement floods need a few periods to populate every table.
    dep.start_anycast();
    sim.run_until(sim.now() + sim::from_ms(100.0));
  }

  const SiteId dead_site = mw.chain_record(chains[0]).routes[0].vnf_sites[0];
  const sim::SimTime window_start = sim.now();
  const sim::SimTime window_end = window_start + sim::from_ms(window_ms);
  const sim::SimTime kill_at = window_start + sim::from_ms(window_ms / 4.0);

  // The controller is dead for the WHOLE window; the mid-window pool kill
  // happens with nobody home to reroute.
  dep.fault_injector().crash_at(window_start, "controller:global");
  for (const dataplane::ElementId id :
       dep.elements().vnf_instances_at(dead_site, fw)) {
    dep.fault_injector().crash_at(kill_at, "element:" + std::to_string(id));
  }

  ModeRun run;
  sim::SimTime last_anomaly_at = -1;
  std::uint32_t k = 1;
  for (sim::SimTime t = window_start + sim::from_ms(5.0); t <= window_end;
       t += sim::from_ms(5.0), ++k) {
    for (std::size_t c = 0; c < chains.size(); ++c) {
      sim.schedule_at(t, [&, c, k, mode, dead_site, kill_at] {
        const dataplane::FiveTuple tuple =
            flow_tuple(static_cast<std::uint32_t>(c), k);
        const core::Deployment::WalkResult walk =
            mode == Mode::kSbAnycastD ? dep.inject_anycast(chains[c], tuple)
                                      : mw.send(chains[c], tuple);
        run.packets_sent += 1.0;
        if (walk.delivered) run.packets_forwarded += 1.0;
        // Anomalous = dropped, or (post-kill) detoured through the dead
        // pool's site.  Re-convergence = the last anomalous probe.
        bool anomalous = !walk.delivered;
        if (sim.now() >= kill_at) {
          for (const core::Deployment::HopTrace& hop : walk.path) {
            anomalous |= dep.elements().info(hop.element).site == dead_site;
          }
        }
        if (anomalous) last_anomaly_at = sim.now();
      });
    }
  }

  sim.run_until(window_end + sim::from_ms(1.0));
  if (mode == Mode::kSbAnycastD) dep.stop_anycast();

  run.availability =
      run.packets_sent > 0 ? run.packets_forwarded / run.packets_sent : 0.0;
  run.reconverge_ms =
      last_anomaly_at < kill_at ? 0.0 : sim::to_ms(last_anomaly_at - kill_at);
  std::uint64_t digest = 1469598103934665603ULL;   // FNV-1a offset basis
  digest = fnv1a(digest, dep.fault_injector().trace_string());
  if (mode == Mode::kSbAnycastD) {
    for (const model::CloudSite& site : dep.network_model().sites()) {
      const control::AnycastRouter& router = dep.anycast_router(site.id);
      run.announce_messages += static_cast<double>(
          router.announcements_sent() + router.refloods());
      digest = fnv1a(digest, router.trace_string());
      router.check_invariants();
    }
  }
  run.trace_digest = digest;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig14_decentralization"};
  const std::size_t chain_count = session.scaled(8, 4, 2);
  const double window_ms = session.smoke() ? 400.0 : 1500.0;

  std::printf(
      "=== Decentralization: forwarding with the controller dead ===\n"
      "chains=%zu window=%.0fms (controller crashed throughout; pool kill "
      "at t+%.0fms)\n\n",
      chain_count, window_ms, window_ms / 4.0);
  std::printf("%-14s %10s %12s %14s %14s %12s\n", "mode", "sent",
              "forwarded", "availability", "reconverge-ms", "announces");

  ModeRun runs[3];
  const Mode modes[3] = {Mode::kSbDp, Mode::kSbLp, Mode::kSbAnycastD};
  for (int i = 0; i < 3; ++i) {
    runs[i] = run_mode(modes[i], chain_count, window_ms);
    std::printf("%-14s %10.0f %12.0f %14.4f %14.1f %12.0f\n",
                mode_name(modes[i]), runs[i].packets_sent,
                runs[i].packets_forwarded, runs[i].availability,
                runs[i].reconverge_ms, runs[i].announce_messages);
  }
  const ModeRun& dp = runs[0];
  const ModeRun& lp = runs[1];
  const ModeRun& anycast = runs[2];

  // Determinism: an identical second run must replay byte-identical fault
  // and steering traces (DESIGN.md §14/§17).
  const ModeRun replay = run_mode(Mode::kSbAnycastD, chain_count, window_ms);
  SWB_CHECK_EQ(replay.trace_digest, anycast.trace_digest)
      << "anycast chaos run is not deterministic";
  SWB_CHECK_EQ(replay.packets_forwarded, anycast.packets_forwarded);
  SWB_CHECK_EQ(replay.reconverge_ms, anycast.reconverge_ms);

  // The headline claim, enforced in-binary: with the controller dead,
  // decentralized steering strictly beats both centralized modes, and it
  // re-converges off the dead pool on announcement cadence while the
  // centralized modes stay degraded to the end of the window.
  SWB_CHECK(anycast.availability > dp.availability)
      << "anycast availability must strictly beat SB-DP";
  SWB_CHECK(anycast.availability > lp.availability)
      << "anycast availability must strictly beat SB-LP";
  SWB_CHECK(anycast.reconverge_ms < 100.0)
      << "anycast never re-converged after the pool kill";
  SWB_CHECK(dp.reconverge_ms > anycast.reconverge_ms);
  SWB_CHECK(lp.reconverge_ms > anycast.reconverge_ms);

  for (int i = 0; i < 3; ++i) {
    session.add("decentralization")
        .param("mode", mode_name(modes[i]))
        .param("chains", static_cast<double>(chain_count))
        .param("window_ms", window_ms)
        .metric("packets_sent", runs[i].packets_sent)
        .metric("packets_forwarded", runs[i].packets_forwarded)
        .metric("availability", runs[i].availability)
        .metric("reconverge_ms", runs[i].reconverge_ms)
        .metric("announce_messages", runs[i].announce_messages)
        // %.17g doubles round-trip 53-bit integers exactly; enough of the
        // digest for an exact CI gate.
        .metric("trace_digest", static_cast<double>(
            runs[i].trace_digest & ((std::uint64_t{1} << 53) - 1)));
  }

  std::printf(
      "\nThe centralized modes coast on installed rules: every flow hashed\n"
      "onto the dead pool stays black-holed until the controller returns.\n"
      "SB-ANYCAST-D detours around the dead site immediately (the site's\n"
      "own registry refutes its stale advertisement) and drops back to the\n"
      "direct path one announcement period later — availability %.4f vs\n"
      "%.4f/%.4f, paid for with %.0f announcement messages.\n",
      anycast.availability, dp.availability, lp.availability,
      anycast.announce_messages);
  return 0;
}
