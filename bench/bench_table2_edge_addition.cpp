// Table 2: control-plane latency of adding a new edge site to a chain
// (the mobility use case of Section 6).
//
// Paper measurements:
//   Local SB chooses the 1st VNF's site ................  0 ms
//   Edge instance's fwrdr receives 1st VNF's info ...... 63 ms
//   Edge instance's fwrdr dataplane configured ......... 93 ms
//   1st VNF's fwrdr receives edge's fwrdr info ......... 74 ms
//   1st VNF's fwrdr starts dataplane configuration .... 233 ms
//   1st VNF's fwrdr finishes configuration ............ 104 ms
//   (per-row latencies; total < 600 ms)
#include <cstdio>

#include "bench_json.hpp"
#include "switchboard/switchboard.hpp"

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_table2_edge_addition"};
  using namespace switchboard;

  // Line of 4 sites; chain 0 -> 3 with one firewall at site 1; the user
  // then appears at site 2.
  model::NetworkModel m{net::make_line_topology(4, 100.0, 8.0)};
  m.add_site(NodeId{0}, 1000.0);
  const SiteId s1 = m.add_site(NodeId{1}, 1000.0);
  const SiteId s2 = m.add_site(NodeId{2}, 1000.0);
  m.add_site(NodeId{3}, 1000.0);
  const VnfId fw = m.add_vnf("firewall", 1.0);
  m.deploy_vnf(fw, s1, 100.0);

  // Control timings in the range observed on the paper's ODL-based
  // prototype (tens to low-hundreds of ms per operation).
  core::DeploymentConfig config;
  config.timings.controller_rpc = sim::from_ms(20.0);
  config.timings.controller_processing = sim::from_ms(40.0);
  config.timings.route_compute = sim::from_ms(30.0);
  config.timings.rule_install = sim::from_ms(60.0);
  config.timings.tunnel_setup = sim::from_ms(120.0);

  core::Middleware mw{std::move(m), config};
  const EdgeServiceId edge = mw.register_edge_service("cellular");
  control::ChainSpec spec;
  spec.name = "mobile-user";
  spec.ingress_service = edge;
  spec.ingress_node = NodeId{0};
  spec.egress_service = edge;
  spec.egress_node = NodeId{3};
  spec.vnfs = {fw};
  const auto created = mw.create_chain(spec);
  if (!created.ok()) {
    std::printf("chain creation failed: %s\n",
                created.error().to_string().c_str());
    return 1;
  }

  const auto result = mw.attach_edge(created->chain, s2, edge);
  if (!result.ok()) {
    std::printf("edge addition failed: %s\n",
                result.error().to_string().c_str());
    return 1;
  }
  const auto& t = result.value();

  std::printf("=== Table 2: latency of adding a new edge site ===\n\n");
  std::printf("%-52s %10s %10s\n", "Operation", "measured", "paper");
  const auto row = [](const char* name, double measured_ms, int paper_ms) {
    std::printf("%-52s %7.0f ms %7d ms\n", name, measured_ms, paper_ms);
  };
  row("Local SB chooses the 1st VNF's site",
      sim::to_ms(t.site_chosen - t.started), 0);
  row("Edge instance's fwrdr receives 1st VNF's info",
      sim::to_ms(t.forwarder_info_received - t.site_chosen), 63);
  row("Edge instance's fwrdr dataplane configured",
      sim::to_ms(t.edge_configured - t.forwarder_info_received), 93);
  row("1st VNF's fwrdr receives edge's fwrdr info",
      sim::to_ms(t.remote_received - t.edge_configured), 74);
  row("1st VNF's fwrdr starts dataplane configuration",
      sim::to_ms(t.remote_config_started - t.remote_received), 233);
  row("1st VNF's fwrdr finishes configuration",
      sim::to_ms(t.remote_config_finished - t.remote_config_started), 104);
  std::printf("%-52s %7.0f ms %7d ms\n", "TOTAL",
              sim::to_ms(t.remote_config_finished - t.started), 567);
  session.add("edge_addition_latency")
      .metric("site_chosen_ms", sim::to_ms(t.site_chosen - t.started))
      .metric("edge_configured_ms",
              sim::to_ms(t.edge_configured - t.started))
      .metric("total_ms", sim::to_ms(t.remote_config_finished - t.started));
  std::printf(
      "\nPaper: the total stays under 600 ms and is paid only by the first\n"
      "packet at the new edge site.\n");
  return 0;
}
