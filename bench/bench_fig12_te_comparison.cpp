// Figure 12: wide-area traffic engineering on a tier-1-like dataset.
//
// Paper setup: tier-1 backbone topology + traffic snapshot; 100 VNFs,
// 10000 chains of 3-5 VNFs; Switchboard vs ANYCAST.  Findings:
//   (a) throughput vs NF coverage: SB-LP and SB-DP improve with coverage;
//       ANYCAST is >10x worse and cannot exploit coverage;
//   (b) throughput vs CPU/byte: SB >> ANYCAST everywhere; SB-DP within
//       11-36% of SB-LP;
//   (c) latency vs load: ANYCAST's latency is >40% higher at low load and
//       it collapses beyond ~10% of SB-LP's sustainable load; SB-DP is
//       within 8% of SB-LP.
//
// Scaled-down substitute: synthetic tier-1 topology + gravity traffic
// (DESIGN.md), small enough for the from-scratch simplex yet large enough
// to show the same ordering and crossovers.
#include <chrono>
#include <cstdio>
#include <limits>
#include <thread>

#include "bench_json.hpp"
#include "common/check.hpp"
#include "net/routing.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;

/// Minimum wall time of `fn` over `repeats` runs, in milliseconds.
template <typename Fn>
double min_wall_ms(int repeats, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < repeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = std::min(best, ms);
  }
  return best;
}

model::ScenarioParams base_params() {
  model::ScenarioParams params;
  params.topology.core_count = 4;
  params.topology.access_per_core = 1;     // 8 nodes / sites
  params.vnf_count = 8;
  params.chain_count = 20;
  params.min_chain_length = 3;
  params.max_chain_length = 5;
  params.total_chain_traffic = 300.0;
  params.site_capacity = 600.0;
  params.cpu_per_unit = 1.0;
  params.seed = 2026;
  return params;
}

struct Row {
  double lp{0.0};
  double dp{0.0};
  double anycast{0.0};
};

Row throughput_row(const model::ScenarioParams& params) {
  const model::NetworkModel m = model::make_scenario(params);
  Row row;

  te::LpRoutingOptions lp_options;
  lp_options.objective = te::LpObjective::kMaxThroughput;
  const te::LpRoutingResult lp = te::solve_lp_routing(m, lp_options);
  if (lp.optimal()) {
    row.lp = te::evaluate(m, lp.routing).feasible_throughput;
  }

  const te::DpResult dp = te::solve_dp_routing(m);
  row.dp = te::evaluate(m, dp.routing).feasible_throughput;

  row.anycast = te::evaluate(m, te::solve_anycast(m)).feasible_throughput;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig12_te_comparison"};
  std::printf("=== Figure 12: TE on a tier-1-like dataset (scaled) ===\n");

  // ---- (a) throughput vs NF coverage --------------------------------
  std::printf("\n-- (a) throughput vs NF coverage --\n");
  std::printf("%10s %12s %12s %12s %10s\n", "coverage", "SB-LP", "SB-DP",
              "ANYCAST", "LP/anycast");
  for (const double coverage : {0.25, 0.5, 0.75, 1.0}) {
    model::ScenarioParams params = base_params();
    params.chain_count = session.scaled(params.chain_count, 2, 5);
    params.coverage = coverage;
    const Row row = throughput_row(params);
    std::printf("%10.2f %12.1f %12.1f %12.1f %9.1fx\n", coverage, row.lp,
                row.dp, row.anycast,
                row.anycast > 0 ? row.lp / row.anycast : 0.0);
    session.add("throughput_vs_coverage")
        .param("coverage", coverage)
        .metric("sb_lp", row.lp)
        .metric("sb_dp", row.dp)
        .metric("anycast", row.anycast);
  }

  // ---- (b) throughput vs CPU/byte ------------------------------------
  std::printf("\n-- (b) throughput vs CPU/byte (compute vs network "
              "bottleneck) --\n");
  std::printf("%10s %12s %12s %12s %12s\n", "cpu/byte", "SB-LP", "SB-DP",
              "ANYCAST", "DP/LP");
  for (const double cpu : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    model::ScenarioParams params = base_params();
    params.chain_count = session.scaled(params.chain_count, 2, 5);
    params.coverage = 0.5;
    params.cpu_per_unit = cpu;
    const Row row = throughput_row(params);
    std::printf("%10.2f %12.1f %12.1f %12.1f %11.0f%%\n", cpu, row.lp, row.dp,
                row.anycast, row.lp > 0 ? 100.0 * row.dp / row.lp : 0.0);
    session.add("throughput_vs_cpu_per_byte")
        .param("cpu_per_unit", cpu)
        .metric("sb_lp", row.lp)
        .metric("sb_dp", row.dp)
        .metric("anycast", row.anycast);
  }

  // ---- (c) latency vs load factor ------------------------------------
  std::printf("\n-- (c) latency vs uniform load increase --\n");
  std::printf("%10s %14s %14s %14s\n", "load", "SB-LP ms", "SB-DP ms",
              "ANYCAST ms");
  // Light base load (half of the throughput experiments) so the sweep
  // spans from everyone-feasible to everyone-saturated.
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 3.0}) {
    model::ScenarioParams params = base_params();
    params.chain_count = session.scaled(params.chain_count, 2, 5);
    params.coverage = 0.5;
    params.total_chain_traffic = 150.0;
    model::NetworkModel m = model::make_scenario(params);
    m.scale_all_traffic(factor);

    te::LpRoutingOptions lp_options;
    lp_options.objective = te::LpObjective::kMinLatency;
    const te::LpRoutingResult lp = te::solve_lp_routing(m, lp_options);
    const te::DpResult dp = te::solve_dp_routing(m);
    const te::RoutingMetrics dp_metrics = te::evaluate(m, dp.routing);
    const te::RoutingMetrics anycast_metrics =
        te::evaluate(m, te::solve_anycast(m));

    char lp_text[32];
    if (lp.optimal()) {
      std::snprintf(lp_text, sizeof lp_text, "%14.1f",
                    te::evaluate(m, lp.routing).mean_latency_ms);
    } else {
      std::snprintf(lp_text, sizeof lp_text, "%14s", "infeasible");
    }
    char any_text[32];
    if (anycast_metrics.feasible) {
      std::snprintf(any_text, sizeof any_text, "%14.1f",
                    anycast_metrics.mean_latency_ms);
    } else {
      std::snprintf(any_text, sizeof any_text, "%11.1f(!)",
                    anycast_metrics.mean_latency_ms);
    }
    std::printf("%9.0f%% %s %14.1f %s\n", factor * 100.0, lp_text,
                dp_metrics.mean_latency_ms, any_text);
  }
  std::printf("   (!) = ANYCAST overloads some resource at this load\n");

  // Maximum uniform load factor each scheme sustains (relative to the
  // factor-1.0 base): the paper's headline is that ANYCAST collapses at
  // ~10% of SB-LP's sustainable load.
  {
    model::ScenarioParams params = base_params();
    params.chain_count = session.scaled(params.chain_count, 2, 5);
    params.coverage = 0.5;
    params.total_chain_traffic = 150.0;
    const model::NetworkModel m = model::make_scenario(params);
    te::LpRoutingOptions alpha_options;
    alpha_options.objective = te::LpObjective::kMaxUniformScale;
    const te::LpRoutingResult lp_alpha = te::solve_lp_routing(m, alpha_options);
    const te::DpResult dp = te::solve_dp_routing(m);
    const te::RoutingMetrics dp_metrics = te::evaluate(m, dp.routing);
    // DP may admit only part of the demand; discount its sustainable
    // scale by the carried fraction for a fair comparison.
    const double dp_alpha = dp_metrics.max_uniform_scale *
                            (dp_metrics.carried_volume /
                             std::max(dp_metrics.demand_volume, 1e-9));
    const double anycast_alpha =
        te::evaluate(m, te::solve_anycast(m)).max_uniform_scale;
    std::printf("\nmax sustainable load factor:  SB-LP %.2f   SB-DP %.2f   "
                "ANYCAST %.2f (%.0f%% of SB-LP)\n",
                lp_alpha.alpha, dp_alpha, anycast_alpha,
                lp_alpha.alpha > 0 ? 100.0 * anycast_alpha / lp_alpha.alpha
                                   : 0.0);
    session.add("max_sustainable_load")
        .metric("sb_lp_alpha", lp_alpha.alpha)
        .metric("sb_dp_alpha", dp_alpha)
        .metric("anycast_alpha", anycast_alpha);
  }

  // ---- (d) TE engine fast path (wall clock) --------------------------
  // Not a paper panel: microbenchmarks of the TE engine on the largest
  // topology this bench builds (48 nodes — wide-area scale, where the
  // per-pair ECMP footprints the cache memoizes are non-trivial),
  // validating that the cached DP solve and the parallel routing
  // precompute return the same answers faster.  Wall-clock metrics; the
  // CI perf gate diffs only the deterministic throughput/alpha metrics
  // above.
  std::printf("\n-- (d) TE engine fast path (wall clock) --\n");
  {
    model::ScenarioParams params = base_params();
    params.topology.core_count = 16;
    params.topology.access_per_core = 2;   // 48 nodes / sites
    params.vnf_count = 12;
    params.chain_count = 200;
    params.coverage = 0.5;
    params.total_chain_traffic = 3000.0;
    params.site_capacity = 400.0;
    const model::NetworkModel m = model::make_scenario(params);
    const int repeats = session.smoke() ? 3 : 7;

    // Cached vs uncached DP solve: identical solutions, bit for bit.
    const te::DpResult reference = te::solve_dp_routing(m);
    const double uncached_ms = min_wall_ms(repeats, [&] {
      const te::DpResult r = te::solve_dp_routing(m);
      SWB_CHECK(r.routed_volume == reference.routed_volume);
    });
    te::TeEngine engine{m};
    const double cached_ms = min_wall_ms(repeats, [&] {
      const te::DpResult& r = engine.solve();
      SWB_CHECK(r.routed_volume == reference.routed_volume);
    });
    std::printf("cached DP solve:      %8.2f ms vs %8.2f ms uncached "
                "(%.1fx, identical solution)\n",
                cached_ms, uncached_ms, uncached_ms / cached_ms);
    session.add("cached")
        .param("nodes", static_cast<double>(m.topology().node_count()))
        .param("chains", static_cast<double>(m.chains().size()))
        .metric("uncached_ms", uncached_ms)
        .metric("cached_ms", cached_ms)
        .metric("speedup", uncached_ms / cached_ms);

    // Serial vs parallel all-pairs routing precompute (same topology).
    const net::Topology topo = net::make_tier1_topology(params.topology);
    const std::size_t threads =
        std::max<std::size_t>(2, std::thread::hardware_concurrency());
    const double serial_ms =
        min_wall_ms(repeats, [&] { net::Routing routing{topo, 1}; });
    const double parallel_ms =
        min_wall_ms(repeats, [&] { net::Routing routing{topo, threads}; });
    std::printf("routing precompute:   %8.2f ms vs %8.2f ms serial "
                "(%.1fx with %zu threads)\n",
                parallel_ms, serial_ms, serial_ms / parallel_ms, threads);
    session.add("parallel_build")
        .param("nodes", static_cast<double>(topo.node_count()))
        .param("threads", static_cast<double>(threads))
        .metric("serial_ms", serial_ms)
        .metric("parallel_ms", parallel_ms)
        .metric("speedup", serial_ms / parallel_ms);
  }

  std::printf(
      "\nPaper: SB-LP and SB-DP track each other (DP within 0-36%% of LP on\n"
      "throughput, 8%% on latency); ANYCAST is an order of magnitude worse\n"
      "and cannot use added coverage.\n");
  return 0;
}
