// Table 3: advantage of sharing a cache VNF instance across chains.
//
// Paper setup: five service chains using a Squid web cache; two Amazon
// sites with a 60 ms RTT; Zipf(1.0) object popularity, 50 KB mean size.
// Shared: one cache instance serves all chains.  Siloed: one instance per
// chain at one-fifth the capacity (the unified-controller approach).
// Findings: shared achieves 57.45% hit rate and 56.49 ms mean download
// vs 44.25% and 70.02 ms siloed.
#include <cstdio>

#include "bench_json.hpp"
#include "cache/experiment.hpp"

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_table3_shared_cache"};
  using namespace switchboard::cache;

  ExperimentParams params;
  params.chain_count = 5;
  params.total_cache_bytes = 220ull * 1024 * 1024;
  params.requests_per_chain = session.scaled(150'000, 16, 5'000);
  params.workload.object_count = 150'000;
  params.workload.zipf_exponent = 1.0;
  params.workload.mean_object_bytes = 50 * 1024;
  params.wide_area_rtt_ms = 60.0;
  params.local_rtt_ms = 25.0;   // client <-> edge cache + proxy processing

  const ExperimentResult shared = run_shared(params);
  const ExperimentResult siloed = run_siloed(params);

  std::printf("=== Table 3: shared vs vertically siloed cache ===\n\n");
  std::printf("chains=5, Zipf(%.1f), mean object %.0f KB, 60 ms WAN RTT\n",
              params.workload.zipf_exponent,
              params.workload.mean_object_bytes / 1024.0);
  std::printf("%-32s %10s %16s\n", "Scheme", "Hit rate", "Download time");
  std::printf("%-32s %9.2f%% %13.2f ms\n", "Shared cache inst.",
              shared.hit_rate * 100.0, shared.mean_download_ms);
  std::printf("%-32s %9.2f%% %13.2f ms\n", "Vertically siloed cache inst.",
              siloed.hit_rate * 100.0, siloed.mean_download_ms);
  std::printf("\nrelative: +%.0f%% hit rate, %.0f%% faster downloads\n",
              100.0 * (shared.hit_rate / siloed.hit_rate - 1.0),
              100.0 * (1.0 - shared.mean_download_ms /
                                 siloed.mean_download_ms));
  session.add("shared_cache")
      .param("scheme", std::string{"shared"})
      .metric("hit_rate_pct", shared.hit_rate * 100.0)
      .metric("mean_download_ms", shared.mean_download_ms);
  session.add("shared_cache")
      .param("scheme", std::string{"siloed"})
      .metric("hit_rate_pct", siloed.hit_rate * 100.0)
      .metric("mean_download_ms", siloed.mean_download_ms);
  std::printf(
      "Paper: shared 57.45%% / 56.49 ms vs siloed 44.25%% / 70.02 ms\n"
      "(+30%% hit rate, 19%% faster) - object reuse across chains.\n");
  return 0;
}
