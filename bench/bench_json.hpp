// Shared benchmark-result emitter: every bench_* binary accepts
//
//   --json <path>   write machine-readable results to <path>
//   --smoke         reduced-iteration mode for CI (scale workloads with
//                   Session::scaled(); skip google-benchmark sweeps)
//
// so CI's bench-smoke job can run the whole bench suite quickly, merge the
// per-binary files into BENCH_pr.json, and track the perf trajectory per
// PR.  Records carry a name, parameters, and metrics (conventional keys:
// "throughput_pps", "p50_ms", "p99_ms", ...) plus the git sha the binary
// was built from.
//
// Usage:
//   int main(int argc, char** argv) {
//     swb_bench::Session session{&argc, argv, "bench_fig8_forwarder_scaling"};
//     ...
//     session.add("sharded_scaling")
//         .param("threads", 8)
//         .metric("throughput_pps", pps);
//     return 0;   // the destructor writes the file when --json was given
//   }
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <utility>
#include <vector>

namespace swb_bench {

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Formats a double as JSON (no NaN/Inf in JSON — clamp to null).
/// %.17g round-trips any double exactly — bit-deterministic metrics
/// (packet counts, pinning digests) are gated with exact comparisons by
/// tools/bench_diff.py, so the JSON must not lose precision.
inline std::string json_number(double v) {
  if (v != v || v > 1e308 || v < -1e308) return "null";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

inline std::string current_git_sha() {
  if (const char* sha = std::getenv("GITHUB_SHA")) {
    return std::string{sha}.substr(0, 12);
  }
  std::string sha = "unknown";
  if (FILE* pipe = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) {
      std::string line{buf};
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) sha = line;
    }
    ::pclose(pipe);
  }
  return sha;
}

}  // namespace detail

/// One benchmark data point: a named result with parameters and metrics.
class Record {
 public:
  explicit Record(std::string name) : name_{std::move(name)} {}

  Record& param(const std::string& key, double value) {
    number_params_.emplace_back(key, value);
    return *this;
  }
  Record& param(const std::string& key, const std::string& value) {
    string_params_.emplace_back(key, value);
    return *this;
  }
  Record& metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
    return *this;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "    {\"name\": \"" + detail::json_escape(name_) +
                      "\", \"params\": {";
    bool first = true;
    for (const auto& [key, value] : number_params_) {
      out += std::string{first ? "" : ", "} + "\"" +
             detail::json_escape(key) + "\": " + detail::json_number(value);
      first = false;
    }
    for (const auto& [key, value] : string_params_) {
      out += std::string{first ? "" : ", "} + "\"" +
             detail::json_escape(key) + "\": \"" + detail::json_escape(value) +
             "\"";
      first = false;
    }
    out += "}, \"metrics\": {";
    first = true;
    for (const auto& [key, value] : metrics_) {
      out += std::string{first ? "" : ", "} + "\"" +
             detail::json_escape(key) + "\": " + detail::json_number(value);
      first = false;
    }
    out += "}}";
    return out;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> number_params_;
  std::vector<std::pair<std::string, std::string>> string_params_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Owns the parsed --json/--smoke flags and the collected records; writes
/// the JSON file at destruction.  Construct before benchmark::Initialize —
/// the constructor strips the flags it consumes from argv.
class Session {
 public:
  Session(int* argc, char** argv, std::string bench_name)
      : bench_name_{std::move(bench_name)} {
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--smoke") == 0) {
        smoke_ = true;
      } else if (std::strcmp(arg, "--json") == 0 && i + 1 < *argc) {
        json_path_ = argv[++i];
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        json_path_ = arg + 7;
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
    argv[out] = nullptr;
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session() { write(); }

  [[nodiscard]] bool smoke() const { return smoke_; }

  /// Workload scaling for smoke mode: full size normally, size/`divisor`
  /// (floored at `floor`) under --smoke.
  [[nodiscard]] std::size_t scaled(std::size_t n, std::size_t divisor = 64,
                                   std::size_t floor = 1) const {
    if (!smoke_) return n;
    return std::max(floor, n / std::max<std::size_t>(divisor, 1));
  }

  Record& add(std::string record_name) {
    records_.emplace_back(std::move(record_name));
    return records_.back();
  }

  /// Writes the file now (idempotent; also called by the destructor).
  void write() {
    if (json_path_.empty() || written_) return;
    FILE* out = std::fopen(json_path_.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", json_path_.c_str());
      return;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n"
                 "  \"smoke\": %s,\n  \"results\": [\n",
                 detail::json_escape(bench_name_).c_str(),
                 detail::json_escape(detail::current_git_sha()).c_str(),
                 smoke_ ? "true" : "false");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(out, "%s%s\n", records_[i].to_json().c_str(),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    written_ = true;
  }

 private:
  std::string bench_name_;
  std::string json_path_;
  bool smoke_{false};
  bool written_{false};
  std::deque<Record> records_;   // deque: add() references stay valid
};

}  // namespace swb_bench
