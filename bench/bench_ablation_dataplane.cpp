// Data-plane design ablations (choices DESIGN.md calls out):
//
//   1. Label switching vs source routing — Switchboard carries a fixed
//      2-label stack; NSH/SegmentRouting-style source routing embeds the
//      whole hop list, so header work grows with chain length (Section 8's
//      argument against source routing).
//   2. Make-before-break rule updates — route changes only steer *new*
//      connections; the ablation resets flow state on update and counts
//      how many established connections lose their VNF instance (what a
//      stateful VNF would experience as a broken connection).
//   3. Replicated (DHT) flow table vs per-forwarder tables under a
//      forwarder failure — the fraction of established flows that survive
//      with their pinning intact.
//   4. Steering state in the packet (Active-Switching-style annotation,
//      DESIGN.md §15) vs per-flow table entries — per-packet cost against
//      per-flow memory and the 16-byte wire overhead.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>

#include "bench_json.hpp"
#include "dataplane/dht_flow_table.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/traffic_gen.hpp"

namespace {

using namespace switchboard::dataplane;

// ------------------------------------------------- 1. labels vs src-route

/// Builds the per-hop header a source-routed packet carries: 16 bytes per
/// remaining hop, checksummed.  Returns a digest so the work is real.
std::uint64_t source_route_encap(const Packet& packet, int chain_length,
                                 std::uint8_t* scratch) {
  const int header_bytes = 14 + 20 + 8 + 16 * (chain_length + 1);
  std::uint64_t digest = 0;
  for (int i = 0; i < header_bytes; i += 8) {
    const std::uint64_t word =
        mix64(packet.flow.src_ip + static_cast<std::uint64_t>(i));
    std::memcpy(scratch + (i % 256), &word, 8);
    digest += word & 0xFF;
  }
  return digest;
}

/// Switchboard's label stack: fixed 8 bytes regardless of chain length.
std::uint64_t label_encap(const Packet& packet, std::uint8_t* scratch) {
  std::memcpy(scratch, &packet.labels.chain, 4);
  std::memcpy(scratch + 4, &packet.labels.egress_site, 4);
  return mix64(packet.labels.chain ^ packet.labels.egress_site) & 0xFF;
}

double measure_ns_per_packet(int chain_length, bool source_routed,
                             std::size_t packets_target) {
  const auto packets = make_packet_batch({.flow_count = 64}, 4096);
  std::uint8_t scratch[256] = {};
  std::uint64_t sink = 0;
  double best = 1e18;
  for (int run = 0; run < 5; ++run) {
    const auto start = std::chrono::steady_clock::now();
    std::size_t processed = 0;
    while (processed < packets_target) {
      for (const Packet& p : packets) {
        sink += source_routed
            ? source_route_encap(p, chain_length, scratch)
            : label_encap(p, scratch);
      }
      processed += packets.size();
    }
    const double elapsed =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count();
    best = std::min(best, elapsed / static_cast<double>(processed));
  }
  benchmark::DoNotOptimize(sink);
  return best;
}

void ablation_labels_vs_source_routing(swb_bench::Session& session) {
  const std::size_t target = session.scaled(400'000, 64);
  std::printf("\n-- 1. label stack vs source routing (per-packet header "
              "work) --\n");
  std::printf("%14s %16s %18s %10s\n", "chain length", "labels ns/pkt",
              "src-route ns/pkt", "ratio");
  for (const int len : {1, 2, 4, 8, 16}) {
    const double labels = measure_ns_per_packet(len, false, target);
    const double source = measure_ns_per_packet(len, true, target);
    std::printf("%14d %16.2f %18.2f %9.1fx\n", len, labels, source,
                source / labels);
    session.add("labels_vs_source_routing")
        .param("chain_length", len)
        .metric("labels_ns_per_pkt", labels)
        .metric("source_route_ns_per_pkt", source);
  }
  std::printf("label-stack cost is flat; source-routing cost grows with the\n"
              "chain, which is why Switchboard uses label switching.\n");
}

// ---------------------------------------------- 2. make-before-break

void ablation_make_before_break(swb_bench::Session& session) {
  std::printf("\n-- 2. route update: make-before-break vs flow reset --\n");
  constexpr Labels kLabels{1, 1};
  const std::uint32_t kFlows =
      static_cast<std::uint32_t>(session.scaled(10'000, 16, 500));

  const auto run = [&](bool reset_flows) {
    Forwarder fw{1, kFlows * 2};
    LoadBalanceRule rule;
    rule.vnf_instances.add(100, 1.0);
    rule.vnf_instances.add(101, 1.0);
    rule.next_forwarders.add(200, 1.0);
    fw.rules().install(kLabels, rule);

    TrafficGenConfig config;
    config.flow_count = kFlows;
    PacketStream stream{config};
    std::vector<ElementId> before(kFlows);
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      Packet p = stream.next();
      p.arrival_source = 50;
      before[f] = fw.process_from_wire(p).element;
    }

    // Route update: a new rule with a changed instance set.
    LoadBalanceRule updated;
    updated.vnf_instances.add(101, 1.0);
    updated.vnf_instances.add(102, 1.0);
    updated.next_forwarders.add(201, 1.0);
    if (reset_flows) fw.flow_table().clear();   // the naive ablation
    fw.rules().install(kLabels, updated);

    PacketStream replay{config};
    std::uint32_t broken = 0;
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      Packet p = replay.next();
      p.arrival_source = 50;
      if (fw.process_from_wire(p).element != before[f]) ++broken;
    }
    return broken;
  };

  const std::uint32_t mbb_broken = run(false);
  const std::uint32_t reset_broken = run(true);
  std::printf("%-26s %10u / %u connections repinned\n",
              "make-before-break:", mbb_broken, kFlows);
  std::printf("%-26s %10u / %u connections repinned\n",
              "flow-state reset:", reset_broken, kFlows);
  session.add("make_before_break")
      .param("flows", static_cast<double>(kFlows))
      .metric("mbb_broken", mbb_broken)
      .metric("reset_broken", reset_broken);
  std::printf("stateful VNFs (NATs, firewalls) drop every repinned\n"
              "connection; Switchboard's update breaks none.\n");
}

// ---------------------------------------------- 3. DHT failover

void ablation_dht_failover(swb_bench::Session& session) {
  std::printf("\n-- 3. forwarder failure: DHT-replicated vs local flow "
              "tables --\n");
  constexpr Labels kLabels{1, 1};
  const std::uint32_t kFlows =
      static_cast<std::uint32_t>(session.scaled(20'000, 16, 1'000));
  constexpr std::size_t kNodes = 5;

  TrafficGenConfig config;
  config.flow_count = kFlows;
  PacketStream stream{config};

  // DHT: entries replicated across the ring.
  DhtFlowTable dht{kNodes};
  // Baseline: flows partitioned across per-forwarder tables, no replicas.
  std::vector<FlowTable> local(kNodes);
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    const FiveTuple t = stream.flow_tuple(f);
    const FlowEntry entry{f, f, f};
    dht.insert(kLabels, t, entry);
    local[flow_hash(kLabels, t) % kNodes].insert(kLabels, t, entry);
  }

  dht.fail_node(2);
  local[2].clear();   // the forwarder's state dies with it

  std::uint32_t dht_alive = 0;
  std::uint32_t local_alive = 0;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    const FiveTuple t = stream.flow_tuple(f);
    if (dht.find(kLabels, t).has_value()) ++dht_alive;
    if (local[flow_hash(kLabels, t) % kNodes].find(kLabels, t) != nullptr) {
      ++local_alive;
    }
  }
  std::printf("%-28s %6.1f%% of flows keep their pinning\n",
              "DHT flow table (RF=2):",
              100.0 * dht_alive / kFlows);
  std::printf("%-28s %6.1f%% of flows keep their pinning\n",
              "per-forwarder tables:",
              100.0 * local_alive / kFlows);
  session.add("dht_failover")
      .param("flows", static_cast<double>(kFlows))
      .metric("dht_survival_pct", 100.0 * dht_alive / kFlows)
      .metric("local_survival_pct", 100.0 * local_alive / kFlows);
  std::printf("the replicated table preserves flow affinity through the\n"
              "failure (Section 5.3's fault-tolerance direction).\n");
}

// ------------------------------- 4. annotation vs flow-table state

/// Per-packet steering cost vs per-flow state cost of the two places the
/// pinning can live: the forwarder's flow table (Switchboard) or a
/// 16-byte in-packet annotation validated against the route epoch
/// (Active-Switching ablation, DESIGN.md §15).
void ablation_annotation_vs_table(swb_bench::Session& session) {
  std::printf("\n-- 4. steering state: flow-table entries vs in-packet "
              "annotation --\n");
  constexpr Labels kLabels{1, 1};
  const auto kFlows =
      static_cast<std::uint32_t>(session.scaled(100'000, 100, 1'000));
  const std::size_t packets_target = session.scaled(2'000'000, 100, 20'000);
  const std::size_t passes =
      std::max<std::size_t>(packets_target / kFlows, 1);

  const auto install = [&](Forwarder& fw) {
    LoadBalanceRule rule;
    rule.vnf_instances.add(100, 1.0);
    rule.vnf_instances.add(101, 1.0);
    rule.next_forwarders.add(200, 1.0);
    fw.rules().install(kLabels, rule);
  };
  const auto make_batch = [&] {
    TrafficGenConfig config;
    config.flow_count = kFlows;
    config.seed = 42;
    std::vector<Packet> batch;
    batch.reserve(kFlows);
    PacketStream stream{config};
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      Packet p = stream.next();
      p.arrival_source = 50;
      batch.push_back(p);
    }
    return batch;
  };
  const auto timed_ns_per_pkt = [&](auto&& pass) {
    double best = 1e18;
    for (int run = 0; run < 3; ++run) {
      const auto start = std::chrono::steady_clock::now();
      std::size_t delivered = 0;
      for (std::size_t i = 0; i < passes; ++i) delivered += pass();
      const double elapsed =
          std::chrono::duration<double, std::nano>(
              std::chrono::steady_clock::now() - start)
              .count();
      benchmark::DoNotOptimize(delivered);
      best = std::min(best, elapsed / static_cast<double>(passes * kFlows));
    }
    return best;
  };

  // Switchboard: pinning lives in the flow table; every packet looks it up.
  Forwarder table_fw{1, kFlows * 2};
  install(table_fw);
  auto table_batch = make_batch();
  for (const Packet& p : table_batch) (void)table_fw.process_from_wire(p);
  const double table_bytes_per_flow =
      static_cast<double>(table_fw.flow_table().memory_bytes()) / kFlows;
  const double table_ns = timed_ns_per_pkt(
      [&] { return table_fw.process_batch(table_batch); });

  // Ablation: pinning rides in the packet; the forwarder only validates
  // the route epoch.  Zero per-flow table state, 16 wire bytes per packet.
  Forwarder annotation_fw{1, /*flow_capacity=*/64};
  install(annotation_fw);
  auto annotated_batch = make_batch();
  (void)annotation_fw.process_batch_annotated(annotated_batch);  // affix
  const double annotation_ns = timed_ns_per_pkt(
      [&] { return annotation_fw.process_batch_annotated(annotated_batch); });
  const double annotation_table_bytes =
      static_cast<double>(annotation_fw.flow_table().memory_bytes());

  std::printf("%-24s %8.1f ns/pkt %12.1f table bytes/flow\n",
              "flow-table pinning:", table_ns, table_bytes_per_flow);
  std::printf("%-24s %8.1f ns/pkt %12.1f table bytes/flow + 16 B/pkt on "
              "the wire\n", "in-packet annotation:", annotation_ns,
              annotation_table_bytes / kFlows);
  session.add("annotation_vs_table")
      .param("flows", static_cast<double>(kFlows))
      .metric("table_ns_per_pkt", table_ns)
      .metric("annotation_ns_per_pkt", annotation_ns)
      .metric("table_bytes_per_flow", table_bytes_per_flow)
      .metric("annotation_wire_bytes_per_pkt", 16.0);
  std::printf("annotations trade per-flow forwarder memory for per-packet\n"
              "wire bytes and lose the pinning on any route-epoch bump.\n");
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_ablation_dataplane"};
  std::printf("=== Data-plane design ablations ===\n");
  ablation_labels_vs_source_routing(session);
  ablation_make_before_break(session);
  ablation_dht_failover(session);
  ablation_annotation_vs_table(session);
  return 0;
}
