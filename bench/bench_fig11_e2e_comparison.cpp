// Figure 11: end-to-end comparison of Switchboard's globally-optimized
// routing against distributed load balancing (ANYCAST, COMPUTE-AWARE).
//
// Paper setup: two testbeds — Amazon (two sites, 150 ms RTT) and a private
// OpenStack cloud (80 ms RTT emulated).  A stateful firewall with one
// instance per site, two chain routes.  ANYCAST piles both routes onto the
// instance at site A (nearest by propagation delay); COMPUTE-AWARE avoids
// saturation but is network-blind and detours traffic; Switchboard's LP
// places load to maximize throughput at the lowest propagation delay.
// Findings: Switchboard beats ANYCAST by 34% / 57% TCP throughput and 10%
// / 19% latency, and COMPUTE-AWARE by 39% / 7% throughput and 49% / 43%
// latency.
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "switchboard/switchboard.hpp"

namespace {

using namespace switchboard;

struct Testbed {
  const char* name;
  double rtt_ms;       // inter-site round trip
  double loss;         // wide-area loss probability (per packet)
};

struct SchemeResult {
  double tcp_throughput{0.0};   // traffic units/s actually sustained
  double mean_latency_ms{0.0};  // RTT incl. VNF queueing
};

/// Builds the two-chain scenario on a two-site model.
model::NetworkModel make_model(double one_way_ms) {
  net::Topology topo;
  const NodeId a = topo.add_node("A", 0, 0);
  const NodeId b = topo.add_node("B", one_way_ms * 200.0, 0);
  topo.add_duplex_link(a, b, 1000.0, one_way_ms);
  model::NetworkModel m{std::move(topo)};
  const SiteId sa = m.add_site(a, 100.0, "A");
  const SiteId sb = m.add_site(b, 100.0, "B");
  const VnfId fw = m.add_vnf("firewall", 1.0);
  // One instance per site, each fitting exactly one chain's load
  // (in + out = 2.5 units of load against 3.0 of capacity).
  m.deploy_vnf(fw, sa, 3.0);
  m.deploy_vnf(fw, sb, 3.0);

  // Route 1: A -> fw -> B.  Route 2: A -> fw -> A.
  model::Chain c1;
  c1.name = "route1";
  c1.ingress = a;
  c1.egress = b;
  c1.vnfs = {fw};
  c1.forward_traffic = {1.0, 1.0};
  c1.reverse_traffic = {0.25, 0.25};
  m.add_chain(std::move(c1));

  model::Chain c2;
  c2.name = "route2";
  c2.ingress = a;
  c2.egress = a;
  c2.vnfs = {fw};
  c2.forward_traffic = {1.0, 1.0};
  c2.reverse_traffic = {0.25, 0.25};
  m.add_chain(std::move(c2));
  return m;
}

/// TCP throughput model (Mathis): rate = k / (rtt * sqrt(loss)); capped by
/// the capacity share the routing actually gives the chain.
double tcp_rate(double rtt_ms, double loss, double capacity_share) {
  constexpr double kTcpConstant = 0.03;   // units scaled to this testbed
  const double mathis =
      kTcpConstant / ((rtt_ms / 1000.0) * std::sqrt(std::max(loss, 1e-6)));
  return std::min(capacity_share, mathis);
}

SchemeResult score(const model::NetworkModel& m, const te::ChainRouting& routing,
                   const Testbed& bed) {
  const te::Loads loads = te::accumulate_loads(m, routing);
  SchemeResult result;
  double latency_weight = 0.0;

  for (const model::Chain& chain : m.chains()) {
    // Propagation RTT of the chain's (possibly split) path.
    double path_one_way = 0.0;
    double extra_queue_ms = 0.0;
    double capacity_share = 0.0;
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      for (const te::StageFlow& flow : routing.flows(chain.id, z)) {
        path_one_way += m.delay_ms(flow.src, flow.dst) * flow.fraction;
      }
    }
    // The VNF instance's share available to this chain and its queueing.
    const VnfId fw = chain.vnfs[0];
    for (const te::StageFlow& flow : routing.flows(chain.id, 1)) {
      const auto site = m.site_at(flow.dst);
      const double utilization =
          std::min(loads.vnf_site_utilization(fw, *site), 0.98);
      // M/M/1-style queueing on a 1 ms service time.
      extra_queue_ms += flow.fraction * utilization / (1.0 - utilization);
      // Capacity share: instance capacity split in proportion to demand.
      const double chain_demand = (chain.stage_traffic(1) +
                                   chain.stage_traffic(2)) * flow.fraction;
      const double total_load = loads.vnf_site_load(fw, *site);
      const double cap = m.vnf(fw).capacity_at(*site);
      capacity_share += total_load > 0
          ? std::min(chain_demand, cap * chain_demand / total_load) / 2.0
          : 0.0;
    }
    const double rtt = 2.0 * path_one_way + extra_queue_ms;
    result.tcp_throughput += tcp_rate(std::max(rtt, 1.0), bed.loss,
                                      capacity_share);
    result.mean_latency_ms += rtt * chain.total_traffic();
    latency_weight += chain.total_traffic();
  }
  result.mean_latency_ms /= std::max(latency_weight, 1e-9);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  swb_bench::Session session{&argc, argv, "bench_fig11_e2e_comparison"};
  const auto record = [&session](const char* bed, const char* scheme,
                                 const SchemeResult& r) {
    session.add("e2e_comparison")
        .param("testbed", std::string{bed})
        .param("scheme", std::string{scheme})
        .metric("tcp_throughput", r.tcp_throughput)
        .metric("rtt_ms", r.mean_latency_ms);
  };
  const Testbed beds[] = {
      {"amazon-150ms", 150.0, 0.010},
      {"private-80ms", 80.0, 0.002},
  };

  std::printf("=== Figure 11: Switchboard vs distributed load balancing ===\n");
  for (const Testbed& bed : beds) {
    model::NetworkModel m = make_model(bed.rtt_ms / 2.0);

    const te::ChainRouting anycast = te::solve_anycast(m);
    const te::ChainRouting compute_aware = te::solve_compute_aware(m);
    te::LpRoutingOptions lp_options;
    lp_options.objective = te::LpObjective::kMinLatency;
    const te::LpRoutingResult lp = te::solve_lp_routing(m, lp_options);

    std::printf("\n-- testbed %s (RTT %.0f ms, loss %.1f%%) --\n", bed.name,
                bed.rtt_ms, bed.loss * 100.0);
    std::printf("%-14s %18s %16s\n", "scheme", "tcp-throughput", "rtt-ms");
    const SchemeResult any = score(m, anycast, bed);
    const SchemeResult ca = score(m, compute_aware, bed);
    record(bed.name, "anycast", any);
    record(bed.name, "compute_aware", ca);
    std::printf("%-14s %18.3f %16.1f\n", "anycast", any.tcp_throughput,
                any.mean_latency_ms);
    std::printf("%-14s %18.3f %16.1f\n", "compute-aware", ca.tcp_throughput,
                ca.mean_latency_ms);
    if (lp.optimal()) {
      const SchemeResult sb = score(m, lp.routing, bed);
      record(bed.name, "switchboard", sb);
      std::printf("%-14s %18.3f %16.1f\n", "switchboard", sb.tcp_throughput,
                  sb.mean_latency_ms);
      std::printf(
          "switchboard vs anycast: %+.0f%% throughput, %+.0f%% latency\n",
          100.0 * (sb.tcp_throughput / any.tcp_throughput - 1.0),
          100.0 * (sb.mean_latency_ms / any.mean_latency_ms - 1.0));
      std::printf(
          "switchboard vs compute-aware: %+.0f%% throughput, %+.0f%% latency\n",
          100.0 * (sb.tcp_throughput / ca.tcp_throughput - 1.0),
          100.0 * (sb.mean_latency_ms / ca.mean_latency_ms - 1.0));
    } else {
      std::printf("switchboard LP infeasible on this instance\n");
    }
  }
  std::printf(
      "\nPaper: Switchboard +34%%/+57%% TCP throughput and -10%%/-19%% latency\n"
      "vs ANYCAST; +39%%/+7%% throughput and -49%%/-43%% latency vs\n"
      "COMPUTE-AWARE (Amazon / private cloud).\n");
  return 0;
}
