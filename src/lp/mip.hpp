// Branch-and-bound solver for mixed-integer programs with binary variables.
//
// Used by the VNF capacity-planning formulation (Section 4.3), where a
// binary w_{fs} decides whether VNF f is newly placed at site s.  The LP
// relaxations are solved by the revised simplex in simplex.hpp.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/problem.hpp"
#include "lp/simplex.hpp"

namespace switchboard::lp {

struct MipOptions {
  SimplexOptions lp;
  std::size_t max_nodes{10'000};
  double integrality_tol{1e-6};
  /// Relative optimality gap at which search stops.
  double gap_tol{1e-6};
};

struct MipSolution {
  SolveStatus status{SolveStatus::kIterationLimit};
  double objective{0.0};
  std::vector<double> values;
  std::size_t nodes_explored{0};
  /// Simplex work summed over every node relaxation.
  std::size_t lp_iterations{0};
  /// Nodes whose relaxation warm-started from the parent's basis.
  std::size_t warm_started_nodes{0};

  [[nodiscard]] bool optimal() const {
    return status == SolveStatus::kOptimal;
  }
};

/// Solves `problem` where every variable listed in `binary_vars` must take
/// a value in {0, 1}.  The solver clamps those variables to [0, 1] via
/// bounds itself (no x <= 1 rows needed) and branches by fixing bounds in
/// place; each child node's relaxation warm-starts from its parent's
/// optimal basis, so deep nodes typically re-solve in a handful of pivots.
[[nodiscard]] MipSolution solve_mip(const Problem& problem,
                                    const std::vector<VarIndex>& binary_vars,
                                    const MipOptions& options = {});

}  // namespace switchboard::lp
