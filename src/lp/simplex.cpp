// Bounded-variable two-phase revised primal simplex over a sparse LU.
//
// Internal model: minimize c'x subject to A x + s = b where one slack s_r
// is appended per row and ranged by the row's relation (<=: s in [0,inf),
// >=: s in (-inf,0], =: s = 0).  Simple bounds on structural variables are
// never expanded into rows — a nonbasic variable simply sits at its lower
// or upper bound (VarStatus) and the ratio test allows bound-to-bound
// flips that never touch the basis.
//
// Phase 1 is artificial-free: the all-slack basis B = I is always
// available, and when a (warm-started) basis is primal infeasible the
// phase-1 objective is the sum of basic bound violations, re-derived each
// iteration from which basics currently sit outside their range (basic
// below lower prices as -1, above upper as +1).  The ratio test takes
// short steps — an infeasible basic blocks at the bound it is violating —
// so feasibility is repaired monotonically and a primal-feasible warm
// basis skips phase 1 outright.
//
// Determinism: candidate-list partial pricing with full Dantzig rescans,
// every tie broken toward the lowest index, and a Bland's-rule fallback
// after a run of degenerate pivots.  No randomness, no pointer-order
// iteration: repeated solves of the same Problem are bit-identical.
#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"
#include "lp/sparse_lu.hpp"

namespace switchboard::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

enum class PhaseResult {
  kDone,        // phase objective reached (feasible / optimal)
  kInfeasible,
  kUnbounded,
  kIterLimit,
  kRestart,     // numerically singular basis; caller restarts cold
};

enum class StepResult { kPivoted, kFlipped, kUnbounded, kFactorFail };

class SparseSimplex {
 public:
  SparseSimplex(const Problem& problem, const SimplexOptions& options)
      : opt_{options},
        n_{problem.variable_count()},
        m_{problem.constraint_count()},
        total_{n_ + m_},
        sign_{problem.sense() == Sense::kMinimize ? 1.0 : -1.0} {
    cols_.resize(total_);
    cost_.assign(total_, 0.0);
    lower_.assign(total_, 0.0);
    upper_.assign(total_, kInf);
    rhs_.resize(m_);
    for (VarIndex v = 0; v < n_; ++v) {
      cost_[v] = sign_ * problem.objective_coeff(v);
      lower_[v] = problem.lower_bound(v);
      upper_[v] = problem.upper_bound(v);
    }
    const auto& constraints = problem.constraints();
    for (std::size_t r = 0; r < m_; ++r) {
      const Constraint& row = constraints[r];
      rhs_[r] = row.rhs;
      for (const Term& t : row.terms) {
        cols_[t.var].push_back({static_cast<std::uint32_t>(r), t.coeff});
      }
      const std::size_t s = n_ + r;
      cols_[s].push_back({static_cast<std::uint32_t>(r), 1.0});
      switch (row.relation) {
        case Relation::kLessEqual:
          break;  // slack in [0, inf)
        case Relation::kGreaterEqual:
          lower_[s] = -kInf;
          upper_[s] = 0.0;
          break;
        case Relation::kEqual:
          upper_[s] = 0.0;  // fixed at zero
          break;
      }
    }
  }

  Solution run(const Basis* warm) {
    bool warm_ok = warm != nullptr && !warm->empty() && load_warm(*warm);
    if (!warm_ok) load_cold();
    if (!refactorize()) {
      // A singular warm basis falls back to the (identity) cold start.
      if (!warm_ok) return finish(SolveStatus::kIterationLimit);
      warm_ok = false;
      load_cold();
      if (!refactorize()) return finish(SolveStatus::kIterationLimit);
    }
    stats_.warm_started = warm_ok;

    for (int attempt = 0; attempt < 2; ++attempt) {
      PhaseResult pr = PhaseResult::kDone;
      if (has_violations()) {
        pr = phase1();
      } else if (attempt == 0) {
        stats_.phase1_skipped = true;
      }
      if (pr == PhaseResult::kDone) pr = phase2();
      switch (pr) {
        case PhaseResult::kDone:
          return finish(SolveStatus::kOptimal);
        case PhaseResult::kInfeasible:
          return finish(SolveStatus::kInfeasible);
        case PhaseResult::kUnbounded:
          return finish(SolveStatus::kUnbounded);
        case PhaseResult::kIterLimit:
          return finish(SolveStatus::kIterationLimit);
        case PhaseResult::kRestart:
          SB_LOG(kWarn) << "lp: singular basis mid-solve; restarting cold";
          stats_.warm_started = false;
          stats_.phase1_skipped = false;
          load_cold();
          if (!refactorize()) return finish(SolveStatus::kIterationLimit);
          break;
      }
    }
    return finish(SolveStatus::kIterationLimit);
  }

 private:
  // ---- basis loading -----------------------------------------------------

  /// Cold start: every structural variable at its (finite) lower bound,
  /// the all-slack identity basis.
  void load_cold() {
    status_.assign(total_, VarStatus::kAtLower);
    basis_cols_.resize(m_);
    x_.assign(total_, 0.0);
    for (std::size_t v = 0; v < n_; ++v) x_[v] = lower_[v];
    for (std::size_t r = 0; r < m_; ++r) {
      const std::size_t s = n_ + r;
      status_[s] = VarStatus::kBasic;
      basis_cols_[r] = static_cast<std::uint32_t>(s);
    }
  }

  /// Loads a caller-provided basis.  Nonbasic statuses pointing at an
  /// infinite bound are redirected to the finite one; returns false when
  /// the dimensions or the basic count don't match the problem.
  bool load_warm(const Basis& warm) {
    if (warm.variables.size() != n_ || warm.slacks.size() != m_) return false;
    status_.resize(total_);
    std::copy(warm.variables.begin(), warm.variables.end(), status_.begin());
    std::copy(warm.slacks.begin(), warm.slacks.end(),
              status_.begin() + static_cast<std::ptrdiff_t>(n_));
    basis_cols_.clear();
    x_.assign(total_, 0.0);
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::kBasic) {
        basis_cols_.push_back(static_cast<std::uint32_t>(j));
        continue;
      }
      if (status_[j] == VarStatus::kAtLower && lower_[j] == -kInf) {
        if (upper_[j] == kInf) return false;  // free nonbasic: no home
        status_[j] = VarStatus::kAtUpper;
      } else if (status_[j] == VarStatus::kAtUpper && upper_[j] == kInf) {
        status_[j] = VarStatus::kAtLower;
      }
      x_[j] = status_[j] == VarStatus::kAtLower ? lower_[j] : upper_[j];
    }
    return basis_cols_.size() == m_;
  }

  /// Rebuilds the LU from the current basis and recomputes basic values
  /// from scratch: x_B = B^{-1} (b - N x_N).
  bool refactorize() {
    ++stats_.refactorizations;
    col_ptrs_.resize(m_);
    for (std::size_t i = 0; i < m_; ++i) col_ptrs_[i] = &cols_[basis_cols_[i]];
    if (!lu_.factorize(m_, col_ptrs_)) return false;
    pivots_since_refactor_ = 0;
    recompute_basics();
    return true;
  }

  void recompute_basics() {
    rvec_ = rhs_;
    for (std::size_t j = 0; j < total_; ++j) {
      if (status_[j] == VarStatus::kBasic || x_[j] == 0.0) continue;
      const double xj = x_[j];
      for (const SparseEntry& e : cols_[j]) rvec_[e.row] -= e.value * xj;
    }
    lu_.ftran(rvec_);
    for (std::size_t i = 0; i < m_; ++i) x_[basis_cols_[i]] = rvec_[i];
  }

  [[nodiscard]] bool has_violations() const {
    const double ftol = opt_.feasibility_tol;
    for (std::size_t i = 0; i < m_; ++i) {
      const std::size_t j = basis_cols_[i];
      if (x_[j] < lower_[j] - ftol || x_[j] > upper_[j] + ftol) return true;
    }
    return false;
  }

  // ---- phases ------------------------------------------------------------

  PhaseResult phase1() {
    std::size_t degenerate_run = 0;
    candidates_.clear();
    while (total_iterations_ < opt_.max_iterations) {
      // Phase-1 costs are re-derived from the current violations: a basic
      // below its lower bound wants to rise (prices -1), one above its
      // upper wants to fall (+1).  Nonbasic columns cost zero.
      y_.assign(m_, 0.0);
      bool violated = false;
      const double ftol = opt_.feasibility_tol;
      for (std::size_t i = 0; i < m_; ++i) {
        const std::size_t j = basis_cols_[i];
        if (x_[j] < lower_[j] - ftol) {
          y_[i] = -1.0;
          violated = true;
        } else if (x_[j] > upper_[j] + ftol) {
          y_[i] = 1.0;
          violated = true;
        }
      }
      if (!violated) return PhaseResult::kDone;
      lu_.btran(y_);

      const bool bland = degenerate_run >= opt_.degeneracy_threshold;
      const std::size_t entering = price(/*phase1=*/true, bland);
      if (entering == kNone) return PhaseResult::kInfeasible;
      ++stats_.phase1_iterations;
      ++total_iterations_;

      switch (step(entering, /*phase1=*/true, degenerate_run)) {
        case StepResult::kUnbounded:
          // Cannot happen with the short-step rules (some violated basic
          // always blocks); treat as numerical trouble.
          SB_LOG(kWarn) << "lp: unbounded phase-1 direction";
          return PhaseResult::kIterLimit;
        case StepResult::kFactorFail:
          return PhaseResult::kRestart;
        case StepResult::kPivoted:
        case StepResult::kFlipped:
          break;
      }
    }
    return PhaseResult::kIterLimit;
  }

  PhaseResult phase2() {
    std::size_t degenerate_run = 0;
    candidates_.clear();  // phase-1 scores are stale
    while (total_iterations_ < opt_.max_iterations) {
      y_.assign(m_, 0.0);
      bool any = false;
      for (std::size_t i = 0; i < m_; ++i) {
        const double c = cost_[basis_cols_[i]];
        if (c != 0.0) {
          y_[i] = c;
          any = true;
        }
      }
      if (any) lu_.btran(y_);

      const bool bland = degenerate_run >= opt_.degeneracy_threshold;
      const std::size_t entering = price(/*phase1=*/false, bland);
      if (entering == kNone) return PhaseResult::kDone;
      ++stats_.phase2_iterations;
      ++total_iterations_;

      switch (step(entering, /*phase1=*/false, degenerate_run)) {
        case StepResult::kUnbounded:
          return PhaseResult::kUnbounded;
        case StepResult::kFactorFail:
          return PhaseResult::kRestart;
        case StepResult::kPivoted:
        case StepResult::kFlipped:
          break;
      }
    }
    return PhaseResult::kIterLimit;
  }

  // ---- pricing -----------------------------------------------------------

  [[nodiscard]] double reduced_cost(std::size_t j, bool phase1) const {
    double d = phase1 ? 0.0 : cost_[j];
    for (const SparseEntry& e : cols_[j]) d -= y_[e.row] * e.value;
    return d;
  }

  [[nodiscard]] bool eligible(std::size_t j, double d) const {
    // At lower: increasing improves iff d < 0; at upper: decreasing
    // improves iff d > 0.
    return (status_[j] == VarStatus::kAtLower && d < -opt_.optimality_tol) ||
           (status_[j] == VarStatus::kAtUpper && d > opt_.optimality_tol);
  }

  [[nodiscard]] bool unpriceable(std::size_t j) const {
    return status_[j] == VarStatus::kBasic || lower_[j] == upper_[j];
  }

  /// Returns the entering column, or kNone when no nonbasic column can
  /// improve the current phase objective (verified by a FULL scan).
  std::size_t price(bool phase1, bool bland) {
    if (bland) {
      // Bland's rule: lowest-index eligible column; guarantees
      // termination under degeneracy.
      for (std::size_t j = 0; j < total_; ++j) {
        if (unpriceable(j)) continue;
        if (eligible(j, reduced_cost(j, phase1))) return j;
      }
      return kNone;
    }
    // Minor pass: reprice the candidate list only, pruning entries that
    // are no longer eligible.
    std::size_t best = kNone;
    double best_score = 0.0;
    std::size_t keep = 0;
    for (const std::uint32_t j : candidates_) {
      if (unpriceable(j)) continue;
      const double d = reduced_cost(j, phase1);
      if (!eligible(j, d)) continue;
      candidates_[keep++] = j;
      const double score = std::abs(d);
      if (score > best_score || (score == best_score && j < best)) {
        best_score = score;
        best = j;
      }
    }
    candidates_.resize(keep);
    if (best != kNone) return best;
    // Full Dantzig scan; rebuild the candidate list from the top scorers.
    scored_.clear();
    for (std::size_t j = 0; j < total_; ++j) {
      if (unpriceable(j)) continue;
      const double d = reduced_cost(j, phase1);
      if (eligible(j, d)) {
        scored_.push_back({std::abs(d), static_cast<std::uint32_t>(j)});
      }
    }
    if (scored_.empty()) return kNone;
    const std::size_t k = std::min(opt_.candidate_list_size, scored_.size());
    std::partial_sort(scored_.begin(),
                      scored_.begin() + static_cast<std::ptrdiff_t>(k),
                      scored_.end(), [](const Scored& a, const Scored& b) {
                        return a.score != b.score ? a.score > b.score
                                                  : a.index < b.index;
                      });
    candidates_.resize(k);
    for (std::size_t i = 0; i < k; ++i) candidates_[i] = scored_[i].index;
    return candidates_[0];
  }

  // ---- ratio test and pivot ----------------------------------------------

  /// Moves the entering column: computes w = B^{-1} a_q, runs the
  /// two-sided (phase-aware) ratio test, and either flips the entering
  /// variable to its opposite bound or pivots it into the basis.
  StepResult step(std::size_t entering, bool phase1,
                  std::size_t& degenerate_run) {
    w_.assign(m_, 0.0);
    for (const SparseEntry& e : cols_[entering]) w_[e.row] = e.value;
    lu_.ftran(w_);

    // Entering moves up from its lower bound or down from its upper.
    const double t = status_[entering] == VarStatus::kAtLower ? 1.0 : -1.0;
    const double ftol = opt_.feasibility_tol;

    std::size_t best_row = kNone;
    double best_theta = kInf;
    VarStatus leave_status = VarStatus::kAtLower;
    for (std::size_t i = 0; i < m_; ++i) {
      if (std::abs(w_[i]) <= opt_.pivot_tol) continue;
      const std::size_t j = basis_cols_[i];
      // x_j(theta) = x_j - theta * rate.
      const double rate = t * w_[i];
      const double xj = x_[j];
      double theta;
      VarStatus bound;
      if (phase1 && xj < lower_[j] - ftol) {
        // Infeasible below: blocks only while rising toward its lower
        // bound (short step — feasibility is repaired, never overshot).
        if (rate >= 0.0) continue;
        theta = (lower_[j] - xj) / -rate;
        bound = VarStatus::kAtLower;
      } else if (phase1 && xj > upper_[j] + ftol) {
        if (rate <= 0.0) continue;
        theta = (xj - upper_[j]) / rate;
        bound = VarStatus::kAtUpper;
      } else if (rate > 0.0) {
        if (lower_[j] == -kInf) continue;
        theta = (xj - lower_[j]) / rate;
        bound = VarStatus::kAtLower;
      } else {
        if (upper_[j] == kInf) continue;
        theta = (upper_[j] - xj) / -rate;
        bound = VarStatus::kAtUpper;
      }
      theta = std::max(theta, 0.0);
      if (theta < best_theta - 1e-12 ||
          (theta < best_theta + 1e-12 && best_row != kNone &&
           j < basis_cols_[best_row])) {
        best_theta = theta;
        best_row = i;
        leave_status = bound;
      }
    }

    // The entering variable's own range can block first: a bound flip
    // moves it to the opposite bound without touching the basis.
    const double range = upper_[entering] - lower_[entering];
    if (std::isfinite(range) && range <= best_theta) {
      for (std::size_t i = 0; i < m_; ++i) {
        if (w_[i] != 0.0) x_[basis_cols_[i]] -= t * range * w_[i];
      }
      x_[entering] = t > 0.0 ? upper_[entering] : lower_[entering];
      status_[entering] = t > 0.0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
      ++stats_.bound_flips;
      degenerate_run = range <= ftol ? degenerate_run + 1 : 0;
      return StepResult::kFlipped;
    }
    if (best_row == kNone) return StepResult::kUnbounded;

    const double theta = best_theta;
    for (std::size_t i = 0; i < m_; ++i) {
      if (w_[i] != 0.0) x_[basis_cols_[i]] -= t * theta * w_[i];
    }
    x_[entering] += t * theta;
    const std::size_t leaving = basis_cols_[best_row];
    // Snap the leaving variable exactly onto its blocking bound.
    x_[leaving] = leave_status == VarStatus::kAtLower ? lower_[leaving]
                                                      : upper_[leaving];
    status_[leaving] = leave_status;
    status_[entering] = VarStatus::kBasic;
    basis_cols_[best_row] = static_cast<std::uint32_t>(entering);
    degenerate_run = theta <= ftol ? degenerate_run + 1 : 0;
    ++pivots_since_refactor_;

    const bool eta_ok = lu_.push_eta(best_row, w_, opt_.pivot_tol);
    if (!eta_ok || pivots_since_refactor_ >= opt_.refactor_interval) {
      if (!refactorize()) return StepResult::kFactorFail;
    }
    return StepResult::kPivoted;
  }

  // ---- extraction --------------------------------------------------------

  Solution finish(SolveStatus status) {
    stats_.basis_nonzeros = lu_.fill_nonzeros();
    Solution solution;
    solution.status = status;
    solution.stats = stats_;
    if (status != SolveStatus::kOptimal) return solution;
    solution.values.resize(n_);
    double objective = 0.0;
    for (std::size_t v = 0; v < n_; ++v) {
      // Basic values can sit a hair outside their range; snap them in
      // (and normalize -0.0 away so printed solutions are clean).
      double value = std::clamp(x_[v], lower_[v], upper_[v]);
      if (value == 0.0) value = 0.0;
      solution.values[v] = value;
      objective += sign_ * cost_[v] * value;
    }
    solution.objective = objective;
    solution.basis.variables.assign(
        status_.begin(), status_.begin() + static_cast<std::ptrdiff_t>(n_));
    solution.basis.slacks.assign(
        status_.begin() + static_cast<std::ptrdiff_t>(n_), status_.end());
    return solution;
  }

  struct Scored {
    double score;
    std::uint32_t index;
  };

  const SimplexOptions& opt_;
  std::size_t n_;       // structural variables
  std::size_t m_;       // rows (== slack count)
  std::size_t total_;   // n_ + m_
  double sign_;         // +1 minimize, -1 maximize (internal costs minimize)

  std::vector<SparseColumn> cols_;   // structural then slack columns
  std::vector<double> cost_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<double> rhs_;

  std::vector<VarStatus> status_;
  std::vector<std::uint32_t> basis_cols_;   // column basic at each position
  std::vector<double> x_;                   // all column values
  BasisLu lu_;
  std::size_t pivots_since_refactor_{0};
  std::size_t total_iterations_{0};
  SolverStats stats_;

  // Scratch.
  std::vector<double> y_;       // duals (row space)
  std::vector<double> w_;       // entering column FTRAN image
  std::vector<double> rvec_;
  std::vector<const SparseColumn*> col_ptrs_;
  std::vector<std::uint32_t> candidates_;
  std::vector<Scored> scored_;
};

}  // namespace

Solution solve(const Problem& problem, const SimplexOptions& options) {
  if (options.algorithm == SimplexAlgorithm::kDenseReference) {
    return solve_dense_reference(problem, options);
  }
  return solve_simplex(problem, options, nullptr);
}

Solution solve_simplex(const Problem& problem, const SimplexOptions& options,
                       const Basis* warm) {
  if (options.algorithm == SimplexAlgorithm::kDenseReference) {
    return solve_dense_reference(problem, options);
  }
  SparseSimplex engine{problem, options};
  return engine.run(warm);
}

}  // namespace switchboard::lp
