// Sparse LU factorization of a simplex basis, with product-form updates.
//
// The factorization is a left-looking sparse Gaussian elimination (the
// CSparse cs_lu shape): columns are processed in a static fill-reducing
// order (fewest nonzeros first), each one triangular-solved against the L
// built so far via a depth-first reachability walk, and the pivot row is
// chosen by partial pivoting (largest magnitude, lowest row index on
// ties).  Between refactorizations, basis exchanges are absorbed as
// product-form eta vectors: replacing the column at basis position r by a
// column whose FTRAN image is w appends the eta (r, w), so
//
//   B_k = B_0 * E_1 * ... * E_k,   E_i = I with column r_i replaced by w_i
//
// and FTRAN/BTRAN apply the eta file after/before the LU solves.  Every
// choice (pivot order, pivot row, tie-breaks) is deterministic, so solves
// are bit-reproducible across runs and machines with the same FP unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace switchboard::lp {

/// One nonzero of a sparse column.
struct SparseEntry {
  std::uint32_t row;
  double value;
};

using SparseColumn = std::vector<SparseEntry>;

class BasisLu {
 public:
  /// Factorizes the m x m matrix whose columns are `cols` (each sorted or
  /// unsorted; rows < m).  Clears the eta file.  Returns false when the
  /// matrix is numerically singular (pivot below `singular_tol`).
  bool factorize(std::size_t m, const std::vector<const SparseColumn*>& cols,
                 double singular_tol = 1e-11);

  /// x := B^{-1} x (dense in/out, length m).  Non-const only because the
  /// solve reuses internal scratch.
  void ftran(std::vector<double>& x);

  /// x := B^{-T} x (dense in/out, length m).
  void btran(std::vector<double>& x);

  /// Absorbs a basis exchange at position `pos`: the entering column's
  /// FTRAN image is `w` (dense, length m).  Returns false when |w[pos]| is
  /// below `pivot_tol` (caller should refactorize instead).
  bool push_eta(std::size_t pos, const std::vector<double>& w,
                double pivot_tol);

  [[nodiscard]] std::size_t eta_count() const { return etas_.size(); }
  /// Nonzeros of L + U after the last factorize (basis fill-in).
  [[nodiscard]] std::size_t fill_nonzeros() const { return fill_nonzeros_; }
  [[nodiscard]] std::size_t dimension() const { return m_; }

 private:
  struct Eta {
    std::size_t pos;                   // basis position replaced
    double pivot;                      // w[pos]
    std::vector<SparseEntry> other;    // w's nonzeros excluding pos
  };

  std::size_t m_{0};
  // L (unit diagonal implicit) and U in pivot-position space, column-wise.
  // lcol_[k] holds the below-diagonal entries of L's column k; ucol_[k]
  // the above-diagonal entries of U's column k; udiag_[k] the pivot.
  std::vector<std::vector<SparseEntry>> lcol_;
  std::vector<std::vector<SparseEntry>> ucol_;
  std::vector<double> udiag_;
  std::vector<std::uint32_t> row_of_pos_;   // pivot position -> original row
  std::vector<std::uint32_t> pos_of_row_;   // original row -> pivot position
  std::vector<std::uint32_t> col_of_pos_;   // pivot position -> basis column
  std::vector<std::uint32_t> pos_of_col_;   // basis column -> pivot position
  std::vector<Eta> etas_;
  std::size_t fill_nonzeros_{0};

  // Scratch reused across factorize()/ftran()/btran() calls.
  std::vector<double> work_;
  std::vector<std::uint32_t> stack_;
  std::vector<std::uint32_t> stack_entry_;
  std::vector<std::uint8_t> visited_;
};

}  // namespace switchboard::lp
