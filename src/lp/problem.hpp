// Linear-program builder.
//
// Switchboard's traffic-engineering formulations (Section 4.3) are
// constructed as Problem instances and handed to the simplex solver — our
// from-scratch substitute for the CPLEX suite the paper's prototype used.
// Every structural variable carries a [lower, upper] range (default
// [0, +inf)); simple bounds are handled implicitly by the bounded-variable
// simplex instead of being expanded into constraint rows, which keeps the
// basis at the size of the structural constraints.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace switchboard::lp {

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kEqual, kGreaterEqual };

using VarIndex = std::size_t;

/// One coefficient of a constraint row: `coeff * x[var]`.
struct Term {
  VarIndex var;
  double coeff;
};

struct Constraint {
  Relation relation;
  double rhs;
  std::vector<Term> terms;
  std::string name;
};

class Problem {
 public:
  explicit Problem(Sense sense = Sense::kMinimize) : sense_{sense} {}

  /// Adds a variable with the given objective coefficient and range
  /// [0, +inf).  Tighten with set_bounds()/set_upper_bound().
  VarIndex add_variable(double objective_coeff, std::string name = "");

  /// Adds `sum(terms) relation rhs`.  Duplicate `var` entries in `terms`
  /// are summed.  Returns the row index.
  std::size_t add_constraint(Relation relation, double rhs,
                             std::vector<Term> terms, std::string name = "");

  void set_objective_coeff(VarIndex var, double coeff);
  void set_sense(Sense sense) { sense_ = sense; }

  /// Sets the variable's range.  `lower` must be finite and <= `upper`;
  /// `upper` may be +inf.  `lower == upper` fixes the variable.
  void set_bounds(VarIndex var, double lower, double upper);
  /// Shorthand: keeps the current lower bound.
  void set_upper_bound(VarIndex var, double upper);

  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] std::size_t variable_count() const { return objective_.size(); }
  [[nodiscard]] std::size_t constraint_count() const {
    return constraints_.size();
  }
  [[nodiscard]] double objective_coeff(VarIndex var) const;
  [[nodiscard]] double lower_bound(VarIndex var) const;
  [[nodiscard]] double upper_bound(VarIndex var) const;
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const std::string& variable_name(VarIndex var) const;

 private:
  Sense sense_;
  std::vector<double> objective_;
  std::vector<double> lower_;
  std::vector<double> upper_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] const char* to_string(SolveStatus status);

// ------------------------------------------------------------- warm starts

/// Where a variable sits relative to the current basis.  Nonbasic-at-upper
/// is what lets `x <= u` live as a status instead of a constraint row.
enum class VarStatus : std::uint8_t { kAtLower, kAtUpper, kBasic };

/// A (structural + per-row slack) status assignment: the simplex's final
/// resting point, replayable as a warm start for a related problem.  The
/// number of kBasic entries must equal the row count to name a basis.
struct Basis {
  std::vector<VarStatus> variables;   // one per structural variable
  std::vector<VarStatus> slacks;      // one per constraint row

  [[nodiscard]] bool empty() const {
    return variables.empty() && slacks.empty();
  }
};

/// Work counters of one solve, surfaced through Solution/bench JSON.
struct SolverStats {
  std::size_t phase1_iterations{0};
  std::size_t phase2_iterations{0};
  std::size_t bound_flips{0};         // nonbasic lower<->upper, no pivot
  std::size_t refactorizations{0};    // sparse LU rebuilds (incl. initial)
  std::size_t basis_nonzeros{0};      // LU fill-in at the last rebuild
  bool warm_started{false};           // a caller basis was accepted
  bool phase1_skipped{false};         // warm basis was primal feasible

  [[nodiscard]] std::size_t iterations() const {
    return phase1_iterations + phase2_iterations;
  }
};

struct Solution {
  SolveStatus status{SolveStatus::kIterationLimit};
  double objective{0.0};
  std::vector<double> values;   // one per structural variable
  /// Final variable statuses (empty for the dense reference mode and for
  /// non-optimal exits before a basis existed); feed back into
  /// solve_simplex() to warm-start a related solve.
  Basis basis;
  SolverStats stats;

  [[nodiscard]] bool optimal() const {
    return status == SolveStatus::kOptimal;
  }
};

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace switchboard::lp
