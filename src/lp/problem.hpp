// Linear-program builder.
//
// Switchboard's traffic-engineering formulations (Section 4.3) are
// constructed as Problem instances and handed to the simplex solver — our
// from-scratch substitute for the CPLEX suite the paper's prototype used.
// All structural variables are non-negative; upper bounds, where a
// formulation needs them, are expressed as explicit constraints.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace switchboard::lp {

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kEqual, kGreaterEqual };

using VarIndex = std::size_t;

/// One coefficient of a constraint row: `coeff * x[var]`.
struct Term {
  VarIndex var;
  double coeff;
};

struct Constraint {
  Relation relation;
  double rhs;
  std::vector<Term> terms;
  std::string name;
};

class Problem {
 public:
  explicit Problem(Sense sense = Sense::kMinimize) : sense_{sense} {}

  /// Adds a non-negative variable with the given objective coefficient.
  VarIndex add_variable(double objective_coeff, std::string name = "");

  /// Adds `sum(terms) relation rhs`.  Duplicate `var` entries in `terms`
  /// are summed.  Returns the row index.
  std::size_t add_constraint(Relation relation, double rhs,
                             std::vector<Term> terms, std::string name = "");

  void set_objective_coeff(VarIndex var, double coeff);
  void set_sense(Sense sense) { sense_ = sense; }

  [[nodiscard]] Sense sense() const { return sense_; }
  [[nodiscard]] std::size_t variable_count() const { return objective_.size(); }
  [[nodiscard]] std::size_t constraint_count() const {
    return constraints_.size();
  }
  [[nodiscard]] double objective_coeff(VarIndex var) const;
  [[nodiscard]] const std::vector<Constraint>& constraints() const {
    return constraints_;
  }
  [[nodiscard]] const std::string& variable_name(VarIndex var) const;

 private:
  Sense sense_;
  std::vector<double> objective_;
  std::vector<std::string> names_;
  std::vector<Constraint> constraints_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] const char* to_string(SolveStatus status);

struct Solution {
  SolveStatus status{SolveStatus::kIterationLimit};
  double objective{0.0};
  std::vector<double> values;   // one per structural variable

  [[nodiscard]] bool optimal() const {
    return status == SolveStatus::kOptimal;
  }
};

}  // namespace switchboard::lp
