#include "lp/mip.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace switchboard::lp {
namespace {

struct Fixing {
  VarIndex var;
  double value;   // 0.0 or 1.0
};

/// One branch-and-bound node: the bound fixings that define it plus the
/// parent relaxation's basis, shared (not copied) between siblings and
/// replayed as a warm start — the child LP differs from the parent's only
/// by one variable's bounds, so the parent basis is usually a few pivots
/// from the child's optimum.
struct Node {
  std::vector<Fixing> fixings;
  std::shared_ptr<const Basis> warm;
};

}  // namespace

MipSolution solve_mip(const Problem& problem,
                      const std::vector<VarIndex>& binary_vars,
                      const MipOptions& options) {
  MipSolution best;
  const bool minimize = problem.sense() == Sense::kMinimize;
  const double worst = minimize ? std::numeric_limits<double>::infinity()
                                : -std::numeric_limits<double>::infinity();
  double incumbent = worst;

  // `improves(a, b)`: is objective a strictly better than b?
  const auto improves = [minimize](double a, double b) {
    return minimize ? a < b : a > b;
  };
  // Can a relaxation bound still beat the incumbent (within gap)?
  const auto promising = [&](double bound) {
    if (incumbent == worst) return true;
    const double slack = std::abs(incumbent) * options.gap_tol + 1e-12;
    return minimize ? bound < incumbent - slack : bound > incumbent + slack;
  };

  // One working copy; branching applies and restores bounds in place
  // instead of cloning the Problem per node.
  Problem node_problem = problem;
  for (const VarIndex v : binary_vars) {
    node_problem.set_bounds(v, 0.0, 1.0);
  }

  std::vector<Node> stack;
  stack.push_back({});
  bool any_feasible = false;

  while (!stack.empty() && best.nodes_explored < options.max_nodes) {
    const Node node = std::move(stack.back());
    stack.pop_back();
    ++best.nodes_explored;

    for (const Fixing& f : node.fixings) {
      node_problem.set_bounds(f.var, f.value, f.value);
    }
    const Solution relax =
        solve_simplex(node_problem, options.lp, node.warm.get());
    for (const Fixing& f : node.fixings) {
      node_problem.set_bounds(f.var, 0.0, 1.0);
    }
    best.lp_iterations += relax.stats.iterations();
    if (relax.stats.warm_started) ++best.warm_started_nodes;

    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kUnbounded) {
      best.status = SolveStatus::kUnbounded;
      return best;
    }
    if (relax.status == SolveStatus::kIterationLimit) continue;
    any_feasible = true;
    if (!promising(relax.objective)) continue;

    // Most fractional binary variable.
    VarIndex branch_var = problem.variable_count();
    double branch_score = options.integrality_tol;
    for (const VarIndex v : binary_vars) {
      const double x = relax.values[v];
      const double frac = std::abs(x - std::round(x));
      if (frac > branch_score) {
        branch_score = frac;
        branch_var = v;
      }
    }

    if (branch_var == problem.variable_count()) {
      // Integral solution.
      if (incumbent == worst || improves(relax.objective, incumbent)) {
        incumbent = relax.objective;
        best.objective = relax.objective;
        best.values = relax.values;
        // Snap binaries exactly.
        for (const VarIndex v : binary_vars) {
          best.values[v] = std::round(best.values[v]);
        }
      }
      continue;
    }

    // Branch: explore the rounded-toward side first (DFS order means the
    // later-pushed child is explored first).  Both children warm-start
    // from this node's final basis.
    auto warm = relax.basis.empty()
                    ? nullptr
                    : std::make_shared<const Basis>(relax.basis);
    const double x = relax.values[branch_var];
    Node lo{node.fixings, warm};
    lo.fixings.push_back({branch_var, 0.0});
    Node hi{node.fixings, std::move(warm)};
    hi.fixings.push_back({branch_var, 1.0});
    if (x >= 0.5) {
      stack.push_back(std::move(lo));
      stack.push_back(std::move(hi));
    } else {
      stack.push_back(std::move(hi));
      stack.push_back(std::move(lo));
    }
  }

  if (!best.values.empty()) {
    best.status = SolveStatus::kOptimal;
  } else if (stack.empty()) {
    // Search tree exhausted with no integral solution: the MIP itself is
    // infeasible, even if LP relaxations along the way were feasible.
    best.status = SolveStatus::kInfeasible;
  } else {
    best.status =
        any_feasible ? SolveStatus::kIterationLimit : SolveStatus::kInfeasible;
  }
  return best;
}

}  // namespace switchboard::lp
