// Bounded-variable two-phase revised primal simplex.
//
// Engineering choices suited to Switchboard's TE problems (tens of
// thousands of sparse columns, thousands of rows):
//   * constraint matrix stored column-sparse; simple bounds `l <= x <= u`
//     handled as nonbasic-at-lower/upper statuses, never as rows, so the
//     basis stays at the size of the structural constraints;
//   * sparse LU factorization of the basis (sparse_lu.hpp) with
//     product-form eta updates and periodic / instability-triggered
//     refactorization — no dense m^2 inverse anywhere;
//   * artificial-free phase 1: the all-slack basis is always available and
//     the phase-1 objective is the sum of basic bound violations, so warm
//     starts that are primal feasible skip phase 1 entirely and infeasible
//     ones are repaired in place;
//   * candidate-list partial pricing (full Dantzig scans only when the
//     list runs dry) with deterministic lowest-index tie-breaking and a
//     Bland's-rule fallback when degeneracy stalls progress, so solves are
//     bit-reproducible and guaranteed to terminate.
//
// The previous dense-inverse implementation is kept as a reference mode
// (SimplexAlgorithm::kDenseReference); property tests assert status parity
// and objective agreement between the two on seeded random LPs.
#pragma once

#include <cstddef>

#include "lp/problem.hpp"

namespace switchboard::lp {

enum class SimplexAlgorithm {
  kSparse,           // bounded-variable revised simplex over a sparse LU
  kDenseReference,   // dense basis inverse; bounds expanded into rows
};

struct SimplexOptions {
  std::size_t max_iterations{200'000};
  double feasibility_tol{1e-7};
  double optimality_tol{1e-7};
  double pivot_tol{1e-9};
  /// Rebuild the basis factorization every this many pivots (the eta file
  /// also triggers an earlier rebuild once it outgrows the LU).
  std::size_t refactor_interval{128};
  /// Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t degeneracy_threshold{64};
  /// Candidate-list size for partial pricing (sparse engine only).
  std::size_t candidate_list_size{64};
  SimplexAlgorithm algorithm{SimplexAlgorithm::kSparse};
};

/// Solves `problem`; `options` tunes tolerances and limits.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

/// As solve(), optionally warm-started: when `warm` names a basis whose
/// dimensions match the problem and whose basic count equals the row
/// count, the solve starts there — skipping phase 1 outright when the
/// basis is primal feasible and repairing it with the bounded phase 1
/// otherwise.  A mismatched or singular warm basis silently falls back to
/// the cold all-slack start (stats.warm_started reports what happened).
/// The dense reference mode ignores `warm`.
[[nodiscard]] Solution solve_simplex(const Problem& problem,
                                     const SimplexOptions& options,
                                     const Basis* warm);

/// The dense-inverse reference solver (previous implementation).  Simple
/// bounds are expanded into explicit rows, general lower bounds handled by
/// variable shifting.  Used by tests and benchmarks to cross-check the
/// sparse engine; returns an empty Solution::basis.
[[nodiscard]] Solution solve_dense_reference(const Problem& problem,
                                             const SimplexOptions& options);

}  // namespace switchboard::lp
