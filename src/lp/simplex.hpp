// Two-phase revised primal simplex.
//
// Engineering choices suited to Switchboard's TE problems (thousands of
// sparse columns, hundreds-to-thousands of rows):
//   * constraint matrix stored column-sparse,
//   * dense basis inverse updated in O(m^2) per pivot,
//   * periodic refactorization (Gauss-Jordan) to bound numerical drift,
//   * Dantzig pricing with an automatic switch to Bland's rule when
//     degeneracy stalls progress, guaranteeing termination.
#pragma once

#include <cstddef>

#include "lp/problem.hpp"

namespace switchboard::lp {

struct SimplexOptions {
  std::size_t max_iterations{200'000};
  double feasibility_tol{1e-7};
  double optimality_tol{1e-7};
  double pivot_tol{1e-9};
  /// Rebuild the basis inverse from scratch every this many pivots.
  std::size_t refactor_interval{256};
  /// Consecutive degenerate pivots before switching to Bland's rule.
  std::size_t degeneracy_threshold{64};
};

/// Solves `problem`; `options` tunes tolerances and limits.
[[nodiscard]] Solution solve(const Problem& problem,
                             const SimplexOptions& options = {});

}  // namespace switchboard::lp
