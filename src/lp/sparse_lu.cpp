#include "lp/sparse_lu.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace switchboard::lp {

bool BasisLu::factorize(std::size_t m,
                        const std::vector<const SparseColumn*>& cols,
                        double singular_tol) {
  SWB_CHECK(cols.size() == m);
  m_ = m;
  etas_.clear();
  lcol_.assign(m, {});
  ucol_.assign(m, {});
  udiag_.assign(m, 0.0);
  row_of_pos_.assign(m, 0);
  pos_of_row_.assign(m, 0);
  col_of_pos_.assign(m, 0);
  pos_of_col_.assign(m, 0);
  fill_nonzeros_ = 0;
  if (m == 0) return true;

  // Static fill-reducing order: fewest nonzeros first, index on ties.
  std::vector<std::uint32_t> order(m);
  for (std::size_t j = 0; j < m; ++j) {
    order[j] = static_cast<std::uint32_t>(j);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::size_t na = cols[a]->size();
              const std::size_t nb = cols[b]->size();
              return na != nb ? na < nb : a < b;
            });

  // pinv[row]: pivot position that claimed the row, or -1.  During the
  // factorization L's columns are stored with ORIGINAL row indices (a row
  // may be pivoted later); they are renumbered to pivot positions at the
  // end so the solves run in triangular position space.
  std::vector<std::int32_t> pinv(m, -1);
  std::vector<std::vector<SparseEntry>> lraw(m);
  work_.assign(m, 0.0);
  visited_.assign(m, 0);
  std::vector<std::uint32_t> topo;
  topo.reserve(64);
  stack_.clear();
  stack_entry_.clear();

  for (std::size_t k = 0; k < m; ++k) {
    const SparseColumn& a = *cols[order[k]];
    // --- symbolic: depth-first reach of a's rows through built L columns.
    topo.clear();
    for (const SparseEntry& e : a) {
      SWB_CHECK(e.row < m);
      if (visited_[e.row] != 0) continue;
      // Iterative DFS with explicit (node, child cursor) stack.
      stack_.assign(1, e.row);
      stack_entry_.assign(1, 0);
      visited_[e.row] = 1;
      while (!stack_.empty()) {
        const std::uint32_t r = stack_.back();
        const std::int32_t j = pinv[r];
        const std::vector<SparseEntry>* children =
            j >= 0 ? &lraw[static_cast<std::size_t>(j)] : nullptr;
        bool descended = false;
        if (children != nullptr) {
          std::uint32_t& cursor = stack_entry_.back();
          while (cursor < children->size()) {
            const std::uint32_t child = (*children)[cursor++].row;
            if (visited_[child] == 0) {
              visited_[child] = 1;
              stack_.push_back(child);
              stack_entry_.push_back(0);
              descended = true;
              break;
            }
          }
        }
        if (!descended) {
          topo.push_back(r);
          stack_.pop_back();
          stack_entry_.pop_back();
        }
      }
    }
    // Reverse postorder = topological order: a node's value is final
    // before any node it updates.
    std::reverse(topo.begin(), topo.end());

    // --- numeric: x = L^{-1} P a on the reached pattern.
    for (const SparseEntry& e : a) work_[e.row] += e.value;
    for (const std::uint32_t r : topo) {
      const std::int32_t j = pinv[r];
      if (j < 0) continue;
      const double xr = work_[r];
      if (xr == 0.0) continue;
      for (const SparseEntry& e : lraw[static_cast<std::size_t>(j)]) {
        work_[e.row] -= e.value * xr;
      }
    }

    // --- pivot: partial pivoting over unpivoted rows, lowest row on ties.
    std::uint32_t pivot_row = 0;
    double pivot_mag = -1.0;
    for (const std::uint32_t r : topo) {
      if (pinv[r] >= 0) continue;
      const double mag = std::abs(work_[r]);
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < singular_tol) {
      for (const std::uint32_t r : topo) {
        work_[r] = 0.0;
        visited_[r] = 0;
      }
      return false;
    }
    const double pivot = work_[pivot_row];

    // --- emit the U column (pivoted rows) and the L column (the rest).
    std::vector<SparseEntry>& ucol = ucol_[k];
    std::vector<SparseEntry>& lcol = lraw[k];
    for (const std::uint32_t r : topo) {
      const double v = work_[r];
      work_[r] = 0.0;
      visited_[r] = 0;
      if (v == 0.0) continue;
      if (pinv[r] >= 0) {
        ucol.push_back({static_cast<std::uint32_t>(pinv[r]), v});
      } else if (r != pivot_row) {
        lcol.push_back({r, v / pivot});
      }
    }
    pinv[pivot_row] = static_cast<std::int32_t>(k);
    udiag_[k] = pivot;
    row_of_pos_[k] = pivot_row;
    col_of_pos_[k] = order[k];
    pos_of_col_[order[k]] = static_cast<std::uint32_t>(k);
    fill_nonzeros_ += ucol.size() + lcol.size() + 1;
  }

  for (std::size_t r = 0; r < m; ++r) {
    pos_of_row_[r] = static_cast<std::uint32_t>(pinv[r]);
  }
  // Renumber L's rows into pivot-position space (now fully known).
  for (std::size_t k = 0; k < m; ++k) {
    lcol_[k] = std::move(lraw[k]);
    for (SparseEntry& e : lcol_[k]) e.row = pos_of_row_[e.row];
  }
  return true;
}

void BasisLu::ftran(std::vector<double>& x) {
  SWB_DCHECK(x.size() == m_);
  std::vector<double>& b = work_;
  b.resize(m_);
  // P: original rows -> pivot positions.
  for (std::size_t k = 0; k < m_; ++k) b[k] = x[row_of_pos_[k]];
  // L z = Pb (unit diagonal, forward).
  for (std::size_t k = 0; k < m_; ++k) {
    const double xr = b[k];
    if (xr == 0.0) continue;
    for (const SparseEntry& e : lcol_[k]) b[e.row] -= e.value * xr;
  }
  // U w = z (backward).
  for (std::size_t k = m_; k-- > 0;) {
    const double wk = b[k] / udiag_[k];
    b[k] = wk;
    if (wk == 0.0) continue;
    for (const SparseEntry& e : ucol_[k]) b[e.row] -= e.value * wk;
  }
  // Q: pivot positions -> basis positions.
  for (std::size_t k = 0; k < m_; ++k) x[col_of_pos_[k]] = b[k];
  // Eta file, oldest first: B_k^{-1} = E_k^{-1} ... E_1^{-1} B_0^{-1}.
  for (const Eta& eta : etas_) {
    const double xp = x[eta.pos] / eta.pivot;
    x[eta.pos] = xp;
    if (xp == 0.0) continue;
    for (const SparseEntry& e : eta.other) x[e.row] -= e.value * xp;
  }
}

void BasisLu::btran(std::vector<double>& x) {
  SWB_DCHECK(x.size() == m_);
  // Eta file, newest first: solve E^T v = c per eta.
  for (std::size_t i = etas_.size(); i-- > 0;) {
    const Eta& eta = etas_[i];
    double s = x[eta.pos];
    for (const SparseEntry& e : eta.other) s -= e.value * x[e.row];
    x[eta.pos] = s / eta.pivot;
  }
  std::vector<double>& b = work_;
  b.resize(m_);
  // Q^T: basis positions -> pivot positions.
  for (std::size_t k = 0; k < m_; ++k) b[k] = x[col_of_pos_[k]];
  // U^T v = b (U^T is lower triangular; gather along U's columns).
  for (std::size_t k = 0; k < m_; ++k) {
    double s = b[k];
    for (const SparseEntry& e : ucol_[k]) s -= e.value * b[e.row];
    b[k] = s / udiag_[k];
  }
  // L^T y = v (L^T is upper triangular, unit diagonal).
  for (std::size_t k = m_; k-- > 0;) {
    double s = b[k];
    for (const SparseEntry& e : lcol_[k]) s -= e.value * b[e.row];
    b[k] = s;
  }
  // P^T: pivot positions -> original rows.
  for (std::size_t k = 0; k < m_; ++k) x[row_of_pos_[k]] = b[k];
}

bool BasisLu::push_eta(std::size_t pos, const std::vector<double>& w,
                       double pivot_tol) {
  SWB_DCHECK(pos < m_ && w.size() == m_);
  if (std::abs(w[pos]) <= pivot_tol) return false;
  Eta eta;
  eta.pos = pos;
  eta.pivot = w[pos];
  for (std::size_t i = 0; i < m_; ++i) {
    if (i != pos && w[i] != 0.0) {
      eta.other.push_back({static_cast<std::uint32_t>(i), w[i]});
    }
  }
  etas_.push_back(std::move(eta));
  return true;
}

}  // namespace switchboard::lp
