#include "lp/problem.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace switchboard::lp {

VarIndex Problem::add_variable(double objective_coeff, std::string name) {
  objective_.push_back(objective_coeff);
  lower_.push_back(0.0);
  upper_.push_back(kInfinity);
  names_.push_back(std::move(name));
  return objective_.size() - 1;
}

void Problem::set_bounds(VarIndex var, double lower, double upper) {
  SWB_CHECK(var < variable_count());
  SWB_CHECK(std::isfinite(lower)) << "lower bound must be finite";
  SWB_CHECK(lower <= upper) << "empty variable range";
  lower_[var] = lower;
  upper_[var] = upper;
}

void Problem::set_upper_bound(VarIndex var, double upper) {
  SWB_CHECK(var < variable_count());
  set_bounds(var, lower_[var], upper);
}

double Problem::lower_bound(VarIndex var) const {
  SWB_DCHECK(var < variable_count());
  return lower_[var];
}

double Problem::upper_bound(VarIndex var) const {
  SWB_DCHECK(var < variable_count());
  return upper_[var];
}

std::size_t Problem::add_constraint(Relation relation, double rhs,
                                    std::vector<Term> terms,
                                    std::string name) {
  // Merge duplicate variables so the solver sees clean rows.
  std::sort(terms.begin(), terms.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms.size());
  for (const Term& t : terms) {
    SWB_CHECK(t.var < variable_count());
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(t);
    }
  }
  std::erase_if(merged, [](const Term& t) { return t.coeff == 0.0; });
  constraints_.push_back(
      Constraint{relation, rhs, std::move(merged), std::move(name)});
  return constraints_.size() - 1;
}

void Problem::set_objective_coeff(VarIndex var, double coeff) {
  SWB_DCHECK(var < variable_count());
  objective_[var] = coeff;
}

double Problem::objective_coeff(VarIndex var) const {
  SWB_DCHECK(var < variable_count());
  return objective_[var];
}

const std::string& Problem::variable_name(VarIndex var) const {
  SWB_DCHECK(var < variable_count());
  return names_[var];
}

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration_limit";
  }
  return "unknown";
}

}  // namespace switchboard::lp
