// The dense-inverse reference simplex (the original implementation).
//
// Kept verbatim as a cross-check for the sparse bounded-variable engine in
// simplex.cpp: O(m^2)-per-pivot dense basis inverse, Gauss-Jordan
// refactorization, phase-1 artificials.  Simple bounds — which the sparse
// engine handles as nonbasic statuses — are lowered here to what this
// engine understands: general lower bounds by variable shifting, upper
// bounds as explicit `x <= u` rows.  Slow by design; do not use beyond
// tests and the bench_ext_scale sparse-vs-dense series.
#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Column-sparse matrix entry.
struct Entry {
  std::size_t row;
  double value;
};

/// Internal standard-form model: min c'x  s.t.  Ax = b (b >= 0), x >= 0.
struct StandardForm {
  std::size_t rows{0};
  std::size_t structural{0};        // original variable count
  std::vector<std::vector<Entry>> columns;
  std::vector<double> cost;         // phase-2 costs (0 for artificials)
  std::vector<double> rhs;
  std::vector<bool> artificial;     // per column
  std::vector<std::size_t> initial_basis;   // one column per row
  double sign{1.0};                 // +1 minimize, -1 if original maximized
};

StandardForm build_standard_form(const Problem& problem) {
  StandardForm sf;
  sf.rows = problem.constraint_count();
  sf.structural = problem.variable_count();
  sf.sign = problem.sense() == Sense::kMinimize ? 1.0 : -1.0;

  sf.columns.resize(sf.structural);
  sf.cost.resize(sf.structural);
  sf.artificial.assign(sf.structural, false);
  for (VarIndex v = 0; v < sf.structural; ++v) {
    sf.cost[v] = sf.sign * problem.objective_coeff(v);
  }

  sf.rhs.resize(sf.rows);
  sf.initial_basis.assign(sf.rows, 0);

  const auto& constraints = problem.constraints();
  for (std::size_t r = 0; r < sf.rows; ++r) {
    const Constraint& row = constraints[r];
    double flip = 1.0;
    Relation rel = row.relation;
    if (row.rhs < 0.0) {
      // Normalize to non-negative rhs; flip the relation.
      flip = -1.0;
      if (rel == Relation::kLessEqual) {
        rel = Relation::kGreaterEqual;
      } else if (rel == Relation::kGreaterEqual) {
        rel = Relation::kLessEqual;
      }
    }
    sf.rhs[r] = flip * row.rhs;
    for (const Term& t : row.terms) {
      sf.columns[t.var].push_back(Entry{r, flip * t.coeff});
    }

    auto add_column = [&](double value, bool is_artificial) {
      sf.columns.push_back({Entry{r, value}});
      sf.cost.push_back(0.0);
      sf.artificial.push_back(is_artificial);
      return sf.columns.size() - 1;
    };

    switch (rel) {
      case Relation::kLessEqual: {
        const std::size_t slack = add_column(1.0, false);
        sf.initial_basis[r] = slack;
        break;
      }
      case Relation::kGreaterEqual: {
        add_column(-1.0, false);                       // surplus
        const std::size_t art = add_column(1.0, true); // artificial
        sf.initial_basis[r] = art;
        break;
      }
      case Relation::kEqual: {
        const std::size_t art = add_column(1.0, true);
        sf.initial_basis[r] = art;
        break;
      }
    }
  }
  return sf;
}

/// The working state of the revised simplex.
class SimplexEngine {
 public:
  SimplexEngine(const StandardForm& sf, const SimplexOptions& options,
                SolverStats* stats)
      : sf_{sf},
        opt_{options},
        stats_{stats},
        m_{sf.rows},
        n_{sf.columns.size()},
        basis_{sf.initial_basis},
        in_basis_(n_, false),
        binv_(m_ * m_, 0.0),
        xb_(m_, 0.0) {
    for (std::size_t r = 0; r < m_; ++r) {
      in_basis_[basis_[r]] = true;
      binv_[r * m_ + r] = 1.0;    // initial basis is the identity
      xb_[r] = sf_.rhs[r];
    }
  }

  /// Runs one simplex phase with the given cost vector; `iteration_count`
  /// receives the number of pivots taken.
  SolveStatus phase(const std::vector<double>& cost,
                    std::size_t* iteration_count) {
    std::size_t degenerate_run = 0;
    for (std::size_t iter = 0; iter < opt_.max_iterations; ++iter) {
      if (iteration_count != nullptr) *iteration_count = iter;
      if (pivots_since_refactor_ >= opt_.refactor_interval) {
        if (!refactorize()) return SolveStatus::kIterationLimit;
      }

      compute_duals(cost);
      const bool bland = degenerate_run >= opt_.degeneracy_threshold;
      const std::size_t entering = price(cost, bland);
      if (entering == n_) return SolveStatus::kOptimal;

      compute_direction(entering);
      const std::size_t leaving_row = ratio_test();
      if (leaving_row == m_) return SolveStatus::kUnbounded;

      const double step = xb_[leaving_row] / w_[leaving_row];
      degenerate_run = step <= opt_.feasibility_tol ? degenerate_run + 1 : 0;

      pivot(entering, leaving_row);
    }
    return SolveStatus::kIterationLimit;
  }

  /// Phase-1 objective (sum of artificial basic values).
  [[nodiscard]] double artificial_mass() const {
    double total = 0.0;
    for (std::size_t r = 0; r < m_; ++r) {
      if (sf_.artificial[basis_[r]]) total += xb_[r];
    }
    return total;
  }

  /// After phase 1: pivot basic artificials out where possible and bar all
  /// artificial columns from ever entering again.
  void retire_artificials() {
    for (std::size_t r = 0; r < m_; ++r) {
      if (!sf_.artificial[basis_[r]]) continue;
      // Find any eligible non-artificial column with a usable pivot in row r.
      for (std::size_t j = 0; j < n_; ++j) {
        if (in_basis_[j] || sf_.artificial[j] || barred_[j]) continue;
        const double wr = row_dot_column(r, j);
        if (std::abs(wr) > opt_.pivot_tol * 10) {
          compute_direction(j);
          pivot(j, r);
          break;
        }
      }
      // If no column qualifies the row is redundant; the artificial stays
      // basic at (numerically) zero and is barred from growing by pricing.
    }
    for (std::size_t j = 0; j < n_; ++j) {
      if (sf_.artificial[j]) barred_[j] = true;
    }
  }

  [[nodiscard]] std::vector<double> extract_structural() const {
    std::vector<double> x(sf_.structural, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      if (basis_[r] < sf_.structural) {
        x[basis_[r]] = std::max(0.0, xb_[r]);
      }
    }
    return x;
  }

  [[nodiscard]] double objective(const std::vector<double>& cost) const {
    double total = 0.0;
    for (std::size_t r = 0; r < m_; ++r) total += cost[basis_[r]] * xb_[r];
    return total;
  }

  void init_barred() { barred_.assign(n_, false); }

 private:
  // y' = c_B' * B^-1
  void compute_duals(const std::vector<double>& cost) {
    y_.assign(m_, 0.0);
    for (std::size_t r = 0; r < m_; ++r) {
      const double cb = cost[basis_[r]];
      if (cb == 0.0) continue;
      const double* binv_row = &binv_[r * m_];
      for (std::size_t i = 0; i < m_; ++i) y_[i] += cb * binv_row[i];
    }
  }

  // Reduced cost of column j: c_j - y' a_j.
  [[nodiscard]] double reduced_cost(const std::vector<double>& cost,
                                    std::size_t j) const {
    double d = cost[j];
    for (const Entry& e : sf_.columns[j]) d -= y_[e.row] * e.value;
    return d;
  }

  // Returns the entering column, or n_ if optimal.
  [[nodiscard]] std::size_t price(const std::vector<double>& cost,
                                  bool bland) const {
    std::size_t best = n_;
    double best_value = -opt_.optimality_tol;
    for (std::size_t j = 0; j < n_; ++j) {
      if (in_basis_[j] || barred_[j]) continue;
      const double d = reduced_cost(cost, j);
      if (d < best_value) {
        if (bland) return j;   // first eligible index
        best_value = d;
        best = j;
      }
    }
    return best;
  }

  // w = B^-1 a_j
  void compute_direction(std::size_t j) {
    w_.assign(m_, 0.0);
    for (const Entry& e : sf_.columns[j]) {
      const double v = e.value;
      for (std::size_t i = 0; i < m_; ++i) {
        w_[i] += binv_[i * m_ + e.row] * v;
      }
    }
  }

  // (row r of B^-1) . a_j — used when retiring artificials.
  [[nodiscard]] double row_dot_column(std::size_t r, std::size_t j) const {
    double total = 0.0;
    const double* binv_row = &binv_[r * m_];
    for (const Entry& e : sf_.columns[j]) total += binv_row[e.row] * e.value;
    return total;
  }

  // Returns the leaving row, or m_ if unbounded.
  [[nodiscard]] std::size_t ratio_test() const {
    std::size_t best_row = m_;
    double best_ratio = kInf;
    for (std::size_t r = 0; r < m_; ++r) {
      if (w_[r] <= opt_.pivot_tol) continue;
      const double ratio = std::max(0.0, xb_[r]) / w_[r];
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && best_row != m_ &&
           basis_[r] < basis_[best_row])) {
        best_ratio = ratio;
        best_row = r;
      }
    }
    return best_row;
  }

  void pivot(std::size_t entering, std::size_t leaving_row) {
    const double pivot_value = w_[leaving_row];
    SWB_DCHECK(std::abs(pivot_value) > opt_.pivot_tol);
    const double step = std::max(0.0, xb_[leaving_row]) / pivot_value;

    for (std::size_t r = 0; r < m_; ++r) xb_[r] -= step * w_[r];
    xb_[leaving_row] = step;

    // Elementary row operations on B^-1.
    double* pivot_row = &binv_[leaving_row * m_];
    const double inv = 1.0 / pivot_value;
    for (std::size_t i = 0; i < m_; ++i) pivot_row[i] *= inv;
    for (std::size_t r = 0; r < m_; ++r) {
      if (r == leaving_row) continue;
      const double factor = w_[r];
      if (factor == 0.0) continue;
      double* row = &binv_[r * m_];
      for (std::size_t i = 0; i < m_; ++i) row[i] -= factor * pivot_row[i];
    }

    in_basis_[basis_[leaving_row]] = false;
    basis_[leaving_row] = entering;
    in_basis_[entering] = true;
    ++pivots_since_refactor_;
  }

  /// Rebuilds B^-1 by Gauss-Jordan with partial pivoting, then recomputes
  /// xb = B^-1 b.  Returns false if the basis matrix is singular.
  bool refactorize() {
    if (stats_ != nullptr) ++stats_->refactorizations;
    std::vector<double> mat(m_ * 2 * m_, 0.0);   // [B | I]
    const std::size_t stride = 2 * m_;
    for (std::size_t c = 0; c < m_; ++c) {
      for (const Entry& e : sf_.columns[basis_[c]]) {
        mat[e.row * stride + c] = e.value;
      }
    }
    for (std::size_t r = 0; r < m_; ++r) mat[r * stride + m_ + r] = 1.0;

    for (std::size_t col = 0; col < m_; ++col) {
      std::size_t pivot_row = col;
      double best = std::abs(mat[col * stride + col]);
      for (std::size_t r = col + 1; r < m_; ++r) {
        const double v = std::abs(mat[r * stride + col]);
        if (v > best) {
          best = v;
          pivot_row = r;
        }
      }
      if (best < 1e-12) {
        SB_LOG(kWarn) << "simplex refactorization found singular basis";
        return false;
      }
      if (pivot_row != col) {
        for (std::size_t i = 0; i < stride; ++i) {
          std::swap(mat[col * stride + i], mat[pivot_row * stride + i]);
        }
      }
      const double inv = 1.0 / mat[col * stride + col];
      for (std::size_t i = 0; i < stride; ++i) mat[col * stride + i] *= inv;
      for (std::size_t r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double factor = mat[r * stride + col];
        if (factor == 0.0) continue;
        for (std::size_t i = 0; i < stride; ++i) {
          mat[r * stride + i] -= factor * mat[col * stride + i];
        }
      }
    }
    // Columns of the inverse in [.. | B^-1]; note the row permutation is
    // already applied by Gauss-Jordan.
    for (std::size_t r = 0; r < m_; ++r) {
      for (std::size_t i = 0; i < m_; ++i) {
        binv_[r * m_ + i] = mat[r * stride + m_ + i];
      }
    }
    // xb = B^-1 b
    for (std::size_t r = 0; r < m_; ++r) {
      double total = 0.0;
      const double* binv_row = &binv_[r * m_];
      for (std::size_t i = 0; i < m_; ++i) total += binv_row[i] * sf_.rhs[i];
      xb_[r] = total;
    }
    pivots_since_refactor_ = 0;
    return true;
  }

  const StandardForm& sf_;
  const SimplexOptions& opt_;
  SolverStats* stats_;
  std::size_t m_;
  std::size_t n_;
  std::vector<std::size_t> basis_;    // column basic in each row
  std::vector<bool> in_basis_;
  std::vector<bool> barred_;          // columns forbidden from entering
  std::vector<double> binv_;          // dense m x m basis inverse
  std::vector<double> xb_;            // basic variable values
  std::vector<double> y_;             // duals (scratch)
  std::vector<double> w_;             // direction (scratch)
  std::size_t pivots_since_refactor_{0};
};

/// Lowers a bounded Problem to the non-negative-rows form this engine
/// understands: x = x' + l shifts general lower bounds away (adjusting
/// every row's rhs and accumulating the objective constant), and finite
/// upper bounds become explicit `x' <= u - l` rows.
struct LoweredProblem {
  Problem reference;
  double objective_constant{0.0};
  std::vector<double> shift;   // per structural variable
};

LoweredProblem lower_bounds_to_rows(const Problem& problem) {
  LoweredProblem lowered;
  lowered.reference = Problem{problem.sense()};
  const std::size_t n = problem.variable_count();
  lowered.shift.resize(n);
  bool any_shift = false;
  for (VarIndex v = 0; v < n; ++v) {
    const double lb = problem.lower_bound(v);
    lowered.shift[v] = lb;
    any_shift = any_shift || lb != 0.0;
    lowered.reference.add_variable(problem.objective_coeff(v));
    lowered.objective_constant += problem.objective_coeff(v) * lb;
  }
  for (const Constraint& row : problem.constraints()) {
    double rhs = row.rhs;
    if (any_shift) {
      for (const Term& t : row.terms) rhs -= t.coeff * lowered.shift[t.var];
    }
    lowered.reference.add_constraint(row.relation, rhs, row.terms);
  }
  for (VarIndex v = 0; v < n; ++v) {
    const double ub = problem.upper_bound(v);
    if (ub < kInf) {
      lowered.reference.add_constraint(Relation::kLessEqual,
                                       ub - lowered.shift[v], {{v, 1.0}});
    }
  }
  return lowered;
}

Solution solve_lowered(const Problem& problem, const SimplexOptions& options,
                       SolverStats* stats) {
  Solution solution;
  if (problem.variable_count() == 0) {
    // Degenerate: feasible iff every constraint holds with x = 0.
    for (const Constraint& c : problem.constraints()) {
      const bool holds = (c.relation == Relation::kLessEqual && 0.0 <= c.rhs) ||
                         (c.relation == Relation::kEqual && c.rhs == 0.0) ||
                         (c.relation == Relation::kGreaterEqual && 0.0 >= c.rhs);
      if (!holds) {
        solution.status = SolveStatus::kInfeasible;
        return solution;
      }
    }
    solution.status = SolveStatus::kOptimal;
    return solution;
  }

  const StandardForm sf = build_standard_form(problem);
  SimplexEngine engine{sf, options, stats};
  engine.init_barred();

  const bool needs_phase1 = std::any_of(
      sf.initial_basis.begin(), sf.initial_basis.end(),
      [&](std::size_t col) { return sf.artificial[col]; });

  if (needs_phase1) {
    std::vector<double> phase1_cost(sf.columns.size(), 0.0);
    for (std::size_t j = 0; j < sf.columns.size(); ++j) {
      if (sf.artificial[j]) phase1_cost[j] = 1.0;
    }
    const SolveStatus status = engine.phase(
        phase1_cost, stats != nullptr ? &stats->phase1_iterations : nullptr);
    if (status == SolveStatus::kIterationLimit) {
      solution.status = status;
      return solution;
    }
    if (engine.artificial_mass() > options.feasibility_tol * 100) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    engine.retire_artificials();
  }

  const SolveStatus status = engine.phase(
      sf.cost, stats != nullptr ? &stats->phase2_iterations : nullptr);
  solution.status = status;
  if (status != SolveStatus::kOptimal) return solution;

  solution.values = engine.extract_structural();
  solution.objective = sf.sign * engine.objective(sf.cost);
  return solution;
}

}  // namespace

Solution solve_dense_reference(const Problem& problem,
                               const SimplexOptions& options) {
  const LoweredProblem lowered = lower_bounds_to_rows(problem);
  SolverStats stats;
  Solution solution = solve_lowered(lowered.reference, options, &stats);
  solution.stats = stats;
  if (solution.status == SolveStatus::kOptimal) {
    // Undo the lower-bound shift: x = x' + l.
    for (VarIndex v = 0; v < solution.values.size(); ++v) {
      solution.values[v] += lowered.shift[v];
    }
    solution.objective += lowered.objective_constant;
  }
  return solution;
}

}  // namespace switchboard::lp
