#include "dataplane/sharded_flow_table.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace switchboard::dataplane {

namespace {

constexpr std::size_t kMinShardCapacity = 16;
constexpr std::size_t kLookupChunk = 32;   // SoA batch width (find_batch)

constexpr std::uint8_t kEmpty =
    0;   // == SlotState::kEmpty; bytes for the atomic state field
constexpr std::uint8_t kOccupied = 1;
constexpr std::uint8_t kTombstone = 2;

void prefetch_ro(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, /*locality=*/3);
#else
  (void)address;
#endif
}

}  // namespace

ShardedFlowTable::ShardedFlowTable(std::size_t initial_capacity,
                                   std::size_t shard_count) {
  const std::size_t shards =
      std::bit_ceil(std::max<std::size_t>(shard_count, 1));
  per_shard_capacity_ = std::bit_ceil(
      std::max<std::size_t>(initial_capacity / shards, kMinShardCapacity));
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->buckets.store(new BucketArray{per_shard_capacity_},
                         std::memory_order_release);
    shards_.push_back(std::move(shard));
  }
}

ShardedFlowTable::~ShardedFlowTable() {
  // Quiesced teardown: delete the live entries and the current arrays
  // here; everything previously retired (old arrays, erased/overwritten
  // entries) is freed by the epoch domain's destructor, which runs after
  // this body and checks that no reader is still pinned.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    BucketArray* array = shard->buckets.load(std::memory_order_acquire);
    for (Slot& slot : array->slots) {
      if (slot.state.load(std::memory_order_relaxed) == kOccupied) {
        delete slot.entry.load(std::memory_order_relaxed);
      }
    }
    delete array;
  }
}

const FlowEntry* ShardedFlowTable::probe(const BucketArray& array,
                                         const Labels& labels,
                                         const FiveTuple& tuple,
                                         std::uint64_t hash) {
  // Termination: states only move empty->occupied->tombstone within an
  // array generation, and the writer rehashes before occupancy can reach
  // 100%, so every reachable array keeps at least one empty slot.
  std::size_t index = hash & array.mask;
  for (;;) {
    const Slot& slot = array.slots[index];
    const std::uint8_t state = slot.state.load(std::memory_order_acquire);
    if (state == kEmpty) return nullptr;
    if (state == kOccupied && slot.labels == labels && slot.tuple == tuple) {
      // The acquire above synchronizes with the writer's empty->occupied
      // (or tombstone->occupied) release-store, so the key fields and the
      // entry pointer written before it are visible.
      return slot.entry.load(std::memory_order_acquire);
    }
    index = (index + 1) & array.mask;
  }
}

std::optional<FlowEntry> ShardedFlowTable::find(const Labels& labels,
                                                const FiveTuple& tuple) const {
  const std::uint64_t hash = flow_hash(labels, tuple);
  const Shard& shard = shard_for_hash(hash);
  ++shard.stats.finds;
  const swb::EpochGuard guard{epoch_};
  const BucketArray& array = *shard.buckets.load(std::memory_order_acquire);
  if (const FlowEntry* entry = probe(array, labels, tuple, hash)) {
    ++shard.stats.hits;
    return *entry;   // copied while the pin keeps the entry alive
  }
  return std::nullopt;
}

std::optional<FlowEntry> ShardedFlowTable::find_mutex(
    const Labels& labels, const FiveTuple& tuple) const {
  const std::uint64_t hash = flow_hash(labels, tuple);
  const Shard& shard = shard_for_hash(hash);
  ++shard.stats.finds;
  const swb::MutexLock lock{shard.mutex};
  const BucketArray& array = *shard.buckets.load(std::memory_order_acquire);
  if (const FlowEntry* entry = probe(array, labels, tuple, hash)) {
    ++shard.stats.hits;
    return *entry;
  }
  return std::nullopt;
}

void ShardedFlowTable::find_batch(std::span<LookupRequest> batch) const {
  // Structure-of-arrays phases per chunk: (1) hash every key and issue a
  // prefetch for its probe-start slot, (2) probe.  By the time phase 2
  // touches a slot its cacheline fetch has been in flight for the whole
  // rest of phase 1 — at millions of live flows every probe start is a
  // cache miss, and overlapping those misses is where the batch win
  // comes from.  One epoch pin covers a whole chunk.
  const BucketArray* arrays[kLookupChunk];
  for (std::size_t base = 0; base < batch.size(); base += kLookupChunk) {
    const std::size_t chunk = std::min(kLookupChunk, batch.size() - base);
    const swb::EpochGuard guard{epoch_};
    for (std::size_t i = 0; i < chunk; ++i) {
      LookupRequest& request = batch[base + i];
      request.hash = flow_hash(request.labels, request.tuple);
      const Shard& shard = shard_for_hash(request.hash);
      ++shard.stats.finds;
      arrays[i] = shard.buckets.load(std::memory_order_acquire);
      prefetch_ro(&arrays[i]->slots[request.hash & arrays[i]->mask]);
    }
    for (std::size_t i = 0; i < chunk; ++i) {
      LookupRequest& request = batch[base + i];
      const FlowEntry* entry =
          probe(*arrays[i], request.labels, request.tuple, request.hash);
      request.hit = entry != nullptr;
      if (entry != nullptr) {
        request.entry = *entry;
        ++shard_for_hash(request.hash).stats.hits;
      }
    }
  }
}

ShardedFlowTable::Slot* ShardedFlowTable::find_slot_locked(
    BucketArray& array, const Labels& labels, const FiveTuple& tuple,
    std::uint64_t hash) {
  std::size_t index = hash & array.mask;
  for (;;) {
    Slot& slot = array.slots[index];
    const std::uint8_t state = slot.state.load(std::memory_order_relaxed);
    if (state == kEmpty) return nullptr;
    if (state == kOccupied && slot.labels == labels && slot.tuple == tuple) {
      return &slot;
    }
    index = (index + 1) & array.mask;
  }
}

void ShardedFlowTable::insert_locked(Shard& shard, const Labels& labels,
                                     const FiveTuple& tuple,
                                     std::uint64_t hash,
                                     const FlowEntry& entry) {
  maybe_grow(shard);
  BucketArray& array = *shard.buckets.load(std::memory_order_relaxed);
  std::size_t index = hash & array.mask;
  for (;;) {
    Slot& slot = array.slots[index];
    const std::uint8_t state = slot.state.load(std::memory_order_relaxed);
    const bool matches =
        state != kEmpty && slot.labels == labels && slot.tuple == tuple;
    if (state == kOccupied && matches) {
      // Overwrite: install a fresh immutable entry, retire the old one.
      // Readers pinned before the swap keep dereferencing the retired
      // entry until their grace period ends.
      const FlowEntry* old = slot.entry.load(std::memory_order_relaxed);
      slot.entry.store(new FlowEntry{entry}, std::memory_order_release);
      epoch_.retire(const_cast<FlowEntry*>(old));
      return;
    }
    if (state == kTombstone && matches) {
      // Revive: this key's one slot in this array generation.  The fresh
      // pointer must be installed BEFORE the tombstone->occupied flip —
      // the slot's previous entry was retired at erase time and may
      // already be freed.
      slot.entry.store(new FlowEntry{entry}, std::memory_order_release);
      slot.state.store(kOccupied, std::memory_order_release);
      --shard.tombstones;
      ++shard.live;
      return;
    }
    if (state == kEmpty) {
      // Fresh claim: keys first (plain, write-once), then the payload,
      // then the release-store that makes the slot visible to readers.
      slot.labels = labels;
      slot.tuple = tuple;
      slot.entry.store(new FlowEntry{entry}, std::memory_order_release);
      slot.state.store(kOccupied, std::memory_order_release);
      ++shard.live;
      return;
    }
    index = (index + 1) & array.mask;
  }
}

void ShardedFlowTable::maybe_grow(Shard& shard) {
  BucketArray* old = shard.buckets.load(std::memory_order_relaxed);
  // Grow at 70% occupancy counting tombstones (they lengthen probes just
  // like live entries).  A tombstone-heavy shard rehashes to the same or
  // a smaller power of two, purging them.
  if ((shard.live + shard.tombstones + 1) * 10 <= old->slots.size() * 7) {
    return;
  }
  const std::size_t capacity = std::bit_ceil(
      std::max<std::size_t>((shard.live + 1) * 2, kMinShardCapacity));
  auto* fresh = new BucketArray{capacity};
  for (Slot& slot : old->slots) {
    if (slot.state.load(std::memory_order_relaxed) != kOccupied) continue;
    // Entries keep their identity across the rehash: only the pointer
    // moves.  The fresh array is unpublished, so relaxed stores suffice —
    // the release-publication below makes it visible wholesale.
    std::size_t index = flow_hash(slot.labels, slot.tuple) & fresh->mask;
    while (fresh->slots[index].state.load(std::memory_order_relaxed) !=
           kEmpty) {
      index = (index + 1) & fresh->mask;
    }
    Slot& target = fresh->slots[index];
    target.labels = slot.labels;
    target.tuple = slot.tuple;
    target.entry.store(slot.entry.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    target.state.store(kOccupied, std::memory_order_relaxed);
  }
  shard.buckets.store(fresh, std::memory_order_release);
  shard.tombstones = 0;
  epoch_.retire(old);   // pinned readers may still be probing it
}

FlowEntry ShardedFlowTable::insert(const Labels& labels,
                                   const FiveTuple& tuple,
                                   const FlowEntry& entry) {
  const std::uint64_t hash = flow_hash(labels, tuple);
  Shard& shard = shard_for_hash(hash);
  const swb::MutexLock lock{shard.mutex};
  ++shard.stats.inserts;
  insert_locked(shard, labels, tuple, hash, entry);
  return entry;
}

FlowEntry ShardedFlowTable::insert_if_absent(const Labels& labels,
                                             const FiveTuple& tuple,
                                             const FlowEntry& entry) {
  const std::uint64_t hash = flow_hash(labels, tuple);
  Shard& shard = shard_for_hash(hash);
  const swb::MutexLock lock{shard.mutex};
  BucketArray& array = *shard.buckets.load(std::memory_order_relaxed);
  if (const Slot* slot = find_slot_locked(array, labels, tuple, hash)) {
    return *slot->entry.load(std::memory_order_relaxed);
  }
  ++shard.stats.inserts;
  insert_locked(shard, labels, tuple, hash, entry);
  return entry;
}

bool ShardedFlowTable::erase(const Labels& labels, const FiveTuple& tuple) {
  const std::uint64_t hash = flow_hash(labels, tuple);
  Shard& shard = shard_for_hash(hash);
  const swb::MutexLock lock{shard.mutex};
  BucketArray& array = *shard.buckets.load(std::memory_order_relaxed);
  Slot* slot = find_slot_locked(array, labels, tuple, hash);
  if (slot == nullptr) return false;
  // Tombstone first (release: a reader that sees the tombstone sees a
  // coherent slot), then retire the entry.  The pointer stays in place —
  // readers that loaded `occupied` before the flip may still read it
  // within their grace period; a revive replaces it before re-occupying.
  slot->state.store(kTombstone, std::memory_order_release);
  epoch_.retire(
      const_cast<FlowEntry*>(slot->entry.load(std::memory_order_relaxed)));
  ++shard.tombstones;
  --shard.live;
  ++shard.stats.erases;
  return true;
}

std::size_t ShardedFlowTable::size() const {
  const auto guards = lock_all();
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->live;
  }
  return total;
}

std::size_t ShardedFlowTable::shard_size(std::size_t shard) const {
  SWB_CHECK_LT(shard, shards_.size());
  const swb::MutexLock lock{shards_[shard]->mutex};
  return shards_[shard]->live;
}

ShardedFlowTable::Stats ShardedFlowTable::stats() const {
  Stats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total.finds += shard->stats.finds;
    total.hits += shard->stats.hits;
    total.inserts += shard->stats.inserts;
    total.erases += shard->stats.erases;
  }
  return total;
}

void ShardedFlowTable::clear() {
  const auto guards = lock_all();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    BucketArray* old = shard->buckets.load(std::memory_order_relaxed);
    for (Slot& slot : old->slots) {
      if (slot.state.load(std::memory_order_relaxed) == kOccupied) {
        epoch_.retire(
            const_cast<FlowEntry*>(slot.entry.load(std::memory_order_relaxed)));
      }
    }
    shard->buckets.store(new BucketArray{per_shard_capacity_},
                         std::memory_order_release);
    epoch_.retire(old);
    shard->live = 0;
    shard->tombstones = 0;
  }
}

std::size_t ShardedFlowTable::update_each(
    const std::function<bool(const Labels&, const FiveTuple&, FlowEntry&)>&
        fn) {
  const auto guards = lock_all();
  std::size_t updated = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    BucketArray& array = *shard->buckets.load(std::memory_order_relaxed);
    for (Slot& slot : array.slots) {
      if (slot.state.load(std::memory_order_relaxed) != kOccupied) continue;
      const FlowEntry* current = slot.entry.load(std::memory_order_relaxed);
      FlowEntry draft = *current;
      if (!fn(slot.labels, slot.tuple, draft)) continue;
      slot.entry.store(new FlowEntry{draft}, std::memory_order_release);
      epoch_.retire(const_cast<FlowEntry*>(current));
      ++updated;
    }
  }
  return updated;
}

std::size_t ShardedFlowTable::memory_bytes() const {
  const auto guards = lock_all();
  std::size_t bytes = shards_.size() * sizeof(Shard);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const BucketArray& array =
        *shard->buckets.load(std::memory_order_relaxed);
    bytes += sizeof(BucketArray) + array.slots.size() * sizeof(Slot);
    bytes += shard->live * sizeof(FlowEntry);
  }
  return bytes;
}

std::vector<std::unique_lock<std::mutex>> ShardedFlowTable::lock_all() const {
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    guards.emplace_back(shard->mutex.native());
  }
  return guards;
}

void ShardedFlowTable::check_invariants() const {
  SWB_CHECK(std::has_single_bit(shards_.size()))
      << "shard count not a power of 2";
  const auto guards = lock_all();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    const BucketArray& array =
        *shard.buckets.load(std::memory_order_acquire);
    SWB_CHECK(std::has_single_bit(array.slots.size()))
        << "bucket array capacity not a power of 2";
    SWB_CHECK_EQ(array.mask, array.slots.size() - 1) << "mask out of sync";
    std::size_t occupied = 0;
    std::size_t tombstones = 0;
    for (std::size_t i = 0; i < array.slots.size(); ++i) {
      const Slot& slot = array.slots[i];
      const std::uint8_t state = slot.state.load(std::memory_order_acquire);
      if (state == kTombstone) {
        ++tombstones;
        continue;
      }
      if (state != kOccupied) continue;
      ++occupied;
      SWB_CHECK(slot.entry.load(std::memory_order_acquire) != nullptr)
          << "occupied slot with null entry";
      const std::uint64_t hash = flow_hash(slot.labels, slot.tuple);
      // Sharding invariant: every key is in the shard its hash selects.
      SWB_CHECK_EQ(rss_shard(hash, shards_.size()), s)
          << "entry stored in the wrong shard";
      // Probe reachability: no empty slot between the probe start and
      // the slot actually holding the key.
      for (std::size_t p = hash & array.mask; p != i;
           p = (p + 1) & array.mask) {
        SWB_CHECK(array.slots[p].state.load(std::memory_order_acquire) !=
                  kEmpty)
            << "occupied slot unreachable from its probe start";
      }
    }
    SWB_CHECK_EQ(occupied, shard.live) << "live counter out of sync";
    SWB_CHECK_EQ(tombstones, shard.tombstones)
        << "tombstone counter out of sync";
    // Counter agreement: live entries = inserts that created an entry
    // minus successful erases.  insert() overwrites count as inserts too,
    // so live can only be <= inserts - erases.
    SWB_CHECK_LE(shard.live + shard.stats.erases.value(),
                 shard.stats.inserts.value());
  }
}

}  // namespace switchboard::dataplane
