#include "dataplane/sharded_flow_table.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace switchboard::dataplane {

ShardedFlowTable::ShardedFlowTable(std::size_t initial_capacity,
                                   std::size_t shard_count) {
  const std::size_t shards =
      std::bit_ceil(std::max<std::size_t>(shard_count, 1));
  const std::size_t per_shard =
      std::max<std::size_t>(initial_capacity / shards, 16);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(per_shard));
  }
}

std::optional<FlowEntry> ShardedFlowTable::find(const Labels& labels,
                                                const FiveTuple& tuple) const {
  const Shard& shard = shard_for(labels, tuple);
  const swb::MutexLock lock{shard.mutex};
  ++shard.stats.finds;
  if (const FlowEntry* entry = shard.table.find(labels, tuple)) {
    ++shard.stats.hits;
    return *entry;
  }
  return std::nullopt;
}

FlowEntry ShardedFlowTable::insert(const Labels& labels,
                                   const FiveTuple& tuple,
                                   const FlowEntry& entry) {
  Shard& shard = shard_for(labels, tuple);
  const swb::MutexLock lock{shard.mutex};
  ++shard.stats.inserts;
  return shard.table.insert(labels, tuple, entry);
}

FlowEntry ShardedFlowTable::insert_if_absent(const Labels& labels,
                                             const FiveTuple& tuple,
                                             const FlowEntry& entry) {
  Shard& shard = shard_for(labels, tuple);
  const swb::MutexLock lock{shard.mutex};
  if (const FlowEntry* existing = shard.table.find(labels, tuple)) {
    return *existing;
  }
  ++shard.stats.inserts;
  return shard.table.insert(labels, tuple, entry);
}

bool ShardedFlowTable::erase(const Labels& labels, const FiveTuple& tuple) {
  Shard& shard = shard_for(labels, tuple);
  const swb::MutexLock lock{shard.mutex};
  const bool erased = shard.table.erase(labels, tuple);
  if (erased) ++shard.stats.erases;
  return erased;
}

std::size_t ShardedFlowTable::size() const {
  const auto guards = lock_all();
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->table.size();
  }
  return total;
}

std::size_t ShardedFlowTable::shard_size(std::size_t shard) const {
  SWB_CHECK_LT(shard, shards_.size());
  const swb::MutexLock lock{shards_[shard]->mutex};
  return shards_[shard]->table.size();
}

ShardedFlowTable::Stats ShardedFlowTable::stats() const {
  const auto guards = lock_all();
  Stats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total.finds += shard->stats.finds;
    total.hits += shard->stats.hits;
    total.inserts += shard->stats.inserts;
    total.erases += shard->stats.erases;
  }
  return total;
}

void ShardedFlowTable::clear() {
  const auto guards = lock_all();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    shard->table.clear();
  }
}

std::vector<std::unique_lock<std::mutex>> ShardedFlowTable::lock_all() const {
  std::vector<std::unique_lock<std::mutex>> guards;
  guards.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    guards.emplace_back(shard->mutex.native());
  }
  return guards;
}

void ShardedFlowTable::check_invariants() const {
  SWB_CHECK(std::has_single_bit(shards_.size()))
      << "shard count not a power of 2";
  const auto guards = lock_all();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    shard.table.check_invariants();
    // Sharding invariant: every key is in the shard its hash selects.
    shard.table.for_each(
        [&](const Labels& labels, const FiveTuple& tuple, const FlowEntry&) {
          SWB_CHECK_EQ(rss_shard(flow_hash(labels, tuple), shards_.size()), s)
              << "entry stored in the wrong shard";
        });
    // Counter agreement: live entries = inserts that created an entry minus
    // successful erases.  insert() overwrites count as inserts too, so the
    // table size can only be <= inserts - erases.
    SWB_CHECK_LE(shard.table.size() + shard.stats.erases,
                 shard.stats.inserts);
  }
}

}  // namespace switchboard::dataplane
