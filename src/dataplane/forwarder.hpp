// The Switchboard forwarder: a cloud-agnostic data-plane proxy (Section 5).
//
// Deployment model (Fig. 5): VNF instances and edge instances *attach* to a
// forwarder (same L2 domain, forwarder as their gateway); forwarders reach
// each other over wide-area tunnels.  Per connection the forwarder pins
//   * the attached instance serving the flow (VNF instance, or the edge
//     instance at ingress/egress sites),
//   * the next-hop forwarder toward the egress,
//   * the previous-hop element toward the ingress (learned from the first
//     packet's arrival source),
// giving flow affinity and symmetric return (Section 5.3).  The paper
// describes these as two flow-table entries (forward + reverse); this
// implementation stores one entry carrying both pointers — the semantics
// are identical.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "dataplane/flow_table.hpp"
#include "dataplane/load_balancer.hpp"
#include "dataplane/packet.hpp"

namespace switchboard::dataplane {

enum class ActionType : std::uint8_t {
  kDeliverToAttached,   // hand to the local VNF/edge instance
  kSendToForwarder,     // tunnel to another forwarder
  kDrop,
};

struct ForwardAction {
  ActionType type{ActionType::kDrop};
  ElementId element{kNoElement};

  friend constexpr bool operator==(const ForwardAction&,
                                   const ForwardAction&) = default;
};

struct ForwarderCounters {
  std::uint64_t from_wire{0};
  std::uint64_t from_attached{0};
  std::uint64_t flow_misses{0};     // first packets (created state)
  std::uint64_t drops{0};
  std::uint64_t label_reaffixed{0};
};

class Forwarder {
 public:
  explicit Forwarder(ElementId id, std::size_t flow_capacity = 1024);

  [[nodiscard]] ElementId id() const { return id_; }

  /// Load-balancing rules, installed by the Local Switchboard.
  [[nodiscard]] RuleTable& rules() { return rules_; }
  [[nodiscard]] const RuleTable& rules() const { return rules_; }

  /// Associates an attached instance with its chain labels, so labels can
  /// be re-affixed for VNFs that strip or do not support them (Sec. 5.3).
  void register_attachment(ElementId instance, const Labels& labels);

  /// Packet arriving over a wide-area tunnel (or from the ingress edge's
  /// wire side).  Delivers to the attached instance pinned for the flow.
  ForwardAction process_from_wire(const Packet& packet);

  /// Packet handed back by an attached instance; `packet.arrival_source`
  /// must be that instance's id.  Forwards toward the next (forward
  /// direction) or previous (reverse) element.
  ForwardAction process_from_attached(Packet& packet);

  /// Connection teardown: drop the flow state.
  bool complete_flow(const Labels& labels, const FiveTuple& tuple);

  /// OpenNF-style state transfer (Section 5.3): moves every flow pinned
  /// to attached instance `instance` into `target`'s flow table,
  /// re-pinning it to `replacement` (the equivalent instance behind the
  /// target forwarder).  Used for elastic scaling / draining a forwarder
  /// without breaking flow affinity.  Returns the number of flows moved.
  std::size_t migrate_flows(Forwarder& target, ElementId instance,
                            ElementId replacement);

  [[nodiscard]] const ForwarderCounters& counters() const { return counters_; }
  [[nodiscard]] const FlowTable& flow_table() const { return table_; }
  [[nodiscard]] FlowTable& flow_table() { return table_; }

  /// Deterministic per-forwarder selector stream for load-balancing picks.
  [[nodiscard]] std::uint64_t next_selector();

 private:
  [[nodiscard]] FiveTuple canonical_tuple(const Packet& packet) const {
    return packet.direction == Direction::kForward ? packet.flow
                                                   : packet.flow.reversed();
  }

  ElementId id_;
  FlowTable table_;
  RuleTable rules_;
  ForwarderCounters counters_;
  std::uint64_t selector_state_;
  std::unordered_map<ElementId, Labels> attachment_labels_;
};

}  // namespace switchboard::dataplane
