// The Switchboard forwarder: a cloud-agnostic data-plane proxy (Section 5).
//
// Deployment model (Fig. 5): VNF instances and edge instances *attach* to a
// forwarder (same L2 domain, forwarder as their gateway); forwarders reach
// each other over wide-area tunnels.  Per connection the forwarder pins
//   * the attached instance serving the flow (VNF instance, or the edge
//     instance at ingress/egress sites),
//   * the next-hop forwarder toward the egress,
//   * the previous-hop element toward the ingress (learned from the first
//     packet's arrival source),
// giving flow affinity and symmetric return (Section 5.3).  The paper
// describes these as two flow-table entries (forward + reverse); this
// implementation stores one entry carrying both pointers — the semantics
// are identical.
//
// Threading (the paper's per-core scaling, Fig. 8): one Forwarder can be
// driven by N worker threads RSS-style.  Packets hash by (labels,
// forward-direction 5-tuple) to a worker (worker_for()); each worker owns a
// disjoint set of flow-table shards, so steady-state processing takes only
// uncontended locks.  process_from_wire / process_from_attached /
// process_batch are thread-safe for any interleaving (shard locks + atomic
// counters); honoring the worker mapping is what makes them *fast*.
// Control-plane mutations (rules(), register_attachment()) are NOT
// synchronized against packet processing — install rules before starting
// workers or quiesce them first (the paper's make-before-break updates swap
// whole rules between packet bursts).
//
// Load-balancing picks are a pure function of (forwarder seed, flow key):
// the pinning a flow gets does not depend on packet interleaving or worker
// count, which keeps the threaded data plane bit-identical to the
// single-threaded one (tested by forwarder_concurrency_test).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "common/stats.hpp"
#include "dataplane/load_balancer.hpp"
#include "dataplane/packet.hpp"
#include "dataplane/sharded_flow_table.hpp"

namespace switchboard::dataplane {

enum class ActionType : std::uint8_t {
  kDeliverToAttached,   // hand to the local VNF/edge instance
  kSendToForwarder,     // tunnel to another forwarder
  kDrop,
};

/// How the wire-side hot path reads per-flow state (DESIGN.md §15).
/// kEpochRead is the production path; kMutexRead is the pre-epoch
/// design, kept as a benchmark ablation so fig8 can measure exactly what
/// the lock-free read path buys.  Both produce byte-identical results.
enum class ReadMode : std::uint8_t { kEpochRead, kMutexRead };

struct ForwardAction {
  ActionType type{ActionType::kDrop};
  ElementId element{kNoElement};

  friend constexpr bool operator==(const ForwardAction&,
                                   const ForwardAction&) = default;
};

/// Per-packet tallies; bumped with relaxed atomics so N workers can share
/// the forwarder.  Read them quiesced (workers joined) for exact totals.
/// Internally the forwarder stripes one cell per flow-table shard (a
/// worker only touches its own shards' cells — no cross-core cacheline
/// traffic on the hot path); counters() aggregates the stripes on read.
struct ForwarderCounters {
  RelaxedCounter from_wire{0};
  RelaxedCounter from_attached{0};
  RelaxedCounter flow_misses{0};     // first packets (created state)
  RelaxedCounter drops{0};
  RelaxedCounter label_reaffixed{0};
};

class Forwarder {
 public:
  /// `worker_count` sizes the shard space (shard_count_for_workers());
  /// worker_count == 1 yields the classic single-threaded forwarder.
  explicit Forwarder(ElementId id, std::size_t flow_capacity = 1024,
                     std::size_t worker_count = 1);

  [[nodiscard]] ElementId id() const { return id_; }
  [[nodiscard]] std::size_t worker_count() const { return worker_count_; }

  /// Flow-state read mode for the wire-side hot path.  Set it while
  /// workers are quiesced (like rule installs); both modes yield
  /// identical actions and counters.
  void set_read_mode(ReadMode mode) { read_mode_ = mode; }
  [[nodiscard]] ReadMode read_mode() const { return read_mode_; }

  /// Load-balancing rules, installed by the Local Switchboard.
  [[nodiscard]] RuleTable& rules() { return rules_; }
  [[nodiscard]] const RuleTable& rules() const { return rules_; }

  /// Associates an attached instance with its chain labels, so labels can
  /// be re-affixed for VNFs that strip or do not support them (Sec. 5.3).
  void register_attachment(ElementId instance, const Labels& labels);

  /// RSS dispatch: the worker thread that should process this packet.
  /// Both directions of a connection map to the same worker (the key is
  /// the forward-direction 5-tuple), preserving flow affinity per worker.
  [[nodiscard]] std::size_t worker_for(const Packet& packet) const {
    const FiveTuple key = canonical_tuple(packet);
    return rss_worker(flow_hash(packet.labels, key), table_.shard_count(),
                      worker_count_);
  }

  /// Packet arriving over a wide-area tunnel (or from the ingress edge's
  /// wire side).  Delivers to the attached instance pinned for the flow.
  ForwardAction process_from_wire(const Packet& packet);

  /// Packet handed back by an attached instance; `packet.arrival_source`
  /// must be that instance's id.  Forwards toward the next (forward
  /// direction) or previous (reverse) element.
  ForwardAction process_from_attached(Packet& packet);

  /// Wire-side batch entry point for worker threads.  In kEpochRead mode
  /// this is a structure-of-arrays pipeline: hash every key in a chunk,
  /// prefetch every probe-start bucket, resolve all lookups under ONE
  /// epoch pin, then act — probe cache misses overlap instead of
  /// serializing.  Actions and counters are byte-identical to calling
  /// process_from_wire per packet (tested).  When `actions` is non-empty
  /// it must match `packets` in size and receives the per-packet actions.
  /// Returns the number of packets not dropped.
  std::size_t process_batch(std::span<const Packet> packets,
                            std::span<ForwardAction> actions = {});

  /// Annotation-mode (Active-Switching ablation) wire-side entry point:
  /// steering state rides in packet.steering instead of the flow table.
  /// A valid annotation (route_epoch == rules().version()) is honoured
  /// without touching any per-flow state; a missing or stale one is
  /// re-derived from the current rule — a pure function of the flow key,
  /// so re-picks converge on the pinning table mode would hold — and
  /// written back into the packet.  Reverse packets without a valid
  /// annotation drop (they need the forward path's affix), mirroring the
  /// table modes' unknown-reverse-flow drop.
  ForwardAction process_annotated(Packet& packet);

  /// Batch form of process_annotated (mutates packets in place to affix
  /// annotations).  Returns the number of packets not dropped.
  std::size_t process_batch_annotated(std::span<Packet> packets,
                                      std::span<ForwardAction> actions = {});

  /// The route epoch annotations are validated against (the rule table's
  /// current version).
  [[nodiscard]] std::uint32_t route_epoch() const { return rules_.version(); }

  /// Connection teardown: drop the flow state.
  bool complete_flow(const Labels& labels, const FiveTuple& tuple);

  /// OpenNF-style state transfer (Section 5.3): moves every flow pinned
  /// to attached instance `instance` into `target`'s flow table,
  /// re-pinning it to `replacement` (the equivalent instance behind the
  /// target forwarder).  Used for elastic scaling / draining a forwarder
  /// without breaking flow affinity.  Returns the number of flows moved.
  /// Control-plane operation: quiesce workers on both forwarders first.
  std::size_t migrate_flows(Forwarder& target, ElementId instance,
                            ElementId replacement);

  /// Failure drain (recovery path): invalidates every flow pinning that
  /// points at `dead` — as the attached instance serving the flow or as the
  /// pinned next-hop forwarder — by resetting the pointer to kNoElement.
  /// The entry itself survives (prev_element keeps the reverse path and
  /// symmetric return intact); the next forward-direction packet of each
  /// flow re-picks from the then-current rule.  Thread-safe (all-shard
  /// lock); returns the number of entries invalidated.
  std::size_t drain_element(ElementId dead);

  [[nodiscard]] ForwarderCounters counters() const;
  [[nodiscard]] const ShardedFlowTable& flow_table() const { return table_; }
  [[nodiscard]] ShardedFlowTable& flow_table() { return table_; }

  /// Deterministic per-forwarder selector stream for load-balancing picks.
  /// Thread-safe; retained for callers that need a shared draw sequence —
  /// flow pinning itself uses flow_selector() so it is order-independent.
  [[nodiscard]] std::uint64_t next_selector();

 private:
  [[nodiscard]] FiveTuple canonical_tuple(const Packet& packet) const {
    return packet.direction == Direction::kForward ? packet.flow
                                                   : packet.flow.reversed();
  }

  /// Flow lookup honouring read_mode_.
  [[nodiscard]] std::optional<FlowEntry> lookup(const Labels& labels,
                                                const FiveTuple& key) const {
    return read_mode_ == ReadMode::kMutexRead ? table_.find_mutex(labels, key)
                                              : table_.find(labels, key);
  }

  /// Everything process_from_wire does AFTER the flow lookup (hit-valid
  /// deliver, drained re-pin, first-packet miss).  Shared with the batch
  /// pipeline so both paths count and act identically.
  ForwardAction wire_resolve(const Packet& packet, const FiveTuple& key,
                             ForwarderCounters& counters,
                             const std::optional<FlowEntry>& entry);

  /// Re-derives a flow's pinning from the current rule: the annotation
  /// mode's miss/stale path.  Pure function of (seed, flow key).
  ForwardAction annotate(Packet& packet, const FiveTuple& key,
                         ForwarderCounters& counters);

  /// Pick seed for a flow: pure function of (forwarder seed, flow key), so
  /// pinning is independent of packet order, thread count, and racing
  /// first packets.
  [[nodiscard]] std::uint64_t flow_selector(const Labels& labels,
                                            const FiveTuple& key) const {
    return mix64(selector_seed_ ^ flow_hash(labels, key));
  }

  /// One counter stripe, padded to its own cacheline so the per-packet
  /// bumps of different workers never share a line.
  struct alignas(64) CounterCell {
    ForwarderCounters counters;
  };

  /// The stripe for a packet: the cell of the shard owning its flow.
  [[nodiscard]] ForwarderCounters& cell_for(const Labels& labels,
                                            const FiveTuple& key) {
    return counter_cells_[rss_shard(flow_hash(labels, key),
                                    counter_cells_.size())]
        .counters;
  }

  // Concurrency contract (see DESIGN.md §14): table_ carries its own
  // per-shard swb::Mutex guards; counter_cells_ and selector_state_ are
  // relaxed atomics (no lock, quiesce to read a consistent set); rules_
  // and attachment_labels_ are *externally synchronized* — written only
  // while workers are quiesced (make-before-break rule swaps), so they
  // deliberately carry no guard for the read-mostly packet path.
  ElementId id_;
  std::size_t worker_count_;
  ReadMode read_mode_{ReadMode::kEpochRead};
  ShardedFlowTable table_;
  RuleTable rules_;
  std::vector<CounterCell> counter_cells_;   // one per shard
  std::uint64_t selector_seed_;
  std::atomic<std::uint64_t> selector_state_;
  std::unordered_map<ElementId, Labels> attachment_labels_;
};

}  // namespace switchboard::dataplane
