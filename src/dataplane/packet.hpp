// Packet and label definitions for the Switchboard data plane (Section 3).
//
// An ingress edge instance affixes two labels to the first packet of a
// connection: the service-chain label (identifying customer + chain) and
// the egress-site label.  Forwarders key their flow tables on
// (labels, 5-tuple).
//
// The optional STEERING ANNOTATION implements the Active-Switching
// ablation (St. John & Akella, PAPERS.md): the per-connection pinning a
// forwarder would otherwise hold as flow-table state rides in the packet
// itself, validated against the route epoch of the forwarder that affixed
// it.  Wire format (DESIGN.md §15): a 16-byte shim after the label stack —
// three element ids plus the 32-bit route epoch.
#pragma once

#include <cstdint>
#include <functional>

namespace switchboard::dataplane {

/// Compact id of a data-plane element. ~0 means "not set".
using ElementId = std::uint32_t;
inline constexpr ElementId kNoElement = ~ElementId{0};

/// The per-connection steering state pinned at a forwarder: the
/// load-balancing selections made on the connection's first packet.
/// Lives in the flow table (table modes) or in the packet's steering
/// annotation (annotation mode).
struct FlowEntry {
  ElementId vnf_instance{kNoElement};    // instance pinned to the flow
  ElementId next_forwarder{kNoElement};  // forward direction next hop
  ElementId prev_element{kNoElement};    // reverse direction next hop

  friend constexpr bool operator==(const FlowEntry&, const FlowEntry&) =
      default;
};

struct FiveTuple {
  std::uint32_t src_ip{0};
  std::uint32_t dst_ip{0};
  std::uint16_t src_port{0};
  std::uint16_t dst_port{0};
  std::uint8_t protocol{0};

  friend constexpr bool operator==(const FiveTuple&, const FiveTuple&) =
      default;

  /// The same connection seen from the opposite direction.
  [[nodiscard]] constexpr FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }
};

/// The two Switchboard overlay labels (MPLS labels in the prototype).
struct Labels {
  std::uint32_t chain{0};        // customer + service chain
  std::uint32_t egress_site{0};  // egress edge site

  friend constexpr bool operator==(const Labels&, const Labels&) = default;
};

enum class Direction : std::uint8_t { kForward, kReverse };

/// Route epoch value meaning "no annotation affixed" (rule-table versions
/// start at 1, so a default-constructed annotation never validates).
inline constexpr std::uint32_t kNoRouteEpoch = 0;

/// Active-Switching-style steering annotation: the flow's pinning plus
/// the rule-table version it was derived from.  A forwarder honours the
/// pinning only while the epoch matches its current rule version; a
/// stale epoch (route update since the affix) triggers a re-pick, which
/// is a pure function of the flow key and therefore converges on the
/// same pinning the flow table would hold.
struct SteeringAnnotation {
  FlowEntry pinning;
  std::uint32_t route_epoch{kNoRouteEpoch};

  /// True when a forwarder whose rule version is `route_version` can act
  /// on the pinning without consulting any per-flow state.
  [[nodiscard]] constexpr bool valid_for(std::uint32_t route_version) const {
    return route_epoch == route_version &&
           pinning.vnf_instance != kNoElement;
  }

  friend constexpr bool operator==(const SteeringAnnotation&,
                                   const SteeringAnnotation&) = default;
};

/// Site count the anycast visited-set bitmap can express (one bit per
/// site id; deployments beyond this fall back to centralized modes).
inline constexpr std::uint32_t kMaxAnycastSites = 64;

/// SB-ANYCAST-D loop-prevention shim (DESIGN.md §17), carried in the
/// packet like the steering annotation's 16-byte shim: the next chain
/// stage to serve, the remaining wide-area hop budget, and a bitmap of
/// sites the packet already visited.  A steering decision may never pick
/// a visited site (staying at the current site is free) and every
/// wide-area hop burns one unit of budget, so no packet can loop or
/// wander beyond hop_budget sites even under arbitrarily stale tables.
struct AnycastAnnotation {
  std::uint16_t stage{0};          // next VNF stage to serve (1-based)
  std::uint16_t hop_budget{0};     // remaining wide-area hops
  std::uint64_t visited_sites{0};  // bitmap over site ids

  [[nodiscard]] constexpr bool visited(std::uint32_t site) const {
    return site < kMaxAnycastSites &&
           (visited_sites & (std::uint64_t{1} << site)) != 0;
  }
  constexpr void mark_visited(std::uint32_t site) {
    if (site < kMaxAnycastSites) {
      visited_sites |= std::uint64_t{1} << site;
    }
  }

  friend constexpr bool operator==(const AnycastAnnotation&,
                                   const AnycastAnnotation&) = default;
};

struct Packet {
  FiveTuple flow;
  Labels labels;
  Direction direction{Direction::kForward};
  std::uint16_t size_bytes{64};
  /// Data-plane element (forwarder or edge instance) the packet arrived
  /// from; used to learn the previous hop for symmetric return.
  std::uint32_t arrival_source{0};
  /// Annotation-mode steering shim (ignored by the flow-table modes).
  SteeringAnnotation steering;
  /// SB-ANYCAST-D loop-prevention shim (ignored by the centralized modes).
  AnycastAnnotation anycast;
};

/// 64-bit mix (splitmix64 finalizer) used by all data-plane hash tables.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Hash of a connection within a chain: combines labels and 5-tuple.
constexpr std::uint64_t flow_hash(const Labels& labels,
                                  const FiveTuple& tuple) {
  const std::uint64_t a =
      (static_cast<std::uint64_t>(tuple.src_ip) << 32) | tuple.dst_ip;
  const std::uint64_t b =
      (static_cast<std::uint64_t>(tuple.src_port) << 48) |
      (static_cast<std::uint64_t>(tuple.dst_port) << 32) |
      (static_cast<std::uint64_t>(tuple.protocol) << 24) | labels.chain;
  const std::uint64_t c = labels.egress_site;
  return mix64(a ^ mix64(b ^ mix64(c)));
}

}  // namespace switchboard::dataplane
