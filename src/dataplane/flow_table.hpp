// The forwarder's per-connection flow table (Section 3, "connection setup
// time"; Section 5.3 flow affinity / symmetric return).
//
// One entry per connection, keyed by (labels, forward-direction 5-tuple),
// holding the load-balancing selections made on the first packet:
//   * the VNF instance serving the connection at this forwarder,
//   * the next-hop forwarder (forward direction),
//   * the previous-hop element (reverse direction / symmetric return).
//
// Implementation: open-addressing, linear-probing hash table with
// power-of-two capacity, sized for millions of entries (the paper's DPDK
// forwarder holds 512K flows per core).  This is the hot path of the
// Fig. 8 benchmark.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dataplane/packet.hpp"

namespace switchboard::dataplane {

// ElementId / kNoElement / FlowEntry live in packet.hpp: in annotation
// mode the FlowEntry rides in the packet itself rather than in a table.

class FlowTable {
 public:
  /// `initial_capacity` rounds up to a power of two.  The table grows
  /// automatically at 70% occupancy.
  explicit FlowTable(std::size_t initial_capacity = 1024);

  /// Finds the entry for (labels, tuple); nullptr if absent.
  [[nodiscard]] FlowEntry* find(const Labels& labels, const FiveTuple& tuple);
  [[nodiscard]] const FlowEntry* find(const Labels& labels,
                                      const FiveTuple& tuple) const;

  /// Inserts (overwrites if present).  Returns the stored entry.
  FlowEntry& insert(const Labels& labels, const FiveTuple& tuple,
                    FlowEntry entry);

  /// Removes the entry; returns true if it existed.
  bool erase(const Labels& labels, const FiveTuple& tuple);

  /// Visits every live entry (used by state migration and replication).
  template <typename Fn>   // Fn(const Labels&, const FiveTuple&, FlowEntry&)
  void for_each(Fn&& fn) {
    for (Slot& slot : slots_) {
      if (slot.state == SlotState::kOccupied) {
        fn(slot.labels, slot.tuple, slot.entry);
      }
    }
  }
  template <typename Fn>   // Fn(const Labels&, const FiveTuple&, const FlowEntry&)
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.state == SlotState::kOccupied) {
        fn(slot.labels, slot.tuple, slot.entry);
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] double load_factor() const {
    return slots_.empty()
        ? 0.0
        : static_cast<double>(size_) / static_cast<double>(slots_.size());
  }
  void clear();

  /// Audits the table's structural invariants (aborts via SWB_CHECK on
  /// violation): power-of-two capacity, occupancy/tombstone counters in
  /// sync with slot states, the growth threshold respected, and every
  /// occupied slot reachable from its probe start without crossing an
  /// empty slot.  O(capacity + size * probe length); called after grow()
  /// in debug builds and from tests.
  void check_invariants() const;

 private:
  enum class SlotState : std::uint8_t { kEmpty, kOccupied, kTombstone };

  struct Slot {
    Labels labels;
    FiveTuple tuple;
    FlowEntry entry;
    SlotState state{SlotState::kEmpty};
  };

  void grow();
  [[nodiscard]] std::size_t probe_start(const Labels& labels,
                                        const FiveTuple& tuple) const {
    return flow_hash(labels, tuple) & mask_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_{0};
  std::size_t size_{0};
  std::size_t tombstones_{0};
};

}  // namespace switchboard::dataplane
