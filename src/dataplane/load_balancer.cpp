#include "dataplane/load_balancer.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace switchboard::dataplane {

void WeightedChoice::add(ElementId element, double weight) {
  SWB_CHECK(weight > 0);
  elements_.push_back(element);
  cumulative_.push_back(total_weight() + weight);
}

void WeightedChoice::clear() {
  elements_.clear();
  cumulative_.clear();
}

ElementId WeightedChoice::pick(std::uint64_t selector) const {
  SWB_DCHECK(!elements_.empty());
  // Map the selector uniformly onto [0, total_weight).
  const double u =
      static_cast<double>(selector >> 11) * 0x1.0p-53 * total_weight();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const std::size_t index = std::min(
      static_cast<std::size_t>(it - cumulative_.begin()),
      elements_.size() - 1);
  return elements_[index];
}

double WeightedChoice::weight_of(ElementId element) const {
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i] == element) {
      return cumulative_[i] - (i == 0 ? 0.0 : cumulative_[i - 1]);
    }
  }
  return 0.0;
}

void WeightedChoice::check_invariants() const {
  SWB_CHECK_EQ(elements_.size(), cumulative_.size());
  double previous = 0.0;
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    SWB_CHECK(std::isfinite(cumulative_[i]))
        << "non-finite cumulative weight at index " << i;
    // Strictly increasing prefix sums <=> every element weight positive;
    // a zero-width band could never be picked yet would absorb a slot.
    SWB_CHECK_GT(cumulative_[i], previous)
        << "element " << elements_[i] << " has non-positive weight";
    previous = cumulative_[i];
    SWB_CHECK_NE(elements_[i], kNoElement);
  }
}

void LoadBalanceRule::check_invariants() const {
  vnf_instances.check_invariants();
  next_forwarders.check_invariants();
  prev_forwarders.check_invariants();
}

void RuleTable::install(const Labels& labels, LoadBalanceRule rule) {
#ifndef NDEBUG
  rule.check_invariants();
#endif
  rules_[labels] = std::move(rule);
  ++version_;
}

void RuleTable::remove(const Labels& labels) {
  rules_.erase(labels);
  ++version_;
}

const LoadBalanceRule* RuleTable::find(const Labels& labels) const {
  const auto it = rules_.find(labels);
  return it == rules_.end() ? nullptr : &it->second;
}

LoadBalanceRule* RuleTable::find_mutable(const Labels& labels) {
  const auto it = rules_.find(labels);
  return it == rules_.end() ? nullptr : &it->second;
}

void RuleTable::check_invariants() const {
  for (const auto& [labels, rule] : rules_) rule.check_invariants();
}

}  // namespace switchboard::dataplane
