#include "dataplane/traffic_gen.hpp"

#include "common/check.hpp"
#include "dataplane/sharded_flow_table.hpp"

namespace switchboard::dataplane {

PacketStream::PacketStream(const TrafficGenConfig& config) : config_{config} {
  SWB_CHECK(config.flow_count > 0);
  SWB_CHECK(config.reverse_fraction >= 0.0 && config.reverse_fraction <= 1.0);
  SWB_CHECK(config.worker_count >= 1);
  SWB_CHECK_LT(config.worker_index, config.worker_count);
  if (config.worker_count > 1) {
    // Precompute this worker's flow share (RSS steering): same mapping the
    // forwarder uses, so a worker's stream only carries flows it owns.
    const std::size_t shards = shard_count_for_workers(config.worker_count);
    owned_flows_.reserve(config.flow_count / config.worker_count + 1);
    for (std::uint32_t f = 0; f < config.flow_count; ++f) {
      const std::uint64_t hash = flow_hash(config.labels, flow_tuple(f));
      if (rss_worker(hash, shards, config.worker_count) ==
          config.worker_index) {
        owned_flows_.push_back(f);
      }
    }
  }
}

FiveTuple PacketStream::flow_tuple(std::uint32_t flow_index) const {
  const std::uint64_t h = mix64(config_.seed ^ (0xF10Cull << 32) ^ flow_index);
  FiveTuple tuple;
  tuple.src_ip = 0x0A000000u | (flow_index & 0x00FFFFFFu);        // 10.x.y.z
  tuple.dst_ip = 0xC0A80000u | static_cast<std::uint32_t>(h & 0xFFFF);
  tuple.src_port = static_cast<std::uint16_t>(1024 + (h >> 16 & 0x7FFF));
  tuple.dst_port = 80;
  tuple.protocol = 17;   // UDP
  return tuple;
}

Packet PacketStream::next() {
  Packet packet;
  if (owned_flows_.empty()) {
    SWB_CHECK(config_.worker_count <= 1)
        << "worker " << config_.worker_index << " owns no flows";
    packet.flow = flow_tuple(next_flow_);
  } else {
    packet.flow = flow_tuple(owned_flows_[next_flow_]);
  }
  packet.labels = config_.labels;
  packet.size_bytes = config_.packet_size;
  // Deterministic direction pattern approximating the requested mix.
  if (config_.reverse_fraction > 0.0) {
    const std::uint64_t h = mix64(packet_counter_ ^ config_.seed);
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u < config_.reverse_fraction) {
      packet.direction = Direction::kReverse;
      packet.flow = packet.flow.reversed();
    }
  }
  ++packet_counter_;
  const std::uint32_t cycle = owned_flows_.empty()
      ? config_.flow_count
      : static_cast<std::uint32_t>(owned_flows_.size());
  next_flow_ = (next_flow_ + 1) % cycle;
  return packet;
}

std::vector<Packet> make_packet_batch(const TrafficGenConfig& config,
                                      std::size_t count) {
  PacketStream stream{config};
  std::vector<Packet> packets;
  packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) packets.push_back(stream.next());
  return packets;
}

}  // namespace switchboard::dataplane
