// Synthetic packet generation (substitute for the paper's MoonGen traffic
// generator): minimum-size UDP packets distributed uniformly over a fixed
// number of flows, as in the Fig. 8 setup.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/packet.hpp"

namespace switchboard::dataplane {

struct TrafficGenConfig {
  std::uint32_t flow_count{1};
  Labels labels{1, 1};
  std::uint16_t packet_size{64};
  /// Fraction of generated packets in the reverse direction.
  double reverse_fraction{0.0};
  std::uint64_t seed{1};
  /// RSS worker filtering (multi-threaded Fig. 8 runs): when worker_count
  /// > 1 the stream yields only flows whose forward-direction hash maps to
  /// `worker_index` (same mapping as Forwarder::worker_for, i.e.
  /// rss_worker over shard_count_for_workers(worker_count) shards), so each
  /// worker thread generates exactly the traffic it owns.
  std::uint32_t worker_count{1};
  std::uint32_t worker_index{0};
};

/// Deterministic stream of packets, round-robin across flows (uniform flow
/// distribution).  Flow k's 5-tuple is a pure function of (seed, k).
class PacketStream {
 public:
  explicit PacketStream(const TrafficGenConfig& config);

  [[nodiscard]] Packet next();
  /// 5-tuple of a given flow index (forward direction).
  [[nodiscard]] FiveTuple flow_tuple(std::uint32_t flow_index) const;
  [[nodiscard]] const TrafficGenConfig& config() const { return config_; }
  /// Flows this stream cycles through (= flow_count when unfiltered; the
  /// worker's share when worker_count > 1; can be 0 for a tiny flow set).
  [[nodiscard]] std::size_t owned_flow_count() const {
    return owned_flows_.empty() && config_.worker_count <= 1
        ? config_.flow_count
        : owned_flows_.size();
  }

 private:
  TrafficGenConfig config_;
  std::vector<std::uint32_t> owned_flows_;   // empty = all flows (no filter)
  std::uint32_t next_flow_{0};
  std::uint64_t packet_counter_{0};
};

/// Materializes `count` packets (convenience for benchmarks).
[[nodiscard]] std::vector<Packet> make_packet_batch(
    const TrafficGenConfig& config, std::size_t count);

}  // namespace switchboard::dataplane
