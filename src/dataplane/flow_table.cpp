#include "dataplane/flow_table.hpp"

#include <bit>
#include <utility>

#include "common/check.hpp"

namespace switchboard::dataplane {

FlowTable::FlowTable(std::size_t initial_capacity) {
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(initial_capacity, 16));
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

FlowEntry* FlowTable::find(const Labels& labels, const FiveTuple& tuple) {
  std::size_t index = probe_start(labels, tuple);
  for (;;) {
    Slot& slot = slots_[index];
    if (slot.state == SlotState::kEmpty) return nullptr;
    if (slot.state == SlotState::kOccupied && slot.labels == labels &&
        slot.tuple == tuple) {
      return &slot.entry;
    }
    index = (index + 1) & mask_;
  }
}

const FlowEntry* FlowTable::find(const Labels& labels,
                                 const FiveTuple& tuple) const {
  return const_cast<FlowTable*>(this)->find(labels, tuple);
}

FlowEntry& FlowTable::insert(const Labels& labels, const FiveTuple& tuple,
                             FlowEntry entry) {
  if ((size_ + tombstones_ + 1) * 10 > slots_.size() * 7) grow();
  std::size_t index = probe_start(labels, tuple);
  std::size_t first_tombstone = slots_.size();
  for (;;) {
    Slot& slot = slots_[index];
    if (slot.state == SlotState::kOccupied && slot.labels == labels &&
        slot.tuple == tuple) {
      slot.entry = entry;
      return slot.entry;
    }
    if (slot.state == SlotState::kTombstone &&
        first_tombstone == slots_.size()) {
      first_tombstone = index;
    }
    if (slot.state == SlotState::kEmpty) {
      Slot& target = first_tombstone != slots_.size()
          ? slots_[first_tombstone]
          : slot;
      if (target.state == SlotState::kTombstone) --tombstones_;
      target.labels = labels;
      target.tuple = tuple;
      target.entry = entry;
      target.state = SlotState::kOccupied;
      ++size_;
      return target.entry;
    }
    index = (index + 1) & mask_;
  }
}

bool FlowTable::erase(const Labels& labels, const FiveTuple& tuple) {
  std::size_t index = probe_start(labels, tuple);
  for (;;) {
    Slot& slot = slots_[index];
    if (slot.state == SlotState::kEmpty) return false;
    if (slot.state == SlotState::kOccupied && slot.labels == labels &&
        slot.tuple == tuple) {
      slot.state = SlotState::kTombstone;
      --size_;
      ++tombstones_;
      return true;
    }
    index = (index + 1) & mask_;
  }
}

void FlowTable::clear() {
  for (Slot& slot : slots_) slot.state = SlotState::kEmpty;
  size_ = 0;
  tombstones_ = 0;
}

void FlowTable::grow() {
  // The growth trigger counts tombstones as well as live entries (probe
  // chains cross both), but doubling is only warranted when *live* entries
  // need the room.  A connection-churn workload (insert/erase cycling, e.g.
  // complete_flow under steady traffic) crosses the threshold on tombstones
  // alone; doubling then would inflate capacity without bound.  Rehash in
  // place when live occupancy alone is at most half the trigger (35% of
  // capacity) — the rehash drops every tombstone — and double otherwise.
  const bool live_needs_room = size_ * 20 > slots_.size() * 7;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(live_needs_room ? old.size() * 2 : old.size(), Slot{});
  mask_ = slots_.size() - 1;
  size_ = 0;
  tombstones_ = 0;
  for (Slot& slot : old) {
    if (slot.state == SlotState::kOccupied) {
      insert(slot.labels, slot.tuple, slot.entry);
    }
  }
#ifndef NDEBUG
  check_invariants();
#endif
}

void FlowTable::check_invariants() const {
  SWB_CHECK(std::has_single_bit(slots_.size())) << "capacity not a power of 2";
  SWB_CHECK_EQ(mask_, slots_.size() - 1);

  std::size_t occupied = 0;
  std::size_t tombstones = 0;
  for (const Slot& slot : slots_) {
    switch (slot.state) {
      case SlotState::kOccupied: ++occupied; break;
      case SlotState::kTombstone: ++tombstones; break;
      case SlotState::kEmpty: break;
    }
  }
  SWB_CHECK_EQ(occupied, size_);
  SWB_CHECK_EQ(tombstones, tombstones_);
  // insert() grows before (size + tombstones) can exceed 70% of capacity.
  SWB_CHECK_LE((size_ + tombstones_) * 10, slots_.size() * 7);

  // Probe-chain reachability: every occupied slot must be found by walking
  // forward from its probe start without crossing an empty slot (an erase
  // that set kEmpty instead of kTombstone would orphan later entries).
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.state != SlotState::kOccupied) continue;
    std::size_t index = probe_start(slot.labels, slot.tuple);
    for (;;) {
      SWB_CHECK(slots_[index].state != SlotState::kEmpty)
          << "slot " << i << " unreachable: empty slot " << index
          << " interrupts its probe chain";
      if (index == i) break;
      index = (index + 1) & mask_;
    }
  }
}

}  // namespace switchboard::dataplane
