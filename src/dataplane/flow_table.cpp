#include "dataplane/flow_table.hpp"

#include <bit>
#include <cassert>
#include <utility>

namespace switchboard::dataplane {

FlowTable::FlowTable(std::size_t initial_capacity) {
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(initial_capacity, 16));
  slots_.resize(capacity);
  mask_ = capacity - 1;
}

FlowEntry* FlowTable::find(const Labels& labels, const FiveTuple& tuple) {
  std::size_t index = probe_start(labels, tuple);
  for (;;) {
    Slot& slot = slots_[index];
    if (slot.state == SlotState::kEmpty) return nullptr;
    if (slot.state == SlotState::kOccupied && slot.labels == labels &&
        slot.tuple == tuple) {
      return &slot.entry;
    }
    index = (index + 1) & mask_;
  }
}

const FlowEntry* FlowTable::find(const Labels& labels,
                                 const FiveTuple& tuple) const {
  return const_cast<FlowTable*>(this)->find(labels, tuple);
}

FlowEntry& FlowTable::insert(const Labels& labels, const FiveTuple& tuple,
                             FlowEntry entry) {
  if ((size_ + tombstones_ + 1) * 10 > slots_.size() * 7) grow();
  std::size_t index = probe_start(labels, tuple);
  std::size_t first_tombstone = slots_.size();
  for (;;) {
    Slot& slot = slots_[index];
    if (slot.state == SlotState::kOccupied && slot.labels == labels &&
        slot.tuple == tuple) {
      slot.entry = entry;
      return slot.entry;
    }
    if (slot.state == SlotState::kTombstone &&
        first_tombstone == slots_.size()) {
      first_tombstone = index;
    }
    if (slot.state == SlotState::kEmpty) {
      Slot& target = first_tombstone != slots_.size()
          ? slots_[first_tombstone]
          : slot;
      if (target.state == SlotState::kTombstone) --tombstones_;
      target.labels = labels;
      target.tuple = tuple;
      target.entry = entry;
      target.state = SlotState::kOccupied;
      ++size_;
      return target.entry;
    }
    index = (index + 1) & mask_;
  }
}

bool FlowTable::erase(const Labels& labels, const FiveTuple& tuple) {
  std::size_t index = probe_start(labels, tuple);
  for (;;) {
    Slot& slot = slots_[index];
    if (slot.state == SlotState::kEmpty) return false;
    if (slot.state == SlotState::kOccupied && slot.labels == labels &&
        slot.tuple == tuple) {
      slot.state = SlotState::kTombstone;
      --size_;
      ++tombstones_;
      return true;
    }
    index = (index + 1) & mask_;
  }
}

void FlowTable::clear() {
  for (Slot& slot : slots_) slot.state = SlotState::kEmpty;
  size_ = 0;
  tombstones_ = 0;
}

void FlowTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  size_ = 0;
  tombstones_ = 0;
  for (Slot& slot : old) {
    if (slot.state == SlotState::kOccupied) {
      insert(slot.labels, slot.tuple, slot.entry);
    }
  }
}

}  // namespace switchboard::dataplane
