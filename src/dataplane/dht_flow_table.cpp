#include "dataplane/dht_flow_table.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace switchboard::dataplane {

DhtFlowTable::DhtFlowTable(std::size_t node_count,
                           std::size_t virtual_nodes_per_node) {
  SWB_CHECK(node_count >= 2);
  SWB_CHECK(virtual_nodes_per_node >= 1);
  shards_.reserve(node_count);
  alive_.assign(node_count, true);
  for (std::size_t n = 0; n < node_count; ++n) {
    shards_.push_back(std::make_unique<ShardedFlowTable>(1024, 4));
    for (std::size_t v = 0; v < virtual_nodes_per_node; ++v) {
      ring_.push_back(RingPoint{
          mix64(0xD147ull << 32 | (n << 8) | v),
          static_cast<std::uint32_t>(n)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const RingPoint& a, const RingPoint& b) {
              return a.hash < b.hash;
            });
}

std::vector<std::size_t> DhtFlowTable::owners(std::uint64_t key_hash) const {
  std::vector<std::size_t> result;
  const auto start = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const RingPoint& p, std::uint64_t h) { return p.hash < h; });
  const std::size_t begin =
      static_cast<std::size_t>(start - ring_.begin()) % ring_.size();
  for (std::size_t i = 0; i < ring_.size() && result.size() < 2; ++i) {
    const std::uint32_t node = ring_[(begin + i) % ring_.size()].node;
    if (!alive_[node]) continue;
    if (std::find(result.begin(), result.end(), node) == result.end()) {
      result.push_back(node);
    }
  }
  return result;
}

void DhtFlowTable::insert(const Labels& labels, const FiveTuple& tuple,
                          const FlowEntry& entry) {
  for (const std::size_t node : owners(flow_hash(labels, tuple))) {
    shards_[node]->insert(labels, tuple, entry);
  }
}

std::optional<FlowEntry> DhtFlowTable::find(const Labels& labels,
                                            const FiveTuple& tuple) const {
  for (const std::size_t node : owners(flow_hash(labels, tuple))) {
    if (const std::optional<FlowEntry> entry =
            shards_[node]->find(labels, tuple)) {
      return entry;
    }
  }
  return std::nullopt;
}

bool DhtFlowTable::erase(const Labels& labels, const FiveTuple& tuple) {
  bool erased = false;
  for (const std::size_t node : owners(flow_hash(labels, tuple))) {
    erased |= shards_[node]->erase(labels, tuple);
  }
  return erased;
}

void DhtFlowTable::fail_node(std::size_t node) {
  SWB_CHECK(node < shards_.size());
  if (!alive_[node]) return;
  alive_[node] = false;
  shards_[node]->clear();   // the node's state is gone
  re_replicate();
}

void DhtFlowTable::recover_node(std::size_t node) {
  SWB_CHECK(node < shards_.size());
  if (alive_[node]) return;
  alive_[node] = true;
  re_replicate();
}

bool DhtFlowTable::node_alive(std::size_t node) const {
  SWB_CHECK(node < shards_.size());
  return alive_[node];
}

std::size_t DhtFlowTable::live_node_count() const {
  std::size_t count = 0;
  for (const bool a : alive_) count += a ? 1 : 0;
  return count;
}

std::size_t DhtFlowTable::shard_size(std::size_t node) const {
  SWB_CHECK(node < shards_.size());
  return shards_[node]->size();
}

std::size_t DhtFlowTable::total_flows() const {
  // Count distinct keys by visiting every shard and asking the ring who
  // the primary is; count each key only at its primary.
  std::size_t total = 0;
  for (std::size_t n = 0; n < shards_.size(); ++n) {
    if (!alive_[n]) continue;
    shards_[n]->for_each([&](const Labels& labels, const FiveTuple& tuple,
                             const FlowEntry&) {
      const auto current = owners(flow_hash(labels, tuple));
      if (!current.empty() && current.front() == n) ++total;
    });
  }
  return total;
}

void DhtFlowTable::re_replicate() {
  // Re-home every entry so each key again lives on its (new) primary and
  // successor, and nowhere else.  A production system would stream only
  // affected ranges; correctness is what matters here.
  struct Pending {
    Labels labels;
    FiveTuple tuple;
    FlowEntry entry;
  };
  std::vector<Pending> all;
  for (std::size_t n = 0; n < shards_.size(); ++n) {
    if (!alive_[n]) continue;
    shards_[n]->for_each([&](const Labels& labels, const FiveTuple& tuple,
                             const FlowEntry& entry) {
      all.push_back(Pending{labels, tuple, entry});
    });
    shards_[n]->clear();
  }
  for (const Pending& p : all) {
    insert(p.labels, p.tuple, p.entry);   // dedupes via overwrite
  }
#ifndef NDEBUG
  check_invariants();
#endif
}

void DhtFlowTable::check_invariants() const {
  SWB_CHECK_EQ(alive_.size(), shards_.size());
  SWB_CHECK_EQ(ring_.size() % shards_.size(), 0u)
      << "virtual nodes must cover nodes evenly";
  for (std::size_t i = 1; i < ring_.size(); ++i) {
    SWB_CHECK_LE(ring_[i - 1].hash, ring_[i].hash) << "ring not sorted";
  }
  std::vector<bool> on_ring(shards_.size(), false);
  for (const RingPoint& point : ring_) {
    SWB_CHECK_LT(point.node, shards_.size());
    on_ring[point.node] = true;
  }
  for (std::size_t n = 0; n < shards_.size(); ++n) {
    SWB_CHECK(on_ring[n]) << "node " << n << " has no ring points";
  }

  for (std::size_t n = 0; n < shards_.size(); ++n) {
    shards_[n]->check_invariants();
    if (!alive_[n]) {
      SWB_CHECK_EQ(shards_[n]->size(), 0u)
          << "failed node " << n << " still holds entries";
    }
  }

  // Replication: each key sits on exactly its owner set.  (Both directions
  // matter: a missing replica loses affinity on the next failure; a stale
  // copy on a non-owner serves outdated pinning after rule changes.)
  // Snapshot each node's keys first: a node's own shard locks are held
  // during its for_each, and probing the node's table from inside the
  // visit would re-take them.
  struct Held {
    std::size_t node;
    Labels labels;
    FiveTuple tuple;
  };
  std::vector<Held> held;
  for (std::size_t n = 0; n < shards_.size(); ++n) {
    if (!alive_[n]) continue;
    shards_[n]->for_each(
        [&](const Labels& labels, const FiveTuple& tuple, const FlowEntry&) {
          held.push_back(Held{n, labels, tuple});
        });
  }
  for (const Held& h : held) {
    const auto owner_set = owners(flow_hash(h.labels, h.tuple));
    bool is_owner = false;
    for (const std::size_t owner : owner_set) {
      is_owner |= owner == h.node;
      SWB_CHECK(shards_[owner]->find(h.labels, h.tuple).has_value())
          << "owner " << owner << " lacks a replica";
    }
    SWB_CHECK(is_owner)
        << "node " << h.node << " holds a key it does not own";
  }
}

}  // namespace switchboard::dataplane
