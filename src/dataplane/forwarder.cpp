#include "dataplane/forwarder.hpp"

#include <vector>

#include "common/check.hpp"

namespace switchboard::dataplane {

Forwarder::Forwarder(ElementId id, std::size_t flow_capacity,
                     std::size_t worker_count)
    : id_{id},
      worker_count_{std::max<std::size_t>(worker_count, 1)},
      table_{flow_capacity, shard_count_for_workers(worker_count)},
      counter_cells_{table_.shard_count()},
      selector_seed_{mix64(0x5B1CEB00ULL + id)},
      selector_state_{selector_seed_} {}

void Forwarder::register_attachment(ElementId instance, const Labels& labels) {
  attachment_labels_[instance] = labels;
}

std::uint64_t Forwarder::next_selector() {
  const std::uint64_t raw = selector_state_.fetch_add(
      0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
  return mix64(raw + 0x9E3779B97F4A7C15ULL);
}

ForwarderCounters Forwarder::counters() const {
  ForwarderCounters total;
  for (const CounterCell& cell : counter_cells_) {
    total.from_wire += cell.counters.from_wire;
    total.from_attached += cell.counters.from_attached;
    total.flow_misses += cell.counters.flow_misses;
    total.drops += cell.counters.drops;
    total.label_reaffixed += cell.counters.label_reaffixed;
  }
  return total;
}

ForwardAction Forwarder::process_from_wire(const Packet& packet) {
  const FiveTuple key = canonical_tuple(packet);
  ForwarderCounters& counters = cell_for(packet.labels, key);
  ++counters.from_wire;
  if (const std::optional<FlowEntry> entry = table_.find(packet.labels, key)) {
    if (entry->vnf_instance != kNoElement) {
      return {ActionType::kDeliverToAttached, entry->vnf_instance};
    }
    // Drained pinning: the instance serving this flow died.  Re-pin onto a
    // survivor from the current rule.  The pick is a pure function of the
    // flow key, so workers racing on the same flow write identical entries;
    // prev_element is preserved — the reverse path stays symmetric.
    const LoadBalanceRule* rule = rules_.find(packet.labels);
    if (rule == nullptr || rule->vnf_instances.empty()) {
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    const std::uint64_t selector = flow_selector(packet.labels, key);
    FlowEntry updated = *entry;
    updated.vnf_instance = rule->vnf_instances.pick(selector);
    if (updated.next_forwarder == kNoElement &&
        !rule->next_forwarders.empty()) {
      updated.next_forwarder = rule->next_forwarders.pick(mix64(selector));
    }
    table_.insert(packet.labels, key, updated);
    return {ActionType::kDeliverToAttached, updated.vnf_instance};
  }

  // First packet of the connection at this forwarder.
  ++counters.flow_misses;
  if (packet.direction == Direction::kReverse) {
    // Reverse packets must hit state created by the forward direction;
    // a miss means the flow is unknown (e.g. expired) — drop.
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }
  const LoadBalanceRule* rule = rules_.find(packet.labels);
  if (rule == nullptr || rule->vnf_instances.empty()) {
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }

  const std::uint64_t selector = flow_selector(packet.labels, key);
  FlowEntry entry;
  entry.vnf_instance = rule->vnf_instances.pick(selector);
  entry.next_forwarder = rule->next_forwarders.empty()
      ? kNoElement
      : rule->next_forwarders.pick(mix64(selector));
  entry.prev_element = packet.arrival_source;
  // insert_if_absent: if another worker raced us to the first packet, adopt
  // its pinning so every packet of the flow sees one consistent entry.
  const FlowEntry stored = table_.insert_if_absent(packet.labels, key, entry);
  return {ActionType::kDeliverToAttached, stored.vnf_instance};
}

ForwardAction Forwarder::process_from_attached(Packet& packet) {
  // Re-affix labels for attached VNFs that stripped them (Section 5.3):
  // the attachment uniquely identifies the labels.
  bool reaffixed = false;
  if (packet.labels == Labels{}) {
    const auto it = attachment_labels_.find(packet.arrival_source);
    if (it == attachment_labels_.end()) {
      ForwarderCounters& counters =
          cell_for(packet.labels, canonical_tuple(packet));
      ++counters.from_attached;
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    packet.labels = it->second;
    reaffixed = true;
  }

  const FiveTuple key = canonical_tuple(packet);
  ForwarderCounters& counters = cell_for(packet.labels, key);
  ++counters.from_attached;
  if (reaffixed) ++counters.label_reaffixed;

  std::optional<FlowEntry> entry = table_.find(packet.labels, key);
  if (!entry) {
    // First packet of a connection entering from an attached ingress edge.
    ++counters.flow_misses;
    if (packet.direction == Direction::kReverse) {
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    const LoadBalanceRule* rule = rules_.find(packet.labels);
    if (rule == nullptr) {
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    FlowEntry fresh;
    fresh.vnf_instance = packet.arrival_source;   // the ingress edge
    fresh.next_forwarder = rule->next_forwarders.empty()
        ? kNoElement
        : rule->next_forwarders.pick(
              mix64(flow_selector(packet.labels, key)));
    fresh.prev_element = kNoElement;
    entry = table_.insert_if_absent(packet.labels, key, fresh);
  }

  ElementId target = packet.direction == Direction::kForward
      ? entry->next_forwarder
      : entry->prev_element;
  if (target == kNoElement && packet.direction == Direction::kForward) {
    // Drained next hop: re-pick from the current rule (same pure-function
    // selector — racing workers converge on one pinning).  An egress
    // forwarder keeps an empty next_forwarders rule, so terminal flows
    // still fall through to the drop below.
    const LoadBalanceRule* rule = rules_.find(packet.labels);
    if (rule != nullptr && !rule->next_forwarders.empty()) {
      FlowEntry updated = *entry;
      updated.next_forwarder = rule->next_forwarders.pick(
          mix64(flow_selector(packet.labels, key)));
      table_.insert(packet.labels, key, updated);
      target = updated.next_forwarder;
    }
  }
  if (target == kNoElement) {
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }
  return {ActionType::kSendToForwarder, target};
}

std::size_t Forwarder::process_batch(std::span<const Packet> packets,
                                     std::span<ForwardAction> actions) {
  SWB_CHECK(actions.empty() || actions.size() == packets.size())
      << "actions span must be empty or match the packet batch";
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const ForwardAction action = process_from_wire(packets[i]);
    if (!actions.empty()) actions[i] = action;
    if (action.type != ActionType::kDrop) ++delivered;
  }
  return delivered;
}

bool Forwarder::complete_flow(const Labels& labels, const FiveTuple& tuple) {
  return table_.erase(labels, tuple);
}

std::size_t Forwarder::migrate_flows(Forwarder& target, ElementId instance,
                                     ElementId replacement) {
  struct Moved {
    Labels labels;
    FiveTuple tuple;
    FlowEntry entry;
  };
  std::vector<Moved> moved;
  table_.for_each([&](const Labels& labels, const FiveTuple& tuple,
                      FlowEntry& entry) {
    if (entry.vnf_instance == instance) {
      FlowEntry updated = entry;
      updated.vnf_instance = replacement;
      moved.push_back(Moved{labels, tuple, updated});
    }
  });
  for (const Moved& m : moved) {
    target.table_.insert(m.labels, m.tuple, m.entry);
    table_.erase(m.labels, m.tuple);
  }
  return moved.size();
}

std::size_t Forwarder::drain_element(ElementId dead) {
  std::size_t drained = 0;
  table_.for_each(
      [&](const Labels&, const FiveTuple&, FlowEntry& entry) {
        bool touched = false;
        if (entry.vnf_instance == dead) {
          entry.vnf_instance = kNoElement;
          touched = true;
        }
        if (entry.next_forwarder == dead) {
          entry.next_forwarder = kNoElement;
          touched = true;
        }
        // prev_element is left alone: reverse packets keep flowing toward
        // the ingress while the forward pinning waits for its re-pick.
        if (touched) ++drained;
      });
  return drained;
}

}  // namespace switchboard::dataplane
