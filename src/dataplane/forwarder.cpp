#include "dataplane/forwarder.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace switchboard::dataplane {

namespace {

/// SoA chunk width of the batch pipeline: matches the flow table's
/// find_batch chunk so one epoch pin covers one prefetch wave.
constexpr std::size_t kBatchChunk = 32;

}  // namespace

Forwarder::Forwarder(ElementId id, std::size_t flow_capacity,
                     std::size_t worker_count)
    : id_{id},
      worker_count_{std::max<std::size_t>(worker_count, 1)},
      table_{flow_capacity, shard_count_for_workers(worker_count)},
      counter_cells_{table_.shard_count()},
      selector_seed_{mix64(0x5B1CEB00ULL + id)},
      selector_state_{selector_seed_} {}

void Forwarder::register_attachment(ElementId instance, const Labels& labels) {
  attachment_labels_[instance] = labels;
}

std::uint64_t Forwarder::next_selector() {
  const std::uint64_t raw = selector_state_.fetch_add(
      0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
  return mix64(raw + 0x9E3779B97F4A7C15ULL);
}

ForwarderCounters Forwarder::counters() const {
  ForwarderCounters total;
  for (const CounterCell& cell : counter_cells_) {
    total.from_wire += cell.counters.from_wire;
    total.from_attached += cell.counters.from_attached;
    total.flow_misses += cell.counters.flow_misses;
    total.drops += cell.counters.drops;
    total.label_reaffixed += cell.counters.label_reaffixed;
  }
  return total;
}

ForwardAction Forwarder::wire_resolve(const Packet& packet,
                                      const FiveTuple& key,
                                      ForwarderCounters& counters,
                                      const std::optional<FlowEntry>& entry) {
  if (entry) {
    if (entry->vnf_instance != kNoElement) {
      return {ActionType::kDeliverToAttached, entry->vnf_instance};
    }
    // Drained pinning: the instance serving this flow died.  Re-pin onto a
    // survivor from the current rule.  The pick is a pure function of the
    // flow key, so workers racing on the same flow write identical entries;
    // prev_element is preserved — the reverse path stays symmetric.
    const LoadBalanceRule* rule = rules_.find(packet.labels);
    if (rule == nullptr || rule->vnf_instances.empty()) {
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    const std::uint64_t selector = flow_selector(packet.labels, key);
    FlowEntry updated = *entry;
    updated.vnf_instance = rule->vnf_instances.pick(selector);
    if (updated.next_forwarder == kNoElement &&
        !rule->next_forwarders.empty()) {
      updated.next_forwarder = rule->next_forwarders.pick(mix64(selector));
    }
    table_.insert(packet.labels, key, updated);
    return {ActionType::kDeliverToAttached, updated.vnf_instance};
  }

  // First packet of the connection at this forwarder.
  ++counters.flow_misses;
  if (packet.direction == Direction::kReverse) {
    // Reverse packets must hit state created by the forward direction;
    // a miss means the flow is unknown (e.g. expired) — drop.
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }
  const LoadBalanceRule* rule = rules_.find(packet.labels);
  if (rule == nullptr || rule->vnf_instances.empty()) {
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }

  const std::uint64_t selector = flow_selector(packet.labels, key);
  FlowEntry fresh;
  fresh.vnf_instance = rule->vnf_instances.pick(selector);
  fresh.next_forwarder = rule->next_forwarders.empty()
      ? kNoElement
      : rule->next_forwarders.pick(mix64(selector));
  fresh.prev_element = packet.arrival_source;
  // insert_if_absent: if another worker raced us to the first packet, adopt
  // its pinning so every packet of the flow sees one consistent entry.
  FlowEntry stored = table_.insert_if_absent(packet.labels, key, fresh);
  if (stored.vnf_instance == kNoElement) {
    // The adopted entry was drained between our lookup miss and the
    // insert.  Re-pin it exactly like the drained-hit path above — the
    // pick is the same pure function of the flow key, so racing workers
    // still write identical entries.
    stored.vnf_instance = fresh.vnf_instance;
    if (stored.next_forwarder == kNoElement) {
      stored.next_forwarder = fresh.next_forwarder;
    }
    table_.insert(packet.labels, key, stored);
  }
  return {ActionType::kDeliverToAttached, stored.vnf_instance};
}

ForwardAction Forwarder::process_from_wire(const Packet& packet) {
  const FiveTuple key = canonical_tuple(packet);
  ForwarderCounters& counters = cell_for(packet.labels, key);
  ++counters.from_wire;
  return wire_resolve(packet, key, counters, lookup(packet.labels, key));
}

std::size_t Forwarder::process_batch(std::span<const Packet> packets,
                                     std::span<ForwardAction> actions) {
  SWB_CHECK(actions.empty() || actions.size() == packets.size())
      << "actions span must be empty or match the packet batch";
  std::size_t delivered = 0;
  if (read_mode_ == ReadMode::kMutexRead) {
    // Mutex ablation: the pre-epoch per-packet loop (one lock per lookup).
    for (std::size_t i = 0; i < packets.size(); ++i) {
      const ForwardAction action = process_from_wire(packets[i]);
      if (!actions.empty()) actions[i] = action;
      if (action.type != ActionType::kDrop) ++delivered;
    }
    return delivered;
  }

  // Epoch mode: SoA pipeline.  find_batch hashes + prefetches + probes a
  // chunk under one epoch pin; the act phase below then runs lock-free
  // for hits and falls back to wire_resolve for misses and drained
  // pinnings (both take the shard write lock, exactly like the
  // per-packet path — so counters and actions stay byte-identical).
  ShardedFlowTable::LookupRequest requests[kBatchChunk];
  for (std::size_t base = 0; base < packets.size(); base += kBatchChunk) {
    const std::size_t chunk = std::min(kBatchChunk, packets.size() - base);
    for (std::size_t i = 0; i < chunk; ++i) {
      const Packet& packet = packets[base + i];
      requests[i].labels = packet.labels;
      requests[i].tuple = canonical_tuple(packet);
    }
    table_.find_batch(std::span{requests, chunk});
    for (std::size_t i = 0; i < chunk; ++i) {
      const Packet& packet = packets[base + i];
      const ShardedFlowTable::LookupRequest& request = requests[i];
      ForwarderCounters& counters = cell_for(packet.labels, request.tuple);
      ++counters.from_wire;
      ForwardAction action;
      if (request.hit && request.entry.vnf_instance != kNoElement) {
        // Hot path: resolved entirely inside the batch lookup.
        action = {ActionType::kDeliverToAttached, request.entry.vnf_instance};
      } else {
        action = wire_resolve(
            packet, request.tuple, counters,
            request.hit ? std::optional<FlowEntry>{request.entry}
                        : std::nullopt);
      }
      if (!actions.empty()) actions[base + i] = action;
      if (action.type != ActionType::kDrop) ++delivered;
    }
  }
  return delivered;
}

ForwardAction Forwarder::annotate(Packet& packet, const FiveTuple& key,
                                  ForwarderCounters& counters) {
  // Miss/stale path of the annotation mode: re-derive the pinning from
  // the current rule and affix it.  The pick is the same pure function
  // of (seed, flow key) the table modes use, so the annotation a packet
  // ends up carrying equals the entry the flow table would hold.
  ++counters.flow_misses;
  if (packet.direction == Direction::kReverse) {
    // Reverse packets need the forward path's affix (symmetric return
    // rides the annotation); without one the flow is unknown — drop.
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }
  const LoadBalanceRule* rule = rules_.find(packet.labels);
  if (rule == nullptr || rule->vnf_instances.empty()) {
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }
  const std::uint64_t selector = flow_selector(packet.labels, key);
  FlowEntry pinning;
  pinning.vnf_instance = rule->vnf_instances.pick(selector);
  pinning.next_forwarder = rule->next_forwarders.empty()
      ? kNoElement
      : rule->next_forwarders.pick(mix64(selector));
  pinning.prev_element = packet.arrival_source;
  packet.steering = SteeringAnnotation{pinning, rules_.version()};
  return {ActionType::kDeliverToAttached, pinning.vnf_instance};
}

ForwardAction Forwarder::process_annotated(Packet& packet) {
  const FiveTuple key = canonical_tuple(packet);
  ForwarderCounters& counters = cell_for(packet.labels, key);
  ++counters.from_wire;
  if (packet.steering.valid_for(rules_.version())) {
    // Steering rides in the packet: no per-flow state touched at all.
    return {ActionType::kDeliverToAttached,
            packet.steering.pinning.vnf_instance};
  }
  return annotate(packet, key, counters);
}

std::size_t Forwarder::process_batch_annotated(
    std::span<Packet> packets, std::span<ForwardAction> actions) {
  SWB_CHECK(actions.empty() || actions.size() == packets.size())
      << "actions span must be empty or match the packet batch";
  // No table, no prefetch wave needed: the annotation IS the lookup.
  const std::uint32_t version = rules_.version();
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    Packet& packet = packets[i];
    const FiveTuple key = canonical_tuple(packet);
    ForwarderCounters& counters = cell_for(packet.labels, key);
    ++counters.from_wire;
    ForwardAction action;
    if (packet.steering.valid_for(version)) {
      action = {ActionType::kDeliverToAttached,
                packet.steering.pinning.vnf_instance};
    } else {
      action = annotate(packet, key, counters);
    }
    if (!actions.empty()) actions[i] = action;
    if (action.type != ActionType::kDrop) ++delivered;
  }
  return delivered;
}

ForwardAction Forwarder::process_from_attached(Packet& packet) {
  // Re-affix labels for attached VNFs that stripped them (Section 5.3):
  // the attachment uniquely identifies the labels.
  bool reaffixed = false;
  if (packet.labels == Labels{}) {
    const auto it = attachment_labels_.find(packet.arrival_source);
    if (it == attachment_labels_.end()) {
      ForwarderCounters& counters =
          cell_for(packet.labels, canonical_tuple(packet));
      ++counters.from_attached;
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    packet.labels = it->second;
    reaffixed = true;
  }

  const FiveTuple key = canonical_tuple(packet);
  ForwarderCounters& counters = cell_for(packet.labels, key);
  ++counters.from_attached;
  if (reaffixed) ++counters.label_reaffixed;

  std::optional<FlowEntry> entry = lookup(packet.labels, key);
  if (!entry) {
    // First packet of a connection entering from an attached ingress edge.
    ++counters.flow_misses;
    if (packet.direction == Direction::kReverse) {
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    const LoadBalanceRule* rule = rules_.find(packet.labels);
    if (rule == nullptr) {
      ++counters.drops;
      return {ActionType::kDrop, kNoElement};
    }
    FlowEntry fresh;
    fresh.vnf_instance = packet.arrival_source;   // the ingress edge
    fresh.next_forwarder = rule->next_forwarders.empty()
        ? kNoElement
        : rule->next_forwarders.pick(
              mix64(flow_selector(packet.labels, key)));
    fresh.prev_element = kNoElement;
    entry = table_.insert_if_absent(packet.labels, key, fresh);
  }

  ElementId target = packet.direction == Direction::kForward
      ? entry->next_forwarder
      : entry->prev_element;
  if (target == kNoElement && packet.direction == Direction::kForward) {
    // Drained next hop: re-pick from the current rule (same pure-function
    // selector — racing workers converge on one pinning).  An egress
    // forwarder keeps an empty next_forwarders rule, so terminal flows
    // still fall through to the drop below.
    const LoadBalanceRule* rule = rules_.find(packet.labels);
    if (rule != nullptr && !rule->next_forwarders.empty()) {
      FlowEntry updated = *entry;
      updated.next_forwarder = rule->next_forwarders.pick(
          mix64(flow_selector(packet.labels, key)));
      table_.insert(packet.labels, key, updated);
      target = updated.next_forwarder;
    }
  }
  if (target == kNoElement) {
    ++counters.drops;
    return {ActionType::kDrop, kNoElement};
  }
  return {ActionType::kSendToForwarder, target};
}

bool Forwarder::complete_flow(const Labels& labels, const FiveTuple& tuple) {
  return table_.erase(labels, tuple);
}

std::size_t Forwarder::migrate_flows(Forwarder& target, ElementId instance,
                                     ElementId replacement) {
  struct Moved {
    Labels labels;
    FiveTuple tuple;
    FlowEntry entry;
  };
  std::vector<Moved> moved;
  table_.for_each([&](const Labels& labels, const FiveTuple& tuple,
                      const FlowEntry& entry) {
    if (entry.vnf_instance == instance) {
      FlowEntry updated = entry;
      updated.vnf_instance = replacement;
      moved.push_back(Moved{labels, tuple, updated});
    }
  });
  for (const Moved& m : moved) {
    target.table_.insert(m.labels, m.tuple, m.entry);
    table_.erase(m.labels, m.tuple);
  }
  return moved.size();
}

std::size_t Forwarder::drain_element(ElementId dead) {
  // update_each installs fresh immutable entries through the epoch
  // domain, so lock-free readers racing a drain see either the old or
  // the new pinning, never a torn one.
  return table_.update_each(
      [&](const Labels&, const FiveTuple&, FlowEntry& entry) {
        bool touched = false;
        if (entry.vnf_instance == dead) {
          entry.vnf_instance = kNoElement;
          touched = true;
        }
        if (entry.next_forwarder == dead) {
          entry.next_forwarder = kNoElement;
          touched = true;
        }
        // prev_element is left alone: reverse packets keep flowing toward
        // the ingress while the forward pinning waits for its re-pick.
        return touched;
      });
}

}  // namespace switchboard::dataplane
