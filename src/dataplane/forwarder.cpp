#include "dataplane/forwarder.hpp"

#include <vector>

namespace switchboard::dataplane {

Forwarder::Forwarder(ElementId id, std::size_t flow_capacity)
    : id_{id},
      table_{flow_capacity},
      selector_state_{mix64(0x5B1CEB00ULL + id)} {}

void Forwarder::register_attachment(ElementId instance, const Labels& labels) {
  attachment_labels_[instance] = labels;
}

std::uint64_t Forwarder::next_selector() {
  selector_state_ = mix64(selector_state_ + 0x9E3779B97F4A7C15ULL);
  return selector_state_;
}

ForwardAction Forwarder::process_from_wire(const Packet& packet) {
  ++counters_.from_wire;
  const FiveTuple key = canonical_tuple(packet);
  if (FlowEntry* entry = table_.find(packet.labels, key)) {
    if (entry->vnf_instance == kNoElement) {
      ++counters_.drops;
      return {ActionType::kDrop, kNoElement};
    }
    return {ActionType::kDeliverToAttached, entry->vnf_instance};
  }

  // First packet of the connection at this forwarder.
  ++counters_.flow_misses;
  if (packet.direction == Direction::kReverse) {
    // Reverse packets must hit state created by the forward direction;
    // a miss means the flow is unknown (e.g. expired) — drop.
    ++counters_.drops;
    return {ActionType::kDrop, kNoElement};
  }
  const LoadBalanceRule* rule = rules_.find(packet.labels);
  if (rule == nullptr || rule->vnf_instances.empty()) {
    ++counters_.drops;
    return {ActionType::kDrop, kNoElement};
  }

  FlowEntry entry;
  entry.vnf_instance = rule->vnf_instances.pick(next_selector());
  entry.next_forwarder = rule->next_forwarders.empty()
      ? kNoElement
      : rule->next_forwarders.pick(next_selector());
  entry.prev_element = packet.arrival_source;
  const FlowEntry& stored = table_.insert(packet.labels, key, entry);
  return {ActionType::kDeliverToAttached, stored.vnf_instance};
}

ForwardAction Forwarder::process_from_attached(Packet& packet) {
  ++counters_.from_attached;

  // Re-affix labels for attached VNFs that stripped them (Section 5.3):
  // the attachment uniquely identifies the labels.
  if (packet.labels == Labels{}) {
    const auto it = attachment_labels_.find(packet.arrival_source);
    if (it == attachment_labels_.end()) {
      ++counters_.drops;
      return {ActionType::kDrop, kNoElement};
    }
    packet.labels = it->second;
    ++counters_.label_reaffixed;
  }

  const FiveTuple key = canonical_tuple(packet);
  FlowEntry* entry = table_.find(packet.labels, key);
  if (entry == nullptr) {
    // First packet of a connection entering from an attached ingress edge.
    ++counters_.flow_misses;
    if (packet.direction == Direction::kReverse) {
      ++counters_.drops;
      return {ActionType::kDrop, kNoElement};
    }
    const LoadBalanceRule* rule = rules_.find(packet.labels);
    if (rule == nullptr) {
      ++counters_.drops;
      return {ActionType::kDrop, kNoElement};
    }
    FlowEntry fresh;
    fresh.vnf_instance = packet.arrival_source;   // the ingress edge
    fresh.next_forwarder = rule->next_forwarders.empty()
        ? kNoElement
        : rule->next_forwarders.pick(next_selector());
    fresh.prev_element = kNoElement;
    entry = &table_.insert(packet.labels, key, fresh);
  }

  const ElementId target = packet.direction == Direction::kForward
      ? entry->next_forwarder
      : entry->prev_element;
  if (target == kNoElement) {
    ++counters_.drops;
    return {ActionType::kDrop, kNoElement};
  }
  return {ActionType::kSendToForwarder, target};
}

bool Forwarder::complete_flow(const Labels& labels, const FiveTuple& tuple) {
  return table_.erase(labels, tuple);
}

std::size_t Forwarder::migrate_flows(Forwarder& target, ElementId instance,
                                     ElementId replacement) {
  struct Moved {
    Labels labels;
    FiveTuple tuple;
    FlowEntry entry;
  };
  std::vector<Moved> moved;
  table_.for_each([&](const Labels& labels, const FiveTuple& tuple,
                      FlowEntry& entry) {
    if (entry.vnf_instance == instance) {
      FlowEntry updated = entry;
      updated.vnf_instance = replacement;
      moved.push_back(Moved{labels, tuple, updated});
    }
  });
  for (const Moved& m : moved) {
    target.table_.insert(m.labels, m.tuple, m.entry);
    table_.erase(m.labels, m.tuple);
  }
  return moved.size();
}

}  // namespace switchboard::dataplane
