// Hierarchical weighted load balancing rules (Section 5.2).
//
// A forwarder holds, per (chain label, egress-site label):
//   1. the VNF instances it fronts, weighted by instance weight;
//   2. the forwarders adjoining the *next* VNF in the chain, weighted by
//      site-level routing weight x forwarder weight;
//   3. the forwarders adjoining the *previous* VNF (reverse direction).
// Selections are made per connection on the first packet and then pinned
// in the flow table.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dataplane/flow_table.hpp"
#include "dataplane/packet.hpp"

namespace switchboard::dataplane {

/// A weighted set of candidate elements with O(log n) selection by
/// cumulative weight.
class WeightedChoice {
 public:
  void add(ElementId element, double weight);
  void clear();
  [[nodiscard]] bool empty() const { return elements_.empty(); }
  [[nodiscard]] std::size_t size() const { return elements_.size(); }

  /// Picks deterministically from a 64-bit selector (e.g. a flow hash or
  /// an RNG draw): the same selector always picks the same element for an
  /// unchanged rule.
  [[nodiscard]] ElementId pick(std::uint64_t selector) const;

  [[nodiscard]] const std::vector<ElementId>& elements() const {
    return elements_;
  }
  [[nodiscard]] double total_weight() const {
    return cumulative_.empty() ? 0.0 : cumulative_.back();
  }
  [[nodiscard]] double weight_of(ElementId element) const;

  /// Audits the cumulative-weight prefix sums (aborts via SWB_CHECK on
  /// violation): parallel arrays, strictly increasing finite cumulative
  /// weights (every per-element weight > 0), valid element ids.
  void check_invariants() const;

 private:
  std::vector<ElementId> elements_;
  std::vector<double> cumulative_;
};

/// The three weighted rule sets for one (chain, egress) pair.
struct LoadBalanceRule {
  WeightedChoice vnf_instances;
  WeightedChoice next_forwarders;
  WeightedChoice prev_forwarders;
  /// When the chain ends at this site, the egress edge element.
  ElementId egress_edge{kNoElement};

  /// Audits each weighted set.  (A rule may legitimately carry only
  /// next_forwarders — e.g. an ingress edge forwarder — so emptiness of a
  /// particular set is not an invariant.)
  void check_invariants() const;
};

class RuleTable {
 public:
  /// Inserts or replaces the rule for (chain, egress) labels.
  void install(const Labels& labels, LoadBalanceRule rule);
  void remove(const Labels& labels);
  [[nodiscard]] const LoadBalanceRule* find(const Labels& labels) const;
  [[nodiscard]] LoadBalanceRule* find_mutable(const Labels& labels);
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// ROUTE EPOCH: monotone version bumped by every install()/remove().
  /// Steering annotations stamped with an older version are stale and
  /// must be re-derived (packet.hpp SteeringAnnotation::valid_for).
  /// Starts at 1 so the annotation default (kNoRouteEpoch == 0) never
  /// validates.
  [[nodiscard]] std::uint32_t version() const { return version_; }

  /// Audits every installed rule (see LoadBalanceRule::check_invariants).
  void check_invariants() const;

 private:
  struct LabelsHash {
    std::size_t operator()(const Labels& labels) const {
      return static_cast<std::size_t>(
          mix64((static_cast<std::uint64_t>(labels.chain) << 32) |
                labels.egress_site));
    }
  };
  std::unordered_map<Labels, LoadBalanceRule, LabelsHash> rules_;
  std::uint32_t version_{1};
};

}  // namespace switchboard::dataplane
