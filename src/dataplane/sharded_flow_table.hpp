// Concurrent, sharded flow table: the multi-core backend for the forwarder
// (Section 5: the paper's DPDK forwarder holds 512K flows *per core*;
// Fig. 8 measures how throughput scales with cores).
//
// Layout: a power-of-two number of shards, each an independent
// open-addressing `FlowTable` (the same probe logic as the single-core
// table) guarded by its own mutex.  Keys are assigned to shards by the
// *top* bits of the flow hash — the per-shard tables probe on the low bits,
// so shard selection must not correlate with probe position.
//
// Concurrency model (RSS-style, see Forwarder):
//   * every operation is thread-safe on its own — it locks exactly the one
//     shard that owns the key (find/insert/erase never touch two shards);
//   * the intended steady state is contention-FREE: workers partition the
//     shard space (worker w owns shards {s : s % workers == w}) and packets
//     are steered to the worker owning their shard, so each shard mutex is
//     only ever taken by one thread and stays in that core's cache;
//   * whole-table operations (size(), stats(), for_each(),
//     check_invariants(), clear()) lock ALL shards in ascending index
//     order — the repo-wide lock order that makes them deadlock-free
//     against each other and safe to run while workers are processing.
//
// Per-shard counters (finds/hits/inserts/erases and the table's own size)
// are plain integers mutated under the shard lock and aggregated on read.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_annotations.hpp"
#include "dataplane/flow_table.hpp"
#include "dataplane/packet.hpp"

namespace switchboard::dataplane {

/// Shard index for a flow hash: the top log2(shard_count) bits.
/// `shard_count` must be a power of two.
[[nodiscard]] constexpr std::size_t rss_shard(std::uint64_t hash,
                                              std::size_t shard_count) {
  // shard_count == 1 would need a shift by 64 (UB); special-case it.
  if (shard_count <= 1) return 0;
  const int bits = std::countr_zero(shard_count);
  return static_cast<std::size_t>(hash >> (64 - bits));
}

/// Shards per worker used when a shard count is derived from a worker
/// count: enough striping that whole-table readers (audits, migration)
/// block only a fraction of each worker's key space at a time.
inline constexpr std::size_t kShardsPerWorker = 4;

/// Default shard count for `worker_count` workers: a power of two with
/// kShardsPerWorker-way striping.
[[nodiscard]] constexpr std::size_t shard_count_for_workers(
    std::size_t worker_count) {
  return std::bit_ceil(std::max<std::size_t>(worker_count, 1)) *
         kShardsPerWorker;
}

/// Worker index owning a flow hash, for `worker_count` workers striped over
/// `shard_count` shards: the shard's owner is `shard % worker_count`, so a
/// worker owns a fixed, disjoint shard set.  Pure function of
/// (hash, shard_count, worker_count) — traffic generators use it to build
/// per-worker streams that never cross shard ownership.
[[nodiscard]] constexpr std::size_t rss_worker(std::uint64_t hash,
                                               std::size_t shard_count,
                                               std::size_t worker_count) {
  return rss_shard(hash, shard_count) % std::max<std::size_t>(worker_count, 1);
}

class ShardedFlowTable {
 public:
  /// Aggregated operation counters (see stats()).
  struct Stats {
    std::uint64_t finds{0};
    std::uint64_t hits{0};
    std::uint64_t inserts{0};
    std::uint64_t erases{0};
  };

  /// `initial_capacity` is the *total* capacity hint, split evenly across
  /// shards.  `shard_count` rounds up to a power of two.
  explicit ShardedFlowTable(std::size_t initial_capacity = 1024,
                            std::size_t shard_count = 1);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(const Labels& labels,
                                     const FiveTuple& tuple) const {
    return rss_shard(flow_hash(labels, tuple), shards_.size());
  }

  /// Looks up the entry, returning a copy (a pointer into a shard would
  /// dangle once the shard lock is released).
  [[nodiscard]] std::optional<FlowEntry> find(const Labels& labels,
                                              const FiveTuple& tuple) const;

  /// Inserts, overwriting any existing entry; returns the stored value.
  FlowEntry insert(const Labels& labels, const FiveTuple& tuple,
                   const FlowEntry& entry);

  /// Inserts only if absent; returns the winning entry (the existing one on
  /// conflict).  This is the first-packet path: when two packets of one
  /// flow race, both observe the same pinning.
  FlowEntry insert_if_absent(const Labels& labels, const FiveTuple& tuple,
                             const FlowEntry& entry);

  /// Removes the entry; returns true if it existed.
  bool erase(const Labels& labels, const FiveTuple& tuple);

  /// Live entries across all shards (locks each shard in index order).
  /// (NO_THREAD_SAFETY_ANALYSIS on whole-table members: see for_each.)
  [[nodiscard]] std::size_t size() const SWB_NO_THREAD_SAFETY_ANALYSIS;

  /// Live entries in one shard.
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;

  /// Operation counters aggregated over shards.
  [[nodiscard]] Stats stats() const SWB_NO_THREAD_SAFETY_ANALYSIS;

  void clear() SWB_NO_THREAD_SAFETY_ANALYSIS;

  /// Visits every live entry under ALL shard locks (taken in index order);
  /// `fn` must not call back into this table.  Shards are visited in index
  /// order, entries within a shard in slot order — deterministic for a
  /// quiesced table.
  // NO_THREAD_SAFETY_ANALYSIS: lock_all() acquires a *dynamic* set of
  // shard mutexes through std::unique_lock, which the analysis cannot
  // model (a capability must be a named lock expression).  The runtime
  // proof is the index-ordered lock_all() guards held for the whole walk.
  template <typename Fn>   // Fn(const Labels&, const FiveTuple&, FlowEntry&)
  void for_each(Fn&& fn) SWB_NO_THREAD_SAFETY_ANALYSIS {
    const auto guards = lock_all();
    for (const std::unique_ptr<Shard>& shard : shards_) {
      shard->table.for_each(fn);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const SWB_NO_THREAD_SAFETY_ANALYSIS {
    const auto guards = lock_all();
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const FlowTable& table = shard->table;
      table.for_each(fn);
    }
  }

  /// Audits every shard's structural invariants plus the sharding invariant
  /// itself: each key is stored in the shard its hash selects.  Takes all
  /// shard locks in index order, so it is safe to run concurrently with
  /// worker threads (PR 1's audit layer, extended to the threaded table).
  void check_invariants() const SWB_NO_THREAD_SAFETY_ANALYSIS;

 private:
  struct Shard {
    /// Lock-order contract (machine-checked per shard, runtime-checked
    /// across shards): per-key operations take exactly ONE shard mutex;
    /// whole-table operations take ALL of them in ascending index order
    /// via lock_all().  No other acquisition order exists.
    mutable swb::Mutex mutex;
    FlowTable table SWB_GUARDED_BY(mutex);
    /// find() tallies under the shard lock.
    mutable Stats stats SWB_GUARDED_BY(mutex);

    explicit Shard(std::size_t capacity) : table{capacity} {}
  };

  [[nodiscard]] Shard& shard_for(const Labels& labels,
                                 const FiveTuple& tuple) {
    return *shards_[shard_of(labels, tuple)];
  }
  [[nodiscard]] const Shard& shard_for(const Labels& labels,
                                       const FiveTuple& tuple) const {
    return *shards_[shard_of(labels, tuple)];
  }

  /// Locks every shard in ascending index order (the global lock order).
  /// Deferred std::unique_lock acquisition over swb::Mutex::native() —
  /// invisible to the thread-safety analysis, hence the
  /// SWB_NO_THREAD_SAFETY_ANALYSIS opt-outs on every whole-table caller.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> lock_all() const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace switchboard::dataplane
