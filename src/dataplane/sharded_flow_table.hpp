// Concurrent, sharded flow table with a LOCK-FREE READ PATH: the
// multi-core backend for the forwarder (Section 5: the paper's DPDK
// forwarder holds 512K flows *per core*; Fig. 8 measures how throughput
// scales with cores).
//
// Layout: a power-of-two number of shards.  Each shard owns an
// open-addressing, linear-probing bucket array published through an
// atomic pointer.  Keys are assigned to shards by the *top* bits of the
// flow hash — the per-shard arrays probe on the low bits, so shard
// selection must not correlate with probe position.
//
// Read path (find / find_batch — the per-packet hot path): NO MUTEX.
// A reader pins an epoch (swb::EpochGuard), acquire-loads the shard's
// bucket array pointer, and probes.  Slot protocol:
//   * `state` is an atomic byte: empty -> occupied (insert) and
//     occupied -> tombstone (erase) are the only transitions inside one
//     array generation; a slot's KEY FIELDS are written exactly once,
//     before the empty->occupied release-store, so a reader that
//     acquire-loads `occupied` always sees fully-written keys;
//   * the payload is an atomic pointer to an IMMUTABLE heap FlowEntry —
//     updates install a fresh pointer (whole-entry atomicity, no torn
//     reads) and retire the old one through the epoch domain;
//   * rehash builds a new array off-line, release-publishes it, and
//     retires the old array; pinned readers keep probing the retired
//     array safely until their grace period ends (see common/epoch.hpp).
// A tombstone slot is revived only for the IDENTICAL key (fresh pointer
// installed before the tombstone->occupied flip); a different key always
// claims an empty slot, so keys are never rewritten while an array is
// reachable.  Tombstones are purged at rehash.
//
// Write path: per-key mutations (insert / insert_if_absent / erase) take
// exactly ONE shard mutex (swb::Mutex + TSA, as before); whole-table
// operations (size, clear, for_each, update_each, check_invariants) take
// ALL shard locks in ascending index order — the repo-wide lock order.
// Lock order with the epoch domain: shard mutex -> retire mutex (leaf).
//
// Counters: finds/hits are bumped by lock-free readers (RelaxedCounter);
// inserts/erases under the shard lock use the same type so stats() needs
// no lock.  Read them quiesced for exact totals.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "common/epoch.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "dataplane/packet.hpp"

namespace switchboard::dataplane {

/// Shard index for a flow hash: the top log2(shard_count) bits.
/// `shard_count` must be a power of two.
[[nodiscard]] constexpr std::size_t rss_shard(std::uint64_t hash,
                                              std::size_t shard_count) {
  // shard_count == 1 would need a shift by 64 (UB); special-case it.
  if (shard_count <= 1) return 0;
  const int bits = std::countr_zero(shard_count);
  return static_cast<std::size_t>(hash >> (64 - bits));
}

/// Shards per worker used when a shard count is derived from a worker
/// count: enough striping that whole-table readers (audits, migration)
/// block only a fraction of each worker's key space at a time.
inline constexpr std::size_t kShardsPerWorker = 4;

/// Default shard count for `worker_count` workers: a power of two with
/// kShardsPerWorker-way striping.
[[nodiscard]] constexpr std::size_t shard_count_for_workers(
    std::size_t worker_count) {
  return std::bit_ceil(std::max<std::size_t>(worker_count, 1)) *
         kShardsPerWorker;
}

/// Worker index owning a flow hash, for `worker_count` workers striped over
/// `shard_count` shards: the shard's owner is `shard % worker_count`, so a
/// worker owns a fixed, disjoint shard set.  Pure function of
/// (hash, shard_count, worker_count) — traffic generators use it to build
/// per-worker streams that never cross shard ownership.
[[nodiscard]] constexpr std::size_t rss_worker(std::uint64_t hash,
                                               std::size_t shard_count,
                                               std::size_t worker_count) {
  return rss_shard(hash, shard_count) % std::max<std::size_t>(worker_count, 1);
}

class ShardedFlowTable {
 public:
  /// Aggregated operation counters (see stats()).
  struct Stats {
    std::uint64_t finds{0};
    std::uint64_t hits{0};
    std::uint64_t inserts{0};
    std::uint64_t erases{0};
  };

  /// One lookup of a structure-of-arrays batch (see find_batch): the
  /// caller fills labels/tuple; find_batch fills hash, hit and (on hit)
  /// entry.
  struct LookupRequest {
    Labels labels;
    FiveTuple tuple;
    std::uint64_t hash{0};
    FlowEntry entry;
    bool hit{false};
  };

  /// `initial_capacity` is the *total* capacity hint, split evenly across
  /// shards.  `shard_count` rounds up to a power of two.
  explicit ShardedFlowTable(std::size_t initial_capacity = 1024,
                            std::size_t shard_count = 1);
  ~ShardedFlowTable();
  ShardedFlowTable(const ShardedFlowTable&) = delete;
  ShardedFlowTable& operator=(const ShardedFlowTable&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(const Labels& labels,
                                     const FiveTuple& tuple) const {
    return rss_shard(flow_hash(labels, tuple), shards_.size());
  }

  /// Lock-free lookup (epoch-read): pins an epoch, probes the published
  /// bucket array, returns a copy.  Never blocks on writers.
  [[nodiscard]] std::optional<FlowEntry> find(const Labels& labels,
                                              const FiveTuple& tuple) const;

  /// Mutex-read ablation path: identical result to find(), but takes the
  /// shard mutex like the pre-epoch table did.  Kept so bench_fig8 can
  /// measure exactly what the lock-free read path buys.
  [[nodiscard]] std::optional<FlowEntry> find_mutex(
      const Labels& labels, const FiveTuple& tuple) const;

  /// Batched lock-free lookup: one epoch pin per chunk, structure-of-
  /// arrays phases (hash all keys, prefetch all probe starts, then
  /// resolve) so bucket-array cache misses overlap instead of
  /// serializing.  Results are identical to per-request find().
  void find_batch(std::span<LookupRequest> batch) const;

  /// Inserts, overwriting any existing entry; returns the stored value.
  FlowEntry insert(const Labels& labels, const FiveTuple& tuple,
                   const FlowEntry& entry);

  /// Inserts only if absent; returns the winning entry (the existing one on
  /// conflict).  This is the first-packet path: when two packets of one
  /// flow race, both observe the same pinning.
  FlowEntry insert_if_absent(const Labels& labels, const FiveTuple& tuple,
                             const FlowEntry& entry);

  /// Removes the entry; returns true if it existed.
  bool erase(const Labels& labels, const FiveTuple& tuple);

  /// Live entries across all shards (locks each shard in index order).
  /// (NO_THREAD_SAFETY_ANALYSIS on whole-table members: see for_each.)
  [[nodiscard]] std::size_t size() const SWB_NO_THREAD_SAFETY_ANALYSIS;

  /// Live entries in one shard.
  [[nodiscard]] std::size_t shard_size(std::size_t shard) const;

  /// Operation counters aggregated over shards.  Lock-free (relaxed
  /// tallies); quiesce writers and readers for exact totals.
  [[nodiscard]] Stats stats() const;

  void clear() SWB_NO_THREAD_SAFETY_ANALYSIS;

  /// Visits every live entry under ALL shard locks (taken in index order);
  /// `fn` must not call back into this table.  Shards are visited in index
  /// order, entries within a shard in slot order — deterministic for a
  /// quiesced table.  READ-ONLY: entries are immutable once published —
  /// use update_each() to mutate.
  // NO_THREAD_SAFETY_ANALYSIS: lock_all() acquires a *dynamic* set of
  // shard mutexes through std::unique_lock, which the analysis cannot
  // model (a capability must be a named lock expression).  The runtime
  // proof is the index-ordered lock_all() guards held for the whole walk.
  template <typename Fn>   // Fn(const Labels&, const FiveTuple&, const FlowEntry&)
  void for_each(Fn&& fn) const SWB_NO_THREAD_SAFETY_ANALYSIS {
    const auto guards = lock_all();
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const BucketArray& array =
          *shard->buckets.load(std::memory_order_acquire);
      for (const Slot& slot : array.slots) {
        if (slot.state.load(std::memory_order_acquire) ==
            static_cast<std::uint8_t>(SlotState::kOccupied)) {
          fn(slot.labels, slot.tuple,
             *slot.entry.load(std::memory_order_acquire));
        }
      }
    }
  }

  /// In-place whole-table update (drain, rewrites): visits every live
  /// entry under ALL shard locks with a mutable copy; when `fn` returns
  /// true the copy is installed as a fresh immutable entry and the old
  /// one is retired through the epoch domain (concurrent lock-free
  /// readers see either the old or the new entry, never a torn one).
  /// Returns the number of entries updated.
  std::size_t update_each(
      const std::function<bool(const Labels&, const FiveTuple&, FlowEntry&)>&
          fn) SWB_NO_THREAD_SAFETY_ANALYSIS;

  /// Audits every shard's structural invariants plus the sharding invariant
  /// itself: each key is stored in the shard its hash selects, occupied /
  /// tombstone counts match the shard counters, every occupied slot holds
  /// a non-null entry and is reachable from its probe start without
  /// crossing an empty slot.  Takes all shard locks in index order, so it
  /// is safe to run concurrently with worker threads.
  void check_invariants() const SWB_NO_THREAD_SAFETY_ANALYSIS;

  /// Resident bytes of the table proper: bucket arrays plus live entry
  /// heap blocks (malloc overhead excluded).  For the annotation-mode
  /// ablation: annotation mode keeps no per-flow bytes at all.
  [[nodiscard]] std::size_t memory_bytes() const
      SWB_NO_THREAD_SAFETY_ANALYSIS;

  /// The table's reclamation domain (tests assert on retired/pinned
  /// counts; benches may quiesce-reclaim between phases).
  [[nodiscard]] swb::EpochDomain& epoch_domain() const { return epoch_; }

 private:
  enum class SlotState : std::uint8_t { kEmpty = 0, kOccupied = 1,
                                        kTombstone = 2 };

  /// One bucket.  Key fields are plain: they are written exactly once,
  /// before the empty->occupied release-store, and never touched again
  /// within the array generation (readers only load them after
  /// acquire-loading state == occupied).
  struct Slot {
    std::atomic<std::uint8_t> state{
        static_cast<std::uint8_t>(SlotState::kEmpty)};
    Labels labels;
    FiveTuple tuple;
    std::atomic<const FlowEntry*> entry{nullptr};
  };

  /// A power-of-two probe array.  Published via Shard::buckets with
  /// release order; retired (never freed in place) on rehash.  Does NOT
  /// own the FlowEntry heap blocks — entry pointers migrate to the
  /// replacement array on rehash.
  struct BucketArray {
    explicit BucketArray(std::size_t capacity)
        : slots(capacity), mask{capacity - 1} {}
    std::vector<Slot> slots;
    std::size_t mask;
  };

  /// Lock-free tallies (readers bump finds/hits without the shard lock).
  struct ShardStats {
    RelaxedCounter finds;
    RelaxedCounter hits;
    RelaxedCounter inserts;
    RelaxedCounter erases;
  };

  struct Shard {
    /// Lock-order contract (machine-checked per shard, runtime-checked
    /// across shards): per-key WRITES take exactly ONE shard mutex;
    /// whole-table operations take ALL of them in ascending index order
    /// via lock_all(); epoch_.retire() may be called with the shard mutex
    /// held (retire_mutex_ is a leaf).  Reads take no lock at all.
    mutable swb::Mutex mutex;
    /// The published probe array; readers acquire-load it under an epoch
    /// pin, the owning writer replaces it on rehash.
    std::atomic<BucketArray*> buckets{nullptr};
    std::size_t live SWB_GUARDED_BY(mutex){0};
    std::size_t tombstones SWB_GUARDED_BY(mutex){0};
    mutable ShardStats stats;
  };

  [[nodiscard]] Shard& shard_for_hash(std::uint64_t hash) {
    return *shards_[rss_shard(hash, shards_.size())];
  }
  [[nodiscard]] const Shard& shard_for_hash(std::uint64_t hash) const {
    return *shards_[rss_shard(hash, shards_.size())];
  }

  /// Lock-free probe of one published array; returns the entry pointer
  /// (valid while the caller's epoch pin is held) or nullptr.
  [[nodiscard]] static const FlowEntry* probe(const BucketArray& array,
                                              const Labels& labels,
                                              const FiveTuple& tuple,
                                              std::uint64_t hash);

  /// Writer-side probe: the occupied slot holding the key, or nullptr.
  [[nodiscard]] static Slot* find_slot_locked(BucketArray& array,
                                              const Labels& labels,
                                              const FiveTuple& tuple,
                                              std::uint64_t hash);

  /// Installs (labels, tuple) -> entry under the shard lock, growing
  /// first if needed.  Handles overwrite / tombstone revive / fresh claim.
  void insert_locked(Shard& shard, const Labels& labels,
                     const FiveTuple& tuple, std::uint64_t hash,
                     const FlowEntry& entry) SWB_REQUIRES(shard.mutex);

  /// Rehashes the shard into a fresh array sized for its live count when
  /// occupancy (live + tombstones) crosses the 70% growth threshold.
  void maybe_grow(Shard& shard) SWB_REQUIRES(shard.mutex);

  /// Locks every shard in ascending index order (the global lock order).
  /// Deferred std::unique_lock acquisition over swb::Mutex::native() —
  /// invisible to the thread-safety analysis, hence the
  /// SWB_NO_THREAD_SAFETY_ANALYSIS opt-outs on every whole-table caller.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> lock_all() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_{16};
  /// Reclamation domain shared by all shards (mutable: readers pin
  /// through const find()).
  mutable swb::EpochDomain epoch_;
};

}  // namespace switchboard::dataplane
