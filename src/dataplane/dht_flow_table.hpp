// Replicated, distributed flow table — the extension Section 5.3 sketches:
// "a solution that supports elastic scaling and fault tolerance of
// forwarders by maintaining the flow table as a replicated distributed
// hash table across forwarder nodes".
//
// Keys (labels + 5-tuple) map onto a consistent-hash ring of nodes; each
// entry lives on its primary node and the next live successor (replication
// factor 2).  When a node fails, lookups transparently fall through to the
// surviving replica, so established connections keep their VNF pinning
// (flow affinity survives forwarder failure); when a node joins, only the
// keys whose primary moved are re-homed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "dataplane/packet.hpp"
#include "dataplane/sharded_flow_table.hpp"

namespace switchboard::dataplane {

class DhtFlowTable {
 public:
  /// `node_count` initial nodes, each holding one shard.
  explicit DhtFlowTable(std::size_t node_count,
                        std::size_t virtual_nodes_per_node = 16);

  /// Inserts (or overwrites) an entry; written to the primary shard and
  /// its successor replica.
  void insert(const Labels& labels, const FiveTuple& tuple,
              const FlowEntry& entry);

  /// Looks up an entry; consults the primary first, then the replica.
  [[nodiscard]] std::optional<FlowEntry> find(const Labels& labels,
                                              const FiveTuple& tuple) const;

  /// Removes an entry from all shards holding it.
  bool erase(const Labels& labels, const FiveTuple& tuple);

  /// Marks a node failed: its shard is lost; replicas keep serving, and
  /// surviving entries are re-replicated to restore the factor-2 target.
  void fail_node(std::size_t node);
  /// Brings a failed node back (empty); affected keys re-home to it
  /// lazily via re-replication.
  void recover_node(std::size_t node);
  [[nodiscard]] bool node_alive(std::size_t node) const;

  [[nodiscard]] std::size_t node_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t live_node_count() const;
  /// Entries on one node's shard (replicas included).
  [[nodiscard]] std::size_t shard_size(std::size_t node) const;
  /// Distinct flows reachable through the DHT.
  [[nodiscard]] std::size_t total_flows() const;

  /// Audits the DHT's structural invariants (aborts via SWB_CHECK on
  /// violation): ring sorted and covering every node, dead shards empty,
  /// each shard's own hash-table invariants, and the replication target —
  /// every stored key lives on exactly its current owner set (primary +
  /// live successor) and nowhere else.  Called after re_replicate() in
  /// debug builds and from tests.
  void check_invariants() const;

 private:
  struct RingPoint {
    std::uint64_t hash;
    std::uint32_t node;
  };

  /// The first two *distinct live* nodes at or after the key's position.
  [[nodiscard]] std::vector<std::size_t> owners(std::uint64_t key_hash) const;
  void re_replicate();

  // Each node's table is itself sharded+locked (ShardedFlowTable), so
  // per-node reads/writes are safe under the forwarder's worker threads;
  // ring mutations (fail/recover) remain control-plane single-threaded.
  std::vector<std::unique_ptr<ShardedFlowTable>> shards_;
  std::vector<bool> alive_;
  std::vector<RingPoint> ring_;   // sorted by hash
};

}  // namespace switchboard::dataplane
