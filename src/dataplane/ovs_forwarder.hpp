// OVS-style software forwarder used as the Figure 7 baseline.
//
// The paper's first forwarder used Open vSwitch with multipath + learn
// actions, and measured the *relative* overhead of (b) overlay labels
// (VXLAN + MPLS) and (a) flow-affinity learn rules over (c) a plain
// bridge.  This model executes the same classes of per-packet work:
//   * kBridge         — destination lookup only,
//   * kLabels         — bridge + VXLAN encap/decap + MPLS push/pop with a
//                       real header build + checksum,
//   * kLabelsAffinity — labels + an OVS-like exact-match rule list with
//                       learn-on-miss; lookup is a linear scan, which is
//                       what makes OVS scale poorly with flow count.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dataplane/packet.hpp"

namespace switchboard::dataplane {

enum class OvsMode { kBridge, kLabels, kLabelsAffinity };

class OvsForwarder {
 public:
  explicit OvsForwarder(OvsMode mode, std::size_t port_count = 64);

  /// Processes one packet; returns the chosen output port.
  std::uint32_t process(const Packet& packet);

  [[nodiscard]] OvsMode mode() const { return mode_; }
  [[nodiscard]] std::size_t learned_rules() const { return learned_.size(); }
  /// Running checksum of all header work — forces the work to be real
  /// (prevents the optimizer from deleting it) and is checkable in tests.
  [[nodiscard]] std::uint64_t work_digest() const { return digest_; }
  void clear_rules() { learned_.clear(); }

 private:
  struct LearnedRule {
    FiveTuple tuple;
    Labels labels;
    std::uint32_t port;
  };

  void parse_headers(const Packet& packet);
  std::uint32_t bridge_lookup(const Packet& packet);
  void vxlan_mpls_encap(const Packet& packet);
  std::uint32_t affinity_lookup(const Packet& packet);

  OvsMode mode_;
  std::size_t port_count_;
  std::vector<LearnedRule> learned_;
  std::array<std::uint8_t, 64> header_scratch_{};
  std::uint64_t digest_{0};
};

}  // namespace switchboard::dataplane
