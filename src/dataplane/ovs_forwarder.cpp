#include "dataplane/ovs_forwarder.hpp"

#include <cstring>

namespace switchboard::dataplane {
namespace {

/// RFC 1071-style ones'-complement sum over a header block.
std::uint16_t ip_checksum(const std::uint8_t* data, std::size_t length) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < length; i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (length & 1) sum += static_cast<std::uint32_t>(data[length - 1]) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

OvsForwarder::OvsForwarder(OvsMode mode, std::size_t port_count)
    : mode_{mode}, port_count_{port_count} {}

void OvsForwarder::parse_headers(const Packet& packet) {
  // Per-packet receive work every mode pays (the kernel/vswitchd path:
  // validate lengths, parse L2/L3/L4 fields into the flow key).  Modeled
  // as mixing the header words into a running digest.
  std::uint64_t sum = packet.size_bytes;
  const std::uint64_t words[6] = {
      packet.flow.src_ip,
      packet.flow.dst_ip,
      static_cast<std::uint64_t>(packet.flow.src_port) << 16 |
          packet.flow.dst_port,
      packet.flow.protocol,
      packet.labels.chain,
      packet.labels.egress_site,
  };
  // Two passes: key extraction, then validation/classifier staging.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::uint64_t w : words) sum = mix64(sum ^ w);
  }
  digest_ += sum & 0xFF;
}

std::uint32_t OvsForwarder::bridge_lookup(const Packet& packet) {
  // L2/flow-cache forwarding: hash the packet's flow key and index the
  // port table (OVS's exact-match datapath cache does equivalent work).
  const std::uint64_t h = flow_hash(packet.labels, packet.flow);
  const std::uint32_t port = static_cast<std::uint32_t>(h % port_count_);
  digest_ += port;
  return port;
}

void OvsForwarder::vxlan_mpls_encap(const Packet& packet) {
  // Outer Ethernet(14) + IP(20) + UDP(8) + VXLAN(8) headers, then two
  // 4-byte MPLS labels (chain + route) — the paper's overlay stack.
  std::uint8_t* h = header_scratch_.data();
  std::memset(h, 0, 24);   // outer headers written below; clear the prefix
  // Outer IP src/dst derived from the tunnel endpoints (here: flow hash).
  const std::uint64_t tunnel = mix64(packet.flow.src_ip ^ packet.flow.dst_ip);
  std::memcpy(h + 14 + 12, &tunnel, 8);            // outer IP addresses
  h[14] = 0x45;                                     // version + IHL
  const std::uint16_t total_len =
      static_cast<std::uint16_t>(packet.size_bytes + 50);
  h[14 + 2] = static_cast<std::uint8_t>(total_len >> 8);
  h[14 + 3] = static_cast<std::uint8_t>(total_len);
  const std::uint16_t checksum = ip_checksum(h + 14, 20);
  h[14 + 10] = static_cast<std::uint8_t>(checksum >> 8);
  h[14 + 11] = static_cast<std::uint8_t>(checksum);
  // UDP dst 4789 (VXLAN), VNI from the chain label.
  h[34 + 2] = 0x12;
  h[34 + 3] = 0xB5;
  std::memcpy(h + 42 + 4, &packet.labels.chain, 3);  // VNI
  // MPLS labels: chain and egress route.
  std::memcpy(h + 50, &packet.labels.chain, 4);
  std::memcpy(h + 54, &packet.labels.egress_site, 4);
  digest_ += checksum + h[50] + h[54];
}

std::uint32_t OvsForwarder::affinity_lookup(const Packet& packet) {
  // OVS exact-match rule list with learn action: linear scan, learn on
  // miss (both directions, as the learn action installs the reverse rule
  // for symmetric return).
  for (const LearnedRule& rule : learned_) {
    if (rule.tuple == packet.flow && rule.labels == packet.labels) {
      digest_ += rule.port;
      return rule.port;
    }
  }
  const std::uint32_t port = static_cast<std::uint32_t>(
      mix64(flow_hash(packet.labels, packet.flow)) % port_count_);
  learned_.push_back(LearnedRule{packet.flow, packet.labels, port});
  learned_.push_back(LearnedRule{packet.flow.reversed(), packet.labels, port});
  digest_ += port;
  return port;
}

std::uint32_t OvsForwarder::process(const Packet& packet) {
  parse_headers(packet);
  switch (mode_) {
    case OvsMode::kBridge:
      return bridge_lookup(packet);
    case OvsMode::kLabels:
      vxlan_mpls_encap(packet);
      return bridge_lookup(packet);
    case OvsMode::kLabelsAffinity: {
      vxlan_mpls_encap(packet);
      // Rule-table lookup, then resubmission to the output stage (OVS's
      // learn/resubmit pipeline).
      const std::uint32_t port = affinity_lookup(packet);
      bridge_lookup(packet);
      return port;
    }
  }
  return 0;
}

}  // namespace switchboard::dataplane
