#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace switchboard {

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
    : exponent_{exponent} {
  SWB_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent_);
    cdf_[k] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const {
  SWB_DCHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace switchboard
