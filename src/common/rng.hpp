// Deterministic random number generation for simulations and workloads.
//
// All stochastic components take an explicit Rng so that every experiment is
// reproducible from a single seed and sub-streams can be split per component.
#pragma once

#include <cstdint>
#include <vector>

namespace switchboard {

/// xoshiro256** — fast, high-quality, 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with given mean (> 0).
  double exponential(double mean);
  /// Standard normal via Box–Muller.
  double normal(double mean = 0.0, double stddev = 1.0);
  /// True with probability p.
  bool bernoulli(double p);
  /// Index drawn proportionally to non-negative `weights` (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);
  /// A fresh, independently-seeded generator (stream splitting).
  Rng split();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Choose k distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_{false};
  double cached_normal_{0.0};
};

}  // namespace switchboard
