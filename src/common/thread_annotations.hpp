// Compile-time concurrency contracts: Clang Thread Safety Analysis
// vocabulary + an annotated mutex, lock guard, and condition variable.
//
// Why: the sharded data plane (DESIGN.md §10) and the durable control
// plane (§13) both rest on "every shared field is touched under its
// lock" invariants that TSan can only validate for the schedules a test
// happens to run.  Annotating the lock relationships promotes those
// invariants to *build errors*: under any clang with
// `-Wthread-safety -Werror=thread-safety` (the CMake default whenever
// the compiler supports the flag — see SWB_THREAD_SAFETY in the
// top-level CMakeLists.txt), a guarded field read without its mutex
// provably held fails the compile.  Under GCC the macros expand to
// nothing and the wrappers cost exactly a std::mutex.
//
// Vocabulary (see DESIGN.md §14 for the usage rules):
//   SWB_GUARDED_BY(m)    field: only touch while `m` is held
//   SWB_PT_GUARDED_BY(m) pointer field: the pointee needs `m`
//   SWB_REQUIRES(m)      function: caller must already hold `m`
//   SWB_ACQUIRE(m)/SWB_RELEASE(m)  function acquires/releases `m`
//   SWB_TRY_ACQUIRE(b,m) try-lock: holds `m` when it returned `b`
//   SWB_EXCLUDES(m)      function: caller must NOT hold `m` (deadlock
//                        documentation for non-reentrant APIs)
//   SWB_ACQUIRED_BEFORE/AFTER(...)  static lock-order edges
//   SWB_NO_THREAD_SAFETY_ANALYSIS  opt-out; every use carries a comment
//                        saying *why* the analysis cannot see the proof
//
// The wrappers:
//   swb::Mutex      annotated std::mutex (a TSA "capability")
//   swb::MutexLock  scoped acquire/release (the only idiom used on
//                   guarded state; std::scoped_lock on a swb::Mutex
//                   hides the acquisition from the analysis)
//   swb::CondVar    condition variable waiting on a swb::Mutex without
//                   losing the "lock is held" fact across the wait
#pragma once

#include <condition_variable>
#include <mutex>

// Clang implements the analysis attributes; GCC parses none of them.
#if defined(__clang__) && !defined(SWB_NO_THREAD_SAFETY_ATTRIBUTES)
#define SWB_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SWB_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

#define SWB_CAPABILITY(x) SWB_THREAD_ANNOTATION__(capability(x))
#define SWB_SCOPED_CAPABILITY SWB_THREAD_ANNOTATION__(scoped_lockable)
#define SWB_GUARDED_BY(x) SWB_THREAD_ANNOTATION__(guarded_by(x))
#define SWB_PT_GUARDED_BY(x) SWB_THREAD_ANNOTATION__(pt_guarded_by(x))
#define SWB_ACQUIRED_BEFORE(...) \
  SWB_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SWB_ACQUIRED_AFTER(...) \
  SWB_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define SWB_REQUIRES(...) \
  SWB_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SWB_REQUIRES_SHARED(...) \
  SWB_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define SWB_ACQUIRE(...) \
  SWB_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SWB_ACQUIRE_SHARED(...) \
  SWB_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define SWB_RELEASE(...) \
  SWB_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SWB_RELEASE_SHARED(...) \
  SWB_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define SWB_TRY_ACQUIRE(...) \
  SWB_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define SWB_EXCLUDES(...) SWB_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define SWB_ASSERT_CAPABILITY(x) \
  SWB_THREAD_ANNOTATION__(assert_capability(x))
#define SWB_RETURN_CAPABILITY(x) SWB_THREAD_ANNOTATION__(lock_returned(x))
#define SWB_NO_THREAD_SAFETY_ANALYSIS \
  SWB_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace switchboard::swb {

/// std::mutex as a TSA capability.  Exactly the size and cost of the
/// std::mutex it wraps; the annotations exist only at compile time.
class SWB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SWB_ACQUIRE() { mutex_.lock(); }
  void unlock() SWB_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() SWB_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

  /// The wrapped mutex, for APIs that need the raw lockable (CondVar's
  /// wait, std::unique_lock-based deferred acquisition in lock_all()).
  /// Lock operations through this reference are INVISIBLE to the
  /// analysis — any function using it directly must carry
  /// SWB_NO_THREAD_SAFETY_ANALYSIS plus a justification comment.
  [[nodiscard]] std::mutex& native() { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Scoped acquire/release of a swb::Mutex — the repo's only locking
/// idiom for guarded state.  (std::scoped_lock works at runtime but is
/// a system-header template, so the acquisition would be invisible to
/// the analysis and every guarded access after it would fail the build.)
class SWB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SWB_ACQUIRE(mutex) : mutex_{mutex} {
    mutex_.lock();
  }
  ~MutexLock() SWB_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable bound to swb::Mutex.  wait() is annotated
/// SWB_REQUIRES(mutex): the analysis knows the lock is held before,
/// during (as far as guarded reads in the caller's wait loop are
/// concerned), and after the wait — callers keep writing the standard
///   while (!predicate_over_guarded_state) cv.wait(mutex);
/// loop and the predicate reads stay provably guarded.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks, and reacquires before
  /// returning.  Caller must hold `mutex` (spurious wakeups possible —
  /// always wait in a predicate loop).
  void wait(Mutex& mutex) SWB_REQUIRES(mutex) {
    // condition_variable_any unlocks/relocks the native mutex; the
    // capability bookkeeping is handled by the REQUIRES contract.
    cv_.wait(mutex.native());
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace switchboard::swb
