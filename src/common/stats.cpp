#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"

namespace switchboard {

void SampleStats::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sorted_valid_ = false;
}

void SampleStats::clear() {
  samples_.clear();
  sorted_.clear();
  sum_ = 0.0;
  sorted_valid_ = false;
}

double SampleStats::mean() const {
  SWB_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  SWB_CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  SWB_CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double ss = 0.0;
  for (const double s : samples_) ss += (s - m) * (s - m);
  return std::sqrt(ss / static_cast<double>(samples_.size() - 1));
}

double SampleStats::percentile(double p) const {
  SWB_CHECK(!samples_.empty());
  SWB_CHECK(p >= 0.0 && p <= 100.0);
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  SWB_CHECK(lo < hi);
  SWB_CHECK(bins > 0);
}

void Histogram::add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>(
      (sample - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
  counts_[std::min(bin, counts_.size() - 1)]++;
}

std::string Histogram::to_string(std::size_t max_width) const {
  std::ostringstream os;
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double bin_lo = lo_ + width * static_cast<double>(i);
    os << "[" << bin_lo << ", " << bin_lo + width << ") ";
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    for (std::size_t b = 0; b < bar; ++b) os << '#';
    os << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace switchboard
