// Streaming statistics accumulators used by benchmarks and experiments.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace switchboard {

/// Thread-safe event counter: a drop-in replacement for a plain
/// `std::uint64_t` statistics field that several worker threads bump
/// concurrently (e.g. the forwarder's per-packet counters).  All operations
/// use relaxed ordering — counters are monotonic tallies, not
/// synchronization points; readers that need a consistent *set* of counters
/// must quiesce the writers first (the data plane reads them after joining
/// its workers).
class RelaxedCounter {
 public:
  constexpr RelaxedCounter() = default;
  constexpr RelaxedCounter(std::uint64_t value) : value_{value} {}   // NOLINT(google-explicit-constructor)
  RelaxedCounter(const RelaxedCounter& other)
      : value_{other.value_.load(std::memory_order_relaxed)} {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    return *this;
  }

  /// Reads like a plain integer (relaxed).
  operator std::uint64_t() const {   // NOLINT(google-explicit-constructor)
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

  RelaxedCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulates samples; supports mean/min/max/stddev and exact percentiles.
/// Percentile queries sort a copy lazily, so keep sample counts moderate
/// (millions are fine).
class SampleStats {
 public:
  void add(double sample);
  void clear();

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  /// p in [0, 100]; linear interpolation between closest ranks.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  double sum_{0.0};
  mutable std::vector<double> sorted_;   // cache for percentile queries
  mutable bool sorted_valid_{false};
};

/// Fixed-width histogram counter over [lo, hi) with `bins` buckets plus
/// underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample);
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] std::string to_string(std::size_t max_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_{0};
  std::size_t overflow_{0};
  std::size_t total_{0};
};

}  // namespace switchboard
