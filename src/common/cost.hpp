// Piecewise-linear convex utilization cost (Fortz & Thorup, INFOCOM 2000).
//
// Both SB-DP's network-utilization and compute-utilization cost terms use
// this function (Section 4.4 of the paper): cost grows mildly below 50%
// utilization and exponentially above it, discouraging routes through
// near-saturated links or VNF sites.
#pragma once

#include <vector>

namespace switchboard {

/// The classic Fortz–Thorup penalty: a convex piecewise-linear function of
/// utilization u = load / capacity with breakpoints at
/// u = 1/3, 2/3, 9/10, 1, 11/10 and slopes 1, 3, 10, 70, 500, 5000.
class UtilizationCost {
 public:
  UtilizationCost();

  /// Construct with custom breakpoints/slopes.  `slopes` must have exactly
  /// one more element than `breakpoints`, and be non-decreasing (convexity).
  UtilizationCost(std::vector<double> breakpoints, std::vector<double> slopes);

  /// Φ(u): cost at utilization u (u >= 0; u may exceed 1 — overload).
  [[nodiscard]] double operator()(double utilization) const;

  /// Marginal cost dΦ/du at utilization u (right derivative).
  [[nodiscard]] double slope_at(double utilization) const;

  /// Cost increase of moving from utilization `from` to `to` (to >= from).
  [[nodiscard]] double delta(double from, double to) const;

 private:
  std::vector<double> breakpoints_;
  std::vector<double> slopes_;
  std::vector<double> values_at_breakpoints_;  // prefix-evaluated Φ
};

}  // namespace switchboard
