// Minimal leveled logger.  Defaults to warnings-only so tests and benchmarks
// stay quiet; examples raise the level to narrate what the middleware does.
#pragma once

#include <sstream>
#include <string>

namespace switchboard {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

/// Log a message built from stream-style arguments:
///   SB_LOG(kInfo) << "chain " << id << " activated";
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_{level} {}
  ~LogStream() {
    if (level_ >= log_level()) detail::log_line(level_, os_.str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (level_ >= log_level()) os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace switchboard

#define SB_LOG(severity) \
  ::switchboard::LogStream(::switchboard::LogLevel::severity)
