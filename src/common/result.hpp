// A minimal expected-like Result<T> for recoverable control-plane errors.
//
// The control plane reports failures (e.g., a VNF controller rejecting a
// route during two-phase commit) as values rather than exceptions, because
// rejection is part of the protocol, not an exceptional condition.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace switchboard {

enum class ErrorCode {
  kOk = 0,
  kNotFound,
  kInvalidArgument,
  kResourceExhausted,   // VNF/site capacity shortage
  kRejected,            // 2PC participant voted abort
  kInfeasible,          // optimizer could not find a feasible solution
  kUnavailable,         // component not reachable / not registered
  kAlreadyExists,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kRejected: return "rejected";
    case ErrorCode::kInfeasible: return "infeasible";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kAlreadyExists: return "already_exists";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

struct Error {
  ErrorCode code{ErrorCode::kInternal};
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(switchboard::to_string(code)) +
           (message.empty() ? "" : (": " + message));
  }
};

/// Holds either a value of type T or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_{std::move(value)} {}          // NOLINT(implicit)
  Result(Error error) : data_{std::move(error)} {}      // NOLINT(implicit)
  Result(ErrorCode code, std::string msg)
      : data_{Error{code, std::move(msg)}} {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }
  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result specialization for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_{std::move(error)} {}     // NOLINT(implicit)
  Status(ErrorCode code, std::string msg)
      : error_{Error{code, std::move(msg)}} {}

  [[nodiscard]] static Status ok_status() { return {}; }

  [[nodiscard]] bool ok() const { return error_.code == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const { return error_; }

 private:
  Error error_{ErrorCode::kOk, {}};
};

}  // namespace switchboard
