// Runtime invariant checking: the repo's replacement for <cassert>.
//
// SWB_CHECK(cond)            always-on check; aborts with expression + location.
// SWB_CHECK_EQ(a, b) (etc.)  always-on comparison; prints both operand values.
// SWB_DCHECK / SWB_DCHECK_*  compiled out under NDEBUG (hot-path variants).
//
// All macros accept streamed context:
//   SWB_CHECK_LT(index, size()) << "while probing chain " << chain;
//
// A failed check prints one line to stderr —
//   CHECK failed at src/dataplane/flow_table.cpp:42: SWB_CHECK_EQ(occupied,
//   size_) (17 vs 16) while auditing shard 3
// — and then calls std::abort(), so sanitizers and death tests both see it.
//
// Rationale (vs. assert): assert() vanishes in RelWithDebInfo, prints no
// operand values, and cannot carry context.  Repo rule (tools/lint.py):
// assert() is banned outside common/result.hpp.
#pragma once

#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace switchboard::check_detail {

/// Formats an operand for a failure message.  Anything streamable prints
/// via operator<<; 1-byte integers print numerically, not as characters.
template <typename T>
std::string format_value(const T& value) {
  std::ostringstream os;
  if constexpr (std::is_same_v<T, bool>) {
    os << (value ? "true" : "false");
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 1) {
    os << static_cast<int>(value);
  } else {
    os << value;
  }
  return os.str();
}

/// Accumulates the failure message; aborts the process in its destructor.
/// Created only on the failure path, so the hot path pays one branch.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expression);
  CheckFailure(const char* file, int line, const char* expression,
               std::string lhs, std::string rhs);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;
  ~CheckFailure();   // prints and aborts; never returns normally

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    if (!context_started_) {
      os_ << ' ';
      context_started_ = true;
    }
    os_ << value;
    return *this;
  }

 private:
  std::ostringstream os_;
  bool context_started_{false};
};

/// Swallows streamed context for compiled-out SWB_DCHECK in NDEBUG builds.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Comparison helpers: return true when the check PASSES.  Plain functions
/// (not a macro-expanded `a op b` at the call site) so operands are
/// evaluated exactly once and failure formatting sees the same values.
struct OpEq {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a == b; }
};
struct OpNe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a != b; }
};
struct OpLt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a < b; }
};
struct OpLe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a <= b; }
};
struct OpGt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a > b; }
};
struct OpGe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a >= b; }
};

}  // namespace switchboard::check_detail

// A failed check constructs a CheckFailure temporary, streams any trailing
// context into it, and aborts when the temporary dies at the end of the
// statement.  The `while` keeps the macro usable wherever a statement is
// legal (including un-braced if/else arms) and makes `<< context` bind to
// the temporary.  The loop body never runs twice: the destructor aborts.
#define SWB_CHECK(cond)                                                      \
  while (!static_cast<bool>(cond))                                          \
  ::switchboard::check_detail::CheckFailure(__FILE__, __LINE__,             \
                                            "SWB_CHECK(" #cond ")")

#define SWB_CHECK_OP_IMPL(name, op_functor, a, b)                            \
  while (!::switchboard::check_detail::op_functor{}((a), (b)))              \
  ::switchboard::check_detail::CheckFailure(                                \
      __FILE__, __LINE__, "SWB_CHECK_" #name "(" #a ", " #b ")",            \
      ::switchboard::check_detail::format_value((a)),                       \
      ::switchboard::check_detail::format_value((b)))

#define SWB_CHECK_EQ(a, b) SWB_CHECK_OP_IMPL(EQ, OpEq, a, b)
#define SWB_CHECK_NE(a, b) SWB_CHECK_OP_IMPL(NE, OpNe, a, b)
#define SWB_CHECK_LT(a, b) SWB_CHECK_OP_IMPL(LT, OpLt, a, b)
#define SWB_CHECK_LE(a, b) SWB_CHECK_OP_IMPL(LE, OpLe, a, b)
#define SWB_CHECK_GT(a, b) SWB_CHECK_OP_IMPL(GT, OpGt, a, b)
#define SWB_CHECK_GE(a, b) SWB_CHECK_OP_IMPL(GE, OpGe, a, b)

// Debug-only variants: full checks unless NDEBUG, in which case the
// condition is type-checked but never evaluated (no side effects, no cost,
// and no unused-variable warnings for operands).
#ifdef NDEBUG
#define SWB_DCHECK_DISABLED_IMPL(cond)                                       \
  while (false && static_cast<bool>(cond))                                  \
  ::switchboard::check_detail::NullStream()
#define SWB_DCHECK(cond) SWB_DCHECK_DISABLED_IMPL(cond)
#define SWB_DCHECK_EQ(a, b) SWB_DCHECK_DISABLED_IMPL((a) == (b))
#define SWB_DCHECK_NE(a, b) SWB_DCHECK_DISABLED_IMPL((a) != (b))
#define SWB_DCHECK_LT(a, b) SWB_DCHECK_DISABLED_IMPL((a) < (b))
#define SWB_DCHECK_LE(a, b) SWB_DCHECK_DISABLED_IMPL((a) <= (b))
#define SWB_DCHECK_GT(a, b) SWB_DCHECK_DISABLED_IMPL((a) > (b))
#define SWB_DCHECK_GE(a, b) SWB_DCHECK_DISABLED_IMPL((a) >= (b))
#else
#define SWB_DCHECK(cond) SWB_CHECK(cond)
#define SWB_DCHECK_EQ(a, b) SWB_CHECK_EQ(a, b)
#define SWB_DCHECK_NE(a, b) SWB_CHECK_NE(a, b)
#define SWB_DCHECK_LT(a, b) SWB_CHECK_LT(a, b)
#define SWB_DCHECK_LE(a, b) SWB_CHECK_LE(a, b)
#define SWB_DCHECK_GT(a, b) SWB_CHECK_GT(a, b)
#define SWB_DCHECK_GE(a, b) SWB_CHECK_GE(a, b)
#endif
