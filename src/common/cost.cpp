#include "common/cost.hpp"

#include "common/check.hpp"

namespace switchboard {

UtilizationCost::UtilizationCost()
    : UtilizationCost({1.0 / 3, 2.0 / 3, 0.9, 1.0, 1.1},
                      {1, 3, 10, 70, 500, 5000}) {}

UtilizationCost::UtilizationCost(std::vector<double> breakpoints,
                                 std::vector<double> slopes)
    : breakpoints_{std::move(breakpoints)}, slopes_{std::move(slopes)} {
  SWB_CHECK(slopes_.size() == breakpoints_.size() + 1);
  for (std::size_t i = 0; i + 1 < breakpoints_.size(); ++i) {
    SWB_CHECK(breakpoints_[i] < breakpoints_[i + 1]);
  }
  for (std::size_t i = 0; i + 1 < slopes_.size(); ++i) {
    SWB_CHECK(slopes_[i] <= slopes_[i + 1]);  // convexity
  }
  values_at_breakpoints_.reserve(breakpoints_.size());
  double value = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    value += slopes_[i] * (breakpoints_[i] - prev);
    values_at_breakpoints_.push_back(value);
    prev = breakpoints_[i];
  }
}

double UtilizationCost::operator()(double utilization) const {
  SWB_DCHECK(utilization >= 0);
  double prev_bp = 0.0;
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    if (utilization <= breakpoints_[i]) {
      const double base = (i == 0) ? 0.0 : values_at_breakpoints_[i - 1];
      const double from = (i == 0) ? 0.0 : breakpoints_[i - 1];
      return base + slopes_[i] * (utilization - from);
    }
    prev_bp = breakpoints_[i];
  }
  return values_at_breakpoints_.back() +
         slopes_.back() * (utilization - prev_bp);
}

double UtilizationCost::slope_at(double utilization) const {
  SWB_DCHECK(utilization >= 0);
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    if (utilization < breakpoints_[i]) return slopes_[i];
  }
  return slopes_.back();
}

double UtilizationCost::delta(double from, double to) const {
  SWB_CHECK(from <= to);
  return (*this)(to) - (*this)(from);
}

}  // namespace switchboard
