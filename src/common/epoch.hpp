// Epoch-based reclamation (EBR) for the lock-free read side of the data
// plane (DESIGN.md §15).
//
// The problem: the sharded flow table publishes bucket arrays and flow
// entries through atomic pointers so packet lookups never take a mutex.
// A writer that replaces such a pointer (rehash, entry update, erase)
// cannot free the old object immediately — a reader may have loaded the
// pointer a cycle earlier and still be dereferencing it.
//
// The scheme (classic three-phase EBR, specialised to this repo's
// quiesce-friendly workloads):
//
//   * the domain keeps a GLOBAL EPOCH counter and a fixed array of
//     cacheline-padded reader slots;
//   * a reader PINS an epoch before touching any protected pointer
//     (EpochGuard): it claims a slot, publishes the epoch it observed,
//     and re-checks the global epoch so the publication can never lag a
//     concurrent writer's advance (the seq_cst store/load pair below);
//   * a writer RETIREs an object only after making it unreachable
//     (storing the replacement pointer with release order).  retire()
//     stamps the object with the current epoch and advances the global
//     epoch, then frees every retired object whose stamp is OLDER than
//     the minimum pinned epoch — the grace period: any reader that could
//     still hold the pointer is pinned at an epoch <= the stamp, so the
//     object survives until that reader unpins.
//
// Ordering contract (why readers can never observe freed memory):
//   writer: replace pointer (release) -> retire stamp E -> advance to
//   E+1 (seq_cst) -> scan slots (seq_cst loads).  reader: publish pinned
//   epoch (seq_cst) -> re-read global (seq_cst).  If the reader's
//   re-read returns E, its pinned store precedes the writer's scan in
//   the seq_cst total order, so the writer computes min <= E and keeps
//   the object.  If the re-read returns E+1, it synchronizes-with the
//   writer's advance, so every protected load after the pin observes the
//   replacement pointer and the retired object is unreachable to this
//   reader.
//
// Locking: reader pin/unpin is lock-free (one CAS + two stores).  The
// retired list is guarded by a leaf swb::Mutex; callers may hold their
// own write locks while calling retire() (shard mutex -> retire mutex is
// the documented order; nothing is ever acquired under retire_mutex_).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hpp"

namespace switchboard::swb {

class EpochDomain {
 public:
  /// Reader slots per domain.  Claiming scans from a per-thread preferred
  /// index, so steady-state readers reuse "their" slot and the claim CAS
  /// stays on an unshared cacheline.
  static constexpr std::size_t kMaxReaders = 64;
  /// Slot value meaning "no epoch pinned".
  static constexpr std::uint64_t kUnpinned = ~std::uint64_t{0};

  EpochDomain() = default;
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Frees everything still retired.  Requires quiescence: aborts (via
  /// SWB_CHECK) if any reader is still pinned.
  ~EpochDomain();

  /// Claims a reader slot and publishes the current epoch in it.  Returns
  /// the slot index (pass it to unpin()).  Lock-free; aborts if more than
  /// kMaxReaders threads pin simultaneously.  Prefer EpochGuard.
  [[nodiscard]] std::size_t pin();

  /// Releases a slot claimed by pin().  After this the caller must not
  /// dereference any epoch-protected pointer it loaded under the pin.
  void unpin(std::size_t slot);

  /// Hands `object` to the domain for deferred deletion via `deleter`.
  /// The object must already be unreachable from the protected structure
  /// (the caller replaced the pointer, with release order, before
  /// retiring).  Advances the global epoch and opportunistically frees
  /// every retired object past its grace period.
  void retire(void* object, void (*deleter)(void*));

  /// Typed convenience: retire(p) frees with `delete static_cast<T*>(p)`.
  template <typename T>
  void retire(T* object) {
    retire(static_cast<void*>(object),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Frees every retired object whose grace period has elapsed; returns
  /// the number freed.  retire() calls this automatically — the explicit
  /// entry point exists for tests and for quiesced teardown.
  std::size_t try_reclaim();

  // -- introspection (tests, stats) ----------------------------------
  [[nodiscard]] std::uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t retired_count() const;
  [[nodiscard]] std::size_t pinned_readers() const;

 private:
  struct Retired {
    void* object;
    void (*deleter)(void*);
    std::uint64_t epoch;   // global epoch when retired
  };

  /// One reader slot, padded so pin/unpin traffic of different threads
  /// never shares a cacheline.
  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> pinned{kUnpinned};
    std::atomic<bool> claimed{false};
  };

  /// Minimum epoch pinned by any claimed slot (kUnpinned when none).
  [[nodiscard]] std::uint64_t min_pinned_epoch() const;

  /// Frees retired objects with epoch < `horizon`; caller holds
  /// retire_mutex_.  Returns the number freed.
  std::size_t reclaim_before(std::uint64_t horizon)
      SWB_REQUIRES(retire_mutex_);

  std::atomic<std::uint64_t> global_epoch_{1};
  ReaderSlot slots_[kMaxReaders];

  /// Leaf lock (nothing is acquired while holding it): callers may hold
  /// their own structure locks across retire().
  mutable Mutex retire_mutex_;
  std::vector<Retired> retired_ SWB_GUARDED_BY(retire_mutex_);
};

/// RAII epoch pin: hold one across every sequence of loads through
/// epoch-protected pointers (a single lookup, or a whole lookup batch —
/// batching amortizes the pin to nothing).
class EpochGuard {
 public:
  explicit EpochGuard(EpochDomain& domain)
      : domain_{domain}, slot_{domain.pin()} {}
  ~EpochGuard() { domain_.unpin(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain& domain_;
  std::size_t slot_;
};

}  // namespace switchboard::swb
