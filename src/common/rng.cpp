#include "common/rng.hpp"
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace switchboard {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand one seed word into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  SWB_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  SWB_DCHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire's unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto low = static_cast<std::uint64_t>(m);
  if (low < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * range;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  SWB_CHECK(mean > 0);
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  SWB_CHECK(!weights.empty());
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  SWB_CHECK(total > 0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0) return i;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng{(*this)()}; }

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  SWB_CHECK(k <= n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher–Yates: the first k slots are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace switchboard
