// Zipf-distributed sampling, used by the web-cache workload (Table 3) and
// skewed flow popularity in data-plane benchmarks.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace switchboard {

/// Samples ranks in [0, n) with P(rank = k) ∝ 1 / (k+1)^exponent.
/// Uses an inverse-CDF table: O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t n() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  /// Draws one rank.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// P(rank = k).
  [[nodiscard]] double probability(std::size_t k) const;

 private:
  double exponent_;
  std::vector<double> cdf_;   // cdf_[k] = P(rank <= k)
};

}  // namespace switchboard
