#include "common/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace switchboard::check_detail {

CheckFailure::CheckFailure(const char* file, int line,
                           const char* expression) {
  os_ << "CHECK failed at " << file << ":" << line << ": " << expression;
}

CheckFailure::CheckFailure(const char* file, int line, const char* expression,
                           std::string lhs, std::string rhs) {
  os_ << "CHECK failed at " << file << ":" << line << ": " << expression
      << " (" << lhs << " vs " << rhs << ")";
}

CheckFailure::~CheckFailure() {
  // fprintf (not std::cerr) so the message survives even when iostream
  // globals are mid-destruction, and reaches the pipe unbuffered for
  // death tests.
  const std::string message = os_.str();
  std::fputs(message.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace switchboard::check_detail
