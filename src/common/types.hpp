// Strongly-typed identifiers used across every Switchboard subsystem.
//
// Each entity class (network node, cloud site, VNF, chain, ...) gets its own
// id type so that, e.g., a SiteId cannot be passed where a ChainId is
// expected.  Ids are small value types: an index wrapped in a tag.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace switchboard {

/// A type-safe integer id.  `Tag` is an empty struct that distinguishes id
/// families at compile time; `value()` is an index into the owning registry.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying_type v) : value_{v} {}

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value();
  }

 private:
  underlying_type value_{kInvalid};
};

struct NodeTag {};
struct LinkTag {};
struct SiteTag {};
struct VnfTag {};
struct ChainTag {};
struct InstanceTag {};   // a VNF or edge instance (VM/container)
struct ForwarderTag {};
struct EdgeServiceTag {};
struct RouteTag {};      // one wide-area route of a chain
struct ActorTag {};      // a simulation actor (controller, proxy, ...)

using NodeId = StrongId<NodeTag>;
using LinkId = StrongId<LinkTag>;
using SiteId = StrongId<SiteTag>;
using VnfId = StrongId<VnfTag>;
using ChainId = StrongId<ChainTag>;
using InstanceId = StrongId<InstanceTag>;
using ForwarderId = StrongId<ForwarderTag>;
using EdgeServiceId = StrongId<EdgeServiceTag>;
using RouteId = StrongId<RouteTag>;
using ActorId = StrongId<ActorTag>;

}  // namespace switchboard

namespace std {
template <typename Tag>
struct hash<switchboard::StrongId<Tag>> {
  size_t operator()(switchboard::StrongId<Tag> id) const noexcept {
    return std::hash<typename switchboard::StrongId<Tag>::underlying_type>{}(
        id.value());
  }
};
}  // namespace std
