#include "common/epoch.hpp"

#include "common/check.hpp"

namespace switchboard::swb {

namespace {

/// Per-thread preferred reader slot: distinct threads start their claim
/// scan at distinct indexes, so in steady state each thread's CAS lands
/// on a slot no other thread touches.  The assignment order does not
/// affect any observable result (slots are interchangeable), only cache
/// behaviour.
std::size_t preferred_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % EpochDomain::kMaxReaders;
  return mine;
}

}  // namespace

EpochDomain::~EpochDomain() {
  SWB_CHECK_EQ(pinned_readers(), 0u)
      << "EpochDomain destroyed with readers still pinned";
  const MutexLock lock{retire_mutex_};
  (void)reclaim_before(kUnpinned);   // no readers: everything is past grace
}

std::size_t EpochDomain::pin() {
  // Claim a slot: CAS scan starting at this thread's preferred index.
  const std::size_t start = preferred_slot();
  std::size_t slot = kMaxReaders;
  for (std::size_t attempt = 0; attempt < kMaxReaders * 1024; ++attempt) {
    const std::size_t s = (start + attempt) % kMaxReaders;
    bool expected = false;
    if (slots_[s].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acquire,
            std::memory_order_relaxed)) {
      slot = s;
      break;
    }
  }
  SWB_CHECK_LT(slot, kMaxReaders)
      << "more than kMaxReaders concurrent epoch readers";

  // Publish the epoch we observed, then re-check: if a writer advanced
  // the global epoch in between, republish the newer value.  On exit the
  // published pin is >= the epoch any in-flight writer will stamp its
  // next retirement with (see the ordering contract in the header).
  std::uint64_t observed = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slots_[slot].pinned.store(observed, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == observed) break;
    observed = now;
  }
  return slot;
}

void EpochDomain::unpin(std::size_t slot) {
  SWB_CHECK_LT(slot, kMaxReaders);
  // Release order: every protected load this reader performed happens
  // before the unpin becomes visible to a reclaiming writer.
  slots_[slot].pinned.store(kUnpinned, std::memory_order_release);
  slots_[slot].claimed.store(false, std::memory_order_release);
}

void EpochDomain::retire(void* object, void (*deleter)(void*)) {
  const MutexLock lock{retire_mutex_};
  const std::uint64_t stamp = global_epoch_.load(std::memory_order_seq_cst);
  retired_.push_back(Retired{object, deleter, stamp});
  // Advance the epoch (seq_cst: orders against reader pin publication).
  // Writers are serialized by retire_mutex_, so load+store cannot lose
  // an update.
  global_epoch_.store(stamp + 1, std::memory_order_seq_cst);
  (void)reclaim_before(min_pinned_epoch());
}

std::size_t EpochDomain::try_reclaim() {
  const MutexLock lock{retire_mutex_};
  return reclaim_before(min_pinned_epoch());
}

std::uint64_t EpochDomain::min_pinned_epoch() const {
  std::uint64_t min = kUnpinned;
  for (const ReaderSlot& slot : slots_) {
    // seq_cst: must order after the global-epoch advance in retire() so
    // a reader whose pin "raced ahead" of the advance is always seen.
    const std::uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
    if (pinned < min) min = pinned;
  }
  return min;
}

std::size_t EpochDomain::reclaim_before(std::uint64_t horizon) {
  // An object stamped at epoch E may still be referenced by readers
  // pinned at epochs <= E; it is safe once every pinned epoch is > E.
  std::size_t freed = 0;
  std::size_t keep = 0;
  for (Retired& r : retired_) {
    if (r.epoch < horizon) {
      r.deleter(r.object);
      ++freed;
    } else {
      retired_[keep++] = r;
    }
  }
  retired_.resize(keep);
  return freed;
}

std::size_t EpochDomain::retired_count() const {
  const MutexLock lock{retire_mutex_};
  return retired_.size();
}

std::size_t EpochDomain::pinned_readers() const {
  std::size_t count = 0;
  for (const ReaderSlot& slot : slots_) {
    if (slot.pinned.load(std::memory_order_acquire) != kUnpinned) ++count;
  }
  return count;
}

}  // namespace switchboard::swb
