#include "bus/message_bus.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace switchboard::bus {

bool ProxyEgress::send(SiteId from, SiteId to, std::function<void()> deliver) {
  const sim::SimTime now = sim_.now();
  // Outstanding serialization backlog, in messages.
  const sim::SimTime backlog = std::max<sim::SimTime>(0, egress_free_at_ - now);
  const auto queued = static_cast<std::size_t>(
      backlog / std::max<sim::Duration>(1, config_.per_message_service));
  if (queued >= config_.egress_buffer) return false;

  const sim::SimTime start = std::max(now, egress_free_at_);
  egress_free_at_ = start + config_.per_message_service;
  const sim::Duration propagation = config_.inter_site_delay(from, to);
  sim_.schedule_at(egress_free_at_ + propagation, std::move(deliver));
  return true;
}

// ------------------------------------------------------------------ ProxyBus

ProxyBus::ProxyBus(sim::Simulator& sim, BusConfig config)
    : sim_{sim}, config_{std::move(config)} {
  SWB_CHECK(config_.site_count > 0);
  SWB_CHECK(config_.inter_site_delay);
  proxies_.resize(config_.site_count);
  for (SiteProxy& proxy : proxies_) {
    proxy.egress = std::make_unique<ProxyEgress>(sim_, config_);
  }
}

void ProxyBus::subscribe(SiteId subscriber_site, const Topic& topic,
                         SubscriberCallback callback) {
  SWB_CHECK(subscriber_site.value() < proxies_.size());
  SWB_CHECK(topic.publisher_site.value() < proxies_.size());
  SiteProxy& publisher_proxy = proxies_[topic.publisher_site.value()];
  // Filter at the publisher's proxy: remember the subscriber *site*.
  auto& sites = publisher_proxy.filters[topic.path];
  if (std::find(sites.begin(), sites.end(), subscriber_site) == sites.end()) {
    sites.push_back(subscriber_site);
  }
  // Local fan-out at the subscriber's proxy.
  SubscriberCallback stored = callback;   // copy for retained replay
  proxies_[subscriber_site.value()].locals[topic.path].push_back(
      LocalSubscriber{std::move(callback)});

  // Replay retained state to the late subscriber only.
  if (config_.retain_messages) {
    const auto it = publisher_proxy.retained.find(topic.path);
    if (it == publisher_proxy.retained.end()) return;
    for (const std::string& payload : it->second) {
      Message message{topic.path, payload, sim_.now()};
      auto deliver = [this, stored, message] {
        ++stats_.local_deliveries;
        stats_.delivery_latency_ms.add(
            sim::to_ms(sim_.now() - message.published_at));
        stored(message);
      };
      if (subscriber_site == topic.publisher_site) {
        sim_.schedule(config_.local_delivery_delay, std::move(deliver));
      } else if (publisher_proxy.egress->send(topic.publisher_site,
                                              subscriber_site,
                                              std::move(deliver))) {
        ++stats_.wide_area_messages;
      } else {
        ++stats_.drops;
      }
    }
  }
}

void ProxyBus::publish(const Topic& topic, std::string payload) {
  ++stats_.published;
  const SiteId origin = topic.publisher_site;
  SiteProxy& proxy = proxies_[origin.value()];
  if (config_.retain_messages) {
    auto& retained = proxy.retained[topic.path];
    if (std::find(retained.begin(), retained.end(), payload) ==
        retained.end()) {
      retained.push_back(payload);
    }
  }
  Message message{topic.path, std::move(payload), sim_.now()};

  const auto it = proxy.filters.find(topic.path);
  if (it == proxy.filters.end()) return;   // nobody anywhere subscribed
  for (const SiteId site : it->second) {
    if (site == origin) {
      // Same-site subscriber: local queue only.
      sim_.schedule(config_.local_delivery_delay,
                    [this, site, message] { deliver_locally(site, message); });
      continue;
    }
    // One wide-area copy per subscribed *site*, whatever the number of
    // subscribers there.
    const bool sent = proxy.egress->send(origin, site, [this, site, message] {
      deliver_locally(site, message);
    });
    if (sent) {
      ++stats_.wide_area_messages;
    } else {
      ++stats_.drops;
    }
  }
}

void ProxyBus::deliver_locally(SiteId site, const Message& message) {
  const auto it = proxies_[site.value()].locals.find(message.topic_path);
  if (it == proxies_[site.value()].locals.end()) return;
  for (const LocalSubscriber& sub : it->second) {
    ++stats_.local_deliveries;
    stats_.delivery_latency_ms.add(
        sim::to_ms(sim_.now() - message.published_at));
    sub.callback(message);
  }
}

// --------------------------------------------------------------- FullMeshBus

FullMeshBus::FullMeshBus(sim::Simulator& sim, BusConfig config)
    : sim_{sim}, config_{std::move(config)} {
  SWB_CHECK(config_.site_count > 0);
  SWB_CHECK(config_.inter_site_delay);
  egress_.resize(config_.site_count);
  for (auto& egress : egress_) {
    egress = std::make_unique<ProxyEgress>(sim_, config_);
  }
}

void FullMeshBus::subscribe(SiteId subscriber_site, const Topic& topic,
                            SubscriberCallback callback) {
  SubscriberCallback stored = callback;   // copy for retained replay
  subscribers_[topic.path].push_back(
      Subscriber{subscriber_site, std::move(callback)});
  if (config_.retain_messages) {
    const auto it = retained_.find(topic.path);
    if (it == retained_.end()) return;
    const SiteId origin = topic.publisher_site;
    for (const std::string& payload : it->second) {
      Message message{topic.path, payload, sim_.now()};
      auto deliver = [this, stored, message] {
        ++stats_.local_deliveries;
        stats_.delivery_latency_ms.add(
            sim::to_ms(sim_.now() - message.published_at));
        stored(message);
      };
      if (subscriber_site == origin) {
        sim_.schedule(config_.local_delivery_delay, std::move(deliver));
      } else if (egress_[origin.value()]->send(origin, subscriber_site,
                                               std::move(deliver))) {
        ++stats_.wide_area_messages;
      } else {
        ++stats_.drops;
      }
    }
  }
}

void FullMeshBus::publish(const Topic& topic, std::string payload) {
  ++stats_.published;
  const SiteId origin = topic.publisher_site;
  if (config_.retain_messages) {
    auto& retained = retained_[topic.path];
    if (std::find(retained.begin(), retained.end(), payload) ==
        retained.end()) {
      retained.push_back(payload);
    }
  }
  const auto it = subscribers_.find(topic.path);
  if (it == subscribers_.end()) return;
  Message message{topic.path, std::move(payload), sim_.now()};

  // A separate copy per *subscriber*: this is what overloads the
  // publisher's egress under fan-out.
  for (const Subscriber& sub : it->second) {
    auto deliver = [this, callback = sub.callback, message] {
      ++stats_.local_deliveries;
      stats_.delivery_latency_ms.add(
          sim::to_ms(sim_.now() - message.published_at));
      callback(message);
    };
    if (sub.site == origin) {
      sim_.schedule(config_.local_delivery_delay, std::move(deliver));
      continue;
    }
    if (egress_[origin.value()]->send(origin, sub.site, std::move(deliver))) {
      ++stats_.wide_area_messages;
    } else {
      ++stats_.drops;
    }
  }
}

}  // namespace switchboard::bus
