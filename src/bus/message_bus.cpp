#include "bus/message_bus.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::bus {

bool ProxyEgress::send(SiteId from, SiteId to, std::function<void()> deliver) {
  const sim::SimTime now = sim_.now();
  // Outstanding serialization backlog, in messages.
  const sim::SimTime backlog = std::max<sim::SimTime>(0, egress_free_at_ - now);
  const auto queued = static_cast<std::size_t>(
      backlog / std::max<sim::Duration>(1, config_.per_message_service));
  if (queued >= config_.egress_buffer) return false;

  const sim::SimTime start = std::max(now, egress_free_at_);
  egress_free_at_ = start + config_.per_message_service;
  const sim::Duration propagation = config_.inter_site_delay(from, to);
  sim_.schedule_at(egress_free_at_ + propagation, std::move(deliver));
  return true;
}

// ---------------------------------------------------------------- MessageBus

void MessageBus::count_egress_drop(SiteId from, SiteId to,
                                   const std::string& topic_path) {
  ++stats_.drops;
  ++stats_.drops_by_topic[topic_path];
  SB_LOG(kDebug) << "bus: egress overflow dropped " << topic_path << " "
                 << from << "->" << to;
}

bool MessageBus::wire_copy(sim::Simulator& sim, const BusConfig& config,
                           ProxyEgress& egress, SiteId from, SiteId to,
                           const std::string& topic_path,
                           const std::function<void()>& arrival) {
  sim::MessageVerdict verdict;
  if (config.fault_hook) verdict = config.fault_hook(from, to, topic_path);

  // A dropped copy still leaves the egress (serialized, then lost in
  // flight); a delayed copy arrives late; a duplicated copy serializes —
  // and consumes egress buffer — twice.
  std::function<void()> wrapped = arrival;
  if (verdict.drop) {
    wrapped = [] {};
  } else if (verdict.extra_delay > 0) {
    auto* simp = &sim;
    wrapped = [simp, extra = verdict.extra_delay, arrival] {
      simp->schedule(extra, arrival);
    };
  }
  const std::size_t copies = (verdict.duplicate && !verdict.drop) ? 2u : 1u;
  bool accepted = false;
  for (std::size_t i = 0; i < copies; ++i) {
    if (egress.send(from, to, wrapped)) {
      accepted = true;
      ++stats_.wide_area_messages;
    } else {
      count_egress_drop(from, to, topic_path);
    }
  }
  if (accepted) {
    if (verdict.drop) ++stats_.faults_dropped;
    if (verdict.duplicate && !verdict.drop) ++stats_.faults_duplicated;
    if (verdict.extra_delay > 0 && !verdict.drop) ++stats_.faults_delayed;
  }
  return accepted;
}

void MessageBus::reliable_attempt(
    sim::Simulator& sim, const BusConfig& config,
    const std::shared_ptr<ReliableMessage>& message) {
  auto* simp = &sim;
  const auto* cfg = &config;   // refers to the bus's long-lived config_
  {
    const swb::MutexLock lock{reliable_mutex_};
    ++message->sends;
  }
  wire_copy(sim, config, *message->egress, message->from, message->to,
            message->topic_path, [this, simp, cfg, message] {
              bool first_delivery = false;
              {
                const swb::MutexLock lock{reliable_mutex_};
                first_delivery = !message->delivered;
                message->delivered = true;
              }
              if (first_delivery) {
                // Never under the lock: delivery fans out to subscriber
                // callbacks that publish back into the bus.
                message->deliver();
              } else {
                ++stats_.duplicate_deliveries;
              }
              // Delivery ack back to the sender: a tiny control frame
              // that bypasses the egress queue (pure propagation) but is
              // still exposed to the fault hook — a partition starves
              // acks in both directions.
              sim::MessageVerdict ack_verdict;
              if (cfg->fault_hook) {
                ack_verdict =
                    cfg->fault_hook(message->to, message->from,
                                    message->topic_path + "#ack");
              }
              if (ack_verdict.drop) return;
              simp->schedule(
                  cfg->inter_site_delay(message->to, message->from) +
                      ack_verdict.extra_delay,
                  [this, simp, message] {
                    {
                      const swb::MutexLock lock{reliable_mutex_};
                      if (message->acked || message->done) return;
                      message->acked = true;
                      message->done = true;
                      // A non-done entry always has a live retry timer
                      // (reliable_attempt arms it in the same event that
                      // created or retransmitted the copy).
                      simp->cancel(message->retry);
                    }
                    ++stats_.acks;
                  });
            });
  const sim::EventHandle retry =
      sim.schedule(config.ack_timeout, [this, simp, cfg, message] {
        bool give_up = false;
        {
          const swb::MutexLock lock{reliable_mutex_};
          if (message->acked || message->done) return;
          if (message->sends > cfg->max_retransmits) {
            message->done = true;
            give_up = true;
          }
        }
        if (give_up) {
          ++stats_.lost_messages;
          SB_LOG(kDebug) << "bus: gave up on " << message->topic_path << " "
                         << message->from << "->" << message->to << " after "
                         << message->sends << " sends";
          return;
        }
        ++stats_.retransmits;
        reliable_attempt(*simp, *cfg, message);
      });
  {
    const swb::MutexLock lock{reliable_mutex_};
    message->retry = retry;
  }
}

void MessageBus::abandon_retransmits_to(SiteId site) {
  abandon_retransmits_to(site, "");
}

void MessageBus::abandon_retransmits_to(SiteId site,
                                        const std::string& topic_prefix) {
  std::uint64_t abandoned = 0;
  {
    const swb::MutexLock lock{reliable_mutex_};
    for (const std::shared_ptr<ReliableMessage>& message : reliable_) {
      if (message->done || message->to != site) continue;
      if (!topic_prefix.empty() &&
          !message->topic_path.starts_with(topic_prefix)) {
        continue;
      }
      message->done = true;
      ++abandoned;
      // Cancel the retry timer instead of letting it fire as a no-op: a
      // non-done entry always has one pending (see reliable_attempt), and
      // a crashed site can strand a window's worth of copies — leaving
      // their timers live kept the entries pinned until ack_timeout and
      // made pending_events() overcount.  Any wire copy already in flight
      // just arrives unacked.
      if (message->retry.valid() && message->sim != nullptr) {
        message->sim->cancel(message->retry);
        message->retry = sim::EventHandle{};
      }
      SB_LOG(kDebug) << "bus: abandoning " << message->topic_path << " "
                     << message->from << "->" << message->to
                     << " (receiver crashed)";
    }
  }
  stats_.abandoned_retransmits += abandoned;
}

std::size_t MessageBus::reliable_in_flight() const {
  const swb::MutexLock lock{reliable_mutex_};
  std::size_t in_flight = 0;
  for (const std::shared_ptr<ReliableMessage>& message : reliable_) {
    if (!message->done) ++in_flight;
  }
  return in_flight;
}

void MessageBus::wide_area_send(sim::Simulator& sim, const BusConfig& config,
                                ProxyEgress& egress, SiteId from, SiteId to,
                                const std::string& topic_path,
                                std::function<void()> deliver) {
  if (!config.reliable_delivery || transient_topic(config, topic_path)) {
    wire_copy(sim, config, egress, from, to, topic_path, deliver);
    return;
  }
  auto message = std::make_shared<ReliableMessage>();
  message->from = from;
  message->to = to;
  message->topic_path = topic_path;
  message->deliver = std::move(deliver);
  message->egress = &egress;
  message->sim = &sim;
  {
    const swb::MutexLock lock{reliable_mutex_};
    // Reap finished copies (acked / given up / abandoned) so bookkeeping
    // is bounded by the copies actually outstanding, not lifetime traffic.
    std::erase_if(reliable_, [](const std::shared_ptr<ReliableMessage>& m) {
      return m->done;
    });
    reliable_.push_back(message);
  }
  reliable_attempt(sim, config, message);
}

// ------------------------------------------------------------------ ProxyBus

ProxyBus::ProxyBus(sim::Simulator& sim, BusConfig config)
    : sim_{sim}, config_{std::move(config)} {
  SWB_CHECK(config_.site_count > 0);
  SWB_CHECK(config_.inter_site_delay);
  proxies_.resize(config_.site_count);
  for (SiteProxy& proxy : proxies_) {
    proxy.egress = std::make_unique<ProxyEgress>(sim_, config_);
  }
}

void ProxyBus::subscribe(SiteId subscriber_site, const Topic& topic,
                         SubscriberCallback callback) {
  SWB_CHECK(subscriber_site.value() < proxies_.size());
  SWB_CHECK(topic.publisher_site.value() < proxies_.size());
  SiteProxy& publisher_proxy = proxies_[topic.publisher_site.value()];
  // Filter at the publisher's proxy: remember the subscriber *site*.
  auto& sites = publisher_proxy.filters[topic.path];
  if (std::find(sites.begin(), sites.end(), subscriber_site) == sites.end()) {
    sites.push_back(subscriber_site);
  }
  // Local fan-out at the subscriber's proxy.
  SubscriberCallback stored = callback;   // copy for retained replay
  proxies_[subscriber_site.value()].locals[topic.path].push_back(
      LocalSubscriber{std::move(callback)});

  // Replay retained state to the late subscriber only.
  if (config_.retain_messages) {
    const auto it = publisher_proxy.retained.find(topic.path);
    if (it == publisher_proxy.retained.end()) return;
    for (const std::string& payload : it->second) {
      Message message{topic.path, payload, sim_.now()};
      auto deliver = [this, stored, message] {
        ++stats_.local_deliveries;
        stats_.delivery_latency_ms.add(
            sim::to_ms(sim_.now() - message.published_at));
        stored(message);
      };
      if (subscriber_site == topic.publisher_site) {
        sim_.schedule(config_.local_delivery_delay, std::move(deliver));
      } else {
        wide_area_send(sim_, config_, *publisher_proxy.egress,
                       topic.publisher_site, subscriber_site, topic.path,
                       std::move(deliver));
      }
    }
  }
}

void ProxyBus::publish(const Topic& topic, std::string payload) {
  ++stats_.published;
  const SiteId origin = topic.publisher_site;
  SiteProxy& proxy = proxies_[origin.value()];
  if (config_.retain_messages && !transient_topic(config_, topic.path)) {
    auto& payloads = proxy.retained[topic.path];
    if (std::find(payloads.begin(), payloads.end(), payload) ==
        payloads.end()) {
      payloads.push_back(payload);
    }
  }
  Message message{topic.path, std::move(payload), sim_.now()};

  const auto it = proxy.filters.find(topic.path);
  if (it == proxy.filters.end()) return;   // nobody anywhere subscribed
  for (const SiteId site : it->second) {
    if (site == origin) {
      // Same-site subscriber: local queue only.
      sim_.schedule(config_.local_delivery_delay,
                    [this, site, message] { deliver_locally(site, message); });
      continue;
    }
    // One wide-area copy per subscribed *site*, whatever the number of
    // subscribers there.
    wide_area_send(sim_, config_, *proxy.egress, origin, site, topic.path,
                   [this, site, message] { deliver_locally(site, message); });
  }
}

void ProxyBus::deliver_locally(SiteId site, const Message& message) {
  const auto it = proxies_[site.value()].locals.find(message.topic_path);
  if (it == proxies_[site.value()].locals.end()) return;
  for (const LocalSubscriber& sub : it->second) {
    ++stats_.local_deliveries;
    stats_.delivery_latency_ms.add(
        sim::to_ms(sim_.now() - message.published_at));
    sub.callback(message);
  }
}

// --------------------------------------------------------------- FullMeshBus

FullMeshBus::FullMeshBus(sim::Simulator& sim, BusConfig config)
    : sim_{sim}, config_{std::move(config)} {
  SWB_CHECK(config_.site_count > 0);
  SWB_CHECK(config_.inter_site_delay);
  egress_.resize(config_.site_count);
  for (auto& egress : egress_) {
    egress = std::make_unique<ProxyEgress>(sim_, config_);
  }
}

void FullMeshBus::subscribe(SiteId subscriber_site, const Topic& topic,
                            SubscriberCallback callback) {
  SubscriberCallback stored = callback;   // copy for retained replay
  subscribers_[topic.path].push_back(
      Subscriber{subscriber_site, std::move(callback)});
  if (config_.retain_messages) {
    const auto it = retained_.find(topic.path);
    if (it == retained_.end()) return;
    const SiteId origin = topic.publisher_site;
    for (const std::string& payload : it->second) {
      Message message{topic.path, payload, sim_.now()};
      auto deliver = [this, stored, message] {
        ++stats_.local_deliveries;
        stats_.delivery_latency_ms.add(
            sim::to_ms(sim_.now() - message.published_at));
        stored(message);
      };
      if (subscriber_site == origin) {
        sim_.schedule(config_.local_delivery_delay, std::move(deliver));
      } else {
        wide_area_send(sim_, config_, *egress_[origin.value()], origin,
                       subscriber_site, topic.path, std::move(deliver));
      }
    }
  }
}

void FullMeshBus::publish(const Topic& topic, std::string payload) {
  ++stats_.published;
  const SiteId origin = topic.publisher_site;
  if (config_.retain_messages && !transient_topic(config_, topic.path)) {
    auto& payloads = retained_[topic.path];
    if (std::find(payloads.begin(), payloads.end(), payload) ==
        payloads.end()) {
      payloads.push_back(payload);
    }
  }
  const auto it = subscribers_.find(topic.path);
  if (it == subscribers_.end()) return;
  Message message{topic.path, std::move(payload), sim_.now()};

  // A separate copy per *subscriber*: this is what overloads the
  // publisher's egress under fan-out.
  for (const Subscriber& sub : it->second) {
    auto deliver = [this, callback = sub.callback, message] {
      ++stats_.local_deliveries;
      stats_.delivery_latency_ms.add(
          sim::to_ms(sim_.now() - message.published_at));
      callback(message);
    };
    if (sub.site == origin) {
      sim_.schedule(config_.local_delivery_delay, std::move(deliver));
      continue;
    }
    wide_area_send(sim_, config_, *egress_[origin.value()], origin, sub.site,
                   topic.path, std::move(deliver));
  }
}

}  // namespace switchboard::bus
