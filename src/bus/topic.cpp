#include "bus/topic.hpp"

namespace switchboard::bus {
namespace {

std::string prefix(ChainId chain, std::uint32_t egress_label, VnfId vnf) {
  return "/c" + std::to_string(chain.value()) + "/e" +
         std::to_string(egress_label) + "/vnf_" + std::to_string(vnf.value());
}

}  // namespace

Topic instances_topic(ChainId chain, std::uint32_t egress_label, VnfId vnf,
                      SiteId site) {
  return Topic{prefix(chain, egress_label, vnf) + "/site_" +
                   std::to_string(site.value()) + "_instances",
               site};
}

Topic forwarders_topic(ChainId chain, std::uint32_t egress_label, VnfId vnf,
                       SiteId site) {
  return Topic{prefix(chain, egress_label, vnf) + "/site_" +
                   std::to_string(site.value()) + "_forwarders",
               site};
}

Topic chain_routes_topic(ChainId chain, SiteId controller_site) {
  return Topic{"/chains/" + std::to_string(chain.value()) + "/routes",
               controller_site};
}

Topic health_topic(SiteId site) {
  return Topic{"/health/site_" + std::to_string(site.value()), site};
}

Topic anycast_topic(SiteId from, SiteId to) {
  return Topic{"/health/anycast/" + std::to_string(from.value()) + "_" +
                   std::to_string(to.value()),
               from};
}

Topic replication_stream_topic(std::uint32_t from_replica,
                               std::uint32_t to_replica,
                               SiteId publisher_site) {
  return Topic{"/ctl/repl/" + std::to_string(from_replica) + "_" +
                   std::to_string(to_replica),
               publisher_site};
}

Topic replication_ack_topic(std::uint32_t from_replica,
                            std::uint32_t to_replica, SiteId publisher_site) {
  return Topic{"/ctl/repl/ack/" + std::to_string(from_replica) + "_" +
                   std::to_string(to_replica),
               publisher_site};
}

Topic replica_health_topic(std::uint32_t replica, SiteId publisher_site) {
  return Topic{"/health/ctl/replica_" + std::to_string(replica),
               publisher_site};
}

}  // namespace switchboard::bus
