// The global message bus (Section 6) and its full-mesh baseline (Fig. 9).
//
// Switchboard topology (ProxyBus): a message-queuing proxy at every site.
// Publishers publish to their own site's proxy; subscription filters are
// installed at the *publisher's* proxy (the publisher site is named in the
// topic).  A site with no subscribers for a topic receives nothing; a site
// with any subscribers receives exactly one copy over the shared
// inter-proxy connection, and its proxy fans out locally.
//
// Baseline (FullMeshBus): the publisher sends a separate wide-area copy to
// every individual subscriber — the per-subscriber copies queue at the
// publisher's egress, which is what blows up latency and drops messages
// under load in Fig. 9.
//
// Both run on the discrete-event simulator; the egress of each proxy is a
// finite-rate, finite-buffer queue.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/topic.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace switchboard::bus {

struct Message {
  std::string topic_path;
  std::string payload;
  sim::SimTime published_at{0};
};

using SubscriberCallback = std::function<void(const Message&)>;

struct BusConfig {
  std::size_t site_count{0};
  /// One-way message propagation delay between two sites.
  std::function<sim::Duration(SiteId, SiteId)> inter_site_delay;
  /// Serialization/processing time per wide-area message at a proxy egress.
  sim::Duration per_message_service{sim::microseconds(100)};
  /// Egress buffer (messages); sends beyond it are dropped.
  std::size_t egress_buffer{1024};
  /// Delay of a local (same-site) delivery.
  sim::Duration local_delivery_delay{sim::microseconds(50)};
  /// Retain published control state per topic and replay it to late
  /// subscribers (control-plane topics carry configuration state, so a
  /// subscriber arriving after the publish must still converge — the
  /// prototype's bus replicates state the same way, Section 6).
  bool retain_messages{true};
};

struct BusStats {
  std::uint64_t published{0};
  std::uint64_t wide_area_messages{0};
  std::uint64_t local_deliveries{0};
  std::uint64_t drops{0};
  /// Publish-to-delivery latency (ms) over all deliveries.
  SampleStats delivery_latency_ms;
};

/// Common interface so experiments can swap topologies.
class MessageBus {
 public:
  virtual ~MessageBus() = default;

  /// Subscribes a callback running at `subscriber_site`.
  virtual void subscribe(SiteId subscriber_site, const Topic& topic,
                         SubscriberCallback callback) = 0;

  /// Publishes from the topic's publisher site.
  virtual void publish(const Topic& topic, std::string payload) = 0;

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] BusStats& stats_mutable() { return stats_; }

 protected:
  BusStats stats_;
};

/// Shared egress-queue model for a site proxy.
class ProxyEgress {
 public:
  ProxyEgress(sim::Simulator& sim, const BusConfig& config)
      : sim_{sim}, config_{config} {}

  /// Attempts to enqueue a wide-area send; returns false on buffer
  /// overflow.  On success `deliver` runs at the arrival time at `to`.
  bool send(SiteId from, SiteId to, std::function<void()> deliver);

 private:
  sim::Simulator& sim_;
  const BusConfig& config_;
  sim::SimTime egress_free_at_{0};
};

class ProxyBus final : public MessageBus {
 public:
  ProxyBus(sim::Simulator& sim, BusConfig config);

  void subscribe(SiteId subscriber_site, const Topic& topic,
                 SubscriberCallback callback) override;
  void publish(const Topic& topic, std::string payload) override;

 private:
  struct LocalSubscriber {
    SubscriberCallback callback;
  };
  struct SiteProxy {
    /// Subscription filters installed at this (publisher-side) proxy:
    /// topic path -> subscriber sites (deduplicated).
    std::unordered_map<std::string, std::vector<SiteId>> filters;
    /// Local fan-out at this (subscriber-side) proxy.
    std::unordered_map<std::string, std::vector<LocalSubscriber>> locals;
    /// Retained state per topic (distinct payloads, publish order).
    std::unordered_map<std::string, std::vector<std::string>> retained;
    std::unique_ptr<ProxyEgress> egress;
  };

  void deliver_locally(SiteId site, const Message& message);

  sim::Simulator& sim_;
  BusConfig config_;
  std::vector<SiteProxy> proxies_;
};

class FullMeshBus final : public MessageBus {
 public:
  FullMeshBus(sim::Simulator& sim, BusConfig config);

  void subscribe(SiteId subscriber_site, const Topic& topic,
                 SubscriberCallback callback) override;
  void publish(const Topic& topic, std::string payload) override;

 private:
  struct Subscriber {
    SiteId site;
    SubscriberCallback callback;
  };

  sim::Simulator& sim_;
  BusConfig config_;
  std::unordered_map<std::string, std::vector<Subscriber>> subscribers_;
  std::unordered_map<std::string, std::vector<std::string>> retained_;
  std::vector<std::unique_ptr<ProxyEgress>> egress_;   // per publisher site
};

}  // namespace switchboard::bus
