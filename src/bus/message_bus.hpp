// The global message bus (Section 6) and its full-mesh baseline (Fig. 9).
//
// Switchboard topology (ProxyBus): a message-queuing proxy at every site.
// Publishers publish to their own site's proxy; subscription filters are
// installed at the *publisher's* proxy (the publisher site is named in the
// topic).  A site with no subscribers for a topic receives nothing; a site
// with any subscribers receives exactly one copy over the shared
// inter-proxy connection, and its proxy fans out locally.
//
// Baseline (FullMeshBus): the publisher sends a separate wide-area copy to
// every individual subscriber — the per-subscriber copies queue at the
// publisher's egress, which is what blows up latency and drops messages
// under load in Fig. 9.
//
// Both run on the discrete-event simulator; the egress of each proxy is a
// finite-rate, finite-buffer queue.
//
// Fault tolerance: every wide-area copy passes through an optional
// `fault_hook` (a sim::FaultInjector adapter) that can drop, duplicate, or
// delay it in flight.  With `reliable_delivery` on, each wide-area copy is
// acknowledged by the receiving side; unacknowledged copies retransmit
// with a bounded retry budget (at-least-once, duplicates suppressed at the
// receiver).  Both features default off/null, leaving the Fig. 9 behavior
// bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/topic.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace switchboard::bus {

struct Message {
  std::string topic_path;
  std::string payload;
  sim::SimTime published_at{0};
};

using SubscriberCallback = std::function<void(const Message&)>;

struct BusConfig {
  std::size_t site_count{0};
  /// One-way message propagation delay between two sites.
  std::function<sim::Duration(SiteId, SiteId)> inter_site_delay;
  /// Serialization/processing time per wide-area message at a proxy egress.
  sim::Duration per_message_service{sim::microseconds(100)};
  /// Egress buffer (messages); sends beyond it are dropped.
  std::size_t egress_buffer{1024};
  /// Delay of a local (same-site) delivery.
  sim::Duration local_delivery_delay{sim::microseconds(50)};
  /// Retain published control state per topic and replay it to late
  /// subscribers (control-plane topics carry configuration state, so a
  /// subscriber arriving after the publish must still converge — the
  /// prototype's bus replicates state the same way, Section 6).
  bool retain_messages{true};
  /// Topics with this path prefix are transient telemetry (heartbeats):
  /// never retained and never retransmitted, whatever the other knobs say.
  std::string transient_prefix{"/health/"};
  /// Per-wide-area-copy fault verdict (wired to sim::FaultInjector::
  /// on_message by the deployment).  Null means no injected faults.
  std::function<sim::MessageVerdict(SiteId from, SiteId to,
                                    const std::string& topic_path)>
      fault_hook;
  /// Acknowledged delivery for control topics: the receiving side acks
  /// each wide-area copy (a tiny control frame that bypasses the egress
  /// queue but is still subject to the fault hook, so partitions starve
  /// acks too); unacked copies retransmit after `ack_timeout`, at most
  /// `max_retransmits` times, then count as lost.  Off by default.
  bool reliable_delivery{false};
  sim::Duration ack_timeout{sim::from_ms(250.0)};
  std::size_t max_retransmits{3};
};

struct BusStats {
  std::uint64_t published{0};
  std::uint64_t wide_area_messages{0};
  std::uint64_t local_deliveries{0};
  /// Egress-buffer overflow drops (also broken out per topic below).
  std::uint64_t drops{0};
  /// Ordered map so per-topic accounting iterates deterministically.
  std::map<std::string, std::uint64_t> drops_by_topic;
  // Injected in-flight faults (the copy consumed an egress slot but was
  // dropped / duplicated / delayed by the fault hook).
  std::uint64_t faults_dropped{0};
  std::uint64_t faults_duplicated{0};
  std::uint64_t faults_delayed{0};
  // Reliable-delivery accounting.
  std::uint64_t acks{0};
  std::uint64_t retransmits{0};
  /// Reliable copies abandoned after the retry budget.
  std::uint64_t lost_messages{0};
  /// Reliable copies whose retransmits were cancelled because the
  /// receiving site crashed (abandon_retransmits_to).
  std::uint64_t abandoned_retransmits{0};
  /// Redundant deliveries suppressed at the receiver (at-least-once).
  std::uint64_t duplicate_deliveries{0};
  /// Publish-to-delivery latency (ms) over all deliveries.
  SampleStats delivery_latency_ms;
};

/// Shared egress-queue model for a site proxy.
class ProxyEgress {
 public:
  ProxyEgress(sim::Simulator& sim, const BusConfig& config)
      : sim_{sim}, config_{config} {}

  /// Attempts to enqueue a wide-area send; returns false on buffer
  /// overflow.  On success `deliver` runs at the arrival time at `to`.
  bool send(SiteId from, SiteId to, std::function<void()> deliver);

 private:
  sim::Simulator& sim_;
  const BusConfig& config_;
  sim::SimTime egress_free_at_{0};
};

/// Common interface so experiments can swap topologies.
class MessageBus {
 public:
  virtual ~MessageBus() = default;

  /// Subscribes a callback running at `subscriber_site`.
  virtual void subscribe(SiteId subscriber_site, const Topic& topic,
                         SubscriberCallback callback) = 0;

  /// Publishes from the topic's publisher site.
  virtual void publish(const Topic& topic, std::string payload) = 0;

  [[nodiscard]] const BusStats& stats() const { return stats_; }
  [[nodiscard]] BusStats& stats_mutable() { return stats_; }

  /// Cancels the retransmit timers of every unacknowledged reliable copy
  /// addressed to `site` and counts each as abandoned.  Called when the
  /// site *crashes* (fault injection): its proxy lost the subscription
  /// state that would consume the copy, so retrying against it is wasted
  /// wire traffic — without this, every pending copy burns its full retry
  /// budget against a dead site.  Not for mere suspicion: a partitioned
  /// site still holds its state, and retransmits are what re-converge it
  /// when the partition heals.
  void abandon_retransmits_to(SiteId site);

  /// Prefix-scoped variant for crashed *controller* targets: writes off
  /// only the pending reliable copies toward `site` whose topic path
  /// starts with `topic_prefix` (e.g. the replication stream toward a
  /// dead controller replica).  The rest of the site's traffic — routes,
  /// instance announcements — keeps its retry budget, because the site
  /// itself is still alive.  An empty prefix matches everything
  /// (equivalent to the single-argument overload).
  void abandon_retransmits_to(SiteId site, const std::string& topic_prefix);

  /// Reliable copies still awaiting an ack, a retry verdict, or reaping
  /// (tests: bounds retransmit-state growth).
  [[nodiscard]] std::size_t reliable_in_flight() const;

  /// Reliable entries currently tracked, finished or not (tests: proves
  /// finished entries are reaped instead of accumulating forever).
  [[nodiscard]] std::size_t reliable_tracked() const {
    const swb::MutexLock lock{reliable_mutex_};
    return reliable_.size();
  }

 protected:
  /// One wide-area copy through `egress`, honoring the fault hook, drop
  /// accounting, and (for non-transient topics) reliable delivery.
  /// `deliver` runs at the receiving site on arrival.
  void wide_area_send(sim::Simulator& sim, const BusConfig& config,
                      ProxyEgress& egress, SiteId from, SiteId to,
                      const std::string& topic_path,
                      std::function<void()> deliver);

  [[nodiscard]] static bool transient_topic(const BusConfig& config,
                                            const std::string& topic_path) {
    return !config.transient_prefix.empty() &&
           topic_path.starts_with(config.transient_prefix);
  }

 private:
  /// In-flight state of one reliable wide-area copy.  Entries are shared
  /// with the scheduled closures (in-flight wire copies and ack/retry
  /// timers may outlive the bus-side bookkeeping); the bus reaps finished
  /// entries on the next wide_area_send instead of accumulating every
  /// copy ever sent.
  ///
  /// Guard: the mutable fields (delivered/acked/done/sends/retry) are
  /// protected by the enclosing bus's reliable_mutex_ — the analysis
  /// cannot express a guard that crosses from an element to its owning
  /// container, so this part of the contract is enforced by the lint
  /// guard rule + review rather than the compiler.  Delivery and
  /// subscriber callbacks are NEVER invoked under the lock (they publish
  /// back into the bus).
  struct ReliableMessage {
    SiteId from;
    SiteId to;
    std::string topic_path;
    std::function<void()> deliver;
    ProxyEgress* egress{nullptr};
    /// The simulator the retry timer lives on (for cancelling it when the
    /// copy is abandoned).
    sim::Simulator* sim{nullptr};
    bool delivered{false};
    bool acked{false};
    /// Terminal: acked, gave up, or abandoned — eligible for reaping.
    bool done{false};
    std::size_t sends{0};
    sim::EventHandle retry{};
  };

  /// Egress-overflow accounting: total, per-topic, and a debug log line
  /// (previously these drops were silent).
  void count_egress_drop(SiteId from, SiteId to,
                         const std::string& topic_path);
  /// Sends one physical wire copy with the fault hook applied; returns
  /// true when the egress accepted (at least) one copy.
  bool wire_copy(sim::Simulator& sim, const BusConfig& config,
                 ProxyEgress& egress, SiteId from, SiteId to,
                 const std::string& topic_path,
                 const std::function<void()>& arrival);
  /// One (re)transmission attempt of a reliable copy + its retry timer.
  void reliable_attempt(sim::Simulator& sim, const BusConfig& config,
                        const std::shared_ptr<ReliableMessage>& message);

  /// Leaf lock for the reliable-delivery tracker: no other lock is ever
  /// taken while it is held, and no user/delivery callback runs under it.
  mutable swb::Mutex reliable_mutex_;
  std::vector<std::shared_ptr<ReliableMessage>> reliable_
      SWB_GUARDED_BY(reliable_mutex_);

 protected:
  /// Simulator-thread-owned (every mutation happens inside an event
  /// callback); deliberately unguarded until the control plane itself
  /// goes multi-threaded.
  BusStats stats_;
};

class ProxyBus final : public MessageBus {
 public:
  ProxyBus(sim::Simulator& sim, BusConfig config);

  void subscribe(SiteId subscriber_site, const Topic& topic,
                 SubscriberCallback callback) override;
  void publish(const Topic& topic, std::string payload) override;

 private:
  struct LocalSubscriber {
    SubscriberCallback callback;
  };
  struct SiteProxy {
    /// Subscription filters installed at this (publisher-side) proxy:
    /// topic path -> subscriber sites (deduplicated).
    std::unordered_map<std::string, std::vector<SiteId>> filters;
    /// Local fan-out at this (subscriber-side) proxy.
    std::unordered_map<std::string, std::vector<LocalSubscriber>> locals;
    /// Retained state per topic (distinct payloads, publish order).
    std::unordered_map<std::string, std::vector<std::string>> retained;
    std::unique_ptr<ProxyEgress> egress;
  };

  void deliver_locally(SiteId site, const Message& message);

  sim::Simulator& sim_;
  BusConfig config_;
  std::vector<SiteProxy> proxies_;
};

class FullMeshBus final : public MessageBus {
 public:
  FullMeshBus(sim::Simulator& sim, BusConfig config);

  void subscribe(SiteId subscriber_site, const Topic& topic,
                 SubscriberCallback callback) override;
  void publish(const Topic& topic, std::string payload) override;

 private:
  struct Subscriber {
    SiteId site;
    SubscriberCallback callback;
  };

  sim::Simulator& sim_;
  BusConfig config_;
  std::unordered_map<std::string, std::vector<Subscriber>> subscribers_;
  std::unordered_map<std::string, std::vector<std::string>> retained_;
  std::vector<std::unique_ptr<ProxyEgress>> egress_;   // per publisher site
};

}  // namespace switchboard::bus
