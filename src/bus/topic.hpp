// Topic naming for the global message bus (Section 6).
//
// Topics follow the paper's convention, e.g.
//     /c1/e3/vnf_O/site_B_forwarders
// (chain c1, egress site e3, VNF O, the forwarders at site B).  The
// *publisher's site* is part of the topic — that is what lets the bus
// install subscription filters at the publisher-side proxy.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace switchboard::bus {

struct Topic {
  std::string path;
  /// The site whose elements publish on this topic; subscription filters
  /// install at this site's proxy.
  SiteId publisher_site;

  friend bool operator==(const Topic&, const Topic&) = default;
};

/// "/c<chain>/e<egress>/vnf_<vnf>/site_<site>_instances" — the VNF's
/// instances (IPs + load-balancing weights) at a site, for one chain route.
[[nodiscard]] Topic instances_topic(ChainId chain, std::uint32_t egress_label,
                                    VnfId vnf, SiteId site);

/// "/c<chain>/e<egress>/vnf_<vnf>/site_<site>_forwarders" — the forwarders
/// fronting the VNF's instances at a site.
[[nodiscard]] Topic forwarders_topic(ChainId chain, std::uint32_t egress_label,
                                     VnfId vnf, SiteId site);

/// "/chains/<chain>/routes" — wide-area routes + labels of a chain,
/// published by Global Switchboard (hosted at `controller_site`) and
/// replicated to Local Switchboards at every site (Section 6, edge-site
/// extension).
[[nodiscard]] Topic chain_routes_topic(ChainId chain, SiteId controller_site);

/// "/health/site_<s>" — liveness heartbeats of a site's Local Switchboard
/// (plus its down-element list), consumed by the failure detector.  The
/// "/health/" prefix marks the topic transient: never retained, never
/// retransmitted (see BusConfig::transient_prefix).
[[nodiscard]] Topic health_topic(SiteId site);

/// "/health/anycast/<from>_<to>" — one directed flooding edge of the
/// SB-ANYCAST-D link-state protocol (DESIGN.md §17): site `from` floods
/// its own and relayed announcements to site `to`, which alone subscribes.
/// Deliberately a per-pair topic (not one broadcast topic): each copy is a
/// distinct (from, to) wide-area send, so site-pair partitions cut exactly
/// the flooding edges they would cut in a real network and announcements
/// still reach a partitioned-from-the-origin site through relays.  The
/// "/health/" prefix keeps announcements transient soft state: never
/// retained, never retransmitted — staleness is handled by aging, not by
/// the bus.
[[nodiscard]] Topic anycast_topic(SiteId from, SiteId to);

/// "/ctl/repl/<from>_<to>" — the directed journal-replication stream from
/// controller replica `from` to replica `to` (DESIGN.md §18).  NOT under
/// "/health/": replication frames are control state, so they ride the
/// reliable bus (acked, retransmitted) and survive transient loss.
/// `publisher_site` is the site hosting replica `from`.
[[nodiscard]] Topic replication_stream_topic(std::uint32_t from_replica,
                                             std::uint32_t to_replica,
                                             SiteId publisher_site);

/// "/ctl/repl/ack/<from>_<to>" — cumulative durable-apply acknowledgements
/// from replica `from` back to replica `to` (the quorum barrier's input).
[[nodiscard]] Topic replication_ack_topic(std::uint32_t from_replica,
                                          std::uint32_t to_replica,
                                          SiteId publisher_site);

/// "/health/ctl/replica_<r>" — liveness heartbeats of controller replica
/// `r`, watched by every peer replica's failure detector.  Transient like
/// site heartbeats: never retained, never retransmitted.
[[nodiscard]] Topic replica_health_topic(std::uint32_t replica,
                                         SiteId publisher_site);

}  // namespace switchboard::bus
