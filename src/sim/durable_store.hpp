// sim::DurableStore — an in-simulation model of stable storage.
//
// A named-blob byte store that survives crash-with-amnesia faults: when
// the FaultInjector wipes a controller's volatile state, anything the
// controller wrote here is still readable after restart.  Keeping the
// "disk" inside the simulation (instead of touching the host filesystem)
// keeps runs deterministic and lets tests inspect exactly what was
// persisted at crash time.
//
// The store is intentionally dumb: append/overwrite/read whole blobs.
// Record framing, snapshots, and replay live one layer up in
// control::StateJournal.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.hpp"

namespace switchboard::sim {

class DurableStore {
 public:
  /// Appends `bytes` to the named blob (creating it if absent).
  void append(const std::string& name, const std::string& bytes);

  /// Replaces the named blob's contents.
  void write(const std::string& name, const std::string& bytes);

  /// Returns a copy of the blob's contents, or "" when it does not exist.
  /// (By value: a reference would let guarded bytes escape the lock and
  /// dangle across a concurrent write.)
  [[nodiscard]] std::string read(const std::string& name) const;

  [[nodiscard]] bool exists(const std::string& name) const;
  void erase(const std::string& name);

  [[nodiscard]] std::uint64_t appends() const {
    const swb::MutexLock lock{mutex_};
    return appends_;
  }
  [[nodiscard]] std::uint64_t writes() const {
    const swb::MutexLock lock{mutex_};
    return writes_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const {
    const swb::MutexLock lock{mutex_};
    return bytes_written_;
  }
  [[nodiscard]] std::size_t blob_count() const {
    const swb::MutexLock lock{mutex_};
    return blobs_.size();
  }

  /// Audits internal bookkeeping (counter monotonicity vs stored bytes).
  void check_invariants() const;

 private:
  /// Leaf lock: the store calls nothing while holding it.  Lock order:
  /// a StateJournal holding its own mutex_ may take this one, never the
  /// reverse (the store knows nothing about journals).
  mutable swb::Mutex mutex_;
  std::map<std::string, std::string> blobs_ SWB_GUARDED_BY(mutex_);
  std::uint64_t appends_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t writes_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t bytes_written_ SWB_GUARDED_BY(mutex_){0};
};

}  // namespace switchboard::sim
