// sim::ChaosSchedule — a seeded plan of fault interleavings for soak runs.
//
// Draws a randomized sequence of outages (target crashes and site-pair
// partitions) from its own Rng and scripts them onto a FaultInjector
// before the run starts: event times, outage durations, fault kinds, and
// victims are all pre-drawn in one pass at arm() time, so the plan is a
// pure function of the seed and config — re-running the same simulation
// with the same seed replays byte-identical chaos.  Outages never extend
// past `horizon`, which gives every soak a guaranteed heal-and-settle
// tail for convergence checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace switchboard::sim {

struct ChaosConfig {
  /// Window in which outages may start (events are drawn in [start, horizon)
  /// and every outage ends strictly before `horizon`).
  SimTime start{0};
  SimTime horizon{0};
  /// Mean gap between consecutive outage starts (exponential draw).
  Duration mean_gap{0};
  /// Outage length is uniform in [min_outage, max_outage].
  Duration min_outage{0};
  Duration max_outage{0};
  /// Relative odds of each fault kind (either may be zero, not both).
  double crash_weight{1.0};
  double partition_weight{1.0};
  /// Victim pools: registered FaultInjector target names, and sites that
  /// may be partitioned pairwise.
  std::vector<std::string> crash_targets;
  std::vector<SiteId> partition_sites;
  /// Clamp every outage to heal strictly before `horizon` (the classic
  /// guaranteed fault-free tail).  With clamping off, outages keep their
  /// drawn duration and may still be active at the horizon — pair with
  /// heal_all_at_horizon so soaks still end converged.
  bool clamp_outages{true};
  /// Schedule a heal_all() teardown at `horizon`: every outage this
  /// schedule caused and that is still active is healed in one step, so
  /// soaks can assert post-chaos convergence without hand-listing active
  /// outages.  A no-op when everything already healed (clamped plans).
  bool heal_all_at_horizon{true};
};

/// One pre-drawn outage, for inspection and plan determinism checks.
struct ChaosEvent {
  SimTime at{0};
  Duration outage{0};
  std::string kind;     // crash|partition
  std::string subject;  // target name, or "a<->b" for partitions
};

class ChaosSchedule {
 public:
  ChaosSchedule(Simulator& sim, FaultInjector& faults, ChaosConfig config,
                std::uint64_t seed);

  /// Draws the full plan and scripts it onto the injector/simulator.
  /// Call once, before running the simulation window.
  void arm();

  [[nodiscard]] const std::vector<ChaosEvent>& plan() const { return plan_; }
  /// "t=<us> <kind>+<outage_us> <subject>\n" lines; the seed-determinism
  /// artifact for the plan itself (the injector trace covers execution).
  [[nodiscard]] std::string plan_string() const;
  [[nodiscard]] std::size_t crashes_planned() const { return crashes_; }
  [[nodiscard]] std::size_t partitions_planned() const { return partitions_; }

  /// End-of-run teardown: restores every target this schedule crashed and
  /// heals every partition it created, in plan order.  Idempotent (both
  /// primitives are), touches nothing the schedule did not cause, and is
  /// scheduled automatically at `horizon` when heal_all_at_horizon is set.
  void heal_all();

  /// Audits the plan: events ordered, inside the window, and (with
  /// clamping on) every outage healed before the horizon.
  void check_invariants() const;

 private:
  Simulator& sim_;
  FaultInjector& faults_;
  ChaosConfig config_;
  Rng rng_;
  std::vector<ChaosEvent> plan_;
  /// The schedule's own victims, in plan order — exactly what heal_all()
  /// may touch.
  std::vector<std::string> crash_victims_;
  std::vector<std::pair<SiteId, SiteId>> partition_victims_;
  std::size_t crashes_{0};
  std::size_t partitions_{0};
  bool armed_{false};
};

}  // namespace switchboard::sim
