#include "sim/parallel.hpp"

#include "common/check.hpp"

namespace switchboard::sim {

BarrierWorkerPool::BarrierWorkerPool(std::size_t worker_count) {
  SWB_CHECK(worker_count >= 1);
  threads_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

BarrierWorkerPool::~BarrierWorkerPool() {
  {
    const swb::MutexLock lock{mutex_};
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void BarrierWorkerPool::run_batch(const std::function<void(std::size_t)>& fn) {
  {
    const swb::MutexLock lock{mutex_};
    SWB_CHECK_EQ(remaining_, 0u) << "run_batch is not reentrant";
    batch_fn_ = &fn;
    remaining_ = threads_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();

  std::exception_ptr error;
  {
    const swb::MutexLock lock{mutex_};
    while (remaining_ != 0) done_cv_.wait(mutex_);
    batch_fn_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void BarrierWorkerPool::run_striped(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = worker_count();
  run_batch([&](std::size_t w) {
    for (std::size_t i = w; i < n; i += workers) fn(i);
  });
}

void BarrierWorkerPool::worker_loop(std::size_t index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      const swb::MutexLock lock{mutex_};
      while (!shutdown_ && generation_ == seen_generation) {
        start_cv_.wait(mutex_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
      fn = batch_fn_;
    }
    // The batch function runs outside the lock: batch_fn_ stays valid
    // until every worker decremented remaining_, which happens below.
    try {
      (*fn)(index);
    } catch (...) {
      const swb::MutexLock lock{mutex_};
      if (!first_error_) first_error_ = std::current_exception();
    }
    bool last = false;
    {
      const swb::MutexLock lock{mutex_};
      last = --remaining_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

}  // namespace switchboard::sim
