#include "sim/chaos_schedule.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace switchboard::sim {

ChaosSchedule::ChaosSchedule(Simulator& sim, FaultInjector& faults,
                             ChaosConfig config, std::uint64_t seed)
    : sim_{sim}, faults_{faults}, config_{std::move(config)}, rng_{seed} {}

void ChaosSchedule::arm() {
  SWB_CHECK(!armed_) << "chaos schedule armed twice";
  armed_ = true;
  SWB_CHECK(config_.horizon > config_.start);
  SWB_CHECK(config_.mean_gap > 0);
  SWB_CHECK(config_.min_outage > 0);
  SWB_CHECK_LE(config_.min_outage, config_.max_outage);
  const bool crashes_on =
      config_.crash_weight > 0.0 && !config_.crash_targets.empty();
  const bool partitions_on =
      config_.partition_weight > 0.0 && config_.partition_sites.size() >= 2;
  SWB_CHECK(crashes_on || partitions_on) << "chaos schedule with no victims";

  const std::vector<double> weights{crashes_on ? config_.crash_weight : 0.0,
                                    partitions_on ? config_.partition_weight
                                                  : 0.0};

  // Draw everything up front, in one fixed order per event, so the plan
  // depends only on (seed, config) — not on anything the simulation does.
  SimTime t = config_.start;
  for (;;) {
    t += std::max<Duration>(1, static_cast<Duration>(rng_.exponential(
                                   static_cast<double>(config_.mean_gap))));
    if (t >= config_.horizon) break;
    Duration outage = rng_.uniform_int(config_.min_outage, config_.max_outage);
    if (config_.clamp_outages) {
      // Clamp so the heal lands strictly before the horizon: the tail of
      // the run is always fault-free, which convergence checks rely on.
      outage = std::min<Duration>(outage, config_.horizon - t - 1);
    }
    if (outage <= 0) continue;

    ChaosEvent event;
    event.at = t;
    event.outage = outage;
    if (rng_.weighted_index(weights) == 0) {
      event.kind = "crash";
      event.subject = config_.crash_targets[rng_.uniform_int(
          std::size_t{0}, config_.crash_targets.size() - 1)];
      ++crashes_;
    } else {
      const std::size_t n = config_.partition_sites.size();
      const std::size_t i = rng_.uniform_int(std::size_t{0}, n - 1);
      std::size_t j = rng_.uniform_int(std::size_t{0}, n - 2);
      if (j >= i) ++j;
      const SiteId a = config_.partition_sites[i];
      const SiteId b = config_.partition_sites[j];
      event.kind = "partition";
      std::ostringstream subject;
      subject << a << "<->" << b;
      event.subject = subject.str();
      ++partitions_;
      partition_victims_.emplace_back(a, b);
      const SimTime heal_at = t + outage;
      sim_.schedule_at(t, [this, a, b] { faults_.partition_sites(a, b); });
      sim_.schedule_at(heal_at, [this, a, b] { faults_.heal_sites(a, b); });
    }
    if (event.kind == "crash") {
      // Targets must exist when the plan is armed; their *meaning* is
      // resolved when the fault fires (crash_at looks the name up then),
      // which is what lets alias targets like "controller:leader" pick
      // whoever holds the role at crash time.
      SWB_CHECK(faults_.has_target(event.subject))
          << "chaos crash target '" << event.subject << "' not registered";
      // crash/restore are idempotent, so overlapping outages of the same
      // target just extend nothing — the earlier restore wins.  That keeps
      // scripting simple and still deterministic.
      crash_victims_.push_back(event.subject);
      faults_.crash_at(t, event.subject);
      faults_.restore_at(t + event.outage, event.subject);
    }
    plan_.push_back(std::move(event));
  }
  if (config_.heal_all_at_horizon) {
    sim_.schedule_at(config_.horizon, [this] { heal_all(); });
  }
}

void ChaosSchedule::heal_all() {
  // Plan order, and only the schedule's own victims: a crash the *test*
  // injected deliberately stays crashed.  Restores/heals of already-healed
  // outages are idempotent no-ops that record nothing, so a fully-clamped
  // plan's trace is unchanged by the teardown.
  for (const std::string& target : crash_victims_) {
    faults_.restore(target);
  }
  for (const auto& [a, b] : partition_victims_) {
    faults_.heal_sites(a, b);
  }
}

std::string ChaosSchedule::plan_string() const {
  std::ostringstream out;
  for (const ChaosEvent& event : plan_) {
    out << "t=" << event.at << " " << event.kind << "+" << event.outage << " "
        << event.subject << "\n";
  }
  return out.str();
}

void ChaosSchedule::check_invariants() const {
  SimTime last = config_.start;
  for (const ChaosEvent& event : plan_) {
    SWB_CHECK(!event.kind.empty());
    SWB_CHECK_GE(event.at, last) << "chaos plan not time-ordered";
    if (config_.clamp_outages) {
      SWB_CHECK_LT(event.at + event.outage, config_.horizon)
          << "chaos outage outlives the horizon";
    }
    last = event.at;
  }
  SWB_CHECK_EQ(crashes_ + partitions_, plan_.size());
}

}  // namespace switchboard::sim
