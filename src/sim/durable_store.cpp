#include "sim/durable_store.hpp"

#include "common/check.hpp"

namespace switchboard::sim {

void DurableStore::append(const std::string& name, const std::string& bytes) {
  const swb::MutexLock lock{mutex_};
  blobs_[name] += bytes;
  ++appends_;
  bytes_written_ += bytes.size();
}

void DurableStore::write(const std::string& name, const std::string& bytes) {
  const swb::MutexLock lock{mutex_};
  blobs_[name] = bytes;
  ++writes_;
  bytes_written_ += bytes.size();
}

std::string DurableStore::read(const std::string& name) const {
  const swb::MutexLock lock{mutex_};
  const auto it = blobs_.find(name);
  return it == blobs_.end() ? std::string{} : it->second;
}

bool DurableStore::exists(const std::string& name) const {
  const swb::MutexLock lock{mutex_};
  return blobs_.find(name) != blobs_.end();
}

void DurableStore::erase(const std::string& name) {
  const swb::MutexLock lock{mutex_};
  blobs_.erase(name);
}

void DurableStore::check_invariants() const {
  const swb::MutexLock lock{mutex_};
  std::uint64_t stored = 0;
  for (const auto& [name, bytes] : blobs_) {
    SWB_CHECK(!name.empty()) << "unnamed durable blob";
    stored += bytes.size();
  }
  // Writes replace and erase discards, so live bytes never exceed the
  // total ever written.
  SWB_CHECK_LE(stored, bytes_written_) << "more bytes stored than written";
}

}  // namespace switchboard::sim
