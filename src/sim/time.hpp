// Simulated time.  All simulation timestamps are integer microseconds to
// keep event ordering exact (no floating-point tie ambiguity).
#pragma once

#include <cstdint>

namespace switchboard::sim {

/// Microseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, also in microseconds.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t us) { return us; }
constexpr Duration milliseconds(std::int64_t ms) { return ms * 1000; }
constexpr Duration seconds(std::int64_t s) { return s * 1'000'000; }

/// Converts a floating-point quantity of milliseconds to a Duration,
/// rounding to the nearest microsecond.
constexpr Duration from_ms(double ms) {
  return static_cast<Duration>(ms * 1000.0 + (ms >= 0 ? 0.5 : -0.5));
}

constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / 1'000'000.0;
}

}  // namespace switchboard::sim
