// Discrete-event simulation engine.
//
// A single-threaded event loop with a deterministic tie-break: events at the
// same timestamp fire in scheduling order.  All wide-area experiments
// (message bus, control plane, TCP model) run on this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace switchboard::sim {

/// Handle for cancelling a scheduled event.
struct EventHandle {
  std::uint64_t sequence{0};
  [[nodiscard]] bool valid() const { return sequence != 0; }
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after now (delay >= 0).
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedules `fn` at an absolute time (>= now).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Cancels a pending event.  Returns false if it already fired or was
  /// cancelled before.
  bool cancel(EventHandle handle);

  /// Runs until the event queue drains.  Returns the final time.
  SimTime run();

  /// Runs events with timestamp <= `deadline`; leaves later events queued
  /// and sets now() to `deadline` (or the last event time if queue drained).
  SimTime run_until(SimTime deadline);

  /// Executes at most one event.  Returns false if the queue is empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  /// Audits the engine (aborts via SWB_CHECK on violation): the earliest
  /// queued event is never in the past (time monotonicity — firing it
  /// could not rewind now()), sequence numbers stay below the allocator,
  /// and the lazy-cancellation set only shadows queued events.
  void check_invariants() const;

 private:
  void drop_cancelled_head();

  struct Event {
    SimTime when;
    std::uint64_t sequence;   // scheduling order; also the cancel key
    Callback fn;

    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return sequence > other.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_{0};
  std::uint64_t next_sequence_{1};
  std::uint64_t executed_{0};
  std::unordered_set<std::uint64_t> cancelled_;   // lazily-deleted events
};

}  // namespace switchboard::sim
