#include "sim/fault_injector.hpp"

#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::sim {

FaultInjector::FaultInjector(Simulator& sim, std::uint64_t seed)
    : sim_{sim}, rng_{seed} {}

FaultInjector::SitePair FaultInjector::canonical(SiteId a, SiteId b) {
  const std::uint32_t x = a.value();
  const std::uint32_t y = b.value();
  return x <= y ? SitePair{x, y} : SitePair{y, x};
}

void FaultInjector::record(const std::string& kind, std::string subject) {
  trace_.push_back(FaultEvent{sim_.now(), kind, std::move(subject)});
}

MessageVerdict FaultInjector::on_message(SiteId from, SiteId to,
                                         const std::string& topic) {
  const swb::MutexLock lock{mutex_};
  MessageVerdict verdict;
  if (partitions_.empty() && !message_faults_.enabled()) return verdict;

  std::ostringstream subject;
  subject << from << "->" << to << " " << topic;

  if (from != to && partitions_.contains(canonical(from, to))) {
    verdict.drop = true;
    record("partition-drop", subject.str());
    return verdict;
  }
  if (!message_faults_.enabled()) return verdict;

  // Fixed draw order keeps the stream stable: drop first (short-circuits
  // the rest), then duplicate, then delay + amount.
  if (rng_.bernoulli(message_faults_.drop_probability)) {
    verdict.drop = true;
    record("drop", subject.str());
    return verdict;
  }
  if (rng_.bernoulli(message_faults_.duplicate_probability)) {
    verdict.duplicate = true;
    record("duplicate", subject.str());
  }
  if (message_faults_.max_extra_delay > 0 &&
      rng_.bernoulli(message_faults_.delay_probability)) {
    verdict.extra_delay = rng_.uniform_int(
        1, static_cast<std::int64_t>(message_faults_.max_extra_delay));
    record("delay", subject.str());
  }
  return verdict;
}

void FaultInjector::partition_sites(SiteId a, SiteId b) {
  SWB_CHECK(a != b) << "cannot partition a site from itself";
  const swb::MutexLock lock{mutex_};
  if (partitions_.insert(canonical(a, b)).second) {
    std::ostringstream subject;
    subject << a << "<->" << b;
    record("partition", subject.str());
  }
}

void FaultInjector::heal_sites(SiteId a, SiteId b) {
  const swb::MutexLock lock{mutex_};
  if (partitions_.erase(canonical(a, b)) > 0) {
    std::ostringstream subject;
    subject << a << "<->" << b;
    record("heal", subject.str());
  }
}

void FaultInjector::partition_sites_for(SiteId a, SiteId b,
                                        Duration duration) {
  SWB_CHECK(duration > 0);
  partition_sites(a, b);
  sim_.schedule(duration, [this, a, b] { heal_sites(a, b); });
}

bool FaultInjector::partitioned(SiteId a, SiteId b) const {
  if (a == b) return false;
  const swb::MutexLock lock{mutex_};
  return partitions_.contains(canonical(a, b));
}

void FaultInjector::set_site_count(std::size_t count) {
  const swb::MutexLock lock{mutex_};
  site_count_ = count;
}

void FaultInjector::isolate_site(SiteId site) {
  const swb::MutexLock lock{mutex_};
  SWB_CHECK(site_count_ > 0) << "isolate_site requires set_site_count()";
  SWB_CHECK_LT(site.value(), site_count_);
  bool changed = false;
  for (std::size_t other = 0; other < site_count_; ++other) {
    const SiteId peer{static_cast<SiteId::underlying_type>(other)};
    if (peer == site) continue;
    if (partitions_.insert(canonical(site, peer)).second) {
      std::ostringstream subject;
      subject << site << "<->" << peer;
      record("partition", subject.str());
      changed = true;
    }
  }
  if (changed) {
    std::ostringstream subject;
    subject << "site " << site;
    record("isolate", subject.str());
  }
}

void FaultInjector::heal_site(SiteId site) {
  const swb::MutexLock lock{mutex_};
  bool changed = false;
  for (auto it = partitions_.begin(); it != partitions_.end();) {
    if (it->first == site.value() || it->second == site.value()) {
      std::ostringstream subject;
      subject << SiteId{static_cast<SiteId::underlying_type>(it->first)}
              << "<->"
              << SiteId{static_cast<SiteId::underlying_type>(it->second)};
      record("heal", subject.str());
      it = partitions_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) {
    std::ostringstream subject;
    subject << "site " << site;
    record("heal-site", subject.str());
  }
}

void FaultInjector::register_target(const std::string& name, StateFn apply) {
  SWB_CHECK(apply != nullptr);
  StateFn reapply;
  {
    const swb::MutexLock lock{mutex_};
    Target& target = targets_[name];
    target.apply = std::move(apply);
    // Keep a crashed target crashed through re-registration (owners
    // refresh callbacks after re-wiring; state belongs to the injector).
    if (target.down) reapply = target.apply;
  }
  // Callback outside the lock (it re-enters the owner's registries).
  if (reapply) reapply(false);
}

void FaultInjector::register_amnesia_target(const std::string& name,
                                            StateFn apply,
                                            std::function<void()> reset) {
  SWB_CHECK(reset != nullptr);
  register_target(name, std::move(apply));
  const swb::MutexLock lock{mutex_};
  targets_[name].reset = std::move(reset);
}

bool FaultInjector::has_target(const std::string& name) const {
  const swb::MutexLock lock{mutex_};
  return targets_.contains(name);
}

bool FaultInjector::is_down(const std::string& name) const {
  const swb::MutexLock lock{mutex_};
  const auto it = targets_.find(name);
  return it != targets_.end() && it->second.down;
}

void FaultInjector::crash(const std::string& name) {
  StateFn apply;
  {
    const swb::MutexLock lock{mutex_};
    const auto it = targets_.find(name);
    SWB_CHECK(it != targets_.end()) << "unknown fault target " << name;
    if (it->second.down) return;
    it->second.down = true;
    record("crash", name);
    apply = it->second.apply;
  }
  SB_LOG(kInfo) << "fault: crash " << name << " at t=" << sim_.now();
  // The callback re-enters owner state (registries, the bus) and may call
  // back into the injector — it must run outside the lock.
  apply(false);
}

void FaultInjector::restore(const std::string& name) {
  StateFn apply;
  std::function<void()> reset;
  {
    const swb::MutexLock lock{mutex_};
    const auto it = targets_.find(name);
    SWB_CHECK(it != targets_.end()) << "unknown fault target " << name;
    if (!it->second.down) return;
    it->second.down = false;
    if (it->second.reset) {
      record("restore-amnesia", name);
      reset = it->second.reset;
    } else {
      record("restore", name);
      apply = it->second.apply;
    }
  }
  if (reset) {
    SB_LOG(kInfo) << "fault: restore-amnesia " << name
                  << " at t=" << sim_.now();
    reset();
    return;
  }
  SB_LOG(kInfo) << "fault: restore " << name << " at t=" << sim_.now();
  apply(true);
}

void FaultInjector::crash_at(SimTime when, const std::string& name) {
  sim_.schedule_at(when, [this, name] { crash(name); });
}

void FaultInjector::restore_at(SimTime when, const std::string& name) {
  sim_.schedule_at(when, [this, name] { restore(name); });
}

void FaultInjector::crash_for(const std::string& name, Duration duration) {
  SWB_CHECK(duration > 0);
  crash(name);
  sim_.schedule(duration, [this, name] { restore(name); });
}

std::string FaultInjector::trace_string() const {
  const swb::MutexLock lock{mutex_};
  std::ostringstream out;
  for (const FaultEvent& event : trace_) {
    out << "t=" << event.at << " " << event.kind << " " << event.subject
        << "\n";
  }
  return out.str();
}

void FaultInjector::check_invariants() const {
  const swb::MutexLock lock{mutex_};
  for (const SitePair& pair : partitions_) {
    SWB_CHECK(pair.first < pair.second)
        << "partition pair not canonical: " << pair.first << ","
        << pair.second;
  }
  SimTime last = 0;
  for (const FaultEvent& event : trace_) {
    SWB_CHECK(!event.kind.empty());
    SWB_CHECK(event.at >= last) << "fault trace timestamps not monotone";
    last = event.at;
  }
}

}  // namespace switchboard::sim
