// Deterministic fault injection for the discrete-event simulator.
//
// One FaultInjector sits between the simulator and everything that can
// fail: it decides, per wide-area message, whether the copy is dropped,
// duplicated, or delayed (seeded randomness plus site-pair partitions),
// and it crashes/restores named targets (VNF instances, forwarders,
// controllers, whole sites) at scripted or randomized times.
//
// Determinism contract: given the same seed, the same schedule of
// crash/partition calls, and the same sequence of on_message() queries
// (which the simulator's deterministic event order guarantees), the
// injector produces byte-identical verdicts and a byte-identical fault
// trace.  An unconfigured injector is inert: it returns no-fault verdicts
// without consuming randomness or recording trace entries, so it can be
// wired in unconditionally at zero behavioral cost.
//
// The injector deliberately knows nothing about the bus or the control
// plane.  Message faults are expressed as a verdict the caller applies;
// crashes are expressed as a registered state callback the target wires
// up (e.g. "mark this element down in the registry").  A plain crash
// models a process pause / network unreachability — target state survives
// and comes back on restore.  Targets registered with
// register_amnesia_target() instead model a real process death: restore
// runs a reset callback (recorded as "restore-amnesia") and the owner
// must rebuild volatile state from durable storage (see
// control::StateJournal).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace switchboard::sim {

/// What happens to one wide-area message copy.
struct MessageVerdict {
  bool drop{false};
  bool duplicate{false};
  Duration extra_delay{0};

  [[nodiscard]] bool faulted() const {
    return drop || duplicate || extra_delay > 0;
  }
};

/// Randomized per-message fault probabilities.  All zero (the default)
/// disables the randomized layer entirely.
struct MessageFaultConfig {
  double drop_probability{0.0};
  double duplicate_probability{0.0};
  double delay_probability{0.0};
  /// Extra delay is uniform in (0, max_extra_delay].
  Duration max_extra_delay{0};

  [[nodiscard]] bool enabled() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           delay_probability > 0.0;
  }
};

/// One entry of the deterministic fault trace.
struct FaultEvent {
  SimTime at{0};
  // drop|duplicate|delay|partition-drop|partition|heal|crash|restore|
  // restore-amnesia
  std::string kind;
  std::string subject;  // "0->2 /topic/path" for messages, target name otherwise
};

class FaultInjector {
 public:
  /// Applies up (true) / down (false) to the target's owner.
  using StateFn = std::function<void(bool up)>;

  explicit FaultInjector(Simulator& sim, std::uint64_t seed = 0x5EEDFA17ULL);

  // --- randomized message faults -----------------------------------------
  void set_message_faults(MessageFaultConfig config) {
    const swb::MutexLock lock{mutex_};
    message_faults_ = config;
  }
  [[nodiscard]] MessageFaultConfig message_faults() const {
    const swb::MutexLock lock{mutex_};
    return message_faults_;
  }

  /// Verdict for one wide-area message copy from site `from` to site `to`.
  /// Partitioned pairs always drop; otherwise the randomized layer (if
  /// enabled) draws from the seeded stream.  Faulted verdicts are recorded
  /// in the trace.
  MessageVerdict on_message(SiteId from, SiteId to, const std::string& topic);

  // --- site-pair partitions ----------------------------------------------
  /// Cuts both directions between two sites.  Idempotent.
  void partition_sites(SiteId a, SiteId b);
  /// Heals a partition.  Idempotent.
  void heal_sites(SiteId a, SiteId b);
  /// partition now, heal after `duration`.
  void partition_sites_for(SiteId a, SiteId b, Duration duration);
  [[nodiscard]] bool partitioned(SiteId a, SiteId b) const;

  /// Declares how many sites exist (site ids 0..count-1); required by
  /// isolate_site/heal_site.  Deployment wires this automatically.
  void set_site_count(std::size_t count);
  [[nodiscard]] std::size_t site_count() const {
    const swb::MutexLock lock{mutex_};
    return site_count_;
  }

  /// Partitions `site` from every other site in one call (amputation —
  /// e.g. cutting the controller site away from the whole data plane).
  /// Idempotent: already-cut pairs add nothing; each newly-cut pair is
  /// trace-recorded as a "partition", plus one "isolate" marker when any
  /// pair actually changed.  Requires set_site_count().
  void isolate_site(SiteId site);
  /// Heals every partition involving `site` (whether created by
  /// isolate_site or pairwise).  Idempotent; newly-healed pairs record
  /// "heal" plus one "heal-site" marker when any pair changed.
  void heal_site(SiteId site);

  // --- crash/restore targets ---------------------------------------------
  /// Registers (or re-registers) a crashable target.  Re-registering an
  /// existing name keeps its current up/down state and re-applies it
  /// through the new callback, so owners can refresh callbacks after
  /// re-wiring.
  void register_target(const std::string& name, StateFn apply);
  /// Registers a crash-with-amnesia target: crash applies `apply(false)`
  /// as usual, but restore calls `reset()` (instead of `apply(true)`) so
  /// the owner wipes volatile state and recovers from durable storage.
  /// The restore is recorded as "restore-amnesia" in the trace.
  void register_amnesia_target(const std::string& name, StateFn apply,
                               std::function<void()> reset);
  [[nodiscard]] bool has_target(const std::string& name) const;
  [[nodiscard]] bool is_down(const std::string& name) const;

  /// Crashes / restores a registered target now.  Idempotent.
  void crash(const std::string& name);
  void restore(const std::string& name);
  /// Scripted variants on the simulator clock.
  void crash_at(SimTime when, const std::string& name);
  void restore_at(SimTime when, const std::string& name);
  void crash_for(const std::string& name, Duration duration);

  // --- trace ---------------------------------------------------------------
  /// Snapshot of the fault trace (a copy: returning a reference would let
  /// guarded data escape the lock).
  [[nodiscard]] std::vector<FaultEvent> trace() const {
    const swb::MutexLock lock{mutex_};
    return trace_;
  }
  /// The whole trace as one string ("t=<us> <kind> <subject>\n" lines);
  /// the byte-identical-under-a-seed determinism artifact.
  [[nodiscard]] std::string trace_string() const;
  void clear_trace() {
    const swb::MutexLock lock{mutex_};
    trace_.clear();
  }

  /// Audits internal consistency (aborts via SWB_CHECK on violation):
  /// partition pairs are stored canonically (small id first, no
  /// self-pairs), every trace entry has a kind, and timestamps are
  /// monotone in trace order.
  void check_invariants() const;

 private:
  using SitePair = std::pair<std::uint32_t, std::uint32_t>;
  static SitePair canonical(SiteId a, SiteId b);

  struct Target {
    StateFn apply;
    std::function<void()> reset;  // non-null => amnesia on restore
    bool down{false};
  };

  void record(const std::string& kind, std::string subject)
      SWB_REQUIRES(mutex_);

  Simulator& sim_;
  /// One lock covers verdicts, partitions, targets, and the trace.
  /// Contract: target callbacks (Target::apply / Target::reset) NEVER run
  /// under it — they re-enter registries, the bus, and (via site crash
  /// targets) MessageBus::abandon_retransmits_to, so holding the lock
  /// across them would invert lock orders and deadlock on reentry.
  mutable swb::Mutex mutex_;
  Rng rng_ SWB_GUARDED_BY(mutex_);
  MessageFaultConfig message_faults_ SWB_GUARDED_BY(mutex_);
  std::size_t site_count_ SWB_GUARDED_BY(mutex_){0};
  std::set<SitePair> partitions_ SWB_GUARDED_BY(mutex_);
  std::map<std::string, Target> targets_ SWB_GUARDED_BY(mutex_);
  std::vector<FaultEvent> trace_ SWB_GUARDED_BY(mutex_);
};

}  // namespace switchboard::sim
