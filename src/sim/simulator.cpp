#include "sim/simulator.hpp"
#include <utility>

#include "common/check.hpp"

namespace switchboard::sim {

EventHandle Simulator::schedule(Duration delay, Callback fn) {
  SWB_DCHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  SWB_DCHECK(when >= now_);
  SWB_DCHECK(fn);
  const std::uint64_t seq = next_sequence_++;
  queue_.push(Event{when, seq, std::move(fn)});
  return EventHandle{seq};
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid() || handle.sequence >= next_sequence_) return false;
  // Lazy deletion: remember the sequence, skip it when popped.
  return cancelled_.insert(handle.sequence).second;
}

void Simulator::drop_cancelled_head() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().sequence);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulator::step() {
  drop_cancelled_head();
  if (queue_.empty()) return false;
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  ++executed_;
  event.fn();
  return true;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  SWB_DCHECK(deadline >= now_);
  for (;;) {
    drop_cancelled_head();
    if (queue_.empty() || queue_.top().when > deadline) break;
    step();
  }
  now_ = deadline;
  return now_;
}

std::size_t Simulator::pending_events() const {
  return queue_.size() - cancelled_.size();
}

void Simulator::check_invariants() const {
  SWB_CHECK_GE(next_sequence_, 1u);
  if (!queue_.empty()) {
    // The heap top is the next event to fire; an entry before now() would
    // mean time runs backwards for its callback.
    SWB_CHECK_GE(queue_.top().when, now_) << "event queue head in the past";
    SWB_CHECK_LT(queue_.top().sequence, next_sequence_);
    SWB_CHECK_GE(queue_.top().sequence, 1u);
  }
  // Lazily-deleted events must still be in the queue, else pending_events()
  // undercounts (cancel() refuses sequences that were never allocated, and
  // drop_cancelled_head()/step() purge fired ones).
  SWB_CHECK_LE(cancelled_.size(), queue_.size());
  // Audit-only iteration: each element is checked independently and no
  // output depends on visit order.
  for (const std::uint64_t sequence : cancelled_) {  // swb-lint: allow(D1)
    SWB_CHECK_GE(sequence, 1u);
    SWB_CHECK_LT(sequence, next_sequence_);
  }
  SWB_CHECK_LE(executed_, next_sequence_ - 1);
}

}  // namespace switchboard::sim
