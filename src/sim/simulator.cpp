#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace switchboard::sim {

EventHandle Simulator::schedule(Duration delay, Callback fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(SimTime when, Callback fn) {
  assert(when >= now_);
  assert(fn);
  const std::uint64_t seq = next_sequence_++;
  queue_.push(Event{when, seq, std::move(fn)});
  return EventHandle{seq};
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid() || handle.sequence >= next_sequence_) return false;
  // Lazy deletion: remember the sequence, skip it when popped.
  return cancelled_.insert(handle.sequence).second;
}

void Simulator::drop_cancelled_head() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().sequence);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulator::step() {
  drop_cancelled_head();
  if (queue_.empty()) return false;
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  ++executed_;
  event.fn();
  return true;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

SimTime Simulator::run_until(SimTime deadline) {
  assert(deadline >= now_);
  for (;;) {
    drop_cancelled_head();
    if (queue_.empty() || queue_.top().when > deadline) break;
    step();
  }
  now_ = deadline;
  return now_;
}

std::size_t Simulator::pending_events() const {
  return queue_.size() - cancelled_.size();
}

}  // namespace switchboard::sim
