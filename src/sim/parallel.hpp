// Deterministic fork-join worker pool: how the single-threaded
// discrete-event simulator drives the multi-threaded data plane.
//
// The simulator stays the sole owner of time: an event callback dispatches
// one *batch* to the pool — every worker runs fn(worker_index) in parallel
// — and run_batch() returns only when all workers hit the end-of-batch
// barrier.  Nothing else in the simulation overlaps the batch, so the event
// stream stays deterministic; within the batch, determinism is the data
// plane's job (RSS worker ownership: each worker touches only its own
// shards, and flow pinnings are pure functions of the flow key — see
// dataplane/forwarder.hpp).
//
// The pool keeps its threads across batches (no spawn cost per event) and
// propagates the first exception a worker throws out of run_batch().
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace switchboard::sim {

class BarrierWorkerPool {
 public:
  /// Spawns `worker_count` persistent threads (>= 1).
  explicit BarrierWorkerPool(std::size_t worker_count);
  ~BarrierWorkerPool();

  BarrierWorkerPool(const BarrierWorkerPool&) = delete;
  BarrierWorkerPool& operator=(const BarrierWorkerPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Runs fn(worker_index) on every worker and blocks until all have
  /// finished (the per-batch barrier).  Not reentrant: one batch at a time.
  void run_batch(const std::function<void(std::size_t)>& fn);

  /// Runs fn(i) for every i in [0, n) with a deterministic static
  /// partition: worker w takes the indices congruent to w modulo the
  /// worker count.  The assignment depends only on n and worker_count(),
  /// so callers that make per-index results order-independent (each index
  /// writes its own slot) get output identical for any thread count.
  void run_striped(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t index);

  std::vector<std::thread> threads_;
  /// One lock covers the whole batch protocol; every field below is
  /// handed between the dispatcher and the workers under it.
  swb::Mutex mutex_;
  swb::CondVar start_cv_;
  swb::CondVar done_cv_;
  const std::function<void(std::size_t)>* batch_fn_
      SWB_GUARDED_BY(mutex_){nullptr};
  /// Bumped per batch; workers wait on it.
  std::uint64_t generation_ SWB_GUARDED_BY(mutex_){0};
  /// Workers still running this batch.
  std::size_t remaining_ SWB_GUARDED_BY(mutex_){0};
  /// First exception thrown in the batch.
  std::exception_ptr first_error_ SWB_GUARDED_BY(mutex_);
  bool shutdown_ SWB_GUARDED_BY(mutex_){false};
};

}  // namespace switchboard::sim
