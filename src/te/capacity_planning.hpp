// Capacity-planning problems of Section 4.2/4.3.
//
// Cloud capacity planning: given a budget A of additional compute capacity,
// decide the per-site allocation a_s that maximizes the uniform traffic
// growth factor alpha (LP; see LpRoutingOptions::cloud_capacity_budget).
// The paper's baseline spreads A uniformly across sites (Fig. 13b).
//
// VNF capacity planning: given y_f new deployment sites for each VNF,
// choose sites minimizing aggregate chain latency.  The paper formulates a
// MIP; this module provides both the exact MIP (small instances) and the
// greedy what-if planner used for the Fig. 13c comparison, plus the random
// baseline.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "lp/mip.hpp"
#include "model/network_model.hpp"
#include "te/dp_routing.hpp"
#include "te/lp_routing.hpp"

namespace switchboard::te {

struct CloudPlanResult {
  lp::SolveStatus status{lp::SolveStatus::kIterationLimit};
  double alpha{0.0};
  std::vector<double> extra_site_capacity;   // per site
};

/// LP-optimal allocation of `budget` extra capacity across sites.
[[nodiscard]] CloudPlanResult plan_cloud_capacity(
    const model::NetworkModel& model, double budget,
    const LpRoutingOptions& options = {});

/// Applies a per-site capacity increase to the model, scaling each VNF's
/// per-site capacity proportionally (capacity at a site is divided among
/// its VNFs, so growing the site grows each share).
void apply_capacity_increase(model::NetworkModel& model,
                             const std::vector<double>& extra_per_site);

/// The uniform baseline: budget / |S| everywhere.
[[nodiscard]] std::vector<double> uniform_allocation(
    const model::NetworkModel& model, double budget);

// ---------------------------------------------------------------- VNF plan

struct VnfPlacementResult {
  /// new_sites[v] lists sites newly chosen for VNF with id v (possibly
  /// empty for VNFs not planned).
  std::vector<std::vector<SiteId>> new_sites;
  double latency_before_ms{0.0};
  double latency_after_ms{0.0};
};

struct VnfPlacementOptions {
  std::size_t new_sites_per_vnf{1};   // y_f, identical for all planned VNFs
  /// Capacity assigned to each new deployment; <= 0 means "mean of the
  /// VNF's existing deployment capacities".
  double new_site_capacity{-1.0};
  DpOptions dp{};
};

/// Greedy what-if planner: for each VNF (heaviest demand first) and each of
/// its y_f new slots, tries every non-hosting site, scores the model by the
/// DP router's mean latency, and keeps the best.  Mutates `model` by adding
/// the chosen deployments.
[[nodiscard]] VnfPlacementResult plan_vnf_placement_greedy(
    model::NetworkModel& model, const VnfPlacementOptions& options);

/// Random baseline: picks y_f non-hosting sites uniformly at random.
/// Mutates `model` accordingly.
[[nodiscard]] VnfPlacementResult plan_vnf_placement_random(
    model::NetworkModel& model, const VnfPlacementOptions& options, Rng& rng);

/// Exact MIP placement for a *single* VNF on a small model: binary w_{fs}
/// gates the routing variables of chains that use the VNF.  Returns the
/// chosen sites.  The model is mutated only transiently (candidate
/// deployments are added for LP construction and removed before return).
/// Intended for small instances and for validating the greedy planner.
[[nodiscard]] std::vector<SiteId> plan_single_vnf_mip(
    model::NetworkModel& model, VnfId vnf, std::size_t new_sites,
    double new_site_capacity, const lp::MipOptions& options = {});

}  // namespace switchboard::te
