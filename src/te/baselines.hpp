// Baseline chain-routing schemes the paper compares against (Section 7.2
// and 7.3):
//   * ANYCAST       — per-hop nearest-site selection by propagation delay,
//                     oblivious to network and compute load.
//   * COMPUTE-AWARE — like ANYCAST, but skips sites whose VNF lacks the
//                     compute headroom for the chain (still network-blind).
#pragma once

#include "model/network_model.hpp"
#include "te/routing_solution.hpp"

namespace switchboard::te {

/// ANYCAST: routes every chain fully; resulting loads may exceed capacity
/// (the evaluator's uniform-scale metric exposes the overload).
[[nodiscard]] ChainRouting solve_anycast(const model::NetworkModel& model);

/// COMPUTE-AWARE: greedy latency-ordered site choice with compute
/// admission.  When no site has enough headroom for the whole chain, the
/// least-loaded site takes the traffic (overload becomes visible to the
/// evaluator, as with a real deployment that under-provisions).
[[nodiscard]] ChainRouting solve_compute_aware(
    const model::NetworkModel& model);

}  // namespace switchboard::te
