#include "te/routing_solution.hpp"

#include <cassert>

namespace switchboard::te {

ChainRouting::ChainRouting(std::size_t chain_count) { resize(chain_count); }

void ChainRouting::resize(std::size_t chain_count) {
  stages_.resize(chain_count);
}

void ChainRouting::init_chain(ChainId c, std::size_t stage_count) {
  assert(c.valid());
  if (c.value() >= stages_.size()) stages_.resize(c.value() + 1);
  stages_[c.value()].assign(stage_count, {});
}

void ChainRouting::add_flow(ChainId c, std::size_t z, NodeId src, NodeId dst,
                            double fraction) {
  assert(has_chain(c));
  assert(z >= 1 && z <= stages_[c.value()].size());
  assert(fraction >= 0.0);
  if (fraction == 0.0) return;
  auto& flows = stages_[c.value()][z - 1];
  for (StageFlow& f : flows) {
    if (f.src == src && f.dst == dst) {
      f.fraction += fraction;
      return;
    }
  }
  flows.push_back(StageFlow{src, dst, fraction});
}

const std::vector<StageFlow>& ChainRouting::flows(ChainId c,
                                                  std::size_t z) const {
  assert(has_chain(c));
  assert(z >= 1 && z <= stages_[c.value()].size());
  return stages_[c.value()][z - 1];
}

std::size_t ChainRouting::stage_count(ChainId c) const {
  assert(c.valid() && c.value() < stages_.size());
  return stages_[c.value()].size();
}

bool ChainRouting::has_chain(ChainId c) const {
  return c.valid() && c.value() < stages_.size() &&
         !stages_[c.value()].empty();
}

double ChainRouting::carried_fraction(ChainId c, std::size_t z) const {
  double total = 0.0;
  for (const StageFlow& f : flows(c, z)) total += f.fraction;
  return total;
}

void ChainRouting::clear_chain(ChainId c) {
  assert(c.valid() && c.value() < stages_.size());
  for (auto& stage : stages_[c.value()]) stage.clear();
}

}  // namespace switchboard::te
