#include "te/routing_solution.hpp"

#include <cmath>
#include <map>

#include "common/check.hpp"

namespace switchboard::te {

ChainRouting::ChainRouting(std::size_t chain_count) { resize(chain_count); }

void ChainRouting::resize(std::size_t chain_count) {
  stages_.resize(chain_count);
}

void ChainRouting::init_chain(ChainId c, std::size_t stage_count) {
  SWB_DCHECK(c.valid());
  if (c.value() >= stages_.size()) stages_.resize(c.value() + 1);
  stages_[c.value()].assign(stage_count, {});
}

void ChainRouting::add_flow(ChainId c, std::size_t z, NodeId src, NodeId dst,
                            double fraction) {
  SWB_DCHECK(has_chain(c));
  SWB_DCHECK(z >= 1 && z <= stages_[c.value()].size());
  SWB_DCHECK(fraction >= 0.0);
  if (fraction == 0.0) return;
  auto& flows = stages_[c.value()][z - 1];
  for (StageFlow& f : flows) {
    if (f.src == src && f.dst == dst) {
      f.fraction += fraction;
      return;
    }
  }
  flows.push_back(StageFlow{src, dst, fraction});
}

const std::vector<StageFlow>& ChainRouting::flows(ChainId c,
                                                  std::size_t z) const {
  SWB_DCHECK(has_chain(c));
  SWB_DCHECK(z >= 1 && z <= stages_[c.value()].size());
  return stages_[c.value()][z - 1];
}

std::size_t ChainRouting::stage_count(ChainId c) const {
  SWB_DCHECK(c.valid() && c.value() < stages_.size());
  return stages_[c.value()].size();
}

bool ChainRouting::has_chain(ChainId c) const {
  return c.valid() && c.value() < stages_.size() &&
         !stages_[c.value()].empty();
}

double ChainRouting::carried_fraction(ChainId c, std::size_t z) const {
  double total = 0.0;
  for (const StageFlow& f : flows(c, z)) total += f.fraction;
  return total;
}

void ChainRouting::clear_chain(ChainId c) {
  SWB_DCHECK(c.valid() && c.value() < stages_.size());
  for (auto& stage : stages_[c.value()]) stage.clear();
}

void ChainRouting::check_invariants(double tolerance) const {
  for (std::size_t c = 0; c < stages_.size(); ++c) {
    const auto& chain_stages = stages_[c];
    double previous_carried = -1.0;
    for (std::size_t z = 0; z < chain_stages.size(); ++z) {
      double carried = 0.0;
      std::map<NodeId, double> inflow;
      std::map<NodeId, double> outflow;
      for (std::size_t i = 0; i < chain_stages[z].size(); ++i) {
        const StageFlow& f = chain_stages[z][i];
        SWB_CHECK(std::isfinite(f.fraction) && f.fraction > 0.0)
            << "chain " << c << " stage " << z + 1 << " flow " << i;
        for (std::size_t j = i + 1; j < chain_stages[z].size(); ++j) {
          SWB_CHECK(!(chain_stages[z][j].src == f.src &&
                      chain_stages[z][j].dst == f.dst))
              << "duplicate (src, dst) entry in chain " << c << " stage "
              << z + 1;
        }
        carried += f.fraction;
        inflow[f.dst] += f.fraction;
        outflow[f.src] += f.fraction;
      }
      // Stage totals match: a scheme cannot carry more (or less) demand at
      // one hop of a chain than at the next.
      if (previous_carried >= 0.0) {
        SWB_CHECK_LE(std::abs(carried - previous_carried), tolerance)
            << "chain " << c << " carries " << previous_carried
            << " at stage " << z << " but " << carried << " at stage "
            << z + 1;
      }
      previous_carried = carried;
      // Per-node conservation across consecutive stages: what enters a
      // VNF node at stage z must leave it at stage z+1.
      if (z + 1 < chain_stages.size() && !chain_stages[z + 1].empty()) {
        std::map<NodeId, double> next_out;
        for (const StageFlow& f : chain_stages[z + 1]) {
          next_out[f.src] += f.fraction;
        }
        for (const auto& [node, in] : inflow) {
          const auto it = next_out.find(node);
          const double out = it == next_out.end() ? 0.0 : it->second;
          SWB_CHECK_LE(std::abs(in - out), tolerance)
              << "chain " << c << ": node " << node << " receives " << in
              << " at stage " << z + 1 << " but sends " << out
              << " at stage " << z + 2;
        }
      }
    }
  }
}

}  // namespace switchboard::te
