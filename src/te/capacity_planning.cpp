#include "te/capacity_planning.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/check.hpp"
#include "te/evaluator.hpp"
#include "te/lp_routing_detail.hpp"

namespace switchboard::te {
namespace {

/// Mean capacity of a VNF's existing deployments (fallback for new sites).
double default_new_capacity(const model::Vnf& vnf) {
  if (vnf.deployments.empty()) return 1.0;
  double total = 0.0;
  for (const model::VnfDeployment& d : vnf.deployments) total += d.capacity;
  return total / static_cast<double>(vnf.deployments.size());
}

/// DP-routes the whole model and returns the traffic-weighted mean latency
/// (+inf if nothing could be routed).
double score_mean_latency(const model::NetworkModel& model,
                          const DpOptions& dp) {
  const DpResult dp_result = solve_dp_routing(model, dp);
  const RoutingMetrics metrics = evaluate(model, dp_result.routing);
  if (metrics.carried_volume <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  return metrics.mean_latency_ms;
}

/// Demand volume of the chains that traverse a VNF (planning priority).
double vnf_demand(const model::NetworkModel& model, VnfId vnf) {
  double total = 0.0;
  for (const model::Chain& chain : model.chains()) {
    for (const VnfId f : chain.vnfs) {
      if (f == vnf) {
        total += chain.total_traffic();
        break;
      }
    }
  }
  return total;
}

std::vector<SiteId> candidate_sites(const model::NetworkModel& model,
                                    const model::Vnf& vnf) {
  std::vector<SiteId> sites;
  for (const model::CloudSite& site : model.sites()) {
    if (!vnf.deployed_at(site.id)) sites.push_back(site.id);
  }
  return sites;
}

}  // namespace

CloudPlanResult plan_cloud_capacity(const model::NetworkModel& model,
                                    double budget,
                                    const LpRoutingOptions& options) {
  SWB_CHECK(budget >= 0);
  LpRoutingOptions planning_options = options;
  planning_options.objective = LpObjective::kMaxUniformScale;
  planning_options.cloud_capacity_budget = budget;
  const LpRoutingResult lp = solve_lp_routing(model, planning_options);
  CloudPlanResult result;
  result.status = lp.status;
  if (!lp.optimal()) return result;
  result.alpha = lp.alpha;
  result.extra_site_capacity = lp.extra_site_capacity;
  return result;
}

void apply_capacity_increase(model::NetworkModel& model,
                             const std::vector<double>& extra_per_site) {
  SWB_CHECK(extra_per_site.size() == model.sites().size());
  for (const model::CloudSite& site : model.sites()) {
    const double extra = extra_per_site[site.id.value()];
    if (extra <= 0) continue;
    const double old_capacity = site.compute_capacity;
    const double growth =
        old_capacity > 0 ? (old_capacity + extra) / old_capacity : 1.0;
    model.set_site_capacity(site.id, old_capacity + extra);
    // Each VNF share at the site grows with the site.
    for (const model::Vnf& vnf : model.vnfs()) {
      const double cap = vnf.capacity_at(site.id);
      if (cap > 0) {
        model.set_vnf_site_capacity(vnf.id, site.id, cap * growth);
      }
    }
  }
}

std::vector<double> uniform_allocation(const model::NetworkModel& model,
                                       double budget) {
  const std::size_t n = model.sites().size();
  SWB_CHECK(n > 0);
  return std::vector<double>(n, budget / static_cast<double>(n));
}

VnfPlacementResult plan_vnf_placement_greedy(
    model::NetworkModel& model, const VnfPlacementOptions& options) {
  VnfPlacementResult result;
  result.new_sites.resize(model.vnfs().size());
  result.latency_before_ms = score_mean_latency(model, options.dp);

  // Plan heavier-demand VNFs first: their placement moves the most traffic.
  std::vector<VnfId> order;
  order.reserve(model.vnfs().size());
  for (const model::Vnf& vnf : model.vnfs()) order.push_back(vnf.id);
  std::sort(order.begin(), order.end(), [&](VnfId a, VnfId b) {
    return vnf_demand(model, a) > vnf_demand(model, b);
  });

  for (const VnfId vnf_id : order) {
    const double capacity = options.new_site_capacity > 0
        ? options.new_site_capacity
        : default_new_capacity(model.vnf(vnf_id));
    for (std::size_t slot = 0; slot < options.new_sites_per_vnf; ++slot) {
      const auto candidates = candidate_sites(model, model.vnf(vnf_id));
      if (candidates.empty()) break;
      SiteId best_site;
      double best_latency = std::numeric_limits<double>::infinity();
      for (const SiteId site : candidates) {
        model.deploy_vnf(vnf_id, site, capacity);
        const double latency = score_mean_latency(model, options.dp);
        model.undeploy_vnf(vnf_id, site);
        if (latency < best_latency) {
          best_latency = latency;
          best_site = site;
        }
      }
      if (!best_site.valid()) break;
      model.deploy_vnf(vnf_id, best_site, capacity);
      result.new_sites[vnf_id.value()].push_back(best_site);
    }
  }
  result.latency_after_ms = score_mean_latency(model, options.dp);
  return result;
}

VnfPlacementResult plan_vnf_placement_random(
    model::NetworkModel& model, const VnfPlacementOptions& options,
    Rng& rng) {
  VnfPlacementResult result;
  result.new_sites.resize(model.vnfs().size());
  result.latency_before_ms = score_mean_latency(model, options.dp);

  for (const model::Vnf& vnf : model.vnfs()) {
    const VnfId vnf_id = vnf.id;
    const double capacity = options.new_site_capacity > 0
        ? options.new_site_capacity
        : default_new_capacity(model.vnf(vnf_id));
    for (std::size_t slot = 0; slot < options.new_sites_per_vnf; ++slot) {
      const auto candidates = candidate_sites(model, model.vnf(vnf_id));
      if (candidates.empty()) break;
      const SiteId site = candidates[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
      model.deploy_vnf(vnf_id, site, capacity);
      result.new_sites[vnf_id.value()].push_back(site);
    }
  }
  result.latency_after_ms = score_mean_latency(model, options.dp);
  return result;
}

std::vector<SiteId> plan_single_vnf_mip(model::NetworkModel& model,
                                        VnfId vnf, std::size_t new_sites,
                                        double new_site_capacity,
                                        const lp::MipOptions& options) {
  using lp::Relation;
  using lp::Term;
  using lp::VarIndex;

  // Temporarily deploy the VNF at every candidate site, build the routing
  // LP over the enlarged S_f, then gate the new sites with binaries w_s
  // (Section 4.3's MIP); candidate deployments are removed before return.
  const auto candidates = candidate_sites(model, model.vnf(vnf));
  for (const SiteId site : candidates) {
    model.deploy_vnf(vnf, site, new_site_capacity);
  }

  LpRoutingOptions lp_options;
  lp_options.objective = LpObjective::kMinLatency;
  detail::BuiltLp built = detail::build_routing_lp(model, lp_options);

  // One binary per candidate site.
  std::vector<VarIndex> w_vars;
  std::vector<Term> count_terms;
  w_vars.reserve(candidates.size());
  for (const SiteId site : candidates) {
    const VarIndex w = built.problem.add_variable(
        0.0, "w_site" + std::to_string(site.value()));
    // solve_mip clamps binaries to [0, 1] via bounds itself; no row needed.
    count_terms.push_back({w, 1.0});
    w_vars.push_back(w);
  }
  built.problem.add_constraint(Relation::kLessEqual,
                               static_cast<double>(new_sites),
                               std::move(count_terms), "site_budget");

  // Gate: any routing variable whose destination is (vnf, candidate site)
  // must be zero unless that site is opened.
  for (const model::Chain& chain : model.chains()) {
    const auto& stage_vars = built.vars[chain.id.value()];
    for (std::size_t z = 1; z < chain.stage_count(); ++z) {
      if (chain.vnfs[z - 1] != vnf) continue;
      const detail::StageVars& sv = stage_vars[z - 1];
      for (std::size_t j = 0; j < sv.dests.size(); ++j) {
        const SiteId site = sv.dests[j].site;
        const auto it = std::find(candidates.begin(), candidates.end(), site);
        if (it == candidates.end()) continue;
        const VarIndex w =
            w_vars[static_cast<std::size_t>(it - candidates.begin())];
        for (std::size_t i = 0; i < sv.sources.size(); ++i) {
          built.problem.add_constraint(Relation::kLessEqual, 0.0,
                                       {{sv.var(i, j), 1.0}, {w, -1.0}});
        }
      }
    }
  }

  const lp::MipSolution mip = lp::solve_mip(built.problem, w_vars, options);

  // Restore the model's deployment state.
  for (const SiteId site : candidates) {
    model.undeploy_vnf(vnf, site);
  }

  std::vector<SiteId> chosen;
  if (!mip.optimal()) return chosen;
  for (std::size_t k = 0; k < candidates.size(); ++k) {
    if (mip.values[w_vars[k]] > 0.5) chosen.push_back(candidates[k]);
  }
  return chosen;
}

}  // namespace switchboard::te
