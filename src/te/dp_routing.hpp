// SB-DP: Switchboard's dynamic-programming chain router (Section 4.4).
//
// For one chain, the algorithm builds the table
//     E(z+1, s) = min_{s'} E(z, s') + cost(s', z, s)          (Eq. 8)
// where cost combines propagation latency, Fortz-Thorup network-utilization
// cost along the underlay path, and compute-utilization cost of the entered
// VNF.  If the least-cost route cannot carry the whole chain (resource
// headroom), the routed fraction is admitted, loads updated, and the
// algorithm repeats on residual capacity until the chain is fully routed or
// no capacity remains.
//
// Two ablation switches reproduce the paper's Figure 13a variants:
//   * use_utilization_costs = false  ->  DP-LATENCY
//   * per_hop = true                 ->  ONEHOP
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/cost.hpp"
#include "model/network_model.hpp"
#include "te/loads.hpp"
#include "te/routing_solution.hpp"

namespace switchboard::te {

class EdgeCostCache;   // te/te_engine.hpp
struct DpScratch;      // te/te_engine.hpp

/// Optional acceleration state threaded through the DP solver.  Both
/// pointers may be null: `scratch` substitutes caller-owned reusable
/// buffers for per-call allocations, `cache` memoizes edge-cost
/// utilization terms (bit-identical results either way; see
/// te/te_engine.hpp).
struct TeContext {
  EdgeCostCache* cache{nullptr};
  DpScratch* scratch{nullptr};
};

struct DpOptions {
  /// Weight (ms-equivalents) of one unit of Fortz-Thorup network cost.
  double network_cost_weight{10.0};
  /// Weight (ms-equivalents) of one unit of compute-utilization cost.
  double compute_cost_weight{10.0};
  /// false reproduces the DP-LATENCY ablation (latency-only cost).
  bool use_utilization_costs{true};
  /// true reproduces the ONEHOP ablation (greedy per-hop instead of DP).
  bool per_hop{false};
  /// Residual re-routing rounds per chain.
  std::size_t max_routes_per_chain{8};
  /// Smallest admissible fraction of a chain per route.
  double min_fraction{1e-4};
  UtilizationCost utilization_cost{};
  /// Optional predicate excluding (vnf, site) placements — used by Global
  /// Switchboard to recompute after a two-phase-commit rejection.
  std::function<bool(VnfId, SiteId)> site_allowed{};
};

/// One concrete route through a chain: node/site per stage endpoint
/// (position 0 = ingress node, position stage_count() = egress node;
/// sites are invalid at those two positions).
struct SingleRoute {
  std::vector<NodeId> nodes;
  std::vector<SiteId> sites;
  /// Largest fraction of the chain admissible on this route right now.
  double admissible_fraction{0.0};
  bool found{false};
};

/// cost(s', z, s) of Eq. 8 against current loads: move stage traffic from
/// node n1 to node n2, entering `dst_vnf` (if valid) at `dst_site`.  The
/// cache-free reference implementation; EdgeCostCache::edge_cost must
/// return identical bits on the same inputs.
[[nodiscard]] double stage_edge_cost(const model::NetworkModel& model,
                                     const Loads& loads,
                                     const DpOptions& options, NodeId n1,
                                     NodeId n2, VnfId dst_vnf,
                                     SiteId dst_site);

/// Computes the least-cost route for one chain against current loads
/// without admitting any traffic.  `remaining` caps the admissible
/// fraction reported.
[[nodiscard]] SingleRoute find_single_route(const model::NetworkModel& model,
                                            const model::Chain& chain,
                                            const Loads& loads,
                                            const DpOptions& options,
                                            double remaining = 1.0,
                                            TeContext ctx = {});

/// Loads/admission bookkeeping for a known route: the largest fraction the
/// route can carry against `loads` (same computation the DP router uses).
[[nodiscard]] double route_admissible_fraction(
    const model::NetworkModel& model, const model::Chain& chain,
    const std::vector<NodeId>& route_nodes,
    const std::vector<SiteId>& route_sites, const Loads& loads,
    double remaining = 1.0);

struct DpResult {
  ChainRouting routing;
  double routed_volume{0.0};     // total stage-traffic volume admitted
  double demand_volume{0.0};
  std::size_t fully_routed_chains{0};
  std::size_t unrouted_chains{0};   // chains with zero admitted traffic
};

/// Routes every chain in the model in order, sharing one load state.
[[nodiscard]] DpResult solve_dp_routing(const model::NetworkModel& model,
                                        const DpOptions& options = {},
                                        TeContext ctx = {});

/// Routes a single chain against existing loads; appends flows to
/// `routing` (the chain must already be init'ed there) and updates
/// `loads`.  Returns the fraction of the chain admitted in [0, 1].
double route_chain_dp(const model::NetworkModel& model,
                      const model::Chain& chain, Loads& loads,
                      ChainRouting& routing, const DpOptions& options,
                      TeContext ctx = {});

}  // namespace switchboard::te
