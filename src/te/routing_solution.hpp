// The output of every traffic-engineering scheme: per chain and per stage,
// the fraction x_{c z n1 n2} of the chain's stage-z traffic sent from node
// n1 to node n2 (Section 4.2).  Fractions at a stage normally sum to 1;
// they sum to less when a scheme could only admit part of the demand, and
// to alpha when a uniform-scale solution carries scaled traffic.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace switchboard::te {

struct StageFlow {
  NodeId src;
  NodeId dst;
  double fraction{0.0};
};

class ChainRouting {
 public:
  ChainRouting() = default;
  explicit ChainRouting(std::size_t chain_count);

  void resize(std::size_t chain_count);
  [[nodiscard]] std::size_t chain_count() const { return stages_.size(); }

  /// Ensures chain `c` has `stage_count` stage slots.
  void init_chain(ChainId c, std::size_t stage_count);

  /// Adds flow to stage z (1-based, as in the paper).  Merges with an
  /// existing (src, dst) entry if present.
  void add_flow(ChainId c, std::size_t z, NodeId src, NodeId dst,
                double fraction);

  [[nodiscard]] const std::vector<StageFlow>& flows(ChainId c,
                                                    std::size_t z) const;
  [[nodiscard]] std::size_t stage_count(ChainId c) const;
  [[nodiscard]] bool has_chain(ChainId c) const;

  /// Total fraction entering stage z of chain c (i.e., how much of the
  /// chain's demand this routing carries at that stage).
  [[nodiscard]] double carried_fraction(ChainId c, std::size_t z) const;

  /// Removes all flows of a chain (used when rerouting).
  void clear_chain(ChainId c);

  /// Audits the routing (aborts via SWB_CHECK on violation): every stored
  /// fraction is positive and finite, no duplicate (src, dst) entry per
  /// stage, and flow is conserved — per chain, each stage carries the same
  /// total fraction, and traffic entering a node at stage z leaves that
  /// node at stage z+1 (tolerance absorbs LP round-off).
  void check_invariants(double tolerance = 1e-6) const;

 private:
  // stages_[chain][z-1] = flows of stage z.
  std::vector<std::vector<std::vector<StageFlow>>> stages_;
};

}  // namespace switchboard::te
