#include "te/evaluator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace switchboard::te {

Loads accumulate_loads(const model::NetworkModel& model,
                       const ChainRouting& routing) {
  Loads loads{model};
  for (const model::Chain& chain : model.chains()) {
    if (!routing.has_chain(chain.id)) continue;
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      for (const StageFlow& flow : routing.flows(chain.id, z)) {
        loads.add_stage_flow(chain, z, flow.src, flow.dst, flow.fraction);
      }
    }
  }
  return loads;
}

RoutingMetrics evaluate(const model::NetworkModel& model,
                        const ChainRouting& routing) {
  RoutingMetrics metrics;
  const Loads loads = accumulate_loads(model, routing);

  for (const model::Chain& chain : model.chains()) {
    metrics.demand_volume += chain.total_traffic();
    if (!routing.has_chain(chain.id)) continue;
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      const double stage_traffic = chain.stage_traffic(z);
      for (const StageFlow& flow : routing.flows(chain.id, z)) {
        const double delay = model.delay_ms(flow.src, flow.dst);
        metrics.aggregate_latency += stage_traffic * delay * flow.fraction;
        metrics.carried_volume += stage_traffic * flow.fraction;
      }
    }
  }
  metrics.mean_latency_ms = metrics.carried_volume > 0
      ? metrics.aggregate_latency / metrics.carried_volume
      : 0.0;

  // Max uniform scale of the carried loads.
  double scale = std::numeric_limits<double>::infinity();
  const net::Topology& topo = model.topology();
  for (const net::Link& link : topo.links()) {
    const double load = loads.link_load(link.id);
    metrics.max_link_utilization =
        std::max(metrics.max_link_utilization,
                 (model.background_traffic(link.id) + load) / link.capacity);
    if (load <= 0) continue;
    const double headroom = model.mlu_limit() * link.capacity -
                            model.background_traffic(link.id);
    scale = std::min(scale, std::max(0.0, headroom) / load);
  }
  for (const model::CloudSite& site : model.sites()) {
    const double load = loads.site_load(site.id);
    if (load <= 0) continue;
    scale = std::min(scale, site.compute_capacity / load);
  }
  for (const model::Vnf& vnf : model.vnfs()) {
    for (const model::VnfDeployment& dep : vnf.deployments) {
      const double load = loads.vnf_site_load(vnf.id, dep.site);
      if (load <= 0) continue;
      scale = std::min(scale, dep.capacity / load);
    }
  }
  metrics.max_uniform_scale = scale;
  metrics.feasible = scale >= 1.0 - 1e-9;
  metrics.feasible_throughput =
      std::min(1.0, scale) * metrics.carried_volume;
  return metrics;
}

}  // namespace switchboard::te
