#include "te/baselines.hpp"
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "te/loads.hpp"

namespace switchboard::te {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-hop greedy routing shared by both baselines.  `admission` decides
/// whether a candidate endpoint may be selected given current loads.
template <typename AdmissionFn>
ChainRouting greedy_route(const model::NetworkModel& model,
                          AdmissionFn admission) {
  ChainRouting routing{model.chains().size()};
  Loads loads{model};

  for (const model::Chain& chain : model.chains()) {
    routing.init_chain(chain.id, chain.stage_count());
    NodeId current = chain.ingress;
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      const auto dests = model.stage_destinations(chain, z);
      SWB_DCHECK(!dests.empty());

      // Candidates in latency order; the first admitted one wins.
      std::size_t best = dests.size();
      double best_delay = kInf;
      std::size_t fallback = 0;        // least-loaded site if none admitted
      double fallback_headroom = -kInf;
      for (std::size_t i = 0; i < dests.size(); ++i) {
        const double delay = model.delay_ms(current, dests[i].node);
        if (!std::isfinite(delay)) continue;
        const bool admitted = admission(loads, chain, z, dests[i]);
        if (admitted && delay < best_delay) {
          best_delay = delay;
          best = i;
        }
        if (z < chain.stage_count()) {
          const double headroom =
              loads.vnf_site_headroom(chain.vnfs[z - 1], dests[i].site);
          if (headroom > fallback_headroom) {
            fallback_headroom = headroom;
            fallback = i;
          }
        }
      }
      const std::size_t chosen = best != dests.size() ? best : fallback;
      const model::StageEndpoint& ep = dests[chosen];
      routing.add_flow(chain.id, z, current, ep.node, 1.0);
      loads.add_stage_flow(chain, z, current, ep.node, 1.0);
      current = ep.node;
    }
  }
  return routing;
}

}  // namespace

ChainRouting solve_anycast(const model::NetworkModel& model) {
  return greedy_route(model,
                      [](const Loads&, const model::Chain&, std::size_t,
                         const model::StageEndpoint&) { return true; });
}

ChainRouting solve_compute_aware(const model::NetworkModel& model) {
  return greedy_route(
      model,
      [&model](const Loads& loads, const model::Chain& chain, std::size_t z,
               const model::StageEndpoint& ep) {
        if (z == chain.stage_count()) return true;   // egress edge
        const VnfId f = chain.vnfs[z - 1];
        // Load the chain would add to this VNF instance: traffic entering
        // (stage z) plus leaving (stage z+1), times load-per-unit.
        const double added =
            model.vnf(f).load_per_unit *
            (chain.stage_traffic(z) + chain.stage_traffic(z + 1));
        return loads.vnf_site_headroom(f, ep.site) >= added &&
               loads.site_headroom(ep.site) >= added;
      });
}

}  // namespace switchboard::te
