#include "te/te_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace switchboard::te {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// --- DpScratch -------------------------------------------------------------

void DpScratch::ensure_sized(const model::NetworkModel& model) {
  const std::size_t links = model.topology().link_count();
  const std::size_t sites = model.sites().size();
  const std::size_t vnf_sites = model.vnfs().size() * sites;
  if (link_demand.size() != links) link_demand.assign(links, 0.0);
  if (site_demand.size() != sites) site_demand.assign(sites, 0.0);
  if (vnf_site_demand.size() != vnf_sites) {
    vnf_site_demand.assign(vnf_sites, 0.0);
  }
}

// --- EdgeCostCache ---------------------------------------------------------

void EdgeCostCache::bind(const model::NetworkModel& model,
                         const Loads& loads) {
  const std::size_t n = model.topology().node_count();
  const std::size_t site_count = model.sites().size();
  const std::size_t vnf_sites = model.vnfs().size() * site_count;
  // A version that went backwards means `loads` is a different object that
  // happens to live at a previously-bound address.
  const bool rebound = model_ != &model || loads_ != &loads ||
                       loads.version() < bound_version_;
  const bool resized = n != n_ || site_count != site_count_ ||
                       pair_.size() != n * n ||
                       vnf_site_.size() != vnf_sites;
  model_ = &model;
  loads_ = &loads;
  bound_version_ = std::max(bound_version_, loads.version());
  if (rebound || resized) {
    n_ = n;
    site_count_ = site_count;
    pair_.assign(n * n, Entry{});
    vnf_site_.assign(vnf_sites, Entry{});
    bound_version_ = loads.version();
  }
}

void EdgeCostCache::invalidate() {
  for (Entry& entry : pair_) entry = Entry{entry.value, 0, 0};
  for (Entry& entry : vnf_site_) entry = Entry{entry.value, 0, 0};
}

double EdgeCostCache::edge_cost(const model::NetworkModel& model,
                                const Loads& loads, const DpOptions& options,
                                NodeId n1, NodeId n2, VnfId dst_vnf,
                                SiteId dst_site) {
  SWB_DCHECK(model_ == &model && loads_ == &loads);
  // Mirrors stage_edge_cost() term by term so results stay bit-identical.
  double cost = model.delay_ms(n1, n2);
  if (!std::isfinite(cost)) return kInf;
  if (!options.use_utilization_costs) return cost;

  if (n1 != n2) {
    cost += options.network_cost_weight *
            network_term(model, loads, options, n1, n2);
  }
  if (dst_vnf.valid()) {
    cost += options.compute_cost_weight *
            compute_term(loads, options, dst_vnf, dst_site);
  }
  return cost;
}

double EdgeCostCache::network_term(const model::NetworkModel& model,
                                   const Loads& loads,
                                   const DpOptions& options, NodeId n1,
                                   NodeId n2) {
  Entry& entry =
      pair_[static_cast<std::size_t>(n1.value()) * n_ + n2.value()];
  const std::uint64_t version = loads.version();
  // Fast path: validated once already since the last loads mutation.
  if (entry.stamp != 0 && entry.checked == version) {
    ++hits_;
    return entry.value;
  }
  const std::span<const net::LinkShare> shares =
      model.routing().link_shares(n1, n2);

  // Valid iff no link of the pair's footprint changed since the stamp.
  bool valid = entry.stamp != 0;
  if (valid) {
    const std::vector<std::uint64_t>& epochs = loads.link_epochs();
    for (const net::LinkShare& share : shares) {
      if (epochs[share.link.value()] > entry.stamp) {
        valid = false;
        break;
      }
    }
  }
  if (valid) {
    ++hits_;
    entry.checked = version;
    return entry.value;
  }
  ++misses_;
  double network = 0.0;
  for (const net::LinkShare& share : shares) {
    network += share.fraction *
               options.utilization_cost(
                   std::max(0.0, loads.link_utilization(share.link)));
  }
  entry.value = network;
  entry.stamp = version;
  entry.checked = version;
  return network;
}

double EdgeCostCache::compute_term(const Loads& loads,
                                   const DpOptions& options, VnfId f,
                                   SiteId s) {
  Entry& entry =
      vnf_site_[static_cast<std::size_t>(f.value()) * site_count_ +
                s.value()];
  if (entry.stamp != 0 && loads.vnf_site_epoch(f, s) <= entry.stamp) {
    ++hits_;
    return entry.value;
  }
  ++misses_;
  entry.value = options.utilization_cost(
      std::max(0.0, loads.vnf_site_utilization(f, s)));
  entry.stamp = loads.version();
  return entry.value;
}

// --- TeEngine --------------------------------------------------------------

TeEngine::TeEngine(const model::NetworkModel& model, DpOptions options)
    : model_{model}, options_{std::move(options)}, loads_{model} {}

const DpResult& TeEngine::solve() {
  loads_.reset();
  cache_.invalidate();   // the model may have changed under us
  result_ = DpResult{};
  result_.routing.resize(model_.chains().size());
  routed_fraction_.assign(model_.chains().size(), kUntracked);

  const TeContext ctx{&cache_, &scratch_};
  for (const model::Chain& chain : model_.chains()) {
    result_.routing.init_chain(chain.id, chain.stage_count());
    result_.demand_volume += chain.total_traffic();
    const double routed =
        route_chain_dp(model_, chain, loads_, result_.routing, options_, ctx);
    routed_fraction_[chain.id.value()] = routed;
    result_.routed_volume += routed * chain.total_traffic();
    if (routed >= 1.0 - 1e-9) {
      ++result_.fully_routed_chains;
    } else if (routed <= 1e-9) {
      ++result_.unrouted_chains;
    }
  }
  return result_;
}

double TeEngine::route_tracked_chain(ChainId c) {
  const model::Chain& chain = model_.chain(c);
  const TeContext ctx{&cache_, &scratch_};
  const double routed =
      route_chain_dp(model_, chain, loads_, result_.routing, options_, ctx);
  routed_fraction_[c.value()] = routed;
  return routed;
}

double TeEngine::add_chain(ChainId c) {
  SWB_CHECK(c.valid() && c.value() < model_.chains().size());
  if (routed_fraction_.size() < model_.chains().size()) {
    routed_fraction_.resize(model_.chains().size(), kUntracked);
  }
  SWB_CHECK(!tracks_chain(c)) << "chain " << c << " already routed";
  if (result_.routing.chain_count() < model_.chains().size()) {
    result_.routing.resize(model_.chains().size());
  }
  result_.routing.init_chain(c, model_.chain(c).stage_count());
  const double routed = route_tracked_chain(c);
  refresh_summary();
  return routed;
}

void TeEngine::remove_chain(ChainId c) {
  SWB_CHECK(tracks_chain(c)) << "chain " << c << " not routed";
  const model::Chain& chain = model_.chain(c);
  for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
    for (const StageFlow& flow : result_.routing.flows(c, z)) {
      loads_.add_stage_flow(chain, z, flow.src, flow.dst, -flow.fraction);
    }
  }
  result_.routing.clear_chain(c);
  routed_fraction_[c.value()] = kUntracked;
  refresh_summary();
}

double TeEngine::reroute_chain(ChainId c) {
  remove_chain(c);
  return add_chain(c);
}

std::size_t TeEngine::on_link_capacity_changed(LinkId link) {
  cache_.invalidate();   // utilizations shifted under every cached term
  std::vector<ChainId> affected;
  for (const model::Chain& chain : model_.chains()) {
    if (!tracks_chain(chain.id)) continue;
    if (routed_fraction_[chain.id.value()] < 1.0 - 1e-9 ||
        chain_crosses_link(chain.id, link)) {
      affected.push_back(chain.id);
    }
  }
  return reroute_affected(affected);
}

std::size_t TeEngine::on_vnf_site_capacity_changed(VnfId f, SiteId s) {
  cache_.invalidate();
  std::vector<ChainId> affected;
  for (const model::Chain& chain : model_.chains()) {
    if (!tracks_chain(chain.id)) continue;
    if (routed_fraction_[chain.id.value()] < 1.0 - 1e-9 ||
        chain_places_vnf_at(chain.id, f, s)) {
      affected.push_back(chain.id);
    }
  }
  return reroute_affected(affected);
}

std::size_t TeEngine::reroute_affected(const std::vector<ChainId>& affected) {
  // Free every affected chain's resources first, then re-route in id
  // order — the same order a full re-solve would visit them.
  for (const ChainId c : affected) remove_chain(c);
  for (const ChainId c : affected) {
    result_.routing.init_chain(c, model_.chain(c).stage_count());
    route_tracked_chain(c);
  }
  refresh_summary();
  return affected.size();
}

void TeEngine::refresh_summary() {
  result_.demand_volume = 0.0;
  result_.routed_volume = 0.0;
  result_.fully_routed_chains = 0;
  result_.unrouted_chains = 0;
  // Accumulate in chain-id order: the same term order as solve(), so the
  // sums match a full solve bit for bit when the fractions do.
  for (const model::Chain& chain : model_.chains()) {
    if (!tracks_chain(chain.id)) continue;
    const double routed = routed_fraction_[chain.id.value()];
    result_.demand_volume += chain.total_traffic();
    result_.routed_volume += routed * chain.total_traffic();
    if (routed >= 1.0 - 1e-9) {
      ++result_.fully_routed_chains;
    } else if (routed <= 1e-9) {
      ++result_.unrouted_chains;
    }
  }
}

bool TeEngine::tracks_chain(ChainId c) const {
  return c.valid() && c.value() < routed_fraction_.size() &&
         routed_fraction_[c.value()] != kUntracked;
}

double TeEngine::routed_fraction(ChainId c) const {
  SWB_CHECK(tracks_chain(c));
  return routed_fraction_[c.value()];
}

bool TeEngine::chain_crosses_link(ChainId c, LinkId link) const {
  const model::Chain& chain = model_.chain(c);
  for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
    for (const StageFlow& flow : result_.routing.flows(c, z)) {
      if (flow.src == flow.dst) continue;
      for (const net::LinkShare& share :
           model_.routing().link_shares(flow.src, flow.dst)) {
        if (share.link == link) return true;
      }
      // Reverse-direction stage traffic crosses the opposite pair.
      for (const net::LinkShare& share :
           model_.routing().link_shares(flow.dst, flow.src)) {
        if (share.link == link) return true;
      }
    }
  }
  return false;
}

std::vector<ChainId> TeEngine::chains_placing(VnfId f, SiteId s) const {
  std::vector<ChainId> placing;
  for (const model::Chain& chain : model_.chains()) {
    if (!tracks_chain(chain.id)) continue;
    if (chain_places_vnf_at(chain.id, f, s)) placing.push_back(chain.id);
  }
  return placing;
}

bool TeEngine::chain_places_vnf_at(ChainId c, VnfId f, SiteId s) const {
  const model::Chain& chain = model_.chain(c);
  const NodeId site_node = model_.site(s).node;
  for (std::size_t z = 1; z < chain.stage_count(); ++z) {
    if (chain.vnfs[z - 1] != f) continue;
    for (const StageFlow& flow : result_.routing.flows(c, z)) {
      if (flow.dst == site_node) return true;
    }
  }
  return false;
}

void TeEngine::check_invariants(double tolerance) const {
  loads_.check_invariants(tolerance);
  result_.routing.check_invariants(tolerance);

  // The incrementally-maintained loads must match the loads re-accumulated
  // from the routing solution (drift here means a remove/re-add desynced).
  Loads rebuilt{model_};
  for (const model::Chain& chain : model_.chains()) {
    if (!tracks_chain(chain.id)) continue;
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      for (const StageFlow& flow : result_.routing.flows(chain.id, z)) {
        rebuilt.add_stage_flow(chain, z, flow.src, flow.dst, flow.fraction);
      }
    }
  }
  const std::size_t links = model_.topology().link_count();
  for (std::size_t e = 0; e < links; ++e) {
    const LinkId link{static_cast<LinkId::underlying_type>(e)};
    SWB_CHECK_LE(std::abs(loads_.link_load(link) - rebuilt.link_load(link)),
                 tolerance * std::max(1.0, rebuilt.link_load(link)))
        << "link " << e << " load drifted from its routing";
  }
  for (std::size_t s = 0; s < model_.sites().size(); ++s) {
    const SiteId site{static_cast<SiteId::underlying_type>(s)};
    SWB_CHECK_LE(std::abs(loads_.site_load(site) - rebuilt.site_load(site)),
                 tolerance * std::max(1.0, rebuilt.site_load(site)))
        << "site " << s << " load drifted from its routing";
    for (std::size_t f = 0; f < model_.vnfs().size(); ++f) {
      const VnfId vnf{static_cast<VnfId::underlying_type>(f)};
      SWB_CHECK_LE(std::abs(loads_.vnf_site_load(vnf, site) -
                            rebuilt.vnf_site_load(vnf, site)),
                   tolerance * std::max(1.0, rebuilt.vnf_site_load(vnf, site)))
          << "vnf " << f << " load at site " << s
          << " drifted from its routing";
    }
  }
}

const LpRoutingResult& TeEngine::refine_with_lp(LpRoutingOptions options) {
  if (options.warm_start == nullptr && !lp_result_.basis.empty()) {
    // Replay the previous refinement's basis.  solve_simplex validates the
    // dimensions itself, so a model-shape change degrades to a cold solve
    // instead of an error.
    options.warm_start = &lp_result_.basis;
  }
  lp_result_ = solve_lp_routing(model_, options);
  lp_refined_version_ = loads_.version();
  return lp_result_;
}

}  // namespace switchboard::te
