// Load accounting shared by the DP router (incremental admission) and the
// evaluator (scoring a finished routing).
//
// Implements the paper's load model: the load of VNF f at site s is
// l_f x (traffic entering + traffic leaving) (Eq. 4); link load follows the
// underlay's ECMP fractions r_{n1 n2 e} over forward and reverse stage
// traffic (Eqs. 6-7).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "model/network_model.hpp"

namespace switchboard::te {

class Loads {
 public:
  explicit Loads(const model::NetworkModel& model);

  /// Adds the load of routing `fraction` of chain `c`'s stage-z traffic
  /// from node n1 to node n2 (both link and compute load on the stage's
  /// endpoint VNFs).  Negative `fraction` removes load.
  void add_stage_flow(const model::Chain& chain, std::size_t z, NodeId n1,
                      NodeId n2, double fraction);

  /// Zeroes all accumulated loads (also resizes to the model's current
  /// element counts, so it is safe after chains/VNF deployments change).
  void reset();

  // --- link state ---------------------------------------------------------
  /// Switchboard-attributed load (excludes background traffic).
  [[nodiscard]] double link_load(LinkId e) const;
  /// (background + switchboard) / capacity.
  [[nodiscard]] double link_utilization(LinkId e) const;
  /// Remaining link volume before hitting beta * b_e.
  [[nodiscard]] double link_headroom(LinkId e) const;

  // --- compute state ------------------------------------------------------
  [[nodiscard]] double site_load(SiteId s) const;
  [[nodiscard]] double site_utilization(SiteId s) const;
  [[nodiscard]] double vnf_site_load(VnfId f, SiteId s) const;
  [[nodiscard]] double vnf_site_utilization(VnfId f, SiteId s) const;
  [[nodiscard]] double vnf_site_headroom(VnfId f, SiteId s) const;
  [[nodiscard]] double site_headroom(SiteId s) const;

  [[nodiscard]] const model::NetworkModel& model() const { return model_; }

  // --- change epochs ------------------------------------------------------
  // Monotonic counters for cost caching (te::EdgeCostCache): `version()`
  // advances on every mutation (add_stage_flow or reset), and each link /
  // (vnf, site) slot records the version of its last change.  A value
  // cached at version V for a set of resources is still valid iff every
  // resource's epoch is <= V.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t link_epoch(LinkId e) const {
    SWB_DCHECK(e.value() < link_epoch_.size());
    return link_epoch_[e.value()];
  }
  [[nodiscard]] std::uint64_t vnf_site_epoch(VnfId f, SiteId s) const {
    SWB_DCHECK(vnf_site_index(f, s) < vnf_site_epoch_.size());
    return vnf_site_epoch_[vnf_site_index(f, s)];
  }
  /// Raw epoch arrays for hot-loop validation walks.
  [[nodiscard]] const std::vector<std::uint64_t>& link_epochs() const {
    return link_epoch_;
  }

  /// Audits the accounting (aborts via SWB_CHECK on violation): vectors
  /// sized to the model, every load finite and (up to round-off from
  /// negative-fraction removals) non-negative, and the per-site totals
  /// redundantly equal to the sum of that site's per-VNF loads.
  void check_invariants(double tolerance = 1e-6) const;

  /// Stricter audit for solutions that claim feasibility: additionally
  /// checks no link exceeds beta * b_e and no (vnf, site) exceeds m_sf,
  /// within `tolerance`.  Schemes may legitimately produce overloaded
  /// solutions (the evaluator scores them), so this is opt-in.
  void check_no_capacity_violation(double tolerance = 1e-6) const;

 private:
  [[nodiscard]] std::size_t vnf_site_index(VnfId f, SiteId s) const {
    return static_cast<std::size_t>(f.value()) * site_count_ + s.value();
  }

  const model::NetworkModel& model_;
  std::size_t site_count_;
  std::vector<double> link_load_;
  std::vector<double> site_load_;
  std::vector<double> vnf_site_load_;
  // Change tracking: version_ starts at 1 so a zero stamp is never valid.
  std::uint64_t version_{1};
  std::vector<std::uint64_t> link_epoch_;
  std::vector<std::uint64_t> vnf_site_epoch_;
};

}  // namespace switchboard::te
