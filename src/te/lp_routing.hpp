// SB-LP: the linear-programming chain-routing optimizer (Section 4.3).
//
// Builds the paper's LP over variables x_{c z n1 n2} with three selectable
// objectives:
//   * kMinLatency      — Eq. 3 subject to full routing of all demand,
//   * kMaxThroughput   — per-chain carried fraction t_c <= 1, maximize
//                        carried volume (used in the Fig. 12a/b comparison),
//   * kMaxUniformScale — one shared factor alpha multiplying all demand,
//                        maximize alpha (the cloud-capacity-planning core).
// Constraints: ingress/egress coupling, flow conservation (Eq. 5), VNF and
// site compute capacity (Eq. 4), and the MLU bound on every link (Eq. 6-7).
#pragma once

#include <optional>
#include <vector>

#include "lp/simplex.hpp"
#include "model/network_model.hpp"
#include "te/routing_solution.hpp"

namespace switchboard::te {

enum class LpObjective { kMinLatency, kMaxThroughput, kMaxUniformScale };

struct LpRoutingOptions {
  LpObjective objective{LpObjective::kMinLatency};
  /// Enforce the MLU bound (Eq. 6).  Disable to model compute-only TE.
  bool enforce_mlu{true};
  /// Weight of the latency term added to throughput objectives so that,
  /// among max-throughput routings, low-latency ones win.
  double latency_tiebreak{1e-4};
  /// Cloud capacity planning (Section 4.3): when >= 0 and the objective is
  /// kMaxUniformScale, each site gains a variable a_s >= 0 of additional
  /// compute capacity with sum(a_s) <= budget; VNF-site capacities scale
  /// with their site ((m_sf / m_s) * a_s extra headroom).
  double cloud_capacity_budget{-1.0};
  lp::SimplexOptions simplex{};
  /// Optional warm start: the Basis of a previous solve of the SAME
  /// formulation (same model shape and objective — the variable and row
  /// counts must match).  Mismatches silently fall back to a cold start.
  const lp::Basis* warm_start{nullptr};
};

struct LpRoutingResult {
  lp::SolveStatus status{lp::SolveStatus::kIterationLimit};
  ChainRouting routing;
  /// LP objective value (mode-specific).
  double objective{0.0};
  /// kMaxUniformScale: the optimal alpha.
  double alpha{0.0};
  /// kMaxThroughput: total carried stage-volume.
  double carried_volume{0.0};
  /// Cloud capacity planning: chosen extra capacity per site (empty when
  /// planning was not requested).
  std::vector<double> extra_site_capacity;
  /// Final simplex basis; feed back via LpRoutingOptions::warm_start to
  /// re-solve after a small model change in a handful of pivots.
  lp::Basis basis;
  /// Solver work counters (iterations, refactorizations, warm-start use).
  lp::SolverStats stats;

  [[nodiscard]] bool optimal() const {
    return status == lp::SolveStatus::kOptimal;
  }
};

[[nodiscard]] LpRoutingResult solve_lp_routing(
    const model::NetworkModel& model, const LpRoutingOptions& options = {});

/// Flow decomposition for a live SB-LP controller (DESIGN.md §17): the
/// chain's primary per-stage site sequence — starting at the chain's
/// ingress, each VNF stage follows the max-fraction outgoing flow of the
/// LP routing (ties broken by lower destination node id, so the result is
/// deterministic).  Returns one site per VNF stage, or nullopt when the
/// routing carries none of the chain's traffic along a connected path
/// (the caller should fall back to SB-DP).
[[nodiscard]] std::optional<std::vector<SiteId>> primary_route_sites(
    const model::NetworkModel& model, const ChainRouting& routing,
    ChainId chain);

}  // namespace switchboard::te
