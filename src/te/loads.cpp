#include "te/loads.hpp"

#include <cassert>

namespace switchboard::te {

Loads::Loads(const model::NetworkModel& model)
    : model_{model},
      site_count_{model.sites().size()},
      link_load_(model.topology().link_count(), 0.0),
      site_load_(site_count_, 0.0),
      vnf_site_load_(model.vnfs().size() * site_count_, 0.0) {}

void Loads::reset() {
  site_count_ = model_.sites().size();
  link_load_.assign(model_.topology().link_count(), 0.0);
  site_load_.assign(site_count_, 0.0);
  vnf_site_load_.assign(model_.vnfs().size() * site_count_, 0.0);
}

void Loads::add_stage_flow(const model::Chain& chain, std::size_t z,
                           NodeId n1, NodeId n2, double fraction) {
  assert(z >= 1 && z <= chain.stage_count());
  const double w = chain.forward_traffic[z - 1] * fraction;
  const double v = chain.reverse_traffic[z - 1] * fraction;

  // Link load: forward direction follows r_{n1 n2 e}; reverse traffic of
  // the same stage crosses r_{n2 n1 e} (symmetric return, Section 5.3).
  if (n1 != n2) {
    if (w != 0.0) {
      for (const net::LinkShare& share : model_.routing().link_shares(n1, n2)) {
        link_load_[share.link.value()] += w * share.fraction;
      }
    }
    if (v != 0.0) {
      for (const net::LinkShare& share : model_.routing().link_shares(n2, n1)) {
        link_load_[share.link.value()] += v * share.fraction;
      }
    }
  }

  // Compute load on the VNF at the destination of stage z (entering
  // traffic) and on the VNF at the source (leaving traffic).
  const double stage_volume = w + v;
  if (z < chain.stage_count()) {
    const VnfId f = chain.vnfs[z - 1];
    const auto site = model_.site_at(n2);
    assert(site.has_value());
    const double load = model_.vnf(f).load_per_unit * stage_volume;
    vnf_site_load_[vnf_site_index(f, *site)] += load;
    site_load_[site->value()] += load;
  }
  if (z > 1) {
    const VnfId f = chain.vnfs[z - 2];
    const auto site = model_.site_at(n1);
    assert(site.has_value());
    const double load = model_.vnf(f).load_per_unit * stage_volume;
    vnf_site_load_[vnf_site_index(f, *site)] += load;
    site_load_[site->value()] += load;
  }
}

double Loads::link_load(LinkId e) const {
  assert(e.value() < link_load_.size());
  return link_load_[e.value()];
}

double Loads::link_utilization(LinkId e) const {
  const net::Link& link = model_.topology().link(e);
  return (model_.background_traffic(e) + link_load(e)) / link.capacity;
}

double Loads::link_headroom(LinkId e) const {
  const net::Link& link = model_.topology().link(e);
  return model_.mlu_limit() * link.capacity - model_.background_traffic(e) -
         link_load(e);
}

double Loads::site_load(SiteId s) const {
  assert(s.value() < site_load_.size());
  return site_load_[s.value()];
}

double Loads::site_utilization(SiteId s) const {
  const double cap = model_.site(s).compute_capacity;
  return cap > 0 ? site_load(s) / cap : 0.0;
}

double Loads::vnf_site_load(VnfId f, SiteId s) const {
  assert(vnf_site_index(f, s) < vnf_site_load_.size());
  return vnf_site_load_[vnf_site_index(f, s)];
}

double Loads::vnf_site_utilization(VnfId f, SiteId s) const {
  const double cap = model_.vnf(f).capacity_at(s);
  return cap > 0 ? vnf_site_load(f, s) / cap : 0.0;
}

double Loads::vnf_site_headroom(VnfId f, SiteId s) const {
  return model_.vnf(f).capacity_at(s) - vnf_site_load(f, s);
}

double Loads::site_headroom(SiteId s) const {
  return model_.site(s).compute_capacity - site_load(s);
}

}  // namespace switchboard::te
