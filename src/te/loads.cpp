#include "te/loads.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace switchboard::te {

Loads::Loads(const model::NetworkModel& model)
    : model_{model},
      site_count_{model.sites().size()},
      link_load_(model.topology().link_count(), 0.0),
      site_load_(site_count_, 0.0),
      vnf_site_load_(model.vnfs().size() * site_count_, 0.0),
      link_epoch_(link_load_.size(), 1),
      vnf_site_epoch_(vnf_site_load_.size(), 1) {}

void Loads::reset() {
  site_count_ = model_.sites().size();
  link_load_.assign(model_.topology().link_count(), 0.0);
  site_load_.assign(site_count_, 0.0);
  vnf_site_load_.assign(model_.vnfs().size() * site_count_, 0.0);
  // Stamp every slot with a fresh version: values cached before the reset
  // carry an older stamp and fail the epoch check.
  ++version_;
  link_epoch_.assign(link_load_.size(), version_);
  vnf_site_epoch_.assign(vnf_site_load_.size(), version_);
}

void Loads::add_stage_flow(const model::Chain& chain, std::size_t z,
                           NodeId n1, NodeId n2, double fraction) {
  SWB_DCHECK(z >= 1 && z <= chain.stage_count());
  const double w = chain.forward_traffic[z - 1] * fraction;
  const double v = chain.reverse_traffic[z - 1] * fraction;
  ++version_;

  // Link load: forward direction follows r_{n1 n2 e}; reverse traffic of
  // the same stage crosses r_{n2 n1 e} (symmetric return, Section 5.3).
  if (n1 != n2) {
    if (w != 0.0) {
      for (const net::LinkShare& share : model_.routing().link_shares(n1, n2)) {
        link_load_[share.link.value()] += w * share.fraction;
        link_epoch_[share.link.value()] = version_;
      }
    }
    if (v != 0.0) {
      for (const net::LinkShare& share : model_.routing().link_shares(n2, n1)) {
        link_load_[share.link.value()] += v * share.fraction;
        link_epoch_[share.link.value()] = version_;
      }
    }
  }

  // Compute load on the VNF at the destination of stage z (entering
  // traffic) and on the VNF at the source (leaving traffic).
  const double stage_volume = w + v;
  if (z < chain.stage_count()) {
    const VnfId f = chain.vnfs[z - 1];
    const auto site = model_.site_at(n2);
    SWB_DCHECK(site.has_value());
    const double load = model_.vnf(f).load_per_unit * stage_volume;
    vnf_site_load_[vnf_site_index(f, *site)] += load;
    vnf_site_epoch_[vnf_site_index(f, *site)] = version_;
    site_load_[site->value()] += load;
  }
  if (z > 1) {
    const VnfId f = chain.vnfs[z - 2];
    const auto site = model_.site_at(n1);
    SWB_DCHECK(site.has_value());
    const double load = model_.vnf(f).load_per_unit * stage_volume;
    vnf_site_load_[vnf_site_index(f, *site)] += load;
    vnf_site_epoch_[vnf_site_index(f, *site)] = version_;
    site_load_[site->value()] += load;
  }
}

double Loads::link_load(LinkId e) const {
  SWB_DCHECK(e.value() < link_load_.size());
  return link_load_[e.value()];
}

double Loads::link_utilization(LinkId e) const {
  const net::Link& link = model_.topology().link(e);
  return (model_.background_traffic(e) + link_load(e)) / link.capacity;
}

double Loads::link_headroom(LinkId e) const {
  const net::Link& link = model_.topology().link(e);
  return model_.mlu_limit() * link.capacity - model_.background_traffic(e) -
         link_load(e);
}

double Loads::site_load(SiteId s) const {
  SWB_DCHECK(s.value() < site_load_.size());
  return site_load_[s.value()];
}

double Loads::site_utilization(SiteId s) const {
  const double cap = model_.site(s).compute_capacity;
  return cap > 0 ? site_load(s) / cap : 0.0;
}

double Loads::vnf_site_load(VnfId f, SiteId s) const {
  SWB_DCHECK(vnf_site_index(f, s) < vnf_site_load_.size());
  return vnf_site_load_[vnf_site_index(f, s)];
}

double Loads::vnf_site_utilization(VnfId f, SiteId s) const {
  const double cap = model_.vnf(f).capacity_at(s);
  return cap > 0 ? vnf_site_load(f, s) / cap : 0.0;
}

double Loads::vnf_site_headroom(VnfId f, SiteId s) const {
  return model_.vnf(f).capacity_at(s) - vnf_site_load(f, s);
}

double Loads::site_headroom(SiteId s) const {
  return model_.site(s).compute_capacity - site_load(s);
}

void Loads::check_invariants(double tolerance) const {
  SWB_CHECK_EQ(site_count_, model_.sites().size());
  SWB_CHECK_EQ(link_load_.size(), model_.topology().link_count());
  SWB_CHECK_EQ(site_load_.size(), site_count_);
  SWB_CHECK_EQ(vnf_site_load_.size(), model_.vnfs().size() * site_count_);
  SWB_CHECK_EQ(link_epoch_.size(), link_load_.size());
  SWB_CHECK_EQ(vnf_site_epoch_.size(), vnf_site_load_.size());
  for (const std::uint64_t e : link_epoch_) SWB_CHECK_LE(e, version_);
  for (const std::uint64_t e : vnf_site_epoch_) SWB_CHECK_LE(e, version_);

  for (std::size_t e = 0; e < link_load_.size(); ++e) {
    SWB_CHECK(std::isfinite(link_load_[e])) << "link " << e;
    SWB_CHECK_GE(link_load_[e], -tolerance) << "link " << e;
  }
  for (const double load : vnf_site_load_) {
    SWB_CHECK(std::isfinite(load) && load >= -tolerance);
  }
  // site_load_ is a denormalized sum over the site's VNF loads; the two
  // accountings must agree or removal (negative fraction) went wrong.
  for (std::size_t s = 0; s < site_count_; ++s) {
    double total = 0.0;
    for (std::size_t f = 0; f < model_.vnfs().size(); ++f) {
      total += vnf_site_load_[f * site_count_ + s];
    }
    SWB_CHECK_LE(std::abs(site_load_[s] - total),
                 tolerance * std::max(1.0, total))
        << "site " << s << " total drifted from its per-VNF sum";
  }
}

void Loads::check_no_capacity_violation(double tolerance) const {
  check_invariants(tolerance);
  for (std::size_t e = 0; e < link_load_.size(); ++e) {
    const LinkId link{static_cast<LinkId::underlying_type>(e)};
    SWB_CHECK_LE(model_.background_traffic(link) + link_load_[e],
                 model_.mlu_limit() * model_.topology().link(link).capacity +
                     tolerance)
        << "link " << e << " over its MLU budget";
  }
  for (std::size_t f = 0; f < model_.vnfs().size(); ++f) {
    for (std::size_t s = 0; s < site_count_; ++s) {
      const VnfId vnf{static_cast<VnfId::underlying_type>(f)};
      const SiteId site{static_cast<SiteId::underlying_type>(s)};
      if (!model_.vnf(vnf).deployed_at(site)) continue;
      SWB_CHECK_LE(vnf_site_load_[f * site_count_ + s],
                   model_.vnf(vnf).capacity_at(site) + tolerance)
          << "vnf " << f << " over capacity at site " << s;
    }
  }
}

}  // namespace switchboard::te
