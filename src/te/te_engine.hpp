// The TE engine: the fast path for the SB-DP chain router (Section 4.4).
//
// Three pieces, composable but usable separately:
//
//   * DpScratch — flat, reusable scratch buffers for the per-route DP
//     tables, candidate-endpoint lists, and the per-resource demand
//     accumulators of the admission check.  Owning one per solver (instead
//     of three unordered_maps and several vectors per route) removes every
//     steady-state allocation from the DP hot loop.
//
//   * EdgeCostCache — memoizes the two utilization-cost terms of the DP's
//     edge cost against a Loads object's change epochs.  The Fortz-Thorup
//     network term of a (n1, n2) pair is recomputed only when some link on
//     the pair's ECMP footprint changed since the cached value was stored
//     (a max-epoch-over-shares walk: one integer read per link instead of
//     a utilization division + piecewise-cost evaluation per link); the
//     compute term of a (vnf, site) is guarded by a single epoch compare.
//     Chains touch few links per residual round, so most pairs stay valid
//     between rounds and between consecutive chains.  Cached costs are
//     bit-identical to the uncached stage_edge_cost().
//
//   * TeEngine — owns Loads + DpScratch + EdgeCostCache + the running
//     solution, providing a full solve (equivalent to solve_dp_routing,
//     same bits, faster) and an incremental re-solve API: add/remove/
//     re-route one chain, or react to a link / (vnf, site) capacity change
//     by re-routing only the chains whose routes the change touches,
//     instead of recomputing every chain from scratch.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "model/network_model.hpp"
#include "te/dp_routing.hpp"
#include "te/loads.hpp"
#include "te/lp_routing.hpp"
#include "te/routing_solution.hpp"

namespace switchboard::te {

/// Reusable scratch for one DP solver; see file comment.  Sized lazily
/// against a model; safe to reuse across chains, rounds, and solves.
struct DpScratch {
  // Admission check: dense per-resource accumulators plus touched lists,
  // so one route's check costs O(route footprint), not O(resources).
  std::vector<double> link_demand;
  std::vector<double> site_demand;
  std::vector<double> vnf_site_demand;
  std::vector<std::size_t> touched_links;
  std::vector<std::size_t> touched_sites;
  std::vector<std::size_t> touched_vnf_sites;

  // Route search: filtered candidate endpoints and DP tables per stage.
  std::vector<std::vector<model::StageEndpoint>> dests;
  std::vector<std::vector<double>> cost;
  std::vector<std::vector<std::size_t>> prev;

  // The candidate route of the current round.
  std::vector<NodeId> route_nodes;
  std::vector<SiteId> route_sites;

  /// Grows the demand accumulators to the model's element counts (keeps
  /// contents zeroed; demand slots are reset after every use).
  void ensure_sized(const model::NetworkModel& model);
};

/// Epoch-validated cache of the utilization-cost terms of the DP edge
/// cost.  Bound to one (model, loads) pair; rebinding to different objects
/// resets it.  The cached Fortz-Thorup terms bake in the options'
/// utilization_cost function — call invalidate() if that changes between
/// calls (the scalar weights are applied outside the cache and may change
/// freely).  Capacity or background-traffic changes in the *model* are
/// invisible to Loads epochs: call invalidate() after mutating the model.
class EdgeCostCache {
 public:
  /// Prepares the cache for (model, loads); resets stored values when the
  /// identity or the element counts changed, or when the loads' version
  /// went backwards (a different Loads object at the same address).
  void bind(const model::NetworkModel& model, const Loads& loads);

  /// Drops every cached value (cheap: one stamp reset pass).
  void invalidate();

  /// cost(s', z, s) with memoized utilization terms; bit-identical to
  /// stage_edge_cost() on the same inputs.  Requires a prior bind() to
  /// this (model, loads).
  [[nodiscard]] double edge_cost(const model::NetworkModel& model,
                                 const Loads& loads,
                                 const DpOptions& options, NodeId n1,
                                 NodeId n2, VnfId dst_vnf, SiteId dst_site);

  // Effectiveness counters (validation-hit vs recompute), for tests.
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    double value{0.0};
    std::uint64_t stamp{0};     // Loads version at computation; 0 = empty
    std::uint64_t checked{0};   // Loads version at the last validation —
                                // equal to the current version means the
                                // epoch walk can be skipped outright
  };

  [[nodiscard]] double network_term(const model::NetworkModel& model,
                                    const Loads& loads,
                                    const DpOptions& options, NodeId n1,
                                    NodeId n2);
  [[nodiscard]] double compute_term(const Loads& loads,
                                    const DpOptions& options, VnfId f,
                                    SiteId s);

  const model::NetworkModel* model_{nullptr};
  const Loads* loads_{nullptr};
  std::uint64_t bound_version_{0};
  std::size_t n_{0};
  std::size_t site_count_{0};
  std::vector<Entry> pair_;       // n_ * n_, indexed n1 * n_ + n2
  std::vector<Entry> vnf_site_;   // |F| * site_count_
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
};

/// Stateful DP solver: full solve plus incremental re-solve.  The engine
/// assumes it is the sole writer of its Loads between calls; model
/// mutations (capacities, background traffic, new chains/deployments)
/// are picked up by the next call as documented per method.
class TeEngine {
 public:
  explicit TeEngine(const model::NetworkModel& model, DpOptions options = {});

  /// Routes every chain from scratch (same solution, bit for bit, as
  /// solve_dp_routing with the same options — asserted by tests).
  const DpResult& solve();

  /// Incremental: routes chain `c` (present in the model, not currently
  /// tracked by the engine) against current residual loads.  Appending a
  /// chain to the model and calling this is exactly equivalent to a full
  /// re-solve, because the full solve routes chains in id order.  Returns
  /// the admitted fraction in [0, 1].
  double add_chain(ChainId c);

  /// Incremental: removes chain `c`'s admitted flows from the loads and
  /// the solution (up to float round-off in the subtracted loads).
  void remove_chain(ChainId c);

  /// remove_chain + add_chain against the residual loads.
  double reroute_chain(ChainId c);

  /// The capacity of `link` changed in the model: re-routes (in id order)
  /// every tracked chain whose current routes cross the link, plus every
  /// chain that is not fully admitted (it may fit now).  Returns the
  /// number of chains re-routed.
  std::size_t on_link_capacity_changed(LinkId link);

  /// The (vnf, site) deployment capacity changed: same contract, for the
  /// chains placing `f` at `s` (plus partially-admitted chains).
  std::size_t on_vnf_site_capacity_changed(VnfId f, SiteId s);

  /// Drops cached edge costs (call after any model mutation the engine
  /// was not told about through the methods above).
  void invalidate_cost_cache() { cache_.invalidate(); }

  /// Background SB-LP refinement (the paper's split: SB-DP answers route
  /// requests immediately, SB-LP re-optimizes the whole routing in the
  /// background).  Solves the routing LP over the engine's model and
  /// remembers the optimal basis: subsequent calls warm-start from it, so
  /// a refinement after a small change re-solves in a few pivots instead
  /// of from scratch.  An explicit `options.warm_start` wins over the
  /// remembered basis; a formulation-shape change silently falls back to
  /// a cold solve.  The result stays cached until the next call.
  const LpRoutingResult& refine_with_lp(LpRoutingOptions options = {});

  /// True when the loads advanced past the state the last refine_with_lp
  /// call saw — i.e. a new refinement would observe different state.
  [[nodiscard]] bool lp_refresh_due() const {
    return loads_.version() != lp_refined_version_;
  }
  /// The last refine_with_lp result (default-constructed before any call).
  [[nodiscard]] const LpRoutingResult& lp_refinement() const {
    return lp_result_;
  }

  [[nodiscard]] const DpResult& result() const { return result_; }
  [[nodiscard]] const Loads& loads() const { return loads_; }
  [[nodiscard]] const DpOptions& options() const { return options_; }
  [[nodiscard]] const EdgeCostCache& cost_cache() const { return cache_; }
  /// True once `c` has been routed by solve()/add_chain and not removed.
  [[nodiscard]] bool tracks_chain(ChainId c) const;
  /// Admitted fraction of a tracked chain.
  [[nodiscard]] double routed_fraction(ChainId c) const;

  /// Tracked chains whose current routing places VNF `f` at site `s` — the
  /// blast radius of an instance failure there (recovery tests assert the
  /// incremental re-solve touches exactly these chains).
  [[nodiscard]] std::vector<ChainId> chains_placing(VnfId f, SiteId s) const;

  /// Audits the engine (aborts via SWB_CHECK on violation): loads and
  /// routing invariants hold, and the loads equal the loads re-accumulated
  /// from the routing within `tolerance` (incremental drift bound).
  void check_invariants(double tolerance = 1e-6) const;

 private:
  static constexpr double kUntracked = -1.0;

  double route_tracked_chain(ChainId c);
  /// Recomputes the DpResult summary counters from routed_fraction_
  /// (term order matches solve_dp_routing, so sums stay bit-identical).
  void refresh_summary();
  [[nodiscard]] bool chain_crosses_link(ChainId c, LinkId link) const;
  [[nodiscard]] bool chain_places_vnf_at(ChainId c, VnfId f, SiteId s) const;
  std::size_t reroute_affected(const std::vector<ChainId>& affected);

  const model::NetworkModel& model_;
  DpOptions options_;
  Loads loads_;
  DpResult result_;
  EdgeCostCache cache_;
  DpScratch scratch_;
  std::vector<double> routed_fraction_;   // per chain id; kUntracked = none
  LpRoutingResult lp_result_;             // last SB-LP refinement + basis
  std::uint64_t lp_refined_version_{0};   // Loads version it was solved at
};

}  // namespace switchboard::te
