#include "te/dp_routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace switchboard::te {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// cost(s', z, s): move stage-z traffic from node n1 to node n2, entering
/// the stage's destination VNF (if any) at `dst_site`.
double edge_cost(const model::NetworkModel& model, const Loads& loads,
                 const DpOptions& opt, NodeId n1, NodeId n2,
                 VnfId dst_vnf, SiteId dst_site) {
  double cost = model.delay_ms(n1, n2);
  if (!std::isfinite(cost)) return kInf;
  if (!opt.use_utilization_costs) return cost;

  if (n1 != n2) {
    double network = 0.0;
    for (const net::LinkShare& share : model.routing().link_shares(n1, n2)) {
      network +=
          share.fraction * opt.utilization_cost(
                               std::max(0.0, loads.link_utilization(share.link)));
    }
    cost += opt.network_cost_weight * network;
  }
  if (dst_vnf.valid()) {
    cost += opt.compute_cost_weight *
            opt.utilization_cost(
                std::max(0.0, loads.vnf_site_utilization(dst_vnf, dst_site)));
  }
  return cost;
}

/// The node/site sequence of one candidate route through the chain:
/// path[0] = ingress, path[K] = VNF K's site node, path[K+1] = egress.
struct CandidateRoute {
  std::vector<NodeId> nodes;
  std::vector<SiteId> sites;   // invalid at positions 0 and K+1
  bool found{false};
};

/// Full-chain DP (Eq. 8) or greedy per-hop (ONEHOP ablation).
CandidateRoute find_route(const model::NetworkModel& model, const Loads& loads,
                          const model::Chain& chain, const DpOptions& opt) {
  const std::size_t stages = chain.stage_count();
  CandidateRoute route;

  // Per stage z (1..K+1), candidate destinations with positive headroom.
  std::vector<std::vector<model::StageEndpoint>> dests(stages + 1);
  for (std::size_t z = 1; z <= stages; ++z) {
    for (const model::StageEndpoint& ep : model.stage_destinations(chain, z)) {
      if (z < stages) {
        const VnfId f = chain.vnfs[z - 1];
        if (opt.site_allowed && !opt.site_allowed(f, ep.site)) continue;
        if (loads.vnf_site_headroom(f, ep.site) <= 0.0) continue;
        if (loads.site_headroom(ep.site) <= 0.0) continue;
      }
      dests[z].push_back(ep);
    }
    if (dests[z].empty()) return route;   // no feasible site for some VNF
  }

  if (opt.per_hop) {
    // Greedy: from the current node, take the cheapest next endpoint.
    route.nodes.push_back(chain.ingress);
    route.sites.push_back(SiteId{});
    NodeId current = chain.ingress;
    for (std::size_t z = 1; z <= stages; ++z) {
      const VnfId dst_vnf = z < stages ? chain.vnfs[z - 1] : VnfId{};
      double best = kInf;
      std::size_t best_i = dests[z].size();
      for (std::size_t i = 0; i < dests[z].size(); ++i) {
        const model::StageEndpoint& ep = dests[z][i];
        const double c = edge_cost(model, loads, opt, current, ep.node,
                                   dst_vnf, ep.site);
        if (c < best) {
          best = c;
          best_i = i;
        }
      }
      if (best_i == dests[z].size()) return route;
      current = dests[z][best_i].node;
      route.nodes.push_back(current);
      route.sites.push_back(dests[z][best_i].site);
    }
    route.found = true;
    return route;
  }

  // Holistic DP over the whole chain.
  // E[z][i]: least cost of reaching dests[z][i]; prev[z][i]: argmin index.
  std::vector<std::vector<double>> E(stages + 1);
  std::vector<std::vector<std::size_t>> prev(stages + 1);
  std::vector<model::StageEndpoint> start{
      model::StageEndpoint{chain.ingress, SiteId{}}};

  for (std::size_t z = 1; z <= stages; ++z) {
    const auto& sources = z == 1 ? start : dests[z - 1];
    const VnfId dst_vnf = z < stages ? chain.vnfs[z - 1] : VnfId{};
    E[z].assign(dests[z].size(), kInf);
    prev[z].assign(dests[z].size(), 0);
    for (std::size_t i = 0; i < dests[z].size(); ++i) {
      const model::StageEndpoint& to = dests[z][i];
      for (std::size_t j = 0; j < sources.size(); ++j) {
        const double base = z == 1 ? 0.0 : E[z - 1][j];
        if (!std::isfinite(base)) continue;
        const double c = base + edge_cost(model, loads, opt, sources[j].node,
                                          to.node, dst_vnf, to.site);
        if (c < E[z][i]) {
          E[z][i] = c;
          prev[z][i] = j;
        }
      }
    }
  }

  // Egress stage has exactly one destination.
  SWB_DCHECK(dests[stages].size() == 1);
  if (!std::isfinite(E[stages][0])) return route;

  // Reconstruct back-to-front.
  route.nodes.assign(stages + 1, NodeId{});
  route.sites.assign(stages + 1, SiteId{});
  route.nodes[stages] = chain.egress;
  std::size_t index = 0;
  for (std::size_t z = stages; z >= 1; --z) {
    const std::size_t source_index = prev[z][index];
    if (z == 1) {
      route.nodes[0] = chain.ingress;
    } else {
      route.nodes[z - 1] = dests[z - 1][source_index].node;
      route.sites[z - 1] = dests[z - 1][source_index].site;
    }
    index = source_index;
  }
  route.found = true;
  return route;
}

/// Largest fraction of the chain the route can carry against residual
/// capacity (links under MLU, sites, VNF-site deployments).
double max_admissible_fraction(const model::NetworkModel& model,
                               const Loads& loads, const model::Chain& chain,
                               const CandidateRoute& route,
                               double remaining) {
  const std::size_t stages = chain.stage_count();

  // Per-unit-fraction loads this route imposes, aggregated per resource
  // (a link or a site can appear in several stages of the same chain).
  std::unordered_map<LinkId::underlying_type, double> link_demand;
  std::unordered_map<SiteId::underlying_type, double> site_demand;
  std::unordered_map<std::size_t, double> vnf_site_demand;   // f * S + s

  const std::size_t site_count = model.sites().size();
  for (std::size_t z = 1; z <= stages; ++z) {
    const NodeId n1 = route.nodes[z - 1];
    const NodeId n2 = route.nodes[z];
    const double w = chain.forward_traffic[z - 1];
    const double v = chain.reverse_traffic[z - 1];
    if (n1 != n2) {
      for (const net::LinkShare& share : model.routing().link_shares(n1, n2)) {
        link_demand[share.link.value()] += w * share.fraction;
      }
      for (const net::LinkShare& share : model.routing().link_shares(n2, n1)) {
        link_demand[share.link.value()] += v * share.fraction;
      }
    }
    if (z < stages) {
      const VnfId f = chain.vnfs[z - 1];
      const SiteId s = route.sites[z];
      const double load =
          model.vnf(f).load_per_unit * (w + v + chain.forward_traffic[z] +
                                        chain.reverse_traffic[z]);
      vnf_site_demand[static_cast<std::size_t>(f.value()) * site_count +
                      s.value()] += load;
      site_demand[s.value()] += load;
    }
  }

  double fraction = remaining;
  for (const auto& [link_raw, demand] : link_demand) {
    if (demand <= 0) continue;
    const double headroom = loads.link_headroom(LinkId{link_raw});
    fraction = std::min(fraction, std::max(0.0, headroom) / demand);
  }
  for (const auto& [site_raw, demand] : site_demand) {
    if (demand <= 0) continue;
    const double headroom = loads.site_headroom(SiteId{site_raw});
    fraction = std::min(fraction, std::max(0.0, headroom) / demand);
  }
  for (const auto& [key, demand] : vnf_site_demand) {
    if (demand <= 0) continue;
    const VnfId f{static_cast<VnfId::underlying_type>(key / site_count)};
    const SiteId s{static_cast<SiteId::underlying_type>(key % site_count)};
    const double headroom = loads.vnf_site_headroom(f, s);
    fraction = std::min(fraction, std::max(0.0, headroom) / demand);
  }
  return fraction;
}

}  // namespace

SingleRoute find_single_route(const model::NetworkModel& model,
                              const model::Chain& chain, const Loads& loads,
                              const DpOptions& options, double remaining) {
  const CandidateRoute candidate = find_route(model, loads, chain, options);
  SingleRoute route;
  if (!candidate.found) return route;
  route.nodes = candidate.nodes;
  route.sites = candidate.sites;
  route.admissible_fraction =
      max_admissible_fraction(model, loads, chain, candidate, remaining);
  route.found = true;
  return route;
}

double route_admissible_fraction(const model::NetworkModel& model,
                                 const model::Chain& chain,
                                 const std::vector<NodeId>& route_nodes,
                                 const std::vector<SiteId>& route_sites,
                                 const Loads& loads, double remaining) {
  CandidateRoute candidate;
  candidate.nodes = route_nodes;
  candidate.sites = route_sites;
  candidate.found = true;
  return max_admissible_fraction(model, loads, chain, candidate, remaining);
}

double route_chain_dp(const model::NetworkModel& model,
                      const model::Chain& chain, Loads& loads,
                      ChainRouting& routing, const DpOptions& options) {
  double remaining = 1.0;
  for (std::size_t round = 0;
       round < options.max_routes_per_chain && remaining > options.min_fraction;
       ++round) {
    const CandidateRoute route = find_route(model, loads, chain, options);
    if (!route.found) break;
    const double fraction =
        max_admissible_fraction(model, loads, chain, route, remaining);
    if (fraction <= options.min_fraction) break;
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      routing.add_flow(chain.id, z, route.nodes[z - 1], route.nodes[z],
                       fraction);
      loads.add_stage_flow(chain, z, route.nodes[z - 1], route.nodes[z],
                           fraction);
    }
    remaining -= fraction;
  }
  return 1.0 - remaining;
}

DpResult solve_dp_routing(const model::NetworkModel& model,
                          const DpOptions& options) {
  DpResult result;
  result.routing.resize(model.chains().size());
  Loads loads{model};
  for (const model::Chain& chain : model.chains()) {
    result.routing.init_chain(chain.id, chain.stage_count());
    result.demand_volume += chain.total_traffic();
    const double routed =
        route_chain_dp(model, chain, loads, result.routing, options);
    result.routed_volume += routed * chain.total_traffic();
    if (routed >= 1.0 - 1e-9) {
      ++result.fully_routed_chains;
    } else if (routed <= 1e-9) {
      ++result.unrouted_chains;
    }
  }
  return result;
}

}  // namespace switchboard::te
