#include "te/dp_routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "te/te_engine.hpp"

namespace switchboard::te {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Edge cost through the optional cache (identical bits either way).
inline double edge_cost(const model::NetworkModel& model, const Loads& loads,
                        const DpOptions& opt, EdgeCostCache* cache, NodeId n1,
                        NodeId n2, VnfId dst_vnf, SiteId dst_site) {
  if (cache != nullptr) {
    return cache->edge_cost(model, loads, opt, n1, n2, dst_vnf, dst_site);
  }
  return stage_edge_cost(model, loads, opt, n1, n2, dst_vnf, dst_site);
}

/// Full-chain DP (Eq. 8) or greedy per-hop (ONEHOP ablation).  On success
/// leaves the route in scratch.route_nodes / scratch.route_sites
/// (position 0 = ingress, position stage_count() = egress).
bool find_route(const model::NetworkModel& model, const Loads& loads,
                const model::Chain& chain, const DpOptions& opt,
                DpScratch& scratch, EdgeCostCache* cache) {
  const std::size_t stages = chain.stage_count();
  scratch.route_nodes.clear();
  scratch.route_sites.clear();

  // Per stage z (1..K+1), candidate destinations with positive headroom
  // (same order as model.stage_destinations: VNF deployment order).
  if (scratch.dests.size() < stages + 1) scratch.dests.resize(stages + 1);
  for (std::size_t z = 1; z <= stages; ++z) {
    auto& dests = scratch.dests[z];
    dests.clear();
    if (z == stages) {
      dests.push_back(model::StageEndpoint{chain.egress, SiteId{}});
    } else {
      const VnfId f = chain.vnfs[z - 1];
      for (const model::VnfDeployment& dep : model.vnf(f).deployments) {
        if (opt.site_allowed && !opt.site_allowed(f, dep.site)) continue;
        if (loads.vnf_site_headroom(f, dep.site) <= 0.0) continue;
        if (loads.site_headroom(dep.site) <= 0.0) continue;
        dests.push_back(
            model::StageEndpoint{model.site(dep.site).node, dep.site});
      }
    }
    if (dests.empty()) return false;   // no feasible site for some VNF
  }

  if (opt.per_hop) {
    // Greedy: from the current node, take the cheapest next endpoint.
    scratch.route_nodes.push_back(chain.ingress);
    scratch.route_sites.push_back(SiteId{});
    NodeId current = chain.ingress;
    for (std::size_t z = 1; z <= stages; ++z) {
      const auto& dests = scratch.dests[z];
      const VnfId dst_vnf = z < stages ? chain.vnfs[z - 1] : VnfId{};
      double best = kInf;
      std::size_t best_i = dests.size();
      for (std::size_t i = 0; i < dests.size(); ++i) {
        const model::StageEndpoint& ep = dests[i];
        const double c = edge_cost(model, loads, opt, cache, current, ep.node,
                                   dst_vnf, ep.site);
        if (c < best) {
          best = c;
          best_i = i;
        }
      }
      if (best_i == dests.size()) return false;
      current = dests[best_i].node;
      scratch.route_nodes.push_back(current);
      scratch.route_sites.push_back(dests[best_i].site);
    }
    return true;
  }

  // Holistic DP over the whole chain.
  // cost[z][i]: least cost of reaching dests[z][i]; prev[z][i]: argmin.
  if (scratch.cost.size() < stages + 1) {
    scratch.cost.resize(stages + 1);
    scratch.prev.resize(stages + 1);
  }
  const model::StageEndpoint start{chain.ingress, SiteId{}};

  for (std::size_t z = 1; z <= stages; ++z) {
    const auto& dests = scratch.dests[z];
    const model::StageEndpoint* sources = &start;
    std::size_t source_count = 1;
    if (z > 1) {
      sources = scratch.dests[z - 1].data();
      source_count = scratch.dests[z - 1].size();
    }
    const VnfId dst_vnf = z < stages ? chain.vnfs[z - 1] : VnfId{};
    scratch.cost[z].assign(dests.size(), kInf);
    scratch.prev[z].assign(dests.size(), 0);
    for (std::size_t i = 0; i < dests.size(); ++i) {
      const model::StageEndpoint& to = dests[i];
      for (std::size_t j = 0; j < source_count; ++j) {
        const double base = z == 1 ? 0.0 : scratch.cost[z - 1][j];
        if (!std::isfinite(base)) continue;
        const double c = base + edge_cost(model, loads, opt, cache,
                                          sources[j].node, to.node, dst_vnf,
                                          to.site);
        if (c < scratch.cost[z][i]) {
          scratch.cost[z][i] = c;
          scratch.prev[z][i] = j;
        }
      }
    }
  }

  // Egress stage has exactly one destination.
  SWB_DCHECK(scratch.dests[stages].size() == 1);
  if (!std::isfinite(scratch.cost[stages][0])) return false;

  // Reconstruct back-to-front.
  scratch.route_nodes.assign(stages + 1, NodeId{});
  scratch.route_sites.assign(stages + 1, SiteId{});
  scratch.route_nodes[stages] = chain.egress;
  std::size_t index = 0;
  for (std::size_t z = stages; z >= 1; --z) {
    const std::size_t source_index = scratch.prev[z][index];
    if (z == 1) {
      scratch.route_nodes[0] = chain.ingress;
    } else {
      scratch.route_nodes[z - 1] = scratch.dests[z - 1][source_index].node;
      scratch.route_sites[z - 1] = scratch.dests[z - 1][source_index].site;
    }
    index = source_index;
  }
  return true;
}

/// Largest fraction of the chain the route can carry against residual
/// capacity (links under MLU, sites, VNF-site deployments).  Uses the
/// scratch demand accumulators (left zeroed on return).
double max_admissible_fraction(const model::NetworkModel& model,
                               const Loads& loads, const model::Chain& chain,
                               const std::vector<NodeId>& route_nodes,
                               const std::vector<SiteId>& route_sites,
                               double remaining, DpScratch& scratch) {
  const std::size_t stages = chain.stage_count();
  scratch.ensure_sized(model);
  SWB_DCHECK(scratch.touched_links.empty());

  // Per-unit-fraction loads this route imposes, aggregated per resource
  // (a link or a site can appear in several stages of the same chain).
  const std::size_t site_count = model.sites().size();
  const auto accumulate = [](std::vector<double>& demand,
                             std::vector<std::size_t>& touched,
                             std::size_t index, double amount) {
    double& slot = demand[index];
    if (slot == 0.0) touched.push_back(index);
    slot += amount;
  };

  for (std::size_t z = 1; z <= stages; ++z) {
    const NodeId n1 = route_nodes[z - 1];
    const NodeId n2 = route_nodes[z];
    const double w = chain.forward_traffic[z - 1];
    const double v = chain.reverse_traffic[z - 1];
    if (n1 != n2) {
      if (w != 0.0) {
        for (const net::LinkShare& share :
             model.routing().link_shares(n1, n2)) {
          accumulate(scratch.link_demand, scratch.touched_links,
                     share.link.value(), w * share.fraction);
        }
      }
      if (v != 0.0) {
        for (const net::LinkShare& share :
             model.routing().link_shares(n2, n1)) {
          accumulate(scratch.link_demand, scratch.touched_links,
                     share.link.value(), v * share.fraction);
        }
      }
    }
    if (z < stages) {
      const VnfId f = chain.vnfs[z - 1];
      const SiteId s = route_sites[z];
      const double load =
          model.vnf(f).load_per_unit * (w + v + chain.forward_traffic[z] +
                                        chain.reverse_traffic[z]);
      accumulate(scratch.vnf_site_demand, scratch.touched_vnf_sites,
                 static_cast<std::size_t>(f.value()) * site_count + s.value(),
                 load);
      accumulate(scratch.site_demand, scratch.touched_sites, s.value(), load);
    }
  }

  double fraction = remaining;
  for (const std::size_t link_raw : scratch.touched_links) {
    const double demand = scratch.link_demand[link_raw];
    scratch.link_demand[link_raw] = 0.0;
    if (demand <= 0) continue;
    const double headroom = loads.link_headroom(
        LinkId{static_cast<LinkId::underlying_type>(link_raw)});
    fraction = std::min(fraction, std::max(0.0, headroom) / demand);
  }
  for (const std::size_t site_raw : scratch.touched_sites) {
    const double demand = scratch.site_demand[site_raw];
    scratch.site_demand[site_raw] = 0.0;
    if (demand <= 0) continue;
    const double headroom = loads.site_headroom(
        SiteId{static_cast<SiteId::underlying_type>(site_raw)});
    fraction = std::min(fraction, std::max(0.0, headroom) / demand);
  }
  for (const std::size_t key : scratch.touched_vnf_sites) {
    const double demand = scratch.vnf_site_demand[key];
    scratch.vnf_site_demand[key] = 0.0;
    if (demand <= 0) continue;
    const VnfId f{static_cast<VnfId::underlying_type>(key / site_count)};
    const SiteId s{static_cast<SiteId::underlying_type>(key % site_count)};
    const double headroom = loads.vnf_site_headroom(f, s);
    fraction = std::min(fraction, std::max(0.0, headroom) / demand);
  }
  scratch.touched_links.clear();
  scratch.touched_sites.clear();
  scratch.touched_vnf_sites.clear();
  return fraction;
}

}  // namespace

double stage_edge_cost(const model::NetworkModel& model, const Loads& loads,
                       const DpOptions& options, NodeId n1, NodeId n2,
                       VnfId dst_vnf, SiteId dst_site) {
  double cost = model.delay_ms(n1, n2);
  if (!std::isfinite(cost)) return kInf;
  if (!options.use_utilization_costs) return cost;

  if (n1 != n2) {
    double network = 0.0;
    for (const net::LinkShare& share : model.routing().link_shares(n1, n2)) {
      network += share.fraction *
                 options.utilization_cost(
                     std::max(0.0, loads.link_utilization(share.link)));
    }
    cost += options.network_cost_weight * network;
  }
  if (dst_vnf.valid()) {
    cost += options.compute_cost_weight *
            options.utilization_cost(
                std::max(0.0, loads.vnf_site_utilization(dst_vnf, dst_site)));
  }
  return cost;
}

SingleRoute find_single_route(const model::NetworkModel& model,
                              const model::Chain& chain, const Loads& loads,
                              const DpOptions& options, double remaining,
                              TeContext ctx) {
  DpScratch local;
  DpScratch& scratch = ctx.scratch != nullptr ? *ctx.scratch : local;
  if (ctx.cache != nullptr) ctx.cache->bind(model, loads);

  SingleRoute route;
  if (!find_route(model, loads, chain, options, scratch, ctx.cache)) {
    return route;
  }
  route.admissible_fraction =
      max_admissible_fraction(model, loads, chain, scratch.route_nodes,
                              scratch.route_sites, remaining, scratch);
  route.nodes = scratch.route_nodes;
  route.sites = scratch.route_sites;
  route.found = true;
  return route;
}

double route_admissible_fraction(const model::NetworkModel& model,
                                 const model::Chain& chain,
                                 const std::vector<NodeId>& route_nodes,
                                 const std::vector<SiteId>& route_sites,
                                 const Loads& loads, double remaining) {
  DpScratch scratch;
  return max_admissible_fraction(model, loads, chain, route_nodes,
                                 route_sites, remaining, scratch);
}

double route_chain_dp(const model::NetworkModel& model,
                      const model::Chain& chain, Loads& loads,
                      ChainRouting& routing, const DpOptions& options,
                      TeContext ctx) {
  DpScratch local;
  DpScratch& scratch = ctx.scratch != nullptr ? *ctx.scratch : local;
  if (ctx.cache != nullptr) ctx.cache->bind(model, loads);

  double remaining = 1.0;
  for (std::size_t round = 0;
       round < options.max_routes_per_chain && remaining > options.min_fraction;
       ++round) {
    if (!find_route(model, loads, chain, options, scratch, ctx.cache)) break;
    const double fraction =
        max_admissible_fraction(model, loads, chain, scratch.route_nodes,
                                scratch.route_sites, remaining, scratch);
    if (fraction <= options.min_fraction) break;
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      routing.add_flow(chain.id, z, scratch.route_nodes[z - 1],
                       scratch.route_nodes[z], fraction);
      loads.add_stage_flow(chain, z, scratch.route_nodes[z - 1],
                           scratch.route_nodes[z], fraction);
    }
    remaining -= fraction;
  }
  return 1.0 - remaining;
}

DpResult solve_dp_routing(const model::NetworkModel& model,
                          const DpOptions& options, TeContext ctx) {
  DpScratch local;
  TeContext inner = ctx;
  if (inner.scratch == nullptr) inner.scratch = &local;

  DpResult result;
  result.routing.resize(model.chains().size());
  Loads loads{model};
  for (const model::Chain& chain : model.chains()) {
    result.routing.init_chain(chain.id, chain.stage_count());
    result.demand_volume += chain.total_traffic();
    const double routed =
        route_chain_dp(model, chain, loads, result.routing, options, inner);
    result.routed_volume += routed * chain.total_traffic();
    if (routed >= 1.0 - 1e-9) {
      ++result.fully_routed_chains;
    } else if (routed <= 1e-9) {
      ++result.unrouted_chains;
    }
  }
  return result;
}

}  // namespace switchboard::te
