#include "te/lp_routing.hpp"
#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "lp/problem.hpp"
#include "te/lp_routing_detail.hpp"

namespace switchboard::te {

namespace detail {

BuiltLp build_routing_lp(const model::NetworkModel& model,
                         const LpRoutingOptions& options) {
  using lp::Relation;
  using lp::Term;
  using lp::VarIndex;

  const bool minimize = options.objective == LpObjective::kMinLatency;
  BuiltLp built;
  built.problem.set_sense(minimize ? lp::Sense::kMinimize
                                   : lp::Sense::kMaximize);
  lp::Problem& problem = built.problem;

  const auto& chains = model.chains();
  const std::size_t site_count = model.sites().size();

  // ---- variables -----------------------------------------------------
  // The latency objective coefficient is attached at creation; throughput
  // modes negate it as a tie-break.
  const double latency_sign = minimize ? 1.0 : -options.latency_tiebreak;
  built.vars.resize(chains.size());
  for (const model::Chain& chain : chains) {
    auto& stage_vars = built.vars[chain.id.value()];
    stage_vars.resize(chain.stage_count());
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      StageVars& sv = stage_vars[z - 1];
      sv.sources = model.stage_sources(chain, z);
      sv.dests = model.stage_destinations(chain, z);
      sv.base = problem.variable_count();
      const double stage_traffic = chain.stage_traffic(z);
      for (std::size_t i = 0; i < sv.sources.size(); ++i) {
        for (std::size_t j = 0; j < sv.dests.size(); ++j) {
          const double delay =
              model.delay_ms(sv.sources[i].node, sv.dests[j].node);
          if (std::isfinite(delay)) {
            problem.add_variable(latency_sign * stage_traffic * delay);
          } else {
            // Unreachable pair: keep the variable so var() arithmetic
            // stays trivial, but pin it to zero via its bounds instead of
            // a penalty coefficient (which distorted the objective).
            const lp::VarIndex v = problem.add_variable(0.0);
            problem.set_upper_bound(v, 0.0);
          }
        }
      }
    }
  }

  // Mode variables.
  built.planning = options.cloud_capacity_budget >= 0.0 &&
                   options.objective == LpObjective::kMaxUniformScale;
  if (options.objective == LpObjective::kMaxUniformScale) {
    built.alpha_var = problem.add_variable(1.0, "alpha");
    if (built.planning) {
      std::vector<Term> budget_terms;
      for (const model::CloudSite& site : model.sites()) {
        const VarIndex a = problem.add_variable(0.0, "a_" + site.name);
        built.a_vars.push_back(a);
        budget_terms.push_back({a, 1.0});
      }
      problem.add_constraint(Relation::kLessEqual,
                             options.cloud_capacity_budget,
                             std::move(budget_terms), "capacity_budget");
    }
  } else if (options.objective == LpObjective::kMaxThroughput) {
    built.t_vars.reserve(chains.size());
    for (const model::Chain& chain : chains) {
      const VarIndex t = problem.add_variable(chain.total_traffic(),
                                              "t_" + chain.name);
      problem.set_upper_bound(t, 1.0);   // carried fraction t_c <= 1
      built.t_vars.push_back(t);
    }
  }

  // ---- ingress coupling + flow conservation ---------------------------
  for (const model::Chain& chain : chains) {
    const auto& stage_vars = built.vars[chain.id.value()];
    const StageVars& first = stage_vars[0];

    std::vector<Term> ingress_terms;
    for (std::size_t j = 0; j < first.dests.size(); ++j) {
      ingress_terms.push_back({first.var(0, j), 1.0});
    }
    switch (options.objective) {
      case LpObjective::kMinLatency:
        problem.add_constraint(Relation::kEqual, 1.0,
                               std::move(ingress_terms));
        break;
      case LpObjective::kMaxThroughput:
        ingress_terms.push_back({built.t_vars[chain.id.value()], -1.0});
        problem.add_constraint(Relation::kEqual, 0.0,
                               std::move(ingress_terms));
        break;
      case LpObjective::kMaxUniformScale:
        ingress_terms.push_back({built.alpha_var, -1.0});
        problem.add_constraint(Relation::kEqual, 0.0,
                               std::move(ingress_terms));
        break;
    }

    // Eq. 5: traffic entering the VNF of stage z at a site equals traffic
    // leaving at stage z+1.
    for (std::size_t z = 1; z < chain.stage_count(); ++z) {
      const StageVars& in = stage_vars[z - 1];
      const StageVars& out = stage_vars[z];
      SWB_DCHECK(in.dests.size() == out.sources.size());
      for (std::size_t s = 0; s < in.dests.size(); ++s) {
        std::vector<Term> terms;
        for (std::size_t i = 0; i < in.sources.size(); ++i) {
          terms.push_back({in.var(i, s), 1.0});
        }
        for (std::size_t j = 0; j < out.dests.size(); ++j) {
          terms.push_back({out.var(s, j), -1.0});
        }
        problem.add_constraint(Relation::kEqual, 0.0, std::move(terms));
      }
    }
  }

  // ---- compute capacity (Eq. 4) ---------------------------------------
  // Accumulate terms per (vnf, site) and per site.
  std::vector<std::vector<Term>> vnf_site_terms(model.vnfs().size() *
                                                site_count);
  std::vector<std::vector<Term>> site_terms(site_count);
  for (const model::Chain& chain : chains) {
    const auto& stage_vars = built.vars[chain.id.value()];
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      const StageVars& sv = stage_vars[z - 1];
      const double stage_traffic = chain.stage_traffic(z);
      for (std::size_t i = 0; i < sv.sources.size(); ++i) {
        for (std::size_t j = 0; j < sv.dests.size(); ++j) {
          const VarIndex x = sv.var(i, j);
          if (z < chain.stage_count()) {
            const VnfId f = chain.vnfs[z - 1];
            const SiteId s = sv.dests[j].site;
            const double load = model.vnf(f).load_per_unit * stage_traffic;
            vnf_site_terms[f.value() * site_count + s.value()].push_back(
                {x, load});
            site_terms[s.value()].push_back({x, load});
          }
          if (z > 1) {
            const VnfId f = chain.vnfs[z - 2];
            const SiteId s = sv.sources[i].site;
            const double load = model.vnf(f).load_per_unit * stage_traffic;
            vnf_site_terms[f.value() * site_count + s.value()].push_back(
                {x, load});
            site_terms[s.value()].push_back({x, load});
          }
        }
      }
    }
  }
  for (const model::Vnf& vnf : model.vnfs()) {
    for (const model::VnfDeployment& dep : vnf.deployments) {
      auto& terms = vnf_site_terms[vnf.id.value() * site_count +
                                   dep.site.value()];
      if (terms.empty()) continue;
      if (built.planning) {
        // VNF capacity grows proportionally with its site's expansion.
        const double site_cap = model.site(dep.site).compute_capacity;
        if (site_cap > 0) {
          terms.push_back(
              {built.a_vars[dep.site.value()], -dep.capacity / site_cap});
        }
      }
      problem.add_constraint(Relation::kLessEqual, dep.capacity,
                             std::move(terms));
    }
  }
  for (const model::CloudSite& site : model.sites()) {
    auto& terms = site_terms[site.id.value()];
    if (terms.empty()) continue;
    if (built.planning) {
      terms.push_back({built.a_vars[site.id.value()], -1.0});
    }
    problem.add_constraint(Relation::kLessEqual, site.compute_capacity,
                           std::move(terms));
  }

  // ---- MLU bound (Eqs. 6-7) -------------------------------------------
  if (options.enforce_mlu) {
    std::vector<std::vector<Term>> link_terms(model.topology().link_count());
    for (const model::Chain& chain : chains) {
      const auto& stage_vars = built.vars[chain.id.value()];
      for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
        const StageVars& sv = stage_vars[z - 1];
        const double w = chain.forward_traffic[z - 1];
        const double v = chain.reverse_traffic[z - 1];
        for (std::size_t i = 0; i < sv.sources.size(); ++i) {
          for (std::size_t j = 0; j < sv.dests.size(); ++j) {
            const NodeId n1 = sv.sources[i].node;
            const NodeId n2 = sv.dests[j].node;
            if (n1 == n2) continue;
            const VarIndex x = sv.var(i, j);
            for (const net::LinkShare& share :
                 model.routing().link_shares(n1, n2)) {
              link_terms[share.link.value()].push_back(
                  {x, w * share.fraction});
            }
            for (const net::LinkShare& share :
                 model.routing().link_shares(n2, n1)) {
              link_terms[share.link.value()].push_back(
                  {x, v * share.fraction});
            }
          }
        }
      }
    }
    for (const net::Link& link : model.topology().links()) {
      auto& terms = link_terms[link.id.value()];
      if (terms.empty()) continue;
      const double budget = model.mlu_limit() * link.capacity -
                            model.background_traffic(link.id);
      problem.add_constraint(Relation::kLessEqual, budget, std::move(terms));
    }
  }

  return built;
}

void extract_routing(const model::NetworkModel& model, const BuiltLp& built,
                     const std::vector<double>& values,
                     const LpRoutingOptions& options,
                     LpRoutingResult& result) {
  const auto& chains = model.chains();
  result.routing.resize(chains.size());
  for (const model::Chain& chain : chains) {
    result.routing.init_chain(chain.id, chain.stage_count());
    const auto& stage_vars = built.vars[chain.id.value()];
    for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
      const StageVars& sv = stage_vars[z - 1];
      for (std::size_t i = 0; i < sv.sources.size(); ++i) {
        for (std::size_t j = 0; j < sv.dests.size(); ++j) {
          const double x = values[sv.var(i, j)];
          if (x > 1e-9) {
            result.routing.add_flow(chain.id, z, sv.sources[i].node,
                                    sv.dests[j].node, x);
          }
        }
      }
    }
  }
  if (options.objective == LpObjective::kMaxUniformScale) {
    result.alpha = values[built.alpha_var];
    if (built.planning) {
      result.extra_site_capacity.reserve(built.a_vars.size());
      for (const lp::VarIndex a : built.a_vars) {
        result.extra_site_capacity.push_back(values[a]);
      }
    }
  }
  if (options.objective == LpObjective::kMaxThroughput) {
    for (const model::Chain& chain : chains) {
      result.carried_volume +=
          chain.total_traffic() * values[built.t_vars[chain.id.value()]];
    }
  }
}

}  // namespace detail

LpRoutingResult solve_lp_routing(const model::NetworkModel& model,
                                 const LpRoutingOptions& options) {
  detail::BuiltLp built = detail::build_routing_lp(model, options);
  LpRoutingResult result;
  const lp::Solution solution =
      lp::solve_simplex(built.problem, options.simplex, options.warm_start);
  result.status = solution.status;
  result.stats = solution.stats;
  if (!solution.optimal()) return result;
  result.objective = solution.objective;
  result.basis = solution.basis;
  detail::extract_routing(model, built, solution.values, options, result);
  return result;
}

std::optional<std::vector<SiteId>> primary_route_sites(
    const model::NetworkModel& model, const ChainRouting& routing,
    ChainId chain) {
  if (!routing.has_chain(chain)) return std::nullopt;
  const model::Chain& spec = model.chain(chain);
  const std::size_t stages = spec.vnfs.size();
  if (routing.stage_count(chain) < stages) return std::nullopt;

  std::vector<SiteId> sites;
  sites.reserve(stages);
  NodeId current = spec.ingress;
  for (std::size_t z = 1; z <= stages; ++z) {
    const StageFlow* best = nullptr;
    for (const StageFlow& flow : routing.flows(chain, z)) {
      if (flow.src != current || flow.fraction <= 0.0) continue;
      if (best == nullptr || flow.fraction > best->fraction ||
          (flow.fraction == best->fraction &&
           flow.dst.value() < best->dst.value())) {
        best = &flow;
      }
    }
    if (best == nullptr) return std::nullopt;
    const std::optional<SiteId> site = model.site_at(best->dst);
    if (!site.has_value()) return std::nullopt;   // not a deployment site
    sites.push_back(*site);
    current = best->dst;
  }
  return sites;
}

}  // namespace switchboard::te
