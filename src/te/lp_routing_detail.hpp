// Internal: the raw LP built by solve_lp_routing, exposed so that the
// VNF-placement MIP (capacity_planning.cpp) can add gating variables and
// constraints on top of the same formulation.
#pragma once

#include <vector>

#include "lp/problem.hpp"
#include "model/network_model.hpp"
#include "te/lp_routing.hpp"

namespace switchboard::te::detail {

/// Index bookkeeping for the x_{c z i j} variables of one chain stage.
struct StageVars {
  std::vector<model::StageEndpoint> sources;
  std::vector<model::StageEndpoint> dests;
  std::size_t base{0};   // first VarIndex; row-major [source][dest]

  [[nodiscard]] lp::VarIndex var(std::size_t i, std::size_t j) const {
    return base + i * dests.size() + j;
  }
};

struct BuiltLp {
  lp::Problem problem;
  /// vars[chain][z-1] describes stage z of that chain.
  std::vector<std::vector<StageVars>> vars;
  lp::VarIndex alpha_var{0};
  std::vector<lp::VarIndex> t_vars;
  std::vector<lp::VarIndex> a_vars;
  bool planning{false};
};

[[nodiscard]] BuiltLp build_routing_lp(const model::NetworkModel& model,
                                       const LpRoutingOptions& options);

/// Fills routing/alpha/carried_volume of `result` from solved values.
void extract_routing(const model::NetworkModel& model, const BuiltLp& built,
                     const std::vector<double>& values,
                     const LpRoutingOptions& options,
                     LpRoutingResult& result);

}  // namespace switchboard::te::detail
