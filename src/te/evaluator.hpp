// Scores a finished ChainRouting against the model: aggregate/weighted
// latency (Eq. 3), per-resource loads, the carried traffic volume, and the
// maximum uniform demand scale the routing sustains (used as the throughput
// metric in Figures 12 and 13).
#pragma once

#include "model/network_model.hpp"
#include "te/loads.hpp"
#include "te/routing_solution.hpp"

namespace switchboard::te {

struct RoutingMetrics {
  /// Traffic-weighted mean stage latency in ms (Eq. 3 normalized by the
  /// carried volume).  0 when nothing is carried.
  double mean_latency_ms{0.0};
  /// Eq. 3 exactly: sum over flows of (w+v) * d * x.
  double aggregate_latency{0.0};
  /// Total demand volume (sum of stage traffic over all chains).
  double demand_volume{0.0};
  /// Volume actually carried by the routing.
  double carried_volume{0.0};
  /// Largest uniform factor `a` such that scaling the *carried* loads by
  /// `a` violates no link (MLU), site, or VNF-site capacity.
  /// +inf when the routing uses no capacitated resource.
  double max_uniform_scale{0.0};
  /// min(1, max_uniform_scale) * carried_volume: traffic the scheme can
  /// actually deliver under the given demand without overload.
  double feasible_throughput{0.0};
  /// Maximum link utilization (background + switchboard).
  double max_link_utilization{0.0};
  /// True when every carried load fits within capacities (scale >= 1).
  bool feasible{false};
};

/// Builds the load state implied by `routing`.
[[nodiscard]] Loads accumulate_loads(const model::NetworkModel& model,
                                     const ChainRouting& routing);

/// Computes all metrics for `routing`.
[[nodiscard]] RoutingMetrics evaluate(const model::NetworkModel& model,
                                      const ChainRouting& routing);

}  // namespace switchboard::te
