#include "cache/lru_cache.hpp"

#include "common/check.hpp"

namespace switchboard::cache {

LruCache::LruCache(std::uint64_t capacity_bytes) : capacity_{capacity_bytes} {
  SWB_CHECK(capacity_bytes > 0);
}

bool LruCache::request(ObjectId object, std::uint64_t size_bytes) {
  const auto it = index_.find(object);
  if (it != index_.end()) {
    ++stats_.hits;
    stats_.bytes_served_from_cache += it->second->size;
    lru_.splice(lru_.begin(), lru_, it->second);   // promote
    return true;
  }
  ++stats_.misses;
  stats_.bytes_fetched += size_bytes;
  if (size_bytes > capacity_) return false;   // never admitted
  evict_until_fits(size_bytes);
  lru_.push_front(Entry{object, size_bytes});
  index_[object] = lru_.begin();
  used_ += size_bytes;
  return false;
}

bool LruCache::contains(ObjectId object) const {
  return index_.find(object) != index_.end();
}

void LruCache::evict_until_fits(std::uint64_t needed) {
  while (used_ + needed > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.size;
    index_.erase(victim.object);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void LruCache::clear() {
  lru_.clear();
  index_.clear();
  used_ = 0;
}

}  // namespace switchboard::cache
