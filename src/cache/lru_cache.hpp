// Byte-capacity LRU object cache — the web-cache VNF (Squid substitute)
// used in the shared-vs-siloed experiment of Section 7.2 (Table 3).
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace switchboard::cache {

using ObjectId = std::uint64_t;

struct CacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};
  std::uint64_t evictions{0};
  std::uint64_t bytes_served_from_cache{0};
  std::uint64_t bytes_fetched{0};

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class LruCache {
 public:
  explicit LruCache(std::uint64_t capacity_bytes);

  /// Requests an object of `size_bytes`.  On hit, the object is promoted;
  /// on miss, it is admitted (evicting LRU objects as needed).  Objects
  /// larger than the whole cache are never admitted.
  /// Returns true on hit.
  bool request(ObjectId object, std::uint64_t size_bytes);

  /// Peeks without promoting or admitting.
  [[nodiscard]] bool contains(ObjectId object) const;

  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  [[nodiscard]] std::size_t object_count() const { return index_.size(); }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void clear();

 private:
  struct Entry {
    ObjectId object;
    std::uint64_t size;
  };

  void evict_until_fits(std::uint64_t needed);

  std::uint64_t capacity_;
  std::uint64_t used_{0};
  std::list<Entry> lru_;   // front = most recent
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace switchboard::cache
