#include "cache/web_workload.hpp"

#include <cmath>

#include "dataplane/packet.hpp"   // mix64

namespace switchboard::cache {

WebWorkload::WebWorkload(const WorkloadParams& params)
    : params_{params},
      zipf_{params.object_count, params.zipf_exponent},
      rng_{params.seed} {}

std::uint64_t WebWorkload::object_size(ObjectId object) const {
  // Deterministic exponential-ish size around the mean: invert a uniform
  // derived from the object id.  Clamp to [1 KB, 20 x mean].
  const std::uint64_t h = dataplane::mix64(object ^ params_.seed);
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u <= 0.0) u = 1e-12;
  const double mean = static_cast<double>(params_.mean_object_bytes);
  double size = -mean * std::log(u);
  size = std::max(1024.0, std::min(size, 20.0 * mean));
  return static_cast<std::uint64_t>(size);
}

WebWorkload::Request WebWorkload::next() {
  const ObjectId object = zipf_.sample(rng_);
  return Request{object, object_size(object)};
}

}  // namespace switchboard::cache
