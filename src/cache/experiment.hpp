// Shared-vs-siloed cache experiment (Section 7.2, Table 3).
//
// Five service chains use a web-cache VNF.  In the *shared* deployment one
// cache instance serves all chains (the service-oriented design: a VNF
// controller may share instances across chains); in the *siloed*
// deployment each chain gets its own instance with one-fifth the capacity
// (the unified-controller approach of E2/Stratos).  Chains request objects
// from a common universe, so a shared cache reuses objects across chains.
//
// The download-time model mirrors the testbed: clients and caches colocate
// at one site; origin servers sit across a wide-area RTT.  A hit costs the
// local RTT plus transfer at the edge bandwidth; a miss adds the wide-area
// RTT and transfer at the (slower) origin bandwidth.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/web_workload.hpp"

namespace switchboard::cache {

struct ExperimentParams {
  std::size_t chain_count{5};
  std::uint64_t total_cache_bytes{512ull * 1024 * 1024};
  std::size_t requests_per_chain{200'000};
  WorkloadParams workload{};

  double wide_area_rtt_ms{60.0};   // paper: two Amazon sites, 60 ms RTT
  double local_rtt_ms{2.0};
  double edge_bandwidth_bytes_per_ms{1.0 * 1024 * 1024};    // ~8 Gbps
  double origin_bandwidth_bytes_per_ms{0.25 * 1024 * 1024}; // WAN path
};

struct ExperimentResult {
  double hit_rate{0.0};
  double mean_download_ms{0.0};
  std::uint64_t requests{0};
};

/// One cache instance of `total_cache_bytes` shared by all chains.
[[nodiscard]] ExperimentResult run_shared(const ExperimentParams& params);

/// One instance per chain, each with total/chains capacity.
[[nodiscard]] ExperimentResult run_siloed(const ExperimentParams& params);

/// Download time of one request under the experiment's latency model.
[[nodiscard]] double download_time_ms(const ExperimentParams& params,
                                      bool hit, std::uint64_t size_bytes);

}  // namespace switchboard::cache
