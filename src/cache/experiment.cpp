#include "cache/experiment.hpp"
#include <memory>

#include "common/check.hpp"

namespace switchboard::cache {

double download_time_ms(const ExperimentParams& params, bool hit,
                        std::uint64_t size_bytes) {
  if (hit) {
    return params.local_rtt_ms +
           static_cast<double>(size_bytes) /
               params.edge_bandwidth_bytes_per_ms;
  }
  return params.local_rtt_ms + params.wide_area_rtt_ms +
         static_cast<double>(size_bytes) /
             params.origin_bandwidth_bytes_per_ms;
}

namespace {

/// Runs the request streams of all chains round-robin (interleaved, as
/// concurrent chains would be) against per-chain caches.
/// `cache_of[i]` maps chain i to its cache.
ExperimentResult run(const ExperimentParams& params,
                     std::vector<LruCache*> cache_of) {
  SWB_CHECK(cache_of.size() == params.chain_count);
  std::vector<WebWorkload> workloads;
  workloads.reserve(params.chain_count);
  for (std::size_t c = 0; c < params.chain_count; ++c) {
    WorkloadParams wp = params.workload;
    wp.seed = params.workload.seed + c + 1;   // independent request streams
    workloads.emplace_back(wp);
  }

  ExperimentResult result;
  double total_download_ms = 0.0;
  std::uint64_t hits = 0;
  for (std::size_t r = 0; r < params.requests_per_chain; ++r) {
    for (std::size_t c = 0; c < params.chain_count; ++c) {
      const WebWorkload::Request request = workloads[c].next();
      const bool hit = cache_of[c]->request(request.object,
                                            request.size_bytes);
      if (hit) ++hits;
      total_download_ms += download_time_ms(params, hit, request.size_bytes);
      ++result.requests;
    }
  }
  result.hit_rate = result.requests == 0
      ? 0.0
      : static_cast<double>(hits) / static_cast<double>(result.requests);
  result.mean_download_ms =
      result.requests == 0
          ? 0.0
          : total_download_ms / static_cast<double>(result.requests);
  return result;
}

}  // namespace

ExperimentResult run_shared(const ExperimentParams& params) {
  LruCache shared{params.total_cache_bytes};
  std::vector<LruCache*> cache_of(params.chain_count, &shared);
  return run(params, std::move(cache_of));
}

ExperimentResult run_siloed(const ExperimentParams& params) {
  std::vector<std::unique_ptr<LruCache>> caches;
  std::vector<LruCache*> cache_of;
  for (std::size_t c = 0; c < params.chain_count; ++c) {
    caches.push_back(std::make_unique<LruCache>(
        params.total_cache_bytes / params.chain_count));
    cache_of.push_back(caches.back().get());
  }
  return run(params, std::move(cache_of));
}

}  // namespace switchboard::cache
