// Web request workload for the cache experiment (Section 7.2): object
// popularity follows Zipf (exponent 1 in the paper), object sizes follow a
// distribution with a 50 KB mean, and size is a pure function of the
// object id (the same object always has the same size).
#pragma once

#include <cstdint>

#include "cache/lru_cache.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace switchboard::cache {

struct WorkloadParams {
  std::size_t object_count{100'000};
  double zipf_exponent{1.0};
  std::uint64_t mean_object_bytes{50 * 1024};
  std::uint64_t seed{21};
};

class WebWorkload {
 public:
  explicit WebWorkload(const WorkloadParams& params);

  struct Request {
    ObjectId object;
    std::uint64_t size_bytes;
  };

  /// Draws the next request.
  [[nodiscard]] Request next();

  /// Size of a given object (deterministic in the object id).
  [[nodiscard]] std::uint64_t object_size(ObjectId object) const;

  [[nodiscard]] const WorkloadParams& params() const { return params_; }

 private:
  WorkloadParams params_;
  ZipfSampler zipf_;
  Rng rng_;
};

}  // namespace switchboard::cache
