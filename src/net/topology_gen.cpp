#include "net/topology_gen.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace switchboard::net {
namespace {

// Fiber propagation: light travels ~200 km per ms in glass.
constexpr double kKmPerMs = 200.0;

double jittered(double base, double jitter, Rng& rng) {
  return base * rng.uniform(1.0 - jitter, 1.0 + jitter);
}

}  // namespace

Topology make_tier1_topology(const Tier1Params& params) {
  SWB_CHECK(params.core_count >= 3);
  Rng rng{params.seed};
  Topology topo;

  // Place cores roughly evenly: jittered grid positions.
  std::vector<NodeId> cores;
  cores.reserve(params.core_count);
  const auto columns = static_cast<std::size_t>(
      std::max<std::size_t>(2, (params.core_count + 1) / 2));
  for (std::size_t i = 0; i < params.core_count; ++i) {
    const double gx = static_cast<double>(i % columns) /
                      static_cast<double>(columns - 1);
    const double gy = (i / columns) % 2 == 0 ? 0.25 : 0.75;
    const double x =
        gx * params.plane_width_km + rng.uniform(-150.0, 150.0);
    const double y =
        gy * params.plane_height_km + rng.uniform(-150.0, 150.0);
    cores.push_back(topo.add_node("core" + std::to_string(i), x, y));
  }

  // Core ring guarantees connectivity; chords add path diversity.
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const NodeId a = cores[i];
    const NodeId b = cores[(i + 1) % cores.size()];
    topo.add_duplex_link(
        a, b, jittered(params.core_link_capacity, params.capacity_jitter, rng),
        topo.distance_km(a, b) / kKmPerMs);
  }
  for (std::size_t i = 0; i < cores.size(); ++i) {
    for (std::size_t j = i + 2; j < cores.size(); ++j) {
      if ((i == 0 && j == cores.size() - 1)) continue;  // ring already has it
      if (!rng.bernoulli(params.core_mesh_density)) continue;
      topo.add_duplex_link(
          cores[i], cores[j],
          jittered(params.core_link_capacity, params.capacity_jitter, rng),
          topo.distance_km(cores[i], cores[j]) / kKmPerMs);
    }
  }

  // Access PoPs: each near a random core, dual-homed to the two nearest
  // cores for resilience (mirrors real metro-to-backbone homing).
  const std::size_t access_count =
      params.core_count * params.access_per_core;
  for (std::size_t i = 0; i < access_count; ++i) {
    const auto home = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cores.size()) - 1));
    const Node& core_node = topo.node(cores[home]);
    const double x = core_node.x + rng.uniform(-300.0, 300.0);
    const double y = core_node.y + rng.uniform(-300.0, 300.0);
    const NodeId pop = topo.add_node("pop" + std::to_string(i), x, y);

    // Find the two nearest cores.
    std::vector<std::size_t> core_order(cores.size());
    for (std::size_t k = 0; k < cores.size(); ++k) core_order[k] = k;
    std::sort(core_order.begin(), core_order.end(),
              [&](std::size_t a, std::size_t b) {
                return topo.distance_km(pop, cores[a]) <
                       topo.distance_km(pop, cores[b]);
              });
    const std::size_t homes = std::min<std::size_t>(2, cores.size());
    for (std::size_t k = 0; k < homes; ++k) {
      const NodeId core = cores[core_order[k]];
      topo.add_duplex_link(
          pop, core,
          jittered(params.access_link_capacity, params.capacity_jitter, rng),
          std::max(0.1, topo.distance_km(pop, core) / kKmPerMs));
    }
  }

  return topo;
}

Topology make_square_topology(double capacity, double latency_ms) {
  Topology topo;
  const NodeId a = topo.add_node("a", 0, 0);
  const NodeId b = topo.add_node("b", 1, 0);
  const NodeId c = topo.add_node("c", 1, 1);
  const NodeId d = topo.add_node("d", 0, 1);
  topo.add_duplex_link(a, b, capacity, latency_ms);
  topo.add_duplex_link(b, c, capacity, latency_ms);
  topo.add_duplex_link(c, d, capacity, latency_ms);
  topo.add_duplex_link(d, a, capacity, latency_ms);
  return topo;
}

Topology make_line_topology(std::size_t n, double capacity,
                            double latency_ms) {
  SWB_CHECK(n >= 2);
  Topology topo;
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back(
        topo.add_node("n" + std::to_string(i), static_cast<double>(i), 0));
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topo.add_duplex_link(nodes[i], nodes[i + 1], capacity, latency_ms);
  }
  return topo;
}

}  // namespace switchboard::net
