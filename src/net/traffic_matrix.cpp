#include "net/traffic_matrix.hpp"
#include <cmath>
#include <numeric>

#include "common/check.hpp"

namespace switchboard::net {

TrafficMatrix::TrafficMatrix(std::size_t node_count, double initial)
    : n_{node_count}, demand_(node_count * node_count, initial) {
  for (std::size_t i = 0; i < n_; ++i) demand_[i * n_ + i] = 0.0;
}

double TrafficMatrix::demand(NodeId src, NodeId dst) const {
  SWB_DCHECK(src.value() < n_ && dst.value() < n_);
  return demand_[static_cast<std::size_t>(src.value()) * n_ + dst.value()];
}

void TrafficMatrix::set_demand(NodeId src, NodeId dst, double volume) {
  SWB_DCHECK(src.value() < n_ && dst.value() < n_);
  SWB_DCHECK(volume >= 0);
  demand_[static_cast<std::size_t>(src.value()) * n_ + dst.value()] = volume;
}

void TrafficMatrix::add_demand(NodeId src, NodeId dst, double volume) {
  SWB_DCHECK(src.value() < n_ && dst.value() < n_);
  demand_[static_cast<std::size_t>(src.value()) * n_ + dst.value()] += volume;
}

double TrafficMatrix::total() const {
  return std::accumulate(demand_.begin(), demand_.end(), 0.0);
}

double TrafficMatrix::node_out_volume(NodeId src) const {
  SWB_DCHECK(src.value() < n_);
  const std::size_t row = static_cast<std::size_t>(src.value()) * n_;
  return std::accumulate(demand_.begin() + static_cast<std::ptrdiff_t>(row),
                         demand_.begin() + static_cast<std::ptrdiff_t>(row + n_),
                         0.0);
}

void TrafficMatrix::scale(double factor) {
  SWB_CHECK(factor >= 0);
  for (auto& d : demand_) d *= factor;
}

TrafficMatrix make_gravity_matrix(const Topology& topo,
                                  const GravityParams& params) {
  Rng rng{params.seed};
  const std::size_t n = topo.node_count();
  std::vector<double> weights(n);
  for (auto& w : weights) {
    w = std::exp(rng.normal(0.0, params.weight_sigma));
  }
  const double weight_total =
      std::accumulate(weights.begin(), weights.end(), 0.0);

  TrafficMatrix tm{n};
  double raw_total = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) continue;
      raw_total += weights[s] * weights[t] / weight_total;
    }
  }
  SWB_CHECK(raw_total > 0);
  const double scale = params.total_volume / raw_total;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) continue;
      tm.set_demand(NodeId{static_cast<NodeId::underlying_type>(s)},
                    NodeId{static_cast<NodeId::underlying_type>(t)},
                    scale * weights[s] * weights[t] / weight_total);
    }
  }
  return tm;
}

}  // namespace switchboard::net
