// Wide-area network topology: nodes and directed capacitated links.
//
// This is the substrate under Global Switchboard's network model (Table 1):
// link set E with bandwidth b_e, and the propagation latencies from which
// the delay matrix d_{n1 n2} is derived.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace switchboard::net {

struct Node {
  NodeId id;
  std::string name;
  double x{0.0};   // planar coordinates (km); used by generators for latency
  double y{0.0};
};

struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  double capacity{0.0};    // traffic units/sec (experiment-defined unit)
  double latency_ms{0.0};  // one-way propagation delay
};

/// A directed multigraph.  `add_duplex_link` is the common case: it creates
/// one directed link in each direction with the same capacity and latency.
class Topology {
 public:
  NodeId add_node(std::string name, double x = 0.0, double y = 0.0);
  LinkId add_link(NodeId src, NodeId dst, double capacity, double latency_ms);
  /// Adds src->dst and dst->src; returns the id of the src->dst direction.
  LinkId add_duplex_link(NodeId a, NodeId b, double capacity,
                         double latency_ms);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Outgoing links of a node.
  [[nodiscard]] const std::vector<LinkId>& out_links(NodeId id) const;
  /// Incoming links of a node.
  [[nodiscard]] const std::vector<LinkId>& in_links(NodeId id) const;

  /// Euclidean distance between two nodes' coordinates (km).
  [[nodiscard]] double distance_km(NodeId a, NodeId b) const;

  /// Audits the graph's structural invariants (aborts via SWB_CHECK on
  /// violation): ids equal their registry index, link endpoints exist and
  /// differ, capacities positive, latencies non-negative, and the out_/in_
  /// adjacency indexes list every link exactly once on each side.
  void check_invariants() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
};

}  // namespace switchboard::net
