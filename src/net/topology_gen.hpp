// Synthetic tier-1 backbone generator.
//
// Substitutes for the proprietary tier-1 topology used in Section 7.3.
// The generator builds a two-level ISP-like topology: a mesh of core PoPs
// placed on a continental plane, plus access PoPs each homed to its two
// nearest cores.  Latencies follow fiber propagation (~1 ms per 200 km);
// core links are fat, access links thinner.
#pragma once

#include "common/rng.hpp"
#include "net/topology.hpp"

namespace switchboard::net {

struct Tier1Params {
  std::size_t core_count{8};
  std::size_t access_per_core{2};   // access PoPs homed per core (average)
  double plane_width_km{4200};      // ~continental US
  double plane_height_km{2400};
  double core_link_capacity{100.0};
  double access_link_capacity{40.0};
  double capacity_jitter{0.2};      // +/- fraction applied per link
  /// Extra chords added to the core ring, as a fraction of core pairs.
  double core_mesh_density{0.5};
  std::uint64_t seed{1};
};

/// Generates the topology.  Node naming: "core<i>" and "pop<i>".
[[nodiscard]] Topology make_tier1_topology(const Tier1Params& params);

/// A tiny fixed topology for unit tests: 4 nodes in a square,
/// unit capacities, 10 ms per side.
[[nodiscard]] Topology make_square_topology(double capacity = 10.0,
                                            double latency_ms = 10.0);

/// A linear chain of `n` nodes (useful for deterministic tests).
[[nodiscard]] Topology make_line_topology(std::size_t n,
                                          double capacity = 10.0,
                                          double latency_ms = 5.0);

}  // namespace switchboard::net
