#include "net/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.hpp"

namespace switchboard::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Tolerance for "lies on a shortest path" comparisons of summed latencies.
constexpr double kEps = 1e-9;

}  // namespace

Routing::Routing(const Topology& topo)
    : topo_{topo}, n_{topo.node_count()} {
  delay_.assign(n_ * n_, kInf);
  shares_.resize(n_ * n_);

  std::vector<double> dist(n_);
  std::vector<double> flow(n_);
  std::vector<NodeId> order;   // nodes by decreasing distance-to-destination
  order.reserve(n_);

  // One Dijkstra per *destination* over reversed links, then ECMP flow
  // propagation from every source over the shortest-path DAG.
  for (std::size_t t_idx = 0; t_idx < n_; ++t_idx) {
    const NodeId t{static_cast<NodeId::underlying_type>(t_idx)};
    std::fill(dist.begin(), dist.end(), kInf);
    dist[t_idx] = 0.0;

    using QueueEntry = std::pair<double, std::uint32_t>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<>> frontier;
    frontier.emplace(0.0, t.value());
    while (!frontier.empty()) {
      const auto [d, u] = frontier.top();
      frontier.pop();
      if (d > dist[u] + kEps) continue;
      // Relax reversed: incoming links of u move us "backward" from u.
      for (const LinkId lid : topo_.in_links(NodeId{u})) {
        const Link& link = topo_.link(lid);
        const auto v = link.src.value();
        const double nd = d + link.latency_ms;
        if (nd + kEps < dist[v]) {
          dist[v] = nd;
          frontier.emplace(nd, v);
        }
      }
    }

    for (std::size_t s_idx = 0; s_idx < n_; ++s_idx) {
      delay_[s_idx * n_ + t_idx] = dist[s_idx];
    }

    // ECMP next hops per node for this destination.
    std::vector<std::vector<LinkId>> next_hops(n_);
    for (std::size_t u = 0; u < n_; ++u) {
      if (!std::isfinite(dist[u]) || u == t_idx) continue;
      for (const LinkId lid : topo_.out_links(
               NodeId{static_cast<NodeId::underlying_type>(u)})) {
        const Link& link = topo_.link(lid);
        const auto v = link.dst.value();
        if (std::isfinite(dist[v]) &&
            std::abs(dist[u] - (link.latency_ms + dist[v])) <= kEps) {
          next_hops[u].push_back(lid);
        }
      }
    }

    order.clear();
    for (std::size_t u = 0; u < n_; ++u) {
      if (std::isfinite(dist[u]) && u != t_idx) {
        order.push_back(NodeId{static_cast<NodeId::underlying_type>(u)});
      }
    }
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return dist[a.value()] > dist[b.value()];
    });

    for (std::size_t s_idx = 0; s_idx < n_; ++s_idx) {
      if (s_idx == t_idx || !std::isfinite(dist[s_idx])) continue;
      std::fill(flow.begin(), flow.end(), 0.0);
      flow[s_idx] = 1.0;
      auto& shares = shares_[s_idx * n_ + t_idx];
      for (const NodeId u : order) {
        // Skip nodes the s->t DAG never reaches, and nodes strictly
        // farther than s (they cannot carry s's traffic).
        if (flow[u.value()] <= 0.0) continue;
        const auto& hops = next_hops[u.value()];
        SWB_DCHECK(!hops.empty());
        const double split =
            flow[u.value()] / static_cast<double>(hops.size());
        for (const LinkId lid : hops) {
          shares.push_back(LinkShare{lid, split});
          flow[topo_.link(lid).dst.value()] += split;
        }
      }
    }
  }
}

double Routing::delay_ms(NodeId n1, NodeId n2) const {
  SWB_DCHECK(n1.value() < n_ && n2.value() < n_);
  return delay_[pair_index(n1, n2)];
}

bool Routing::reachable(NodeId n1, NodeId n2) const {
  return std::isfinite(delay_ms(n1, n2));
}

const std::vector<LinkShare>& Routing::link_shares(NodeId n1,
                                                   NodeId n2) const {
  SWB_DCHECK(n1.value() < n_ && n2.value() < n_);
  return shares_[pair_index(n1, n2)];
}

std::vector<NodeId> Routing::shortest_path(NodeId n1, NodeId n2) const {
  std::vector<NodeId> path;
  if (!reachable(n1, n2)) return path;
  path.push_back(n1);
  NodeId current = n1;
  while (current != n2) {
    const double remaining = delay_ms(current, n2);
    bool advanced = false;
    for (const LinkId lid : topo_.out_links(current)) {
      const Link& link = topo_.link(lid);
      if (std::abs(remaining -
                   (link.latency_ms + delay_ms(link.dst, n2))) <= kEps) {
        current = link.dst;
        path.push_back(current);
        advanced = true;
        break;
      }
    }
    SWB_DCHECK(advanced);
    if (!advanced) break;   // defensive: avoid infinite loop in release
  }
  return path;
}

}  // namespace switchboard::net
