#include "net/routing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.hpp"
#include "sim/parallel.hpp"

namespace switchboard::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Tolerance for "lies on a shortest path" comparisons of summed latencies.
constexpr double kEps = 1e-9;

/// Build output of one destination: the shares of every (source, t) pair,
/// concatenated in ascending source order, plus per-source lengths.
struct DestBuild {
  std::vector<LinkShare> shares;
  std::vector<std::size_t> counts;
};

}  // namespace

Routing::Routing(const Topology& topo, std::size_t build_threads)
    : topo_{topo}, n_{topo.node_count()} {
  delay_.assign(n_ * n_, kInf);
  share_offsets_.assign(n_ * n_ + 1, 0);
  std::vector<DestBuild> dest(n_);

  // One Dijkstra per *destination* over reversed links, then ECMP flow
  // propagation from every source over the shortest-path DAG.  Every
  // destination is independent and writes only its own delay_ column and
  // DestBuild slot, so the builds can run on any thread in any order.
  auto build_destination = [&](std::size_t t_idx) {
    const NodeId t{static_cast<NodeId::underlying_type>(t_idx)};
    std::vector<double> dist(n_, kInf);
    dist[t_idx] = 0.0;

    using QueueEntry = std::pair<double, std::uint32_t>;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<>> frontier;
    frontier.emplace(0.0, t.value());
    while (!frontier.empty()) {
      const auto [d, u] = frontier.top();
      frontier.pop();
      if (d > dist[u] + kEps) continue;
      // Relax reversed: incoming links of u move us "backward" from u.
      for (const LinkId lid : topo_.in_links(NodeId{u})) {
        const Link& link = topo_.link(lid);
        const auto v = link.src.value();
        const double nd = d + link.latency_ms;
        if (nd + kEps < dist[v]) {
          dist[v] = nd;
          frontier.emplace(nd, v);
        }
      }
    }

    for (std::size_t s_idx = 0; s_idx < n_; ++s_idx) {
      delay_[s_idx * n_ + t_idx] = dist[s_idx];
    }

    // ECMP next hops per node for this destination (topology link order,
    // which is fixed, so the per-pair share order is deterministic).
    std::vector<std::vector<LinkId>> next_hops(n_);
    for (std::size_t u = 0; u < n_; ++u) {
      if (!std::isfinite(dist[u]) || u == t_idx) continue;
      for (const LinkId lid : topo_.out_links(
               NodeId{static_cast<NodeId::underlying_type>(u)})) {
        const Link& link = topo_.link(lid);
        const auto v = link.dst.value();
        if (std::isfinite(dist[v]) &&
            std::abs(dist[u] - (link.latency_ms + dist[v])) <= kEps) {
          next_hops[u].push_back(lid);
        }
      }
    }

    std::vector<NodeId> order;   // nodes by decreasing distance-to-dest
    order.reserve(n_);
    for (std::size_t u = 0; u < n_; ++u) {
      if (std::isfinite(dist[u]) && u != t_idx) {
        order.push_back(NodeId{static_cast<NodeId::underlying_type>(u)});
      }
    }
    // Node-id tie-break: equal-distance nodes would otherwise propagate
    // in unstable-sort order, making the share arrays platform-dependent.
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      if (dist[a.value()] != dist[b.value()]) {
        return dist[a.value()] > dist[b.value()];
      }
      return a.value() < b.value();
    });

    DestBuild& out = dest[t_idx];
    out.counts.assign(n_, 0);
    std::vector<double> flow(n_);
    for (std::size_t s_idx = 0; s_idx < n_; ++s_idx) {
      if (s_idx == t_idx || !std::isfinite(dist[s_idx])) continue;
      std::fill(flow.begin(), flow.end(), 0.0);
      flow[s_idx] = 1.0;
      const std::size_t before = out.shares.size();
      for (const NodeId u : order) {
        // Skip nodes the s->t DAG never reaches, and nodes strictly
        // farther than s (they cannot carry s's traffic).
        if (flow[u.value()] <= 0.0) continue;
        const auto& hops = next_hops[u.value()];
        SWB_DCHECK(!hops.empty());
        const double split =
            flow[u.value()] / static_cast<double>(hops.size());
        for (const LinkId lid : hops) {
          out.shares.push_back(LinkShare{lid, split});
          flow[topo_.link(lid).dst.value()] += split;
        }
      }
      out.counts[s_idx] = out.shares.size() - before;
    }
  };

  if (build_threads > 1 && n_ > 1) {
    sim::BarrierWorkerPool pool{std::min(build_threads, n_)};
    pool.run_striped(n_, build_destination);
  } else {
    for (std::size_t t_idx = 0; t_idx < n_; ++t_idx) {
      build_destination(t_idx);
    }
  }

  // Assemble the CSR arena destination-major: one prefix-sum pass over the
  // per-pair counts, then a straight concatenation of the per-destination
  // blocks.  Identical regardless of which thread built which destination.
  std::size_t total = 0;
  for (std::size_t t_idx = 0; t_idx < n_; ++t_idx) {
    for (std::size_t s_idx = 0; s_idx < n_; ++s_idx) {
      share_offsets_[t_idx * n_ + s_idx] = total;
      total += dest[t_idx].counts[s_idx];
    }
  }
  share_offsets_[n_ * n_] = total;
  share_arena_.reserve(total);
  for (const DestBuild& d : dest) {
    share_arena_.insert(share_arena_.end(), d.shares.begin(), d.shares.end());
  }
  SWB_CHECK_EQ(share_arena_.size(), total);
}

double Routing::delay_ms(NodeId n1, NodeId n2) const {
  SWB_DCHECK(n1.value() < n_ && n2.value() < n_);
  return delay_[pair_index(n1, n2)];
}

bool Routing::reachable(NodeId n1, NodeId n2) const {
  return std::isfinite(delay_ms(n1, n2));
}

std::span<const LinkShare> Routing::link_shares(NodeId n1, NodeId n2) const {
  SWB_DCHECK(n1.value() < n_ && n2.value() < n_);
  const std::size_t idx = share_index(n1, n2);
  return {share_arena_.data() + share_offsets_[idx],
          share_offsets_[idx + 1] - share_offsets_[idx]};
}

std::vector<NodeId> Routing::shortest_path(NodeId n1, NodeId n2) const {
  std::vector<NodeId> path;
  if (!reachable(n1, n2)) return path;
  path.push_back(n1);
  NodeId current = n1;
  while (current != n2) {
    const double remaining = delay_ms(current, n2);
    // Among all on-a-shortest-path hops, take the smallest next-hop node
    // id (then smallest link id) so the walk is deterministic.
    NodeId best_next{};
    LinkId best_link{};
    for (const LinkId lid : topo_.out_links(current)) {
      const Link& link = topo_.link(lid);
      if (std::abs(remaining -
                   (link.latency_ms + delay_ms(link.dst, n2))) > kEps) {
        continue;
      }
      if (!best_next.valid() || link.dst.value() < best_next.value() ||
          (link.dst == best_next && lid.value() < best_link.value())) {
        best_next = link.dst;
        best_link = lid;
      }
    }
    SWB_DCHECK(best_next.valid());
    if (!best_next.valid()) break;   // defensive: avoid infinite loop
    current = best_next;
    path.push_back(current);
  }
  return path;
}

}  // namespace switchboard::net
