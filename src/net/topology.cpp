#include "net/topology.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/check.hpp"

namespace switchboard::net {

NodeId Topology::add_node(std::string name, double x, double y) {
  const NodeId id{static_cast<NodeId::underlying_type>(nodes_.size())};
  nodes_.push_back(Node{id, std::move(name), x, y});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, double capacity,
                          double latency_ms) {
  SWB_CHECK(src.valid() && src.value() < nodes_.size());
  SWB_CHECK(dst.valid() && dst.value() < nodes_.size());
  SWB_CHECK(src != dst);
  SWB_CHECK(capacity > 0);
  SWB_CHECK(latency_ms >= 0);
  const LinkId id{static_cast<LinkId::underlying_type>(links_.size())};
  links_.push_back(Link{id, src, dst, capacity, latency_ms});
  out_[src.value()].push_back(id);
  in_[dst.value()].push_back(id);
  return id;
}

LinkId Topology::add_duplex_link(NodeId a, NodeId b, double capacity,
                                 double latency_ms) {
  const LinkId forward = add_link(a, b, capacity, latency_ms);
  add_link(b, a, capacity, latency_ms);
  return forward;
}

const Node& Topology::node(NodeId id) const {
  SWB_CHECK(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

const Link& Topology::link(LinkId id) const {
  SWB_CHECK(id.valid() && id.value() < links_.size());
  return links_[id.value()];
}

const std::vector<LinkId>& Topology::out_links(NodeId id) const {
  SWB_CHECK(id.valid() && id.value() < nodes_.size());
  return out_[id.value()];
}

const std::vector<LinkId>& Topology::in_links(NodeId id) const {
  SWB_CHECK(id.valid() && id.value() < nodes_.size());
  return in_[id.value()];
}

double Topology::distance_km(NodeId a, NodeId b) const {
  const Node& na = node(a);
  const Node& nb = node(b);
  return std::hypot(na.x - nb.x, na.y - nb.y);
}

void Topology::check_invariants() const {
  SWB_CHECK_EQ(out_.size(), nodes_.size());
  SWB_CHECK_EQ(in_.size(), nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    SWB_CHECK_EQ(nodes_[i].id.value(), i) << "node id out of sync";
  }

  // Every link is well-formed and appears exactly once in its endpoint
  // adjacency lists; seen_* double-count detection catches an index that
  // lists a link twice (e.g. a duplicated push in add_link).
  std::vector<std::uint8_t> seen_out(links_.size(), 0);
  std::vector<std::uint8_t> seen_in(links_.size(), 0);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const Link& l = links_[i];
    SWB_CHECK_EQ(l.id.value(), i) << "link id out of sync";
    SWB_CHECK(l.src.valid() && l.src.value() < nodes_.size());
    SWB_CHECK(l.dst.valid() && l.dst.value() < nodes_.size());
    SWB_CHECK(l.src != l.dst) << "self-loop link " << i;
    SWB_CHECK_GT(l.capacity, 0.0);
    SWB_CHECK_GE(l.latency_ms, 0.0);
  }
  for (const auto& adjacency : out_) {
    for (const LinkId id : adjacency) {
      SWB_CHECK(id.valid() && id.value() < links_.size());
      SWB_CHECK(!seen_out[id.value()]) << "link " << id << " listed twice";
      seen_out[id.value()] = 1;
    }
  }
  for (const auto& adjacency : in_) {
    for (const LinkId id : adjacency) {
      SWB_CHECK(id.valid() && id.value() < links_.size());
      SWB_CHECK(!seen_in[id.value()]) << "link " << id << " listed twice";
      seen_in[id.value()] = 1;
    }
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const Link& l = links_[i];
    SWB_CHECK(seen_out[i]) << "link " << i << " missing from out_["
                           << l.src << "]";
    SWB_CHECK(seen_in[i]) << "link " << i << " missing from in_["
                          << l.dst << "]";
    const auto& outs = out_[l.src.value()];
    SWB_CHECK(std::find(outs.begin(), outs.end(), l.id) != outs.end());
    const auto& ins = in_[l.dst.value()];
    SWB_CHECK(std::find(ins.begin(), ins.end(), l.id) != ins.end());
  }
}

}  // namespace switchboard::net
