#include "net/topology.hpp"

#include <cassert>
#include <cmath>

namespace switchboard::net {

NodeId Topology::add_node(std::string name, double x, double y) {
  const NodeId id{static_cast<NodeId::underlying_type>(nodes_.size())};
  nodes_.push_back(Node{id, std::move(name), x, y});
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, double capacity,
                          double latency_ms) {
  assert(src.valid() && src.value() < nodes_.size());
  assert(dst.valid() && dst.value() < nodes_.size());
  assert(src != dst);
  assert(capacity > 0);
  assert(latency_ms >= 0);
  const LinkId id{static_cast<LinkId::underlying_type>(links_.size())};
  links_.push_back(Link{id, src, dst, capacity, latency_ms});
  out_[src.value()].push_back(id);
  in_[dst.value()].push_back(id);
  return id;
}

LinkId Topology::add_duplex_link(NodeId a, NodeId b, double capacity,
                                 double latency_ms) {
  const LinkId forward = add_link(a, b, capacity, latency_ms);
  add_link(b, a, capacity, latency_ms);
  return forward;
}

const Node& Topology::node(NodeId id) const {
  assert(id.valid() && id.value() < nodes_.size());
  return nodes_[id.value()];
}

const Link& Topology::link(LinkId id) const {
  assert(id.valid() && id.value() < links_.size());
  return links_[id.value()];
}

const std::vector<LinkId>& Topology::out_links(NodeId id) const {
  assert(id.valid() && id.value() < nodes_.size());
  return out_[id.value()];
}

const std::vector<LinkId>& Topology::in_links(NodeId id) const {
  assert(id.valid() && id.value() < nodes_.size());
  return in_[id.value()];
}

double Topology::distance_km(NodeId a, NodeId b) const {
  const Node& na = node(a);
  const Node& nb = node(b);
  return std::hypot(na.x - nb.x, na.y - nb.y);
}

}  // namespace switchboard::net
