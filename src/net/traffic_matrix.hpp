// Gravity-model traffic matrix generation.
//
// Substitutes for the tier-1 backbone traffic snapshot (March 2015) used in
// Section 7.3: per-node weights are drawn log-normally (a few large metros
// dominate), and pair demand is proportional to the product of endpoint
// weights — the standard gravity model for ISP traffic matrices.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/topology.hpp"

namespace switchboard::net {

class TrafficMatrix {
 public:
  TrafficMatrix(std::size_t node_count, double initial = 0.0);

  [[nodiscard]] std::size_t node_count() const { return n_; }
  [[nodiscard]] double demand(NodeId src, NodeId dst) const;
  void set_demand(NodeId src, NodeId dst, double volume);
  void add_demand(NodeId src, NodeId dst, double volume);

  /// Sum of all demands.
  [[nodiscard]] double total() const;
  /// Total traffic sourced at a node.
  [[nodiscard]] double node_out_volume(NodeId src) const;
  /// Multiplies every entry by `factor`.
  void scale(double factor);

 private:
  std::size_t n_;
  std::vector<double> demand_;
};

struct GravityParams {
  double total_volume{1000.0};   // sum over all pairs
  double weight_sigma{1.0};      // lognormal sigma of node weights
  std::uint64_t seed{7};
};

/// Builds a gravity-model matrix over all ordered pairs (diagonal = 0).
[[nodiscard]] TrafficMatrix make_gravity_matrix(const Topology& topo,
                                                const GravityParams& params);

}  // namespace switchboard::net
