// Shortest-path routing with ECMP splitting.
//
// Produces the two network-model inputs Global Switchboard consumes
// (Table 1): the delay matrix d_{n1 n2} and the link fractions r_{n1 n2 e}
// (the fraction of n1->n2 traffic crossing link e under the underlay's
// equal-cost multipath routing).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace switchboard::net {

/// One (link, fraction) element of a pair's routing footprint.
struct LinkShare {
  LinkId link;
  double fraction;   // in (0, 1]
};

class Routing {
 public:
  /// Computes all-pairs shortest paths by latency and the ECMP splits.
  /// ECMP semantics: at every node, traffic toward a destination divides
  /// equally among all next hops that lie on some shortest path.
  explicit Routing(const Topology& topo);

  /// Propagation delay n1 -> n2 in ms (+inf if unreachable; 0 if n1 == n2).
  [[nodiscard]] double delay_ms(NodeId n1, NodeId n2) const;

  /// True if a path exists.
  [[nodiscard]] bool reachable(NodeId n1, NodeId n2) const;

  /// r_{n1 n2 e} for all links with a non-zero fraction.
  [[nodiscard]] const std::vector<LinkShare>& link_shares(NodeId n1,
                                                          NodeId n2) const;

  /// One concrete shortest path (node sequence), for display/tracing.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId n1, NodeId n2) const;

 private:
  [[nodiscard]] std::size_t pair_index(NodeId n1, NodeId n2) const {
    return static_cast<std::size_t>(n1.value()) * n_ + n2.value();
  }

  const Topology& topo_;
  std::size_t n_;
  std::vector<double> delay_;                    // n_ * n_ matrix
  std::vector<std::vector<LinkShare>> shares_;   // per (src,dst)
};

}  // namespace switchboard::net
