// Shortest-path routing with ECMP splitting.
//
// Produces the two network-model inputs Global Switchboard consumes
// (Table 1): the delay matrix d_{n1 n2} and the link fractions r_{n1 n2 e}
// (the fraction of n1->n2 traffic crossing link e under the underlay's
// equal-cost multipath routing).
//
// Storage is a CSR-style arena: one contiguous LinkShare array plus an
// (n*n + 1)-entry offset table, instead of n*n heap vectors.  The TE hot
// path walks a pair's shares for every edge-cost evaluation, so shares of
// one pair being contiguous (and pairs of one destination adjacent) is the
// difference between a pointer-bump scan and a cache miss per pair.
//
// Construction runs one Dijkstra + ECMP flow propagation per destination;
// destinations are independent, so the build optionally fans out across a
// sim::BarrierWorkerPool.  Results are byte-identical for any thread count:
// each destination fills its own pre-allocated block, ties are broken by
// node id, and the arena is assembled in destination order afterwards.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/topology.hpp"

namespace switchboard::net {

/// One (link, fraction) element of a pair's routing footprint.
struct LinkShare {
  LinkId link;
  double fraction;   // in (0, 1]
};

class Routing {
 public:
  /// Computes all-pairs shortest paths by latency and the ECMP splits.
  /// ECMP semantics: at every node, traffic toward a destination divides
  /// equally among all next hops that lie on some shortest path.
  /// `build_threads` > 1 parallelizes the per-destination computation;
  /// the result is identical for every thread count (0 means serial).
  explicit Routing(const Topology& topo, std::size_t build_threads = 1);

  /// Propagation delay n1 -> n2 in ms (+inf if unreachable; 0 if n1 == n2).
  [[nodiscard]] double delay_ms(NodeId n1, NodeId n2) const;

  /// True if a path exists.
  [[nodiscard]] bool reachable(NodeId n1, NodeId n2) const;

  /// r_{n1 n2 e} for all links with a non-zero fraction.  The span stays
  /// valid for the lifetime of the Routing object.
  [[nodiscard]] std::span<const LinkShare> link_shares(NodeId n1,
                                                       NodeId n2) const;

  /// One concrete shortest path (node sequence), for display/tracing.
  /// Ties (several equal-latency next hops) break toward the smallest
  /// next-hop node id, then the smallest link id, so the walk is
  /// deterministic across platforms.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId n1, NodeId n2) const;

 private:
  [[nodiscard]] std::size_t pair_index(NodeId n1, NodeId n2) const {
    return static_cast<std::size_t>(n1.value()) * n_ + n2.value();
  }
  /// Shares are stored destination-major so that one destination's build
  /// output is one contiguous block of the arena.
  [[nodiscard]] std::size_t share_index(NodeId n1, NodeId n2) const {
    return static_cast<std::size_t>(n2.value()) * n_ + n1.value();
  }

  const Topology& topo_;
  std::size_t n_;
  std::vector<double> delay_;                // n_ * n_ matrix, source-major
  std::vector<std::size_t> share_offsets_;   // n_ * n_ + 1, destination-major
  std::vector<LinkShare> share_arena_;       // all pairs' shares, contiguous
};

}  // namespace switchboard::net
