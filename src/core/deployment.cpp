#include "core/deployment.hpp"

#include "common/check.hpp"

namespace switchboard::core {

Deployment::Deployment(model::NetworkModel model, DeploymentConfig config)
    : config_{config},
      model_{std::move(model)},
      faults_{sim_, config.fault_seed} {
  SWB_CHECK(!model_.sites().empty());

  bus::BusConfig bus_config;
  bus_config.site_count = model_.sites().size();
  bus_config.per_message_service = config_.bus_message_service;
  bus_config.egress_buffer = config_.bus_egress_buffer;
  bus_config.inter_site_delay = [this](SiteId a, SiteId b) {
    const double ms =
        model_.delay_ms(model_.site(a).node, model_.site(b).node);
    return sim::from_ms(ms);
  };
  bus_config.fault_hook = [this](SiteId from, SiteId to,
                                 const std::string& topic_path) {
    return faults_.on_message(from, to, topic_path);
  };
  bus_config.reliable_delivery = config_.reliable_bus;
  bus_config.ack_timeout = config_.bus_ack_timeout;
  bus_config.max_retransmits = config_.bus_max_retransmits;
  bus_ = std::make_unique<bus::ProxyBus>(sim_, bus_config);

  context_ = std::make_unique<control::ControlContext>(
      control::ControlContext{sim_, *bus_, model_, elements_,
                              config_.timings});

  global_ = std::make_unique<control::GlobalSwitchboard>(
      *context_, config_.controller_site);

  detector_ = std::make_unique<control::FailureDetector>(
      *context_, config_.controller_site, config_.detector);

  for (const model::CloudSite& site : model_.sites()) {
    auto local =
        std::make_unique<control::LocalSwitchboard>(*context_, site.id);
    local->set_ready_callback(
        [this](ChainId chain, RouteId route, SiteId at) {
          global_->on_route_ready(chain, route, at);
        });
    local->set_peer_lookup([this](SiteId at) -> control::LocalSwitchboard* {
      return at.value() < locals_.size() ? locals_[at.value()].get()
                                         : nullptr;
    });
    local->start(global_->routes_topic());
    global_->register_local_switchboard(local.get());
    locals_.push_back(std::move(local));
  }

  sync_vnf_controllers();

  if (config_.durable_controller) {
    journal_ = std::make_unique<control::StateJournal>(durable_store_,
                                                       config_.journal);
    global_->enable_durability(journal_.get());
  }
}

control::LocalSwitchboard& Deployment::local(SiteId site) {
  SWB_CHECK(site.value() < locals_.size());
  return *locals_[site.value()];
}

control::VnfController& Deployment::vnf_controller(VnfId vnf) {
  SWB_CHECK(vnf.value() < vnf_controllers_.size());
  return *vnf_controllers_[vnf.value()];
}

control::EdgeController& Deployment::edge_controller(EdgeServiceId id) {
  SWB_CHECK(id.value() < edge_controllers_.size());
  return *edge_controllers_[id.value()];
}

EdgeServiceId Deployment::create_edge_service(std::string name) {
  const EdgeServiceId id{
      static_cast<EdgeServiceId::underlying_type>(edge_controllers_.size())};
  auto controller = std::make_unique<control::EdgeController>(
      *context_, id, std::move(name));
  global_->register_edge_controller(controller.get());
  edge_controllers_.push_back(std::move(controller));
  return id;
}

void Deployment::sync_vnf_controllers() {
  for (const model::Vnf& vnf : model_.vnfs()) {
    if (vnf.id.value() < vnf_controllers_.size()) continue;
    auto controller =
        std::make_unique<control::VnfController>(*context_, vnf.id);
    global_->register_vnf_controller(controller.get());
    vnf_controllers_.push_back(std::move(controller));
  }
}

void Deployment::register_fault_targets() {
  for (const model::CloudSite& site : model_.sites()) {
    control::LocalSwitchboard* local = locals_[site.id.value()].get();
    faults_.register_target(
        "site:" + std::to_string(site.id.value()),
        [this, local, site_id = site.id](bool up) {
          local->set_up(up);
          // Reliable-bus retransmits toward a crashed site stop instead of
          // retrying against silence until exhaustion.
          if (!up) bus_->abandon_retransmits_to(site_id);
        });
  }
  if (journal_ != nullptr) {
    // The durable controller loses all volatile state on restore and
    // recovers from the journal; the detector forgets its dedup history so
    // still-broken elements get re-reported to the fresh incarnation.
    faults_.register_amnesia_target(
        "controller:global", [this](bool up) { global_->set_up(up); },
        [this] {
          global_->cold_start();
          detector_->resync();
        });
  } else {
    faults_.register_target("controller:global",
                            [this](bool up) { global_->set_up(up); });
  }
  for (std::size_t f = 0; f < vnf_controllers_.size(); ++f) {
    control::VnfController* controller = vnf_controllers_[f].get();
    faults_.register_target(
        "controller:vnf" + std::to_string(f),
        [controller](bool up) { controller->set_up(up); });
  }
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto id = static_cast<dataplane::ElementId>(i);
    faults_.register_target(
        "element:" + std::to_string(id),
        [this, id](bool up) { elements_.set_up(id, up); });
  }
}

void Deployment::enable_recovery() {
  register_fault_targets();
  detector_->set_element_down_callback(
      [this](dataplane::ElementId element, SiteId site) {
        const control::ElementInfo& info = elements_.info(element);
        if (info.type == control::ElementType::kVnfInstance) {
          global_->on_instance_down(info.vnf, site);
        }
      });
  detector_->set_site_down_callback([this](SiteId site) {
    // A dead site takes every VNF pool it hosts with it; reroute each.
    std::set<std::uint32_t> vnfs;
    for (const dataplane::ElementId element : elements_.elements_at(site)) {
      const control::ElementInfo& info = elements_.info(element);
      if (info.type == control::ElementType::kVnfInstance) {
        vnfs.insert(info.vnf.value());
      }
    }
    for (const std::uint32_t vnf : vnfs) {
      global_->on_instance_down(VnfId{vnf}, site);
    }
  });
  detector_->set_site_up_callback([this](SiteId site) {
    // The site's heartbeats are back: restore every VNF pool it hosts so
    // capacity returns and routes can rebalance onto it.
    std::set<std::uint32_t> vnfs;
    for (const dataplane::ElementId element : elements_.elements_at(site)) {
      const control::ElementInfo& info = elements_.info(element);
      if (info.type == control::ElementType::kVnfInstance) {
        vnfs.insert(info.vnf.value());
      }
    }
    for (const std::uint32_t vnf : vnfs) {
      global_->on_instance_up(VnfId{vnf}, site);
    }
  });
  for (const model::CloudSite& site : model_.sites()) {
    detector_->watch_site(site.id);
    locals_[site.id.value()]->start_heartbeats(config_.detector.period);
  }
  detector_->start();
}

void Deployment::stop_recovery() {
  detector_->stop();
  for (auto& local : locals_) {
    local->stop_heartbeats();
  }
}

std::vector<dataplane::ElementId> Deployment::WalkResult::vnf_instances()
    const {
  std::vector<dataplane::ElementId> instances;
  for (const HopTrace& hop : path) {
    if (hop.type == control::ElementType::kVnfInstance) {
      instances.push_back(hop.element);
    }
  }
  return instances;
}

Deployment::WalkResult Deployment::inject(ChainId chain,
                                          const dataplane::FiveTuple& flow,
                                          dataplane::Direction direction,
                                          std::uint16_t size_bytes) {
  const control::ChainRecord* found = global_->find_record(chain);
  if (found == nullptr || !found->active) {
    WalkResult result;
    result.failure = "chain not active";
    return result;
  }
  const control::ChainRecord& record = *found;
  // The walk starts at the edge instance on the sending side.
  const SiteId start_site = direction == dataplane::Direction::kForward
      ? record.ingress_site
      : record.egress_site;
  const EdgeServiceId edge_service =
      direction == dataplane::Direction::kForward
          ? record.spec.ingress_service
          : record.spec.egress_service;
  const dataplane::ElementId edge_instance =
      edge_controller(edge_service).ensure_edge_instance(start_site);
  return inject_from(chain, edge_instance, flow, direction, size_bytes);
}

Deployment::WalkResult Deployment::inject_from(
    ChainId chain, dataplane::ElementId edge_instance,
    const dataplane::FiveTuple& flow, dataplane::Direction direction,
    std::uint16_t size_bytes) {
  WalkResult result;
  const control::ChainRecord* found = global_->find_record(chain);
  if (found == nullptr || !found->active) {
    result.failure = "chain not active";
    return result;
  }
  const control::ChainRecord& record = *found;

  dataplane::Packet packet;
  packet.flow = direction == dataplane::Direction::kForward
      ? flow
      : flow.reversed();
  packet.labels = record.labels;
  packet.direction = direction;
  packet.size_bytes = size_bytes;
  packet.arrival_source = edge_instance;

  result.path.push_back(
      {edge_instance, control::ElementType::kEdgeInstance, 0.0});

  dataplane::ElementId current_forwarder =
      elements_.info(edge_instance).attached_forwarder;
  dataplane::ForwardAction action =
      elements_.forwarder(current_forwarder).process_from_attached(packet);
  result.path.push_back(
      {current_forwarder, control::ElementType::kForwarder, 0.0});

  for (int hops = 0; hops < 64; ++hops) {
    switch (action.type) {
      case dataplane::ActionType::kDrop: {
        result.failure = "dropped at forwarder " +
                         std::to_string(current_forwarder);
        return result;
      }
      case dataplane::ActionType::kSendToForwarder: {
        if (!elements_.info(action.element).up) {
          result.failure = "next-hop forwarder " +
                           std::to_string(action.element) + " is down";
          return result;
        }
        const SiteId from = elements_.info(current_forwarder).site;
        const SiteId to = elements_.info(action.element).site;
        const double hop_ms =
            model_.delay_ms(model_.site(from).node, model_.site(to).node);
        result.latency_ms += hop_ms;
        packet.arrival_source = current_forwarder;
        current_forwarder = action.element;
        result.path.push_back(
            {current_forwarder, control::ElementType::kForwarder, hop_ms});
        action =
            elements_.forwarder(current_forwarder).process_from_wire(packet);
        break;
      }
      case dataplane::ActionType::kDeliverToAttached: {
        const control::ElementInfo& info = elements_.info(action.element);
        if (!info.up) {
          // A crashed element processes nothing: the packet is lost until
          // the drain re-pins its flow onto a survivor.
          result.failure = "element " + std::to_string(action.element) +
                           " is down";
          return result;
        }
        if (info.type == control::ElementType::kEdgeInstance) {
          result.path.push_back(
              {action.element, control::ElementType::kEdgeInstance, 0.0});
          result.delivered = true;
          return result;
        }
        // A VNF instance: processing latency, then back to the forwarder.
        result.latency_ms += config_.vnf_processing_ms;
        result.path.push_back({action.element,
                               control::ElementType::kVnfInstance,
                               config_.vnf_processing_ms});
        packet.arrival_source = action.element;
        action = elements_.forwarder(current_forwarder)
                     .process_from_attached(packet);
        break;
      }
    }
  }
  result.failure = "hop limit exceeded (routing loop?)";
  return result;
}

}  // namespace switchboard::core
