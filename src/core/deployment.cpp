#include "core/deployment.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"

namespace switchboard::core {

Deployment::Deployment(model::NetworkModel model, DeploymentConfig config)
    : config_{config},
      model_{std::move(model)},
      faults_{sim_, config.fault_seed} {
  SWB_CHECK(!model_.sites().empty());
  faults_.set_site_count(model_.sites().size());

  bus::BusConfig bus_config;
  bus_config.site_count = model_.sites().size();
  bus_config.per_message_service = config_.bus_message_service;
  bus_config.egress_buffer = config_.bus_egress_buffer;
  bus_config.inter_site_delay = [this](SiteId a, SiteId b) {
    const double ms =
        model_.delay_ms(model_.site(a).node, model_.site(b).node);
    return sim::from_ms(ms);
  };
  bus_config.fault_hook = [this](SiteId from, SiteId to,
                                 const std::string& topic_path) {
    return faults_.on_message(from, to, topic_path);
  };
  bus_config.reliable_delivery = config_.reliable_bus;
  bus_config.ack_timeout = config_.bus_ack_timeout;
  bus_config.max_retransmits = config_.bus_max_retransmits;
  bus_ = std::make_unique<bus::ProxyBus>(sim_, bus_config);

  context_ = std::make_unique<control::ControlContext>(
      control::ControlContext{sim_, *bus_, model_, elements_,
                              config_.timings});

  global_ = std::make_unique<control::GlobalSwitchboard>(
      *context_, config_.controller_site);
  global_->set_te_mode(config_.te_mode);

  detector_ = std::make_unique<control::FailureDetector>(
      *context_, config_.controller_site, config_.detector);

  for (const model::CloudSite& site : model_.sites()) {
    auto local =
        std::make_unique<control::LocalSwitchboard>(*context_, site.id);
    local->set_ready_callback(
        [this](ChainId chain, RouteId route, SiteId at) {
          global_->on_route_ready(chain, route, at);
        });
    local->set_peer_lookup([this](SiteId at) -> control::LocalSwitchboard* {
      return at.value() < locals_.size() ? locals_[at.value()].get()
                                         : nullptr;
    });
    local->start(global_->routes_topic());
    global_->register_local_switchboard(local.get());
    locals_.push_back(std::move(local));
  }

  if (config_.enable_anycast) {
    SWB_CHECK_LE(model_.sites().size(), dataplane::kMaxAnycastSites)
        << "anycast visited-set bitmap cannot cover this many sites";
    for (const model::CloudSite& site : model_.sites()) {
      auto router = std::make_unique<control::AnycastRouter>(
          *context_, site.id, config_.anycast);
      // Chain knowledge rides the route announcements every site already
      // receives — the router needs no channel of its own to the
      // controller, which is what lets it outlive one.
      locals_[site.id.value()]->set_route_observer(
          [r = router.get()](const control::RouteAnnouncement& announcement) {
            r->learn_route(announcement);
          });
      router->start();
      anycast_routers_.push_back(std::move(router));
    }
  }

  sync_vnf_controllers();

  if (config_.durable_controller) {
    journal_ = std::make_unique<control::StateJournal>(durable_store_,
                                                       config_.journal);
    global_->enable_durability(journal_.get());
  }
}

control::LocalSwitchboard& Deployment::local(SiteId site) {
  SWB_CHECK(site.value() < locals_.size());
  return *locals_[site.value()];
}

control::AnycastRouter& Deployment::anycast_router(SiteId site) {
  SWB_CHECK(site.value() < anycast_routers_.size())
      << "anycast_router requires enable_anycast";
  return *anycast_routers_[site.value()];
}

void Deployment::start_anycast() {
  SWB_CHECK(!anycast_routers_.empty()) << "start_anycast without "
                                          "enable_anycast";
  for (auto& router : anycast_routers_) {
    router->start_announcing();
  }
}

void Deployment::stop_anycast() {
  for (auto& router : anycast_routers_) {
    router->stop_announcing();
  }
}

control::VnfController& Deployment::vnf_controller(VnfId vnf) {
  SWB_CHECK(vnf.value() < vnf_controllers_.size());
  return *vnf_controllers_[vnf.value()];
}

control::EdgeController& Deployment::edge_controller(EdgeServiceId id) {
  SWB_CHECK(id.value() < edge_controllers_.size());
  return *edge_controllers_[id.value()];
}

EdgeServiceId Deployment::create_edge_service(std::string name) {
  const EdgeServiceId id{
      static_cast<EdgeServiceId::underlying_type>(edge_controllers_.size())};
  auto controller = std::make_unique<control::EdgeController>(
      *context_, id, std::move(name));
  global_->register_edge_controller(controller.get());
  edge_controllers_.push_back(std::move(controller));
  return id;
}

void Deployment::sync_vnf_controllers() {
  for (const model::Vnf& vnf : model_.vnfs()) {
    if (vnf.id.value() < vnf_controllers_.size()) continue;
    auto controller =
        std::make_unique<control::VnfController>(*context_, vnf.id);
    global_->register_vnf_controller(controller.get());
    vnf_controllers_.push_back(std::move(controller));
  }
}

void Deployment::register_fault_targets() {
  for (const model::CloudSite& site : model_.sites()) {
    control::LocalSwitchboard* local = locals_[site.id.value()].get();
    control::AnycastRouter* router =
        site.id.value() < anycast_routers_.size()
            ? anycast_routers_[site.id.value()].get()
            : nullptr;
    faults_.register_target(
        "site:" + std::to_string(site.id.value()),
        [this, local, router, site_id = site.id](bool up) {
          local->set_up(up);
          // The site's anycast router crashes and restores with it: its
          // silence ages its entries out at every peer.
          if (router != nullptr) router->set_up(up);
          // Reliable-bus retransmits toward a crashed site stop instead of
          // retrying against silence until exhaustion.
          if (!up) bus_->abandon_retransmits_to(site_id);
        });
  }
  if (journal_ != nullptr) {
    // The durable controller loses all volatile state on restore and
    // recovers from the journal; the detector forgets its dedup history so
    // still-broken elements get re-reported to the fresh incarnation.
    faults_.register_amnesia_target(
        "controller:global", [this](bool up) { global_->set_up(up); },
        [this] {
          global_->cold_start();
          detector_->resync();
        });
  } else {
    faults_.register_target("controller:global",
                            [this](bool up) { global_->set_up(up); });
  }
  for (std::size_t f = 0; f < vnf_controllers_.size(); ++f) {
    control::VnfController* controller = vnf_controllers_[f].get();
    faults_.register_target(
        "controller:vnf" + std::to_string(f),
        [controller](bool up) { controller->set_up(up); });
  }
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const auto id = static_cast<dataplane::ElementId>(i);
    faults_.register_target(
        "element:" + std::to_string(id),
        [this, id](bool up) { elements_.set_up(id, up); });
  }
}

void Deployment::enable_recovery() {
  register_fault_targets();
  detector_->set_element_down_callback(
      [this](dataplane::ElementId element, SiteId site) {
        const control::ElementInfo& info = elements_.info(element);
        if (info.type == control::ElementType::kVnfInstance) {
          global_->on_instance_down(info.vnf, site);
        }
      });
  detector_->set_site_down_callback([this](SiteId site) {
    // A dead site takes every VNF pool it hosts with it; reroute each.
    std::set<std::uint32_t> vnfs;
    for (const dataplane::ElementId element : elements_.elements_at(site)) {
      const control::ElementInfo& info = elements_.info(element);
      if (info.type == control::ElementType::kVnfInstance) {
        vnfs.insert(info.vnf.value());
      }
    }
    for (const std::uint32_t vnf : vnfs) {
      global_->on_instance_down(VnfId{vnf}, site);
    }
  });
  detector_->set_site_up_callback([this](SiteId site) {
    // The site's heartbeats are back: restore every VNF pool it hosts so
    // capacity returns and routes can rebalance onto it.
    std::set<std::uint32_t> vnfs;
    for (const dataplane::ElementId element : elements_.elements_at(site)) {
      const control::ElementInfo& info = elements_.info(element);
      if (info.type == control::ElementType::kVnfInstance) {
        vnfs.insert(info.vnf.value());
      }
    }
    for (const std::uint32_t vnf : vnfs) {
      global_->on_instance_up(VnfId{vnf}, site);
    }
  });
  for (const model::CloudSite& site : model_.sites()) {
    detector_->watch_site(site.id);
    locals_[site.id.value()]->start_heartbeats(config_.detector.period);
  }
  detector_->start();
}

void Deployment::stop_recovery() {
  detector_->stop();
  for (auto& local : locals_) {
    local->stop_heartbeats();
  }
}

void Deployment::enable_replication(std::uint32_t replicas) {
  SWB_CHECK(replication_ == nullptr) << "enable_replication called twice";
  SWB_CHECK(!config_.durable_controller)
      << "durable_controller and enable_replication are mutually "
         "exclusive: the replica group owns the journals";
  SWB_CHECK(config_.reliable_bus)
      << "replication streams over /ctl/ topics and needs the reliable bus";
  SWB_CHECK_GE(replicas, 1u);

  const std::size_t site_count = model_.sites().size();
  std::vector<SiteId> sites;
  sites.reserve(replicas);
  for (std::uint32_t r = 0; r < replicas; ++r) {
    sites.push_back(SiteId{static_cast<SiteId::underlying_type>(
        (config_.controller_site.value() + r) % site_count)});
  }
  replication_ = std::make_unique<control::ReplicaGroup>(
      *context_, *global_, durable_store_, std::move(sites),
      config_.replication);
  replication_->start();

  // Crash-with-amnesia targets: a crashed replica's process state is gone;
  // restore re-syncs it (follower: snapshot install from the live leader;
  // un-elected leader: cold_start from its own journal).  In-flight
  // retransmits toward the dead replica's stream are abandoned so the
  // reliable bus does not retry against silence until exhaustion.
  for (std::uint32_t r = 0; r < replication_->replica_count(); ++r) {
    const SiteId site = replication_->site_of(r);
    faults_.register_amnesia_target(
        "controller:replica" + std::to_string(r),
        [this, r, site](bool up) {
          if (up) return;   // restore goes through the reset path below
          replication_->crash_replica(r);
          bus_->abandon_retransmits_to(site, "/ctl/repl/");
        },
        [this, r] {
          replication_->restore_replica(r);
          detector_->resync();
          replication_->detector().resync();
        });
  }
  // "controller:leader" resolves to whoever leads when the fault FIRES —
  // scripted chaos (ChaosSchedule) can kill successive leaders without
  // knowing election outcomes in advance.  The victim is pinned so the
  // paired restore revives the replica the crash actually took down.
  faults_.register_amnesia_target(
      "controller:leader",
      [this](bool up) {
        if (up) return;
        leader_victim_ = replication_->leader();
        replication_->crash_replica(leader_victim_);
        bus_->abandon_retransmits_to(replication_->site_of(leader_victim_),
                                     "/ctl/repl/");
      },
      [this] {
        replication_->restore_replica(leader_victim_);
        detector_->resync();
        replication_->detector().resync();
      });
}

void Deployment::stop_replication() {
  if (replication_ != nullptr) replication_->stop();
}

std::vector<dataplane::ElementId> Deployment::WalkResult::vnf_instances()
    const {
  std::vector<dataplane::ElementId> instances;
  for (const HopTrace& hop : path) {
    if (hop.type == control::ElementType::kVnfInstance) {
      instances.push_back(hop.element);
    }
  }
  return instances;
}

Deployment::WalkResult Deployment::inject(ChainId chain,
                                          const dataplane::FiveTuple& flow,
                                          dataplane::Direction direction,
                                          std::uint16_t size_bytes) {
  const control::ChainRecord* found = global_->find_record(chain);
  if (found == nullptr || !found->active) {
    WalkResult result;
    result.failure = "chain not active";
    return result;
  }
  const control::ChainRecord& record = *found;
  // The walk starts at the edge instance on the sending side.
  const SiteId start_site = direction == dataplane::Direction::kForward
      ? record.ingress_site
      : record.egress_site;
  const EdgeServiceId edge_service =
      direction == dataplane::Direction::kForward
          ? record.spec.ingress_service
          : record.spec.egress_service;
  const dataplane::ElementId edge_instance =
      edge_controller(edge_service).ensure_edge_instance(start_site);
  return inject_from(chain, edge_instance, flow, direction, size_bytes);
}

Deployment::WalkResult Deployment::inject_from(
    ChainId chain, dataplane::ElementId edge_instance,
    const dataplane::FiveTuple& flow, dataplane::Direction direction,
    std::uint16_t size_bytes) {
  WalkResult result;
  const control::ChainRecord* found = global_->find_record(chain);
  if (found == nullptr || !found->active) {
    result.failure = "chain not active";
    return result;
  }
  const control::ChainRecord& record = *found;

  dataplane::Packet packet;
  packet.flow = direction == dataplane::Direction::kForward
      ? flow
      : flow.reversed();
  packet.labels = record.labels;
  packet.direction = direction;
  packet.size_bytes = size_bytes;
  packet.arrival_source = edge_instance;

  result.path.push_back(
      {edge_instance, control::ElementType::kEdgeInstance, 0.0});

  dataplane::ElementId current_forwarder =
      elements_.info(edge_instance).attached_forwarder;
  dataplane::ForwardAction action =
      elements_.forwarder(current_forwarder).process_from_attached(packet);
  result.path.push_back(
      {current_forwarder, control::ElementType::kForwarder, 0.0});

  for (int hops = 0; hops < 64; ++hops) {
    switch (action.type) {
      case dataplane::ActionType::kDrop: {
        result.failure = "dropped at forwarder " +
                         std::to_string(current_forwarder);
        return result;
      }
      case dataplane::ActionType::kSendToForwarder: {
        if (!elements_.info(action.element).up) {
          result.failure = "next-hop forwarder " +
                           std::to_string(action.element) + " is down";
          return result;
        }
        const SiteId from = elements_.info(current_forwarder).site;
        const SiteId to = elements_.info(action.element).site;
        const double hop_ms =
            model_.delay_ms(model_.site(from).node, model_.site(to).node);
        result.latency_ms += hop_ms;
        packet.arrival_source = current_forwarder;
        current_forwarder = action.element;
        result.path.push_back(
            {current_forwarder, control::ElementType::kForwarder, hop_ms});
        action =
            elements_.forwarder(current_forwarder).process_from_wire(packet);
        break;
      }
      case dataplane::ActionType::kDeliverToAttached: {
        const control::ElementInfo& info = elements_.info(action.element);
        if (!info.up) {
          // A crashed element processes nothing: the packet is lost until
          // the drain re-pins its flow onto a survivor.
          result.failure = "element " + std::to_string(action.element) +
                           " is down";
          return result;
        }
        if (info.type == control::ElementType::kEdgeInstance) {
          result.path.push_back(
              {action.element, control::ElementType::kEdgeInstance, 0.0});
          result.delivered = true;
          return result;
        }
        // A VNF instance: processing latency, then back to the forwarder.
        result.latency_ms += config_.vnf_processing_ms;
        result.path.push_back({action.element,
                               control::ElementType::kVnfInstance,
                               config_.vnf_processing_ms});
        packet.arrival_source = action.element;
        action = elements_.forwarder(current_forwarder)
                     .process_from_attached(packet);
        break;
      }
    }
  }
  result.failure = "hop limit exceeded (routing loop?)";
  return result;
}

Deployment::WalkResult Deployment::inject_anycast(
    ChainId chain, const dataplane::FiveTuple& flow,
    dataplane::Direction direction, std::uint16_t size_bytes) {
  WalkResult result;
  SWB_CHECK(!anycast_routers_.empty())
      << "inject_anycast requires enable_anycast";

  const bool forward = direction == dataplane::Direction::kForward;

  // The whole walk works off router state only: chain knowledge was
  // learned from bus-replicated route announcements, so a crashed or
  // partitioned-away Global Switchboard changes nothing here.
  dataplane::Packet packet;
  packet.flow = forward ? flow : flow.reversed();
  packet.direction = direction;
  packet.size_bytes = size_bytes;
  packet.anycast.hop_budget = config_.anycast.hop_budget;
  packet.anycast.stage = 1;

  // Stage order and endpoints come from the entry site's router.
  const control::AnycastRouter::ChainInfo* info = nullptr;
  for (const auto& router : anycast_routers_) {
    info = router->chain_info(chain);
    if (info != nullptr) break;
  }
  if (info == nullptr) {
    result.failure = "chain unknown to anycast routers";
    return result;
  }
  packet.labels = info->labels;
  const SiteId start = forward ? info->ingress_site : info->egress_site;
  const SiteId dest = forward ? info->egress_site : info->ingress_site;
  std::vector<VnfId> stages = info->vnfs;
  if (!forward) std::reverse(stages.begin(), stages.end());

  SiteId current = start;
  packet.anycast.mark_visited(current.value());
  const auto site_hop = [this, &result](SiteId site, double hop_ms) {
    // The path records the site's forwarder for wide-area hops; tests
    // and benches only depend on the VNF-instance subsequence.
    const std::vector<dataplane::ElementId> fwds =
        elements_.forwarders_at(site);
    if (!fwds.empty()) {
      result.path.push_back(
          {fwds.front(), control::ElementType::kForwarder, hop_ms});
    }
  };
  site_hop(current, 0.0);

  for (std::size_t i = 0; i < stages.size(); ++i) {
    const VnfId vnf = stages[i];
    std::ostringstream tag;
    tag << "chain=" << chain << " stage=" << packet.anycast.stage;
    // Refuted candidates this stage: partitioned-away or stale-lie sites
    // are excluded and the steering question re-asked.
    std::uint64_t excluded = 0;
    bool served = false;
    while (!served) {
      control::AnycastRouter& router = *anycast_routers_[current.value()];
      const std::optional<SiteId> next = router.next_site(
          vnf, current, packet.anycast.visited_sites | excluded, tag.str());
      if (!next) {
        std::ostringstream failure;
        failure << "no reachable live instance of vnf " << vnf
                << " for stage " << packet.anycast.stage;
        result.failure = failure.str();
        return result;
      }
      if (*next != current) {
        if (faults_.partitioned(current, *next)) {
          // The table still advertises a site the data plane cannot
          // reach: steer around it.
          excluded |= std::uint64_t{1} << next->value();
          continue;
        }
        if (packet.anycast.hop_budget == 0) {
          result.failure = "anycast hop budget exhausted";
          return result;
        }
        --packet.anycast.hop_budget;
        // next_site() may never return a visited site — the wire
        // annotation makes loops structurally impossible.
        SWB_CHECK(!packet.anycast.visited(next->value()))
            << "anycast steering revisited site " << *next;
        const double hop_ms = model_.delay_ms(model_.site(current).node,
                                              model_.site(*next).node);
        result.latency_ms += hop_ms;
        current = *next;
        packet.anycast.mark_visited(current.value());
        site_hop(current, hop_ms);
      }
      // At the chosen site the registry is ground truth.  A remote entry
      // may have lied (instances died since the last announcement heard);
      // the site's own router refutes itself via its fresh local view, so
      // re-asking from here steers onward without special casing.
      std::vector<dataplane::ElementId> live;
      for (const dataplane::ElementId id :
           elements_.vnf_instances_at(current, vnf)) {
        if (elements_.info(id).up) live.push_back(id);
      }
      if (live.empty()) continue;
      const std::uint64_t pick =
          dataplane::mix64(dataplane::flow_hash(packet.labels, packet.flow) ^
                           packet.anycast.stage);
      const dataplane::ElementId instance =
          live[pick % live.size()];
      result.latency_ms += config_.vnf_processing_ms;
      result.path.push_back({instance, control::ElementType::kVnfInstance,
                             config_.vnf_processing_ms});
      packet.arrival_source = instance;
      ++packet.anycast.stage;
      served = true;
    }
  }

  // Final segment to the chain's egress (ingress in reverse).  This hop is
  // destination-routed — the egress-site label, not an anycast choice — so
  // the visited check does not apply, but it still burns budget.
  if (current != dest) {
    if (faults_.partitioned(current, dest)) {
      result.failure = "egress site unreachable (partitioned)";
      return result;
    }
    if (packet.anycast.hop_budget == 0) {
      result.failure = "anycast hop budget exhausted";
      return result;
    }
    --packet.anycast.hop_budget;
    const double hop_ms =
        model_.delay_ms(model_.site(current).node, model_.site(dest).node);
    result.latency_ms += hop_ms;
    current = dest;
    site_hop(current, hop_ms);
  }
  result.delivered = true;
  return result;
}

}  // namespace switchboard::core
