// Deployment: wires a complete Switchboard installation over one network
// model — simulator, message bus, element registry, Global Switchboard,
// per-site Local Switchboards, edge controllers, and per-VNF controllers —
// and provides the data-plane packet walk used by examples and tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "bus/message_bus.hpp"
#include "control/anycast.hpp"
#include "control/context.hpp"
#include "control/edge_controller.hpp"
#include "control/failure_detector.hpp"
#include "control/global_switchboard.hpp"
#include "control/local_switchboard.hpp"
#include "control/replication.hpp"
#include "control/state_journal.hpp"
#include "control/vnf_controller.hpp"
#include "model/network_model.hpp"
#include "sim/durable_store.hpp"
#include "sim/fault_injector.hpp"
#include "sim/simulator.hpp"

namespace switchboard::core {

struct DeploymentConfig {
  control::ControlTimings timings{};
  /// Per-message egress service time at bus proxies.
  sim::Duration bus_message_service{sim::microseconds(100)};
  std::size_t bus_egress_buffer{4096};
  /// Site hosting Global Switchboard (default: site 0).
  SiteId controller_site{0};
  /// Latency a VNF instance adds to a packet (data-plane walk).
  double vnf_processing_ms{0.1};
  /// Acked + retransmitted wide-area delivery for control topics (health
  /// topics stay fire-and-forget either way).
  bool reliable_bus{false};
  sim::Duration bus_ack_timeout{sim::from_ms(250.0)};
  std::size_t bus_max_retransmits{3};
  /// Seed for the deployment's fault injector (deterministic runs).
  std::uint64_t fault_seed{0x5EEDFA17ULL};
  /// Heartbeat / failure-detector timing (enable_recovery()).
  control::FailureDetectorConfig detector{};
  /// Journal the Global Switchboard's state (DESIGN.md §13): the
  /// "controller:global" fault target becomes crash-with-amnesia —
  /// restore runs cold_start() from the journal instead of resuming
  /// in-memory state.
  bool durable_controller{false};
  control::JournalConfig journal{};
  /// Route-compute mode for the Global Switchboard (SB-DP or SB-LP).
  control::GlobalSwitchboard::TeMode te_mode{
      control::GlobalSwitchboard::TeMode::kSbDp};
  /// SB-ANYCAST-D (DESIGN.md §17): run an AnycastRouter beside every
  /// Local Switchboard and enable the inject_anycast() walk.  Routers
  /// subscribe at construction; announcements start via start_anycast().
  bool enable_anycast{false};
  control::AnycastConfig anycast{};
  /// Replicated controller (DESIGN.md §18): journals, quorum, detector
  /// timing, and repair policy for enable_replication().
  control::ReplicationConfig replication{};
};

class Deployment {
 public:
  /// Takes ownership of the model.  Every site gets a Local Switchboard;
  /// every VNF already in the model gets a controller.
  explicit Deployment(model::NetworkModel model, DeploymentConfig config = {});

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] model::NetworkModel& network_model() { return model_; }
  [[nodiscard]] bus::ProxyBus& bus() { return *bus_; }
  [[nodiscard]] control::ElementRegistry& elements() { return elements_; }
  [[nodiscard]] control::GlobalSwitchboard& global() { return *global_; }
  [[nodiscard]] control::LocalSwitchboard& local(SiteId site);
  [[nodiscard]] control::VnfController& vnf_controller(VnfId vnf);
  [[nodiscard]] control::EdgeController& edge_controller(EdgeServiceId id);
  [[nodiscard]] const DeploymentConfig& config() const { return config_; }
  [[nodiscard]] sim::FaultInjector& fault_injector() { return faults_; }
  [[nodiscard]] control::FailureDetector& failure_detector() {
    return *detector_;
  }
  /// Stable storage backing the controller journal (always present; only
  /// written when `durable_controller` is set).
  [[nodiscard]] sim::DurableStore& durable_store() { return durable_store_; }
  /// The controller journal, or nullptr without `durable_controller`.
  [[nodiscard]] control::StateJournal* state_journal() {
    return journal_.get();
  }

  /// Replicated controller (DESIGN.md §18): builds a ReplicaGroup of
  /// `replicas` controller incarnations — replica 0 at `controller_site`,
  /// replica r at site (controller_site + r) mod site_count — starts
  /// journal streaming + quorum gating + leader heartbeats, and registers
  /// the crash-with-amnesia fault targets "controller:replica<r>" plus the
  /// "controller:leader" alias (resolved to the current leader at fault
  /// FIRE time, so scripted chaos can always target whoever leads).
  /// Call once, before chain creation; mutually exclusive with
  /// `durable_controller` (the group owns the journals).  Replication
  /// implies a reliable bus for /ctl/ topics — requires `reliable_bus`.
  void enable_replication(std::uint32_t replicas);
  /// Stops replica heartbeats + the group's failure detector so the
  /// simulator can drain (parallel to stop_recovery()).
  void stop_replication();
  /// The replica group, or nullptr without enable_replication().
  [[nodiscard]] control::ReplicaGroup* replica_group() {
    return replication_.get();
  }

  /// The site's AnycastRouter; requires `enable_anycast`.
  [[nodiscard]] control::AnycastRouter& anycast_router(SiteId site);

  /// Starts/stops the periodic announcement floods on every router
  /// (requires `enable_anycast`).  Like heartbeats, announcements
  /// self-reschedule — call stop_anycast() before draining the simulator.
  void start_anycast();
  void stop_anycast();

  /// Registers an edge service and its controller.
  EdgeServiceId create_edge_service(std::string name);

  /// Creates controllers for VNFs added to the model after construction.
  void sync_vnf_controllers();

  // ---- failure injection + recovery -------------------------------------
  /// (Re-)registers every current site ("site:<s>"), VNF controller
  /// ("controller:vnf<f>"), and data-plane element ("element:<id>") as a
  /// crash/restore target of the fault injector.  Idempotent; call again
  /// after chain creation so late-created instances become targets.
  void register_fault_targets();

  /// Arms the recovery pipeline: registers fault targets, starts
  /// heartbeats on every Local Switchboard at the detector period, and
  /// starts the failure detector wired into Global Switchboard
  /// (element/site down -> drain + reroute).  Call after the chains under
  /// test are active; call stop_recovery() before draining the simulator
  /// to completion (heartbeats and sweeps self-reschedule forever).
  void enable_recovery();
  void stop_recovery();

  // ---- data-plane packet walk -------------------------------------------
  struct HopTrace {
    dataplane::ElementId element{dataplane::kNoElement};
    control::ElementType type{control::ElementType::kForwarder};
    double latency_ms{0.0};   // latency of reaching this element
  };

  struct WalkResult {
    bool delivered{false};
    double latency_ms{0.0};
    std::vector<HopTrace> path;
    std::string failure;

    /// The VNF instances the packet visited, in order.
    [[nodiscard]] std::vector<dataplane::ElementId> vnf_instances() const;
  };

  /// Drives one packet of `flow` through the chain's data plane, starting
  /// at the ingress edge (forward) or egress edge (reverse).  `flow` is
  /// always the *forward-direction* 5-tuple.
  WalkResult inject(ChainId chain, const dataplane::FiveTuple& flow,
                    dataplane::Direction direction =
                        dataplane::Direction::kForward,
                    std::uint16_t size_bytes = 64);

  /// Like inject(), but entering at an arbitrary edge instance — e.g. an
  /// edge stitched in later by attach_edge (mobility).
  WalkResult inject_from(ChainId chain, dataplane::ElementId edge_instance,
                         const dataplane::FiveTuple& flow,
                         dataplane::Direction direction =
                             dataplane::Direction::kForward,
                         std::uint16_t size_bytes = 64);

  /// SB-ANYCAST-D walk (DESIGN.md §17): drives one packet through the
  /// chain with per-stage steering answered by the AnycastRouters — no
  /// installed rules and no Global Switchboard involvement.  Chain
  /// knowledge comes from the starting site's router (learned from
  /// bus-replicated route announcements); loops are impossible by the
  /// hop-budget + visited-site annotation; steering routes around site
  /// partitions and stale table entries by re-asking with the refuted
  /// site excluded.  Requires `enable_anycast`.
  WalkResult inject_anycast(ChainId chain, const dataplane::FiveTuple& flow,
                            dataplane::Direction direction =
                                dataplane::Direction::kForward,
                            std::uint16_t size_bytes = 64);

 private:
  DeploymentConfig config_;
  model::NetworkModel model_;
  sim::Simulator sim_;
  sim::FaultInjector faults_;
  sim::DurableStore durable_store_;
  std::unique_ptr<control::StateJournal> journal_;
  control::ElementRegistry elements_;
  std::unique_ptr<bus::ProxyBus> bus_;
  std::unique_ptr<control::ControlContext> context_;
  std::unique_ptr<control::GlobalSwitchboard> global_;
  std::vector<std::unique_ptr<control::LocalSwitchboard>> locals_;
  std::vector<std::unique_ptr<control::AnycastRouter>> anycast_routers_;
  std::vector<std::unique_ptr<control::VnfController>> vnf_controllers_;
  std::vector<std::unique_ptr<control::EdgeController>> edge_controllers_;
  std::unique_ptr<control::FailureDetector> detector_;
  std::unique_ptr<control::ReplicaGroup> replication_;
  /// Leader pinned when the "controller:leader" alias target fires, so the
  /// paired restore revives the same replica the crash took down.
  std::uint32_t leader_victim_{0};
};

}  // namespace switchboard::core
