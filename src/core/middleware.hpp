// switchboard::Middleware — the library's public facade.
//
// Wraps a Deployment with the synchronous, portal-level operations of
// Section 2: register services, define a chain, activate it, add routes,
// follow a user to a new edge site, and send traffic through the chain.
// Each blocking call drives the discrete-event simulator until the
// corresponding control-plane workflow completes.
//
//   switchboard::core::Middleware mw{std::move(model)};
//   auto vpn = mw.register_edge_service("vpn");
//   auto chain = mw.create_chain({.name = "enterprise",
//                                 .ingress_service = vpn, ...});
//   auto walk = mw.send(chain->chain, tuple);
#pragma once

#include <optional>
#include <string>

#include "common/result.hpp"
#include "core/deployment.hpp"

namespace switchboard::core {

class Middleware {
 public:
  explicit Middleware(model::NetworkModel model, DeploymentConfig config = {});

  /// Registers an edge service (VPN, broadband, cellular, ...).
  EdgeServiceId register_edge_service(std::string name);

  /// Adds a VNF to the catalog and deploys it at the given sites.
  struct VnfSite {
    SiteId site;
    double capacity;
  };
  VnfId register_vnf_service(std::string name, double load_per_unit,
                             const std::vector<VnfSite>& sites);

  /// Creates and activates a chain; blocks (in simulated time) until every
  /// involved site installed its rules.
  [[nodiscard]] Result<control::CreationReport> create_chain(
      const control::ChainSpec& spec);

  /// Adds a wide-area route to an active chain (Fig. 10).
  [[nodiscard]] Result<control::CreationReport> add_route(
      ChainId chain, const std::vector<SiteId>& preferred_vnf_sites = {});

  /// Extends the chain to a new edge site (mobility, Table 2).
  [[nodiscard]] Result<control::EdgeAdditionTrace> attach_edge(
      ChainId chain, SiteId site, EdgeServiceId edge_service);

  /// Sends one packet of `flow` through the chain's data plane.
  Deployment::WalkResult send(ChainId chain, const dataplane::FiveTuple& flow,
                              dataplane::Direction direction =
                                  dataplane::Direction::kForward);

  [[nodiscard]] Deployment& deployment() { return deployment_; }
  [[nodiscard]] const control::ChainRecord& chain_record(ChainId chain) {
    return deployment_.global().record(chain);
  }

 private:
  Deployment deployment_;
};

}  // namespace switchboard::core
