#include "core/middleware.hpp"

#include <utility>

namespace switchboard::core {
namespace {

/// Runs the simulator until `slot` is filled (the async workflow calls the
/// completion callback) or the event queue drains.
template <typename T>
Result<T> wait_for(sim::Simulator& sim, std::optional<Result<T>>& slot) {
  while (!slot.has_value() && sim.step()) {
  }
  if (!slot.has_value()) {
    return Result<T>{ErrorCode::kInternal,
                     "control-plane workflow did not complete"};
  }
  return std::move(*slot);
}

}  // namespace

Middleware::Middleware(model::NetworkModel model, DeploymentConfig config)
    : deployment_{std::move(model), config} {}

EdgeServiceId Middleware::register_edge_service(std::string name) {
  return deployment_.create_edge_service(std::move(name));
}

VnfId Middleware::register_vnf_service(std::string name, double load_per_unit,
                                       const std::vector<VnfSite>& sites) {
  model::NetworkModel& model = deployment_.network_model();
  const VnfId vnf = model.add_vnf(std::move(name), load_per_unit);
  for (const VnfSite& site : sites) {
    model.deploy_vnf(vnf, site.site, site.capacity);
  }
  deployment_.sync_vnf_controllers();
  return vnf;
}

Result<control::CreationReport> Middleware::create_chain(
    const control::ChainSpec& spec) {
  std::optional<Result<control::CreationReport>> slot;
  deployment_.global().create_chain(
      spec, [&slot](Result<control::CreationReport> result) {
        slot = std::move(result);
      });
  return wait_for(deployment_.simulator(), slot);
}

Result<control::CreationReport> Middleware::add_route(
    ChainId chain, const std::vector<SiteId>& preferred_vnf_sites) {
  std::optional<Result<control::CreationReport>> slot;
  deployment_.global().add_route(
      chain, preferred_vnf_sites,
      [&slot](Result<control::CreationReport> result) {
        slot = std::move(result);
      });
  return wait_for(deployment_.simulator(), slot);
}

Result<control::EdgeAdditionTrace> Middleware::attach_edge(
    ChainId chain, SiteId site, EdgeServiceId edge_service) {
  // The edge service brings up an instance at the new site, then the
  // Local Switchboard stitches it into the nearest route.
  const dataplane::ElementId edge_instance =
      deployment_.edge_controller(edge_service).ensure_edge_instance(site);
  std::optional<Result<control::EdgeAdditionTrace>> slot;
  deployment_.local(site).attach_edge(
      chain, edge_instance,
      [&slot](Result<control::EdgeAdditionTrace> result) {
        slot = std::move(result);
      });
  return wait_for(deployment_.simulator(), slot);
}

Deployment::WalkResult Middleware::send(ChainId chain,
                                        const dataplane::FiveTuple& flow,
                                        dataplane::Direction direction) {
  return deployment_.inject(chain, flow, direction);
}

}  // namespace switchboard::core
