// Umbrella header: everything a downstream user of the Switchboard
// middleware needs.
//
//   #include "switchboard/switchboard.hpp"
//
// Layers (bottom to top):
//   common/     ids, results, RNG, cost functions, stats
//   sim/        discrete-event simulator
//   net/        topology, ECMP routing, generators, traffic matrices
//   lp/         simplex + branch-and-bound (CPLEX substitute)
//   model/      the paper's Table-1 network model
//   te/         SB-LP, SB-DP, baselines, capacity planning, evaluator
//   bus/        global message bus (proxy topology + full-mesh baseline)
//   dataplane/  forwarders, flow tables, load balancing, traffic gen
//   control/    Global/Local Switchboard, VNF/edge controllers, 2PC
//   core/       Deployment wiring + the Middleware facade
#pragma once

#include "common/cost.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/zipf.hpp"
#include "core/deployment.hpp"
#include "core/middleware.hpp"
#include "model/network_model.hpp"
#include "model/scenario.hpp"
#include "net/topology_gen.hpp"
#include "net/traffic_matrix.hpp"
#include "te/baselines.hpp"
#include "te/capacity_planning.hpp"
#include "te/dp_routing.hpp"
#include "te/evaluator.hpp"
#include "te/lp_routing.hpp"
#include "te/te_engine.hpp"
