// control::ReplicaGroup — replicated controller journal with quorum acks
// and epoch-fenced hot failover (DESIGN.md §18).
//
// N controller incarnations ("replicas") each own a StateJournal over the
// deployment's DurableStore.  The leader — whichever replica the singleton
// GlobalSwitchboard currently embodies — streams every journal append to
// the followers over the reliable /ctl/repl/<from>_<to> topics; followers
// append each record to their own journal, apply it to a live in-memory
// mirror (hot standby), fold it into an FNV-1a applied-record digest, and
// ack their cumulative durable position.  The GlobalSwitchboard's quorum
// gate holds every externally visible acknowledgment (2PC prep -> commit,
// commit -> activation, pool-transition drains) until a quorum of replicas
// has the triggering record durable.  Snapshot compaction is replicated as
// a snapshot-install stream: the leader truncates its log only after a
// quorum of followers installed the snapshot.
//
// Liveness rides the same heartbeat machinery as site health: every live
// replica beats on the transient /health/ctl/replica_<r> topic and a
// FailureDetector sweeps them.  When the *leader* falls silent AND its
// process is actually dead (a pure partition is counted as a false
// suspicion, never an election — the CP choice: consistency over
// partition-tolerant availability), a deterministic election promotes the
// freshest live replica — max (epoch, applied records, replica id) — via
// GlobalSwitchboard::warm_failover(): no journal replay is charged, the
// epoch bumps so zombie-leader continuations and stale frames fence, the
// new leader pushes a fresh snapshot install to the surviving followers,
// and the §13 resolution sweep re-drives prepared 2PC and re-publishes
// routes.  A leader that crashes and restores before detection takes the
// legacy cold_start() path instead — the replay-cost contrast the
// bench_fig13_recovery `failover` series measures.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bus/topic.hpp"
#include "common/thread_annotations.hpp"
#include "control/context.hpp"
#include "control/failure_detector.hpp"
#include "control/global_switchboard.hpp"
#include "control/messages.hpp"
#include "control/state_journal.hpp"
#include "sim/durable_store.hpp"

namespace switchboard::control {

/// Synthetic SiteId keys for replica heartbeats — far above any real site
/// id, so replica liveness shares the detector sweep without collisions.
[[nodiscard]] inline SiteId replica_health_key(std::uint32_t replica) {
  return SiteId{0x7F000000u + replica};
}

struct ReplicationConfig {
  /// Per-replica journals are named "<journal.name>_r<i>".
  JournalConfig journal{};
  /// Quorum size counting the leader; 0 = majority (n/2 + 1).
  std::uint32_t quorum{0};
  /// Replica heartbeat / detector timing.  Detection latency is
  /// period * suspicion_threshold — the failover window's fixed part.
  FailureDetectorConfig detector{};
  /// Beat periods a live follower's ack may stall below the stream head
  /// before the leader re-syncs it with a snapshot install (heals gaps
  /// left by exhausted retransmit budgets after a partition).
  std::uint32_t repair_stall_beats{3};
};

/// A follower's live in-memory mirror of the journaled controller state —
/// enough to audit convergence; the full state is rebuilt from the
/// journal at promotion time.
struct ReplicaMirror {
  std::uint64_t epoch{0};
  std::uint32_t next_route_id{0};
  std::set<std::uint32_t> chains;
  /// Committed (chain, route) pairs not yet retired.
  std::set<std::pair<std::uint32_t, std::uint32_t>> committed;
  /// In-flight 2PC rounds -> prepared flag.
  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> inflight;
  std::set<std::pair<std::uint32_t, std::uint32_t>> dead_pools;
  std::uint64_t applied_records{0};

  /// Applies one journal record (unknown record types are ignored).
  void apply(const std::string& record);
  /// Aborts via SWB_CHECK on violation: no pair both committed and
  /// in-flight, committed routes belong to known chains.
  void check_invariants() const;
};

class ReplicaGroup {
 public:
  /// `replica_sites[r]` hosts replica r; replica 0 is the initial leader
  /// and must be hosted at the GlobalSwitchboard's home site.  `global`
  /// must already be durable (enable_durability) — its journal is
  /// replaced by replica 0's journal at start().
  ReplicaGroup(ControlContext& context, GlobalSwitchboard& global,
               sim::DurableStore& store, std::vector<SiteId> replica_sites,
               ReplicationConfig config = {});

  /// Wires the hooks (journal observer, quorum gate, compaction gate),
  /// installs the base snapshot on every replica, subscribes the stream /
  /// ack topics, and starts heartbeats + the failure detector.  Call once,
  /// after the deployment is constructed and before any chain creation.
  void start();
  /// Stops heartbeats and the detector (both self-reschedule) so the
  /// simulator can drain.
  void stop();

  [[nodiscard]] std::uint32_t replica_count() const {
    return static_cast<std::uint32_t>(sites_.size());
  }
  [[nodiscard]] std::uint32_t quorum() const { return quorum_; }
  [[nodiscard]] std::uint32_t leader() const {
    const swb::MutexLock lock{mutex_};
    return leader_;
  }
  [[nodiscard]] SiteId site_of(std::uint32_t replica) const {
    return sites_.at(replica);
  }
  [[nodiscard]] StateJournal& journal(std::uint32_t replica) {
    const swb::MutexLock lock{mutex_};
    return *replicas_.at(replica).journal;
  }
  [[nodiscard]] const ReplicaMirror& mirror(std::uint32_t replica) const {
    const swb::MutexLock lock{mutex_};
    return replicas_.at(replica).mirror;
  }
  [[nodiscard]] std::uint64_t digest(std::uint32_t replica) const {
    const swb::MutexLock lock{mutex_};
    return replicas_.at(replica).digest;
  }
  [[nodiscard]] std::uint64_t leader_digest() const {
    const swb::MutexLock lock{mutex_};
    return replicas_.at(leader_).digest;
  }
  [[nodiscard]] bool replica_up(std::uint32_t replica) const {
    const swb::MutexLock lock{mutex_};
    return replicas_.at(replica).up;
  }
  [[nodiscard]] FailureDetector& detector() { return *detector_; }

  // --- fault-target entry points (wired by core::Deployment) -------------
  /// Marks a replica's process dead (crash).  A dead leader also takes
  /// the GlobalSwitchboard down; the election waits for heartbeat
  /// detection.
  void crash_replica(std::uint32_t replica);
  /// Crash-with-amnesia restore.  A restored leader (no election ran,
  /// or none was possible) takes the legacy cold_start() path — journal
  /// replay charged; a restored follower is re-synced by the live leader
  /// with a fresh snapshot install.
  void restore_replica(std::uint32_t replica);

  // --- observability -------------------------------------------------------
  [[nodiscard]] std::uint64_t records_streamed() const {
    const swb::MutexLock lock{mutex_};
    return records_streamed_;
  }
  [[nodiscard]] std::uint64_t elections() const {
    const swb::MutexLock lock{mutex_};
    return elections_;
  }
  [[nodiscard]] std::uint64_t cold_restarts() const {
    const swb::MutexLock lock{mutex_};
    return cold_restarts_;
  }
  [[nodiscard]] std::uint64_t snapshot_installs_sent() const {
    const swb::MutexLock lock{mutex_};
    return installs_sent_;
  }
  [[nodiscard]] std::uint64_t replicated_compactions() const {
    const swb::MutexLock lock{mutex_};
    return replicated_compactions_;
  }
  [[nodiscard]] std::uint64_t false_suspicions() const {
    const swb::MutexLock lock{mutex_};
    return false_suspicions_;
  }
  [[nodiscard]] std::uint64_t divergences() const {
    const swb::MutexLock lock{mutex_};
    return divergences_;
  }
  [[nodiscard]] std::uint64_t barriers_released() const {
    const swb::MutexLock lock{mutex_};
    return barriers_released_;
  }
  [[nodiscard]] std::uint64_t barriers_dropped() const {
    const swb::MutexLock lock{mutex_};
    return barriers_dropped_;
  }
  /// Mean barrier wait (journal append -> quorum durable), milliseconds.
  [[nodiscard]] double mean_quorum_ack_ms() const;
  /// Deterministic election trace: "t=<us>;winner=<r>;epoch=<e>\n" lines —
  /// the byte-identical-under-a-seed determinism artifact for failover.
  [[nodiscard]] std::string election_string() const {
    const swb::MutexLock lock{mutex_};
    return election_log_;
  }

  /// Divergence verifier for quiescent barriers and post-failover checks:
  /// every live, caught-up replica's digest must equal the leader's, and
  /// every mirror audits clean.  Aborts via SWB_CHECK on violation.
  void verify_convergence() const;
  /// Audits group state (aborts via SWB_CHECK): leader is live or awaiting
  /// election, quorum within bounds, acked positions never ahead of the
  /// stream head, pending barriers ordered, counters consistent.
  void check_invariants() const;

 private:
  struct Replica {
    std::unique_ptr<StateJournal> journal;
    ReplicaMirror mirror;
    std::uint64_t digest{0};
    /// Highest contiguously applied stream seq (follower side).
    std::uint64_t applied_seq{0};
    /// Epoch this replica last installed/streamed under.
    std::uint64_t epoch_seen{0};
    bool up{true};
    /// Out-of-order frames awaiting the gap: (epoch, seq) -> record.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> reorder;
    /// Leader-side view: highest seq this follower acked as durable.
    std::uint64_t acked{0};
    /// Leader-side repair: consecutive beat checks the follower's ack
    /// stalled below the stream head.
    std::uint32_t stalled_beats{0};
    std::uint64_t beat_seq{0};
  };

  struct Barrier {
    std::uint64_t seq{0};
    sim::SimTime created{0};
    std::function<void()> resume;
  };

  // Hook bodies (installed on the GlobalSwitchboard by start()).
  void on_leader_append(const std::string& record);
  void on_quorum_gate(std::function<void()> resume);
  void on_compaction_wanted();

  // Bus-facing handlers.
  void on_stream_frame(std::uint32_t to, const ReplicationFrame& frame);
  void on_ack_frame(std::uint32_t to, const ReplicationFrame& frame);
  void on_replica_suspected(std::uint32_t replica);

  void beat();
  void elect_and_promote() SWB_EXCLUDES(mutex_);
  /// Streams a full snapshot install to `to` from the current leader.
  void push_install_to(std::uint32_t to) SWB_REQUIRES(mutex_);
  /// Installs `records` into every replica's journal + mirror locally
  /// (bootstrap only — no messaging).
  void bootstrap_install() SWB_EXCLUDES(mutex_);
  void rebuild_leader_mirror_from_journal() SWB_REQUIRES(mutex_);
  [[nodiscard]] bool quorum_satisfied(std::uint64_t seq) const
      SWB_REQUIRES(mutex_);
  /// Pops every satisfied barrier (in order) and returns their resumes to
  /// run outside the lock.
  [[nodiscard]] std::vector<std::function<void()>> collect_released_barriers()
      SWB_REQUIRES(mutex_);

  ControlContext& context_;
  GlobalSwitchboard& global_;
  sim::DurableStore& store_;
  std::vector<SiteId> sites_;
  ReplicationConfig config_;
  std::uint32_t quorum_{0};
  std::unique_ptr<FailureDetector> detector_;

  /// One lock covers group state, per-replica mirrors, and counters.
  /// Contract: bus publishes, GlobalSwitchboard calls (warm_failover,
  /// cold_start, compact_journal_now), and barrier resumes NEVER run
  /// under it — handlers mutate state under the lock, collect the actions,
  /// and perform them after release (same discipline as FailureDetector).
  mutable swb::Mutex mutex_;
  std::vector<Replica> replicas_ SWB_GUARDED_BY(mutex_);
  std::uint32_t leader_ SWB_GUARDED_BY(mutex_){0};
  bool started_ SWB_GUARDED_BY(mutex_){false};
  /// Suppresses streaming of the epoch-bump record warm_failover /
  /// cold_start append while a promotion is rebuilding the leader.
  bool promoting_ SWB_GUARDED_BY(mutex_){false};
  std::uint64_t stream_seq_ SWB_GUARDED_BY(mutex_){0};
  std::deque<Barrier> pending_ SWB_GUARDED_BY(mutex_);
  /// One replicated snapshot install in flight at a time (dedup).
  bool install_pending_ SWB_GUARDED_BY(mutex_){false};
  std::uint64_t install_seq_ SWB_GUARDED_BY(mutex_){0};
  std::set<std::uint32_t> install_acks_ SWB_GUARDED_BY(mutex_);
  /// Frames queued by push_install_to() under the lock, published by the
  /// caller after release (the no-publish-under-lock contract).
  std::vector<std::pair<bus::Topic, std::string>> install_outbox_
      SWB_GUARDED_BY(mutex_);
  sim::EventHandle beat_event_ SWB_GUARDED_BY(mutex_){};
  bool beating_ SWB_GUARDED_BY(mutex_){false};

  std::uint64_t records_streamed_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t elections_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t cold_restarts_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t installs_sent_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t replicated_compactions_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t false_suspicions_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t divergences_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t barriers_released_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t barriers_dropped_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t barrier_wait_us_total_ SWB_GUARDED_BY(mutex_){0};
  std::string election_log_ SWB_GUARDED_BY(mutex_);
};

}  // namespace switchboard::control
