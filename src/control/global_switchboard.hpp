// Global Switchboard (Sections 3 and 4): the centralized controller.
//
// Chain creation follows Fig. 4: (1) resolve ingress/egress sites via the
// edge controllers; (2) compute a wide-area route (SB-DP against current
// loads) and allocate labels; run two-phase commit with the VNF
// controllers, recomputing with the rejecting site excluded when a
// participant votes abort; (3) publish routes + labels on the message bus
// (replicated to every Local Switchboard); (4-5) controllers allocate
// instances, Local Switchboards derive and install load-balancing rules
// and report readiness.  Dynamic route addition (Fig. 10) reuses the same
// machinery and rebalances route weights.
//
// Durability (DESIGN.md §13): with enable_durability() the coordinator
// writes every committed state change through a control::StateJournal —
// chain registration, 2PC begin/prepare/commit/abort, route retirement,
// pool capacity transitions — and carries a monotonically increasing
// incarnation epoch on every route announcement and participant RPC.
// After a crash-with-amnesia, cold_start() rebuilds chains/routes/loads
// from snapshot+replay, re-drives prepared-but-uncommitted 2PC rounds,
// aborts begun-but-unprepared ones, reconciles committed capacity against
// the participants (releasing orphans), and bumps the epoch so stale
// commands from the previous incarnation are fenced everywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "bus/topic.hpp"
#include "common/result.hpp"
#include "control/context.hpp"
#include "control/edge_controller.hpp"
#include "control/local_switchboard.hpp"
#include "control/messages.hpp"
#include "control/state_journal.hpp"
#include "control/vnf_controller.hpp"
#include "te/dp_routing.hpp"
#include "te/lp_routing.hpp"
#include "te/te_engine.hpp"

namespace switchboard::control {

struct ChainSpec {
  std::string name;
  EdgeServiceId ingress_service;
  NodeId ingress_node;
  EdgeServiceId egress_service;
  NodeId egress_node;
  std::vector<VnfId> vnfs;
  /// Estimated per-stage traffic (customer estimate at first deployment).
  double forward_traffic{1.0};
  double reverse_traffic{0.0};
};

struct RouteRecord {
  RouteId id;
  std::vector<SiteId> vnf_sites;   // one per VNF in the chain
  double weight{1.0};
};

struct ChainRecord {
  ChainId id;
  ChainSpec spec;
  dataplane::Labels labels;
  SiteId ingress_site;
  SiteId egress_site;
  std::vector<RouteRecord> routes;
  bool active{false};
};

struct CreationEvent {
  std::string name;
  sim::SimTime at{0};
};

/// Summary of one recovery action (on_instance_down / on_link_down).
struct RecoveryReport {
  std::size_t affected_chains{0};
  /// Routes retired (tombstoned with weight 0, capacity released).
  std::size_t routes_removed{0};
  /// Chains whose last route died: a fresh route was requested for each.
  std::size_t replacements_requested{0};
  /// Admitted volume (forward + reverse stage traffic estimate) moved off
  /// the retired routes — onto rebalanced survivors or replacements.
  double rerouted_volume{0.0};
};

struct CreationReport {
  ChainId chain;
  RouteId route;
  dataplane::Labels labels;
  sim::SimTime started{0};
  sim::SimTime completed{0};
  std::vector<CreationEvent> events;

  [[nodiscard]] sim::Duration elapsed() const { return completed - started; }
};

/// Summary of one crash-with-amnesia recovery (cold_start()).  The replay
/// fields are final when cold_start() returns; the in-flight-resolution
/// and reconciliation fields settle after `replay_cost` of simulated time
/// (read them via last_cold_start() once the run settles).
struct ColdStartReport {
  std::uint64_t epoch{0};               // the new incarnation's epoch
  std::size_t replayed_records{0};
  std::size_t chains_restored{0};
  std::size_t routes_restored{0};
  /// Prepared-but-uncommitted rounds re-driven to commit after replay.
  std::size_t redriven_commits{0};
  /// Begun-but-unprepared rounds aborted after replay.
  std::size_t aborted_inflight{0};
  /// Committed (chain, route) pairs found at participants with no
  /// journaled owner — their capacity was released.
  std::size_t orphans_released{0};
  /// Sweep + release + re-publish messages sent while reconciling.
  std::size_t reconciliation_messages{0};
  /// Simulated time charged for replaying the journal.
  sim::Duration replay_cost{0};
};

class GlobalSwitchboard {
 public:
  using CreationCallback = std::function<void(Result<CreationReport>)>;

  GlobalSwitchboard(ControlContext& context, SiteId home_site);

  [[nodiscard]] SiteId home_site() const { return home_site_; }
  /// The topic on which all route announcements are published; every
  /// Local Switchboard subscribes to it at start().
  [[nodiscard]] bus::Topic routes_topic() const;

  void register_edge_controller(EdgeController* controller);
  void register_vnf_controller(VnfController* controller);
  void register_local_switchboard(LocalSwitchboard* local);

  /// Creates and activates a chain (Fig. 4).  `done` fires when every
  /// involved site reported its rules installed.
  void create_chain(const ChainSpec& spec, CreationCallback done);

  /// Adds a wide-area route to an active chain (Fig. 10).  When
  /// `preferred_vnf_sites` is non-empty it pins the new route's VNF
  /// placement; otherwise SB-DP chooses.  Route weights rebalance to
  /// 1/N and all routes are re-published.
  void add_route(ChainId chain, const std::vector<SiteId>& preferred_vnf_sites,
                 CreationCallback done);

  /// Hard-precondition lookup: aborts (SWB_CHECK) on an unknown chain.
  [[nodiscard]] const ChainRecord& record(ChainId chain) const;
  /// Nullable lookup: nullptr when the chain was never created.
  [[nodiscard]] const ChainRecord* find_record(ChainId chain) const;
  [[nodiscard]] const te::Loads& loads() const { return loads_; }
  [[nodiscard]] te::DpOptions& dp_options() { return dp_options_; }

  /// Route-compute mode for new and replacement routes.  kSbDp runs the
  /// greedy DP against current loads (the default); kSbLp re-solves the
  /// global max-throughput LP (warm-started from the previous basis) and
  /// takes the chain's primary flow-decomposition path, falling back to
  /// SB-DP when the LP carries none of the chain's traffic.  2PC retries
  /// with excluded sites always use SB-DP — the LP formulation cannot
  /// express per-site exclusions.
  enum class TeMode { kSbDp, kSbLp };
  void set_te_mode(TeMode mode) { te_mode_ = mode; }
  [[nodiscard]] TeMode te_mode() const { return te_mode_; }

  /// Readiness callback target for Local Switchboards.
  void on_route_ready(ChainId chain, RouteId route, SiteId site);

  /// --- durability & crash-with-amnesia recovery --------------------------
  /// Starts writing through `journal` (not owned; must outlive this).  The
  /// current state is persisted immediately as the base snapshot.
  void enable_durability(StateJournal* journal);
  [[nodiscard]] bool durable() const { return journal_ != nullptr; }

  /// Reachability (fault injection).  A down coordinator schedules
  /// nothing, answers nothing, and ignores recovery triggers; in-flight
  /// continuations from the old incarnation are dropped by epoch guards.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool up() const { return up_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Crash-with-amnesia recovery: wipes all volatile state, replays
  /// snapshot+log from the journal, bumps the incarnation epoch, then
  /// (after the journal's replay cost in simulated time) re-drives
  /// prepared in-flight 2PC rounds, aborts unprepared ones, reconciles
  /// committed capacity against every participant, and re-publishes all
  /// routes under the new epoch.  Requires enable_durability().
  ColdStartReport cold_start();
  [[nodiscard]] const ColdStartReport& last_cold_start() const {
    return last_cold_start_;
  }

  /// --- replication hooks (DESIGN.md §18; driven by a ReplicaGroup) -------
  /// Observer of every journaled record, invoked right after the local
  /// append — the leader-side tap the replication stream rides on.
  void set_journal_observer(std::function<void(const std::string&)> observer);

  /// Quorum barrier: when set, the coordinator acknowledges a journaled
  /// state change (prep -> commit round, commit -> activation, pool
  /// transitions) only after the gate releases the given resume closure —
  /// the ReplicaGroup releases it once a quorum of replicas durably
  /// appended the record.  Resumes are epoch-guarded: a gate released
  /// after a failover no-ops.
  void set_quorum_gate(
      std::function<void(std::function<void()>)> gate);

  /// Compaction gate: when set, the journal's wants_snapshot() trigger is
  /// handed to the gate instead of compacting inline — the ReplicaGroup
  /// replicates the snapshot to followers first and calls
  /// compact_journal_now() once a quorum installed it (log truncation
  /// fenced on follower ack).
  void set_compaction_gate(std::function<void()> gate);

  /// Re-encodes the current state and compacts the journal immediately
  /// (re-encoding at call time, so records appended while a replicated
  /// snapshot install was in flight are never lost to truncation).
  void compact_journal_now();

  /// Full state in journal-record grammar — what a snapshot install
  /// streams to followers.
  [[nodiscard]] std::vector<std::string> snapshot_state() const {
    return encode_snapshot();
  }

  /// Leader failover onto a hot standby: re-points the coordinator at the
  /// promoted replica's journal and rebuilds from it like cold_start(),
  /// but charges NO replay cost — the standby applied every record as it
  /// arrived, so promotion is an epoch bump plus the §13 resolution
  /// sweep (re-drive prepared 2PC, abort unprepared, reconcile,
  /// re-publish), scheduled one tick out.
  ColdStartReport warm_failover(StateJournal* journal);

  /// A previously-failed VNF pool at `site` is back: restores the
  /// capacity zeroed by on_instance_down and re-announces the pool so
  /// Local Switchboards rebalance onto it.
  void on_instance_up(VnfId vnf, SiteId site);

  /// --- recovery (driven by the failure detector) -------------------------
  /// A VNF's instance pool at `site` died: zeroes the failed capacity,
  /// triggers the drain (weight-0 instance re-announcements), retires every
  /// route placing that VNF there (weight-0 route tombstones + committed
  /// capacity release + incremental load deltas), rebalances each affected
  /// chain's surviving routes to equal weights, and requests a replacement
  /// route for chains left with none.  Only affected chains are touched —
  /// audited by check_invariants()'s incremental-vs-rebuilt loads
  /// comparison.
  RecoveryReport on_instance_down(VnfId vnf, SiteId site);

  /// A wide-area link died: removes its usable capacity (background
  /// traffic fills it — topology capacities stay positive) and retires
  /// every route whose ECMP footprint crosses the link.
  RecoveryReport on_link_down(LinkId link);

  /// Audits the coordinator (aborts via SWB_CHECK on violation): chain ids
  /// and names are unique, every active chain's route weights sum to 1 and
  /// each route places one site per VNF stage, route ids stay below the
  /// allocator, pending activations reference known chains and still await
  /// at least one site, and every registered participant audits clean.
  void check_invariants() const;

 private:
  struct PendingActivation {
    ChainId chain;
    RouteId route;
    std::set<std::uint32_t> waiting_sites;
    CreationReport report;
    CreationCallback done;
  };

  /// One 2PC round between its journaled begin and its terminal record —
  /// exactly what a cold start must resolve.
  struct Inflight {
    std::vector<SiteId> vnf_sites;
    bool prepared{false};
  };

  /// Runs 2PC for a route, then publishes and tracks readiness.
  void commit_route(ChainRecord& record, RouteRecord route,
                    CreationReport report, CreationCallback done,
                    std::set<std::pair<std::uint32_t, std::uint32_t>> excluded,
                    std::size_t attempt);

  /// 2PC prepare round (fault-tolerant): votes are collected from every
  /// reachable participant; unreachable ones (down controllers) time out
  /// and the whole round retries with bounded exponential backoff —
  /// already-prepared participants dedup the re-delivered prepare.  After
  /// `ControlTimings::max_rpc_retries` timeouts the round aborts
  /// (kUnavailable) and releases the partial reservations.
  void start_prepare_round(
      ChainId chain, RouteRecord route, CreationReport report,
      CreationCallback done,
      std::set<std::pair<std::uint32_t, std::uint32_t>> excluded,
      std::size_t attempt, std::size_t rpc_retry);

  /// 2PC commit round with the same timeout/retry envelope; re-delivered
  /// commits are idempotent at the participant.  On retry exhaustion the
  /// route rolls back: reachable participants get abort (rejected-and-
  /// counted where already committed) + release.
  void start_commit_round(ChainId chain, RouteRecord route,
                          CreationReport report, CreationCallback done,
                          std::size_t rpc_retry);

  /// Shared recovery walk: retires every active route matched by `doomed`
  /// (tombstone, release, negative load delta, pending-activation
  /// cancellation), rebalances survivors, requests replacements.
  RecoveryReport retire_routes(
      const std::function<bool(const ChainRecord&, const RouteRecord&)>&
          doomed);

  /// Computes and commits a fresh route for a chain whose last route was
  /// retired by recovery (completion is logged, not reported upward).
  void replace_route(ChainId chain);

  [[nodiscard]] bool route_uses_link(const ChainRecord& record,
                                     const RouteRecord& route,
                                     LinkId link) const;

  /// SB-LP compute path: LP re-solve (warm-started when a prior basis is
  /// on hand) + flow decomposition for `chain`.  nullopt means the LP was
  /// not optimal or carries none of the chain — fall back to SB-DP.
  [[nodiscard]] std::optional<std::vector<SiteId>> lp_route_sites(
      ChainId chain);

  void publish_routes(const ChainRecord& record);

  // --- load accounting ----------------------------------------------------
  // loads_ is maintained incrementally: committing a route applies only
  // that chain's weight deltas (apply_route_loads) instead of re-walking
  // every active chain.  A full rebuild happens once, and again only when
  // the model's element counts change under us (late VNF/site/topology
  // registration), detected by ensure_loads_current().
  struct ModelShape {
    std::size_t links{0};
    std::size_t sites{0};
    std::size_t vnfs{0};
    friend bool operator==(const ModelShape&, const ModelShape&) = default;
  };
  [[nodiscard]] ModelShape model_shape() const;
  /// Full rebuild of `loads` from the active chains' routes.
  void rebuild_loads_into(te::Loads& loads) const;
  /// Full rebuild of loads_ (also marks it primed for the current shape).
  void rebuild_loads();
  /// Rebuilds loads_ only if never primed or the model was resized.
  void ensure_loads_current();
  /// Adds `weight_delta` of one route's traffic to loads_.
  void apply_route_loads(const ChainRecord& record, const RouteRecord& route,
                         double weight_delta);
  [[nodiscard]] RouteAnnouncement to_announcement(const ChainRecord& record,
                                                  const RouteRecord& route)
      const;
  [[nodiscard]] std::set<std::uint32_t> involved_sites(
      const ChainRecord& record, const RouteRecord& route) const;

  // --- durability internals ----------------------------------------------
  /// Appends one record; notifies the journal observer; compacts into a
  /// snapshot when the journal asks (or defers to the compaction gate).
  void journal_append(const std::string& record);
  /// Runs `resume` behind the quorum gate when one is set, synchronously
  /// otherwise (single-controller mode keeps its exact pre-replication
  /// timing).  Callers epoch-guard inside `resume`.
  void after_quorum(std::function<void()> resume);
  /// Shared body of cold_start() and warm_failover(): rebuild from
  /// journal_, bump the epoch, schedule the resolution sweep after
  /// `settle_delay` (replay cost for cold starts, one tick for warm
  /// promotions).
  ColdStartReport restart_from_journal(sim::Duration charged_replay_cost);
  /// Full state in journal-record grammar (replayable via replay_record).
  [[nodiscard]] std::vector<std::string> encode_snapshot() const;
  void replay_record(const std::string& record, std::uint64_t& max_epoch);
  /// Post-replay phase: re-drive / abort in-flight rounds, reconcile
  /// participant capacity, re-publish routes under the new epoch.
  void resolve_inflight_and_reconcile();

  ControlContext& context_;
  SiteId home_site_;
  std::vector<EdgeController*> edge_controllers_;     // by EdgeServiceId
  std::vector<VnfController*> vnf_controllers_;       // by VnfId
  std::vector<LocalSwitchboard*> local_switchboards_; // by SiteId
  std::vector<ChainRecord> chains_;
  std::vector<PendingActivation> pending_;
  te::Loads loads_;
  bool loads_primed_{false};
  ModelShape loads_shape_{};
  te::DpOptions dp_options_;
  te::DpScratch scratch_;   // reusable buffers for find_single_route
  TeMode te_mode_{TeMode::kSbDp};
  /// Previous SB-LP basis, fed back as a warm start so steady-state route
  /// recomputes converge in a handful of pivots.
  lp::Basis lp_basis_;
  bool lp_basis_valid_{false};
  std::uint32_t next_route_id_{0};

  StateJournal* journal_{nullptr};
  /// Replication hooks (unset in single-controller mode; see DESIGN.md §18).
  std::function<void(const std::string&)> journal_observer_;
  std::function<void(std::function<void()>)> quorum_gate_;
  std::function<void()> compaction_gate_;
  bool up_{true};
  /// Incarnation epoch, starting at 1 and bumped by every cold start.
  /// Carried on every route announcement and participant RPC.
  std::uint64_t epoch_{1};
  /// 2PC rounds between journaled begin and terminal record, keyed by
  /// (chain, route) — snapshots persist these so a crash at any point
  /// leaves enough to re-drive or abort.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Inflight> inflight_;
  /// Failed pools (vnf, site) -> capacity to restore on on_instance_up.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> dead_pools_;
  ColdStartReport last_cold_start_;
};

}  // namespace switchboard::control
