// SB-ANYCAST-D (DESIGN.md §17): the decentralized chain-routing mode.
//
// One AnycastRouter runs beside every Local Switchboard.  It periodically
// floods a sequence-numbered link-state announcement of its site's
// per-VNF liveness + residual capacity over per-pair bus topics
// (split-horizon re-flood, dedup by (origin, seq)), maintains a
// next-function table from the announcements it hears, and answers the
// data plane's per-stage steering question: "where is the nearest live
// instance of VNF f, excluding the sites this packet already visited?"
//
// The router never talks to the Global Switchboard.  Chain definitions
// (VNF sequence, labels, ingress/egress) are learned passively from the
// bus-replicated RouteAnnouncements every site already receives — once a
// chain exists, forwarding continues with the controller crashed or
// partitioned away.  Remote liveness degrades gracefully when
// announcements stop: entries older than stale_after() are treated as
// dead (the same silence-is-death rule the FailureDetector applies to
// heartbeats); local liveness reads the ElementRegistry directly, the
// same ground truth the site's heartbeats export.
//
// Determinism contract (§14): announcements, re-floods, and steering
// tie-breaks are recorded in an append-only trace whose FNV-1a digest is
// byte-identical for a fixed seed — candidate ordering is (model delay,
// higher residual, lower site id), never an unordered container walk.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bus/topic.hpp"
#include "control/context.hpp"
#include "control/messages.hpp"

namespace switchboard::control {

struct AnycastConfig {
  /// Announcement flood period (heartbeat-like).
  sim::Duration announce_period{sim::from_ms(50.0)};
  /// A remote entry unheard for this many periods is aged out (treated as
  /// a dead site until announcements resume).
  std::uint32_t stale_after_periods{4};
  /// Wide-area hops a packet may take before it is dropped (loop guard).
  std::uint16_t hop_budget{8};
};

/// What the table knows about one remote site's VNF pool.
struct AnycastPoolView {
  std::uint32_t live_instances{0};
  double residual_capacity{0.0};
};

class AnycastRouter {
 public:
  AnycastRouter(ControlContext& context, SiteId site, AnycastConfig config);

  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] const AnycastConfig& config() const { return config_; }
  [[nodiscard]] sim::Duration stale_after() const {
    return config_.announce_period *
           static_cast<sim::Duration>(config_.stale_after_periods);
  }

  /// Subscribes to every peer's flooding topic.  Call once, after all
  /// sites exist; announcing starts separately via start_announcing().
  void start();

  /// Begins the periodic announcement flood.  Self-rescheduling: call
  /// stop_announcing() before draining the simulator to completion.
  void start_announcing();
  void stop_announcing();

  /// Liveness (fault injection): a down router neither announces nor
  /// processes announcements — its silence ages its entries out at every
  /// peer, exactly like a crashed site.  Table state survives for restore.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool up() const { return up_; }

  /// Chain knowledge, learned from bus-replicated RouteAnnouncements (via
  /// LocalSwitchboard::set_route_observer).  Keyed by chain id; later
  /// announcements refresh labels/hops in place.
  struct ChainInfo {
    ChainId chain;
    dataplane::Labels labels;
    SiteId ingress_site;
    SiteId egress_site;
    std::vector<VnfId> vnfs;   // by stage, 1-based stage z at vnfs[z-1]
  };
  void learn_route(const RouteAnnouncement& announcement);
  [[nodiscard]] const ChainInfo* chain_info(ChainId chain) const;

  /// Steering: the best site serving `vnf` as seen from `here`, excluding
  /// sites in `visited_mask` (the current site is never excluded by its
  /// own bit — staying local is always legal).  Order: fresh + live only,
  /// then (delay_ms(here, s) ascending, residual capacity descending,
  /// site id ascending).  Deterministic; every decision is trace-recorded
  /// under `tag`.  Returns nullopt when no live instance is reachable.
  [[nodiscard]] std::optional<SiteId> next_site(VnfId vnf, SiteId here,
                                                std::uint64_t visited_mask,
                                                const std::string& tag);

  /// The table's current view of (site, vnf): live pool or aged out.
  /// The router's own site always reads fresh from the registry.
  [[nodiscard]] std::optional<AnycastPoolView> pool_view(SiteId site,
                                                         VnfId vnf) const;

  /// Entry point for announcements (normally via the bus).
  void on_announcement(SiteId from_neighbor,
                       const AnycastAnnouncement& announcement);

  // Determinism artifact + protocol counters.
  [[nodiscard]] std::string trace_string() const;
  /// FNV-1a over the trace; byte-identical traces <=> equal digests.
  [[nodiscard]] std::uint64_t trace_digest() const;
  [[nodiscard]] std::uint64_t announcements_sent() const {
    return announcements_sent_;
  }
  [[nodiscard]] std::uint64_t announcements_received() const {
    return announcements_received_;
  }
  [[nodiscard]] std::uint64_t refloods() const { return refloods_; }
  [[nodiscard]] std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_;
  }
  [[nodiscard]] std::size_t known_chain_count() const {
    return chains_.size();
  }

  /// Audits the router (aborts via SWB_CHECK on violation): no table
  /// entry for the router's own site, per-origin sequence numbers only
  /// grow, heard-times never lie in the future, trace timestamps are
  /// monotone, and every learned chain has a gap-free stage sequence.
  void check_invariants() const;

 private:
  /// Per-origin link state learned from the newest announcement.
  struct PeerState {
    std::uint64_t seq{0};
    sim::SimTime heard{0};
    double path_delay_ms{0.0};
    /// Ordered by vnf id: iteration feeds the trace (§14).
    std::map<std::uint32_t, AnycastPoolView> pools;
  };

  void publish_announcement();
  /// This site's own announcement content, read from the registry; bumps
  /// the sequence number.
  [[nodiscard]] AnycastAnnouncement local_announcement();
  /// Floods `announcement` to every peer except `except` (split horizon).
  void flood(const AnycastAnnouncement& announcement, SiteId except);
  void record(std::string line);
  [[nodiscard]] bool entry_fresh(const PeerState& state) const;

  ControlContext& context_;
  SiteId site_;
  AnycastConfig config_;
  bool up_{true};
  bool announcing_{false};
  bool started_{false};
  std::uint64_t seq_{0};
  sim::EventHandle announce_event_{};
  std::map<std::uint32_t, PeerState> table_;   // by origin site id
  std::map<std::uint32_t, ChainInfo> chains_;  // by chain id
  std::vector<std::string> trace_;
  sim::SimTime last_trace_at_{0};
  std::uint64_t announcements_sent_{0};
  std::uint64_t announcements_received_{0};
  std::uint64_t refloods_{0};
  std::uint64_t duplicates_dropped_{0};
};

}  // namespace switchboard::control
