// Edge service controller (Section 3, "prior to chain specification").
//
// An edge service is a multi-site service of edge instances plus this
// centralized controller.  It resolves a customer's ingress/egress
// specification (here: a network node) to a cloud site, manages edge
// instances, and publishes their info on the message bus when a chain
// route commits.
#pragma once

#include <string>

#include "bus/topic.hpp"
#include "common/result.hpp"
#include "common/types.hpp"
#include "control/context.hpp"
#include "control/messages.hpp"

namespace switchboard::control {

class EdgeController {
 public:
  EdgeController(ControlContext& context, EdgeServiceId id, std::string name);

  [[nodiscard]] EdgeServiceId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Resolves a customer-specified attachment node to its cloud site.
  [[nodiscard]] Result<SiteId> resolve_site(NodeId node) const;

  /// Ensures an edge instance (attached to a forwarder) exists at `site`;
  /// returns the edge instance element id.
  dataplane::ElementId ensure_edge_instance(SiteId site);

  /// Publishes the edge instance at `site` on the chain's instances topic
  /// (as the pseudo-VNF edge marker) after controller processing delay.
  void announce_edge_instance(ChainId chain, std::uint32_t egress_label,
                              SiteId site);

 private:
  ControlContext& context_;
  EdgeServiceId id_;
  std::string name_;
  // One edge instance per site, created on demand.
  std::vector<dataplane::ElementId> instance_at_site_;
};

}  // namespace switchboard::control
