// Explicit state machine for the two-phase commit a VNF controller runs
// with the Global Switchboard (Fig. 4 step 2 / Section 4).
//
// Each (chain, route) pair a participant hears about walks the machine
//
//        prepare-yes           commit
//   Idle ───────────► Prepared ───────► Committed
//     │                  │ ▲
//     │ prepare-no       │ │ prepare-yes (another stage of the same
//     ▼                  ▼   route reserving at this controller)
//   Aborted ◄────────────┘ abort
//
// with Committed and Aborted terminal but idempotently re-enterable (a
// chain that uses the same VNF at two stages sends the controller two
// commit calls for one route).  Every transition is validated against the
// legal matrix via SWB_CHECK, so a commit that never prepared, a commit
// after an abort, or a late abort of a committed route — the classic 2PC
// atomicity violations — crash loudly at the exact illegal call instead of
// silently corrupting capacity accounting.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/types.hpp"

namespace switchboard::control {

enum class TwoPhaseState : std::uint8_t {
  kIdle = 0,       // never heard of the (chain, route)
  kPrepared,       // voted yes; resources reserved
  kCommitted,      // reservation converted to allocation
  kAborted,        // voted no, or reservation dropped
};

[[nodiscard]] const char* to_string(TwoPhaseState state);

class TwoPhaseTracker {
 public:
  /// True when `from -> to` is a legal protocol step.
  [[nodiscard]] static bool legal(TwoPhaseState from, TwoPhaseState to);

  /// Current state of a (chain, route); kIdle when never seen.
  [[nodiscard]] TwoPhaseState state(ChainId chain, RouteId route) const;

  /// Applies a transition, aborting (SWB_CHECK) when it is illegal.
  void transition(ChainId chain, RouteId route, TwoPhaseState to);

  /// Applies a transition when legal; otherwise leaves the state alone,
  /// counts the rejection, logs at debug level, and returns false.  For
  /// paths where message duplication or coordinator retries make
  /// illegal-looking re-deliveries reachable (e.g. a late abort arriving
  /// for an already-committed route): those are protocol noise to shed,
  /// not programming errors to crash on.
  bool try_transition(ChainId chain, RouteId route, TwoPhaseState to);

  /// Transitions rejected by try_transition so far.
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }

  /// Number of tracked pairs currently in `state`.
  [[nodiscard]] std::size_t count(TwoPhaseState state) const;

  /// Audits the tracker: no pair is stored as kIdle (idle pairs are simply
  /// absent) and the per-state counts partition the map.
  void check_invariants() const;

 private:
  using Key = std::pair<std::uint32_t, std::uint32_t>;
  std::map<Key, TwoPhaseState> states_;
  std::uint64_t rejected_{0};
};

}  // namespace switchboard::control
