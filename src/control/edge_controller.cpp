#include "control/edge_controller.hpp"

#include "common/check.hpp"

namespace switchboard::control {

EdgeController::EdgeController(ControlContext& context, EdgeServiceId id,
                               std::string name)
    : context_{context},
      id_{id},
      name_{std::move(name)},
      instance_at_site_(context.model.sites().size(), dataplane::kNoElement) {}

Result<SiteId> EdgeController::resolve_site(NodeId node) const {
  const auto site = context_.model.site_at(node);
  if (!site.has_value()) {
    return Result<SiteId>{ErrorCode::kNotFound,
                          name_ + ": no cloud site at node " +
                              std::to_string(node.value())};
  }
  return Result<SiteId>{*site};
}

dataplane::ElementId EdgeController::ensure_edge_instance(SiteId site) {
  SWB_CHECK(site.value() < instance_at_site_.size());
  dataplane::ElementId& slot = instance_at_site_[site.value()];
  if (slot != dataplane::kNoElement) return slot;
  // The edge gets a dedicated forwarder at the site (one forwarder per
  // fronted service — the rule-disambiguation invariant).
  const dataplane::ElementId forwarder =
      context_.elements.create_forwarder(site);
  slot = context_.elements.create_edge_instance(site, forwarder);
  return slot;
}

void EdgeController::announce_edge_instance(ChainId chain,
                                            std::uint32_t egress_label,
                                            SiteId site) {
  const dataplane::ElementId instance = ensure_edge_instance(site);
  InstanceAnnouncement announcement;
  announcement.instance = instance;
  announcement.forwarder = context_.elements.info(instance).attached_forwarder;
  announcement.weight = 1.0;
  const bus::Topic topic = bus::instances_topic(
      chain, egress_label, ControlContext::edge_marker(), site);
  context_.sim.schedule(context_.timings.controller_processing,
                        [this, topic, announcement] {
                          context_.bus.publish(topic, serialize(announcement));
                        });
}

}  // namespace switchboard::control
