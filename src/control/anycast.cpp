#include "control/anycast.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {

AnycastRouter::AnycastRouter(ControlContext& context, SiteId site,
                             AnycastConfig config)
    : context_{context}, site_{site}, config_{config} {
  SWB_CHECK(config_.announce_period > 0) << "announce period must be positive";
  SWB_CHECK_GE(config_.stale_after_periods, 1U);
  SWB_CHECK_GE(config_.hop_budget, 1U);
}

void AnycastRouter::start() {
  if (started_) return;
  started_ = true;
  for (const model::CloudSite& peer : context_.model.sites()) {
    if (peer.id == site_) continue;
    context_.bus.subscribe(
        site_, bus::anycast_topic(peer.id, site_),
        [this, from = peer.id](const bus::Message& m) {
          const auto announcement = parse_anycast(m.payload);
          if (announcement.has_value()) {
            on_announcement(from, *announcement);
          } else {
            SB_LOG(kWarn) << "anycast site " << site_
                          << ": bad announcement payload";
          }
        });
  }
}

void AnycastRouter::start_announcing() {
  SWB_CHECK(started_) << "start() the router before announcing";
  if (announcing_) return;
  announcing_ = true;
  publish_announcement();
}

void AnycastRouter::stop_announcing() {
  announcing_ = false;
  if (announce_event_.valid()) {
    context_.sim.cancel(announce_event_);
    announce_event_ = sim::EventHandle{};
  }
}

void AnycastRouter::publish_announcement() {
  if (!announcing_) return;
  // A crashed router stays silent (its peers age its entries out) but
  // keeps ticking so announcements resume on restore.
  if (up_) {
    const AnycastAnnouncement announcement = local_announcement();
    record("announce seq=" + std::to_string(announcement.seq));
    flood(announcement, /*except=*/site_);
  }
  announce_event_ = context_.sim.schedule(config_.announce_period,
                                          [this] { publish_announcement(); });
}

AnycastAnnouncement AnycastRouter::local_announcement() {
  AnycastAnnouncement announcement;
  announcement.origin = site_;
  announcement.seq = ++seq_;
  for (const model::Vnf& vnf : context_.model.vnfs()) {
    const std::vector<dataplane::ElementId> pool =
        context_.elements.vnf_instances_at(site_, vnf.id);
    if (pool.empty()) continue;   // nothing allocated here (yet)
    AnycastVnfEntry entry;
    entry.vnf = vnf.id;
    for (const dataplane::ElementId id : pool) {
      const ElementInfo& info = context_.elements.info(id);
      if (!info.up) continue;
      ++entry.live_instances;
      entry.residual_capacity +=
          info.capacity > 0.0 ? info.capacity : info.weight;
    }
    announcement.entries.push_back(entry);
  }
  return announcement;
}

void AnycastRouter::flood(const AnycastAnnouncement& announcement,
                          SiteId except) {
  const bool relaying = announcement.origin != site_;
  for (const model::CloudSite& peer : context_.model.sites()) {
    if (peer.id == site_ || peer.id == except ||
        peer.id == announcement.origin) {
      continue;
    }
    AnycastAnnouncement copy = announcement;
    copy.path_delay_ms += context_.model.delay_ms(
        context_.model.site(site_).node, context_.model.site(peer.id).node);
    context_.bus.publish(bus::anycast_topic(site_, peer.id), serialize(copy));
    if (relaying) {
      ++refloods_;
    } else {
      ++announcements_sent_;
    }
  }
}

void AnycastRouter::on_announcement(SiteId from_neighbor,
                                    const AnycastAnnouncement& announcement) {
  // A crashed router processes nothing; the entries it misses while down
  // are refreshed by the first flood after restore.
  if (!up_) return;
  if (announcement.origin == site_) return;   // an echo of our own flood
  PeerState& state = table_[announcement.origin.value()];
  if (announcement.seq <= state.seq) {
    // Split horizon + dedup: an (origin, seq) we already accepted arrived
    // over another flooding path.  Dropping it here is what terminates the
    // flood on cyclic site graphs.
    ++duplicates_dropped_;
    return;
  }
  state.seq = announcement.seq;
  state.heard = context_.sim.now();
  state.path_delay_ms = announcement.path_delay_ms;
  state.pools.clear();
  std::ostringstream pools;
  for (const AnycastVnfEntry& entry : announcement.entries) {
    state.pools[entry.vnf.value()] =
        AnycastPoolView{entry.live_instances, entry.residual_capacity};
    pools << " f" << entry.vnf.value() << "=" << entry.live_instances;
  }
  ++announcements_received_;
  record("recv origin=" + std::to_string(announcement.origin.value()) +
         " seq=" + std::to_string(announcement.seq) + " via=" +
         std::to_string(from_neighbor.value()) + pools.str());
  flood(announcement, /*except=*/from_neighbor);
}

void AnycastRouter::learn_route(const RouteAnnouncement& announcement) {
  ChainInfo& info = chains_[announcement.chain.value()];
  info.chain = announcement.chain;
  info.labels =
      dataplane::Labels{announcement.chain_label, announcement.egress_label};
  info.ingress_site = announcement.ingress_site;
  info.egress_site = announcement.egress_site;
  for (const RouteHop& hop : announcement.hops) {
    SWB_CHECK_GE(hop.stage, std::size_t{1});
    if (hop.stage > info.vnfs.size()) info.vnfs.resize(hop.stage);
    info.vnfs[hop.stage - 1] = hop.vnf;
  }
  record("learn chain=" + std::to_string(announcement.chain.value()) +
         " route=" + std::to_string(announcement.route.value()));
}

const AnycastRouter::ChainInfo* AnycastRouter::chain_info(
    ChainId chain) const {
  const auto it = chains_.find(chain.value());
  return it == chains_.end() ? nullptr : &it->second;
}

bool AnycastRouter::entry_fresh(const PeerState& state) const {
  return context_.sim.now() - state.heard <= stale_after();
}

std::optional<AnycastPoolView> AnycastRouter::pool_view(SiteId site,
                                                        VnfId vnf) const {
  if (site == site_) {
    // Local liveness reads the registry directly — the same ground truth
    // the site's heartbeats export to the FailureDetector.
    AnycastPoolView view;
    for (const dataplane::ElementId id :
         context_.elements.vnf_instances_at(site_, vnf)) {
      const ElementInfo& info = context_.elements.info(id);
      if (!info.up) continue;
      ++view.live_instances;
      view.residual_capacity +=
          info.capacity > 0.0 ? info.capacity : info.weight;
    }
    return view;
  }
  const auto it = table_.find(site.value());
  if (it == table_.end() || !entry_fresh(it->second)) return std::nullopt;
  const auto pool = it->second.pools.find(vnf.value());
  if (pool == it->second.pools.end()) return std::nullopt;
  return pool->second;
}

std::optional<SiteId> AnycastRouter::next_site(VnfId vnf, SiteId here,
                                               std::uint64_t visited_mask,
                                               const std::string& tag) {
  struct Candidate {
    double delay_ms;
    double residual;
    std::uint32_t site;
  };
  std::vector<Candidate> candidates;
  const NodeId here_node = context_.model.site(here).node;
  for (const model::CloudSite& site : context_.model.sites()) {
    const std::uint32_t s = site.id.value();
    // The visited-set is the loop guard: a packet never re-enters a site
    // it left.  The current site's own bit is exempt — serving the next
    // stage locally is not a revisit.
    if (site.id != here && s < dataplane::kMaxAnycastSites &&
        (visited_mask & (std::uint64_t{1} << s)) != 0) {
      continue;
    }
    const std::optional<AnycastPoolView> view = pool_view(site.id, vnf);
    if (!view.has_value() || view->live_instances == 0) continue;
    candidates.push_back(
        Candidate{context_.model.delay_ms(here_node, site.node),
                  view->residual_capacity, s});
  }
  // Nearest live instance wins; residual capacity breaks delay ties
  // (load-aware), site id breaks exact ties (deterministic).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.delay_ms != b.delay_ms) return a.delay_ms < b.delay_ms;
              if (a.residual != b.residual) return a.residual > b.residual;
              return a.site < b.site;
            });
  std::ostringstream line;
  line << "steer " << tag << " vnf=" << vnf.value() << " here="
       << here.value() << " cands=" << candidates.size() << " -> ";
  if (candidates.empty()) {
    line << "none";
    record(line.str());
    return std::nullopt;
  }
  line << candidates.front().site;
  record(line.str());
  return SiteId{candidates.front().site};
}

void AnycastRouter::record(std::string line) {
  const sim::SimTime now = context_.sim.now();
  SWB_CHECK_GE(now, last_trace_at_);
  last_trace_at_ = now;
  trace_.push_back("t=" + std::to_string(now) + " s" +
                   std::to_string(site_.value()) + " " + std::move(line));
}

std::string AnycastRouter::trace_string() const {
  std::string out;
  for (const std::string& line : trace_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::uint64_t AnycastRouter::trace_digest() const {
  std::uint64_t hash = 1469598103934665603ULL;   // FNV-1a offset basis
  for (const std::string& line : trace_) {
    for (const char c : line) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
    hash ^= static_cast<unsigned char>('\n');
    hash *= 1099511628211ULL;
  }
  return hash;
}

void AnycastRouter::check_invariants() const {
  for (const auto& [origin, state] : table_) {
    SWB_CHECK(origin != site_.value())
        << "anycast table holds an entry for its own site";
    SWB_CHECK_LE(state.heard, context_.sim.now());
    SWB_CHECK_GE(state.seq, std::uint64_t{1});
    SWB_CHECK_GE(state.path_delay_ms, 0.0);
  }
  for (const auto& [id, info] : chains_) {
    SWB_CHECK_EQ(info.chain.value(), id);
    for (const VnfId vnf : info.vnfs) {
      SWB_CHECK_LT(vnf.value(), context_.model.vnfs().size())
          << "learned chain references an unknown VNF";
    }
  }
  SWB_CHECK_LE(last_trace_at_, context_.sim.now());
}

}  // namespace switchboard::control
