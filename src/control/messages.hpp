// Control-plane message payloads exchanged over the global message bus,
// with a compact key=value serialization (the prototype shipped JSON over
// ZeroMQ; the wire format is irrelevant to the protocol, the parse/build
// cost is real either way).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dataplane/flow_table.hpp"

namespace switchboard::control {

/// Published on .../site_<s>_instances by a VNF controller: one VNF
/// instance allocated to a chain at a site, with its LB weight.
struct InstanceAnnouncement {
  dataplane::ElementId instance{dataplane::kNoElement};
  dataplane::ElementId forwarder{dataplane::kNoElement};
  double weight{1.0};
};

/// Published on .../site_<s>_forwarders by a Local Switchboard: a
/// forwarder fronting a chain's VNF instances at a site; weight is the sum
/// of the weights of the instances it fronts (Section 5.2).
struct ForwarderAnnouncement {
  dataplane::ElementId forwarder{dataplane::kNoElement};
  double weight{1.0};
};

/// One hop of a wide-area chain route: the site hosting the z-th VNF.
struct RouteHop {
  std::size_t stage{0};   // z in 1..|F_c| (VNF stages only)
  VnfId vnf;
  SiteId site;
};

/// Published on /chains/<c>/routes by Global Switchboard after commit:
/// a wide-area route with its traffic fraction and labels.
struct RouteAnnouncement {
  ChainId chain;
  RouteId route;
  std::uint32_t chain_label{0};
  std::uint32_t egress_label{0};
  SiteId ingress_site;
  SiteId egress_site;
  double weight{1.0};   // fraction of the chain's traffic on this route
  /// Controller incarnation that issued the route (monotonically bumped on
  /// every cold start).  Receivers fence announcements older than the
  /// highest epoch they have seen; 0 (pre-durability senders) is ordered
  /// below every real epoch.
  std::uint64_t epoch{0};
  std::vector<RouteHop> hops;
};

/// Published on /health/site_<s> by a Local Switchboard: a periodic
/// liveness beat plus the local elements currently known down.  The
/// failure detector derives site liveness from beat arrival times and
/// element liveness from the down list.
struct Heartbeat {
  SiteId site;
  std::uint64_t seq{0};
  std::vector<dataplane::ElementId> down_elements;
};

/// One VNF pool of an anycast link-state announcement: how many live
/// instances the origin site currently runs and their summed residual
/// capacity (instance capacity where configured, LB weight otherwise).
struct AnycastVnfEntry {
  VnfId vnf;
  std::uint32_t live_instances{0};
  double residual_capacity{0.0};
};

/// SB-ANYCAST-D link-state announcement (DESIGN.md §17), flooded
/// site-to-site on the transient /health/anycast/ topics: the origin
/// site's per-VNF liveness + residual capacity, sequence-numbered for
/// dedup, with the propagation delay accumulated along the flooding path.
/// Like heartbeats, announcements are soft state — never retained, never
/// retransmitted — so receivers age entries out when they stop arriving.
struct AnycastAnnouncement {
  SiteId origin;
  std::uint64_t seq{0};
  /// Accumulated one-way delay (ms) from the origin along the flood path.
  double path_delay_ms{0.0};
  std::vector<AnycastVnfEntry> entries;
};

[[nodiscard]] std::string serialize(const InstanceAnnouncement& m);
[[nodiscard]] std::string serialize(const ForwarderAnnouncement& m);
[[nodiscard]] std::string serialize(const RouteAnnouncement& m);

[[nodiscard]] std::optional<InstanceAnnouncement> parse_instance(
    const std::string& payload);
[[nodiscard]] std::optional<ForwarderAnnouncement> parse_forwarder(
    const std::string& payload);
[[nodiscard]] std::string serialize(const Heartbeat& m);

[[nodiscard]] std::optional<RouteAnnouncement> parse_route(
    const std::string& payload);
[[nodiscard]] std::optional<Heartbeat> parse_heartbeat(
    const std::string& payload);

[[nodiscard]] std::string serialize(const AnycastAnnouncement& m);
[[nodiscard]] std::optional<AnycastAnnouncement> parse_anycast(
    const std::string& payload);

/// Journal-replication frames on the /ctl/repl/ topics (DESIGN.md §18).
enum class ReplicationKind : std::uint8_t {
  kRecord = 0,           // leader -> follower: one journal record
  kSnapshotInstall = 1,  // leader -> follower: full snapshot, resets state
  kAck = 2,              // follower -> leader: cumulative durable seq
  kSnapshotAck = 3,      // follower -> leader: snapshot install durable
};

struct ReplicationFrame {
  ReplicationKind kind{ReplicationKind::kRecord};
  /// Sender replica id.
  std::uint32_t from{0};
  /// Leader epoch the frame belongs to; receivers fence older epochs.
  std::uint64_t epoch{0};
  /// kRecord: position of this record in the leader's stream (1-based).
  /// kAck: highest contiguously applied-and-durable seq at the follower.
  /// kSnapshotInstall / kSnapshotAck: the install's id (stream seq at the
  /// moment the snapshot was cut; applies reset the follower to it).
  std::uint64_t seq{0};
  /// FNV-1a applied-record digest — the sender's for acks (divergence
  /// check), the leader's post-install digest for snapshot installs.
  std::uint64_t digest{0};
  /// Journal records: exactly one for kRecord, the full snapshot for
  /// kSnapshotInstall, empty for acks.  Serialized as the LAST field
  /// ('\n'-joined): records embed ';' and '=' freely but never '\n'.
  std::vector<std::string> records;
};

[[nodiscard]] std::string serialize(const ReplicationFrame& m);
[[nodiscard]] std::optional<ReplicationFrame> parse_replication(
    const std::string& payload);

}  // namespace switchboard::control
