#include "control/replication.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "bus/topic.hpp"
#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {
namespace {

// FNV-1a over every applied record (terminated like the journal frames it
// mirrors) — the cheap, order-sensitive convergence fingerprint each
// replica maintains and acks carry for cross-checking.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fold_record(std::uint64_t digest, const std::string& record) {
  for (const char c : record) {
    digest ^= static_cast<unsigned char>(c);
    digest *= kFnvPrime;
  }
  digest ^= static_cast<unsigned char>('\n');
  digest *= kFnvPrime;
  return digest;
}

std::uint64_t fold_records(std::uint64_t digest,
                           const std::vector<std::string>& records) {
  for (const std::string& record : records) {
    digest = fold_record(digest, record);
  }
  return digest;
}

/// Mirrors the journal-record "k=v;" grammar (global_switchboard.cpp).
std::map<std::string, std::string> record_fields(const std::string& record) {
  std::map<std::string, std::string> fields;
  std::istringstream in{record};
  std::string pair;
  while (std::getline(in, pair, ';')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    fields[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return fields;
}

std::uint64_t mirror_u64(const std::map<std::string, std::string>& fields,
                         const std::string& key) {
  const auto it = fields.find(key);
  SWB_CHECK(it != fields.end())
      << "replicated record missing field " << key;
  return std::stoull(it->second);
}

}  // namespace

void ReplicaMirror::apply(const std::string& record) {
  const auto fields = record_fields(record);
  const auto type_it = fields.find("t");
  SWB_CHECK(type_it != fields.end()) << "replicated record with no type";
  const std::string& type = type_it->second;
  if (type == "epoch") {
    const std::uint64_t n = mirror_u64(fields, "n");
    SWB_CHECK_GE(n, epoch) << "replicated epoch went backwards";
    epoch = n;
  } else if (type == "nri") {
    next_route_id = static_cast<std::uint32_t>(mirror_u64(fields, "n"));
  } else if (type == "chain") {
    chains.insert(static_cast<std::uint32_t>(mirror_u64(fields, "id")));
  } else if (type == "begin") {
    inflight[{static_cast<std::uint32_t>(mirror_u64(fields, "chain")),
              static_cast<std::uint32_t>(mirror_u64(fields, "route"))}] =
        false;
  } else if (type == "prep" || type == "commit" || type == "abort" ||
             type == "retire") {
    const std::pair<std::uint32_t, std::uint32_t> key{
        static_cast<std::uint32_t>(mirror_u64(fields, "chain")),
        static_cast<std::uint32_t>(mirror_u64(fields, "route"))};
    if (type == "prep") {
      inflight[key] = true;
    } else if (type == "commit") {
      inflight.erase(key);
      committed.insert(key);
    } else if (type == "abort") {
      inflight.erase(key);
    } else {
      committed.erase(key);
    }
  } else if (type == "pooldown") {
    dead_pools.insert({static_cast<std::uint32_t>(mirror_u64(fields, "vnf")),
                       static_cast<std::uint32_t>(mirror_u64(fields,
                                                             "site"))});
  } else if (type == "poolup") {
    dead_pools.erase({static_cast<std::uint32_t>(mirror_u64(fields, "vnf")),
                      static_cast<std::uint32_t>(mirror_u64(fields,
                                                            "site"))});
  }
  // Unknown types are tolerated: a newer leader may journal records this
  // mirror build does not track yet.
  ++applied_records;
}

void ReplicaMirror::check_invariants() const {
  for (const auto& [key, prepared] : inflight) {
    SWB_CHECK(committed.count(key) == 0)
        << "round (" << key.first << "," << key.second
        << ") both in-flight and committed in a replica mirror";
  }
  for (const auto& [chain, route] : committed) {
    SWB_CHECK(chains.count(chain) != 0)
        << "committed route " << route << " of unknown chain " << chain;
  }
}

ReplicaGroup::ReplicaGroup(ControlContext& context, GlobalSwitchboard& global,
                           sim::DurableStore& store,
                           std::vector<SiteId> replica_sites,
                           ReplicationConfig config)
    : context_{context},
      global_{global},
      store_{store},
      sites_{std::move(replica_sites)},
      config_{std::move(config)} {
  SWB_CHECK(!sites_.empty()) << "replica group with no replicas";
  SWB_CHECK(sites_[0] == global_.home_site())
      << "replica 0 must be hosted at the controller site";
  const auto n = static_cast<std::uint32_t>(sites_.size());
  quorum_ = config_.quorum != 0 ? config_.quorum : n / 2 + 1;
  SWB_CHECK_GE(quorum_, 1u);
  SWB_CHECK_LE(quorum_, n);

  const swb::MutexLock lock{mutex_};
  for (std::uint32_t r = 0; r < n; ++r) {
    Replica replica;
    JournalConfig journal_config = config_.journal;
    journal_config.name += "_r" + std::to_string(r);
    replica.journal =
        std::make_unique<StateJournal>(store_, journal_config);
    replicas_.push_back(std::move(replica));
  }
  detector_ = std::make_unique<FailureDetector>(context_, sites_[0],
                                                config_.detector);
}

void ReplicaGroup::start() {
  StateJournal* leader_journal = nullptr;
  {
    const swb::MutexLock lock{mutex_};
    SWB_CHECK(!started_) << "replica group started twice";
    started_ = true;
    leader_journal = replicas_.front().journal.get();
  }

  // Replica 0 becomes the leader's journal: the coordinator writes through
  // it from here on (the base snapshot is persisted by enable_durability).
  global_.enable_durability(leader_journal);
  bootstrap_install();

  global_.set_journal_observer(
      [this](const std::string& record) { on_leader_append(record); });
  global_.set_quorum_gate(
      [this](std::function<void()> resume) {
        on_quorum_gate(std::move(resume));
      });
  global_.set_compaction_gate([this] { on_compaction_wanted(); });

  // Every replica pair gets its stream + ack subscription up front (role
  // changes at failover never need new subscriptions, so retained-frame
  // replays to late subscribers cannot happen).
  const auto n = static_cast<std::uint32_t>(sites_.size());
  for (std::uint32_t from = 0; from < n; ++from) {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (from == to) continue;
      context_.bus.subscribe(
          sites_[to],
          bus::replication_stream_topic(from, to, sites_[from]),
          [this, to](const bus::Message& message) {
            if (const auto frame = parse_replication(message.payload)) {
              on_stream_frame(to, *frame);
            }
          });
      context_.bus.subscribe(
          sites_[to], bus::replication_ack_topic(from, to, sites_[from]),
          [this, to](const bus::Message& message) {
            if (const auto frame = parse_replication(message.payload)) {
              on_ack_frame(to, *frame);
            }
          });
    }
  }

  // Liveness: every replica beats on its own transient topic; one sweep
  // covers them all.  Election fires only on a *dead* leader's silence.
  for (std::uint32_t r = 0; r < n; ++r) {
    detector_->watch_heartbeats(replica_health_key(r),
                                bus::replica_health_topic(r, sites_[r]));
  }
  detector_->set_site_down_callback([this](SiteId key) {
    SWB_CHECK_GE(key.value(), replica_health_key(0).value());
    on_replica_suspected(key.value() - replica_health_key(0).value());
  });
  detector_->start();
  {
    const swb::MutexLock lock{mutex_};
    beating_ = true;
    beat_event_ = context_.sim.schedule(config_.detector.period,
                                        [this] { beat(); });
  }
}

void ReplicaGroup::stop() {
  detector_->stop();
  const swb::MutexLock lock{mutex_};
  beating_ = false;
  if (beat_event_.valid()) {
    context_.sim.cancel(beat_event_);
    beat_event_ = sim::EventHandle{};
  }
}

void ReplicaGroup::bootstrap_install() {
  const std::vector<std::string> base = global_.snapshot_state();
  const std::uint64_t digest = fold_records(kFnvOffset, base);
  const std::uint64_t epoch = global_.epoch();
  const swb::MutexLock lock{mutex_};
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    Replica& replica = replicas_[r];
    // Replica 0's journal already holds the base snapshot (it is the
    // leader's own journal); followers get a verbatim copy.
    if (r != 0) replica.journal->write_snapshot(base);
    replica.mirror = ReplicaMirror{};
    for (const std::string& record : base) replica.mirror.apply(record);
    replica.digest = digest;
    replica.applied_seq = 0;
    replica.epoch_seen = epoch;
  }
}

void ReplicaGroup::on_leader_append(const std::string& record) {
  std::vector<std::pair<bus::Topic, std::string>> outbox;
  {
    const swb::MutexLock lock{mutex_};
    Replica& self = replicas_[leader_];
    self.mirror.apply(record);
    self.digest = fold_record(self.digest, record);
    if (promoting_) return;   // epoch bump mid-promotion: install follows
    ++stream_seq_;
    self.applied_seq = stream_seq_;
    self.epoch_seen = global_.epoch();
    ReplicationFrame frame;
    frame.kind = ReplicationKind::kRecord;
    frame.from = leader_;
    frame.epoch = global_.epoch();
    frame.seq = stream_seq_;
    frame.digest = self.digest;
    frame.records.push_back(record);
    const std::string payload = serialize(frame);
    for (std::uint32_t f = 0; f < replicas_.size(); ++f) {
      if (f == leader_ || !replicas_[f].up) continue;
      ++records_streamed_;
      outbox.emplace_back(
          bus::replication_stream_topic(leader_, f, sites_[leader_]),
          payload);
    }
  }
  for (auto& [topic, payload] : outbox) {
    context_.bus.publish(topic, std::move(payload));
  }
}

void ReplicaGroup::on_quorum_gate(std::function<void()> resume) {
  bool immediate = false;
  {
    const swb::MutexLock lock{mutex_};
    if (pending_.empty() && quorum_satisfied(stream_seq_)) {
      // Already durable on a quorum (single-replica groups, or a barrier
      // raised after the acks caught up) — and nothing queued ahead.
      ++barriers_released_;
      immediate = true;
    } else {
      pending_.push_back(
          Barrier{stream_seq_, context_.sim.now(), std::move(resume)});
    }
  }
  if (immediate) resume();
}

void ReplicaGroup::on_compaction_wanted() {
  std::vector<std::pair<bus::Topic, std::string>> outbox;
  bool compact_now = false;
  {
    const swb::MutexLock lock{mutex_};
    if (install_pending_) return;   // one replicated install at a time
    std::size_t live_followers = 0;
    for (std::uint32_t f = 0; f < replicas_.size(); ++f) {
      if (f != leader_ && replicas_[f].up) ++live_followers;
    }
    if (quorum_ <= 1 || live_followers == 0) {
      // Nobody to fence on (single replica, or every follower dead — the
      // quorum barrier is already stalling commits in the latter case);
      // compact locally so the log does not grow without bound.
      compact_now = quorum_ <= 1;
      if (!compact_now) return;
    } else {
      install_pending_ = true;
      install_seq_ = stream_seq_;
      install_acks_.clear();
      for (std::uint32_t f = 0; f < replicas_.size(); ++f) {
        if (f == leader_ || !replicas_[f].up) continue;
        push_install_to(f);
      }
      // push_install_to queued the frames; drain them below.
      outbox.swap(install_outbox_);
    }
  }
  if (compact_now) global_.compact_journal_now();
  for (auto& [topic, payload] : outbox) {
    context_.bus.publish(topic, std::move(payload));
  }
}

void ReplicaGroup::push_install_to(std::uint32_t to) {
  // Snapshot of the leader's state *now*: followers installing it land at
  // stream position stream_seq_ with the leader's current digest.
  ReplicationFrame frame;
  frame.kind = ReplicationKind::kSnapshotInstall;
  frame.from = leader_;
  frame.epoch = global_.epoch();
  frame.seq = stream_seq_;
  frame.digest = replicas_[leader_].digest;
  frame.records = global_.snapshot_state();
  ++installs_sent_;
  replicas_[to].stalled_beats = 0;
  install_outbox_.emplace_back(
      bus::replication_stream_topic(leader_, to, sites_[leader_]),
      serialize(frame));
}

void ReplicaGroup::on_stream_frame(std::uint32_t to,
                                   const ReplicationFrame& frame) {
  std::vector<std::pair<bus::Topic, std::string>> outbox;
  {
    const swb::MutexLock lock{mutex_};
    Replica& replica = replicas_[to];
    // A dead process hears nothing; the leader follows nobody (a stale
    // stream from a deposed leader is fenced by the epoch check anyway).
    if (!replica.up || to == leader_) return;
    if (frame.epoch < replica.epoch_seen) return;   // zombie-leader frame

    if (frame.kind == ReplicationKind::kSnapshotInstall) {
      replica.journal->write_snapshot(frame.records);
      replica.mirror = ReplicaMirror{};
      for (const std::string& record : frame.records) {
        replica.mirror.apply(record);
      }
      replica.digest = frame.digest;
      replica.applied_seq = frame.seq;
      replica.epoch_seen = frame.epoch;
      // Drop reorder entries the install supersedes; older epochs die.
      std::erase_if(replica.reorder, [&](const auto& entry) {
        return entry.first.first < frame.epoch ||
               (entry.first.first == frame.epoch &&
                entry.first.second <= frame.seq);
      });
      ReplicationFrame ack;
      ack.kind = ReplicationKind::kSnapshotAck;
      ack.from = to;
      ack.epoch = frame.epoch;
      ack.seq = frame.seq;
      ack.digest = replica.digest;
      outbox.emplace_back(
          bus::replication_ack_topic(to, frame.from, sites_[to]),
          serialize(ack));
    } else if (frame.kind == ReplicationKind::kRecord) {
      SWB_CHECK_EQ(frame.records.size(), 1u) << "record frame framing";
      if (frame.epoch == replica.epoch_seen &&
          frame.seq <= replica.applied_seq) {
        // Duplicate (retransmit raced its ack) — re-ack, apply nothing.
      } else {
        replica.reorder[{frame.epoch, frame.seq}] = frame.records.front();
      }
      // Apply in order: records for a future epoch stay buffered until
      // that epoch's snapshot install arrives and moves epoch_seen.
      for (auto it = replica.reorder.find(
               {replica.epoch_seen, replica.applied_seq + 1});
           it != replica.reorder.end();
           it = replica.reorder.find(
               {replica.epoch_seen, replica.applied_seq + 1})) {
        replica.journal->append(it->second);
        replica.mirror.apply(it->second);
        replica.digest = fold_record(replica.digest, it->second);
        ++replica.applied_seq;
        replica.reorder.erase(it);
      }
      ReplicationFrame ack;
      ack.kind = ReplicationKind::kAck;
      ack.from = to;
      ack.epoch = replica.epoch_seen;
      ack.seq = replica.applied_seq;
      ack.digest = replica.digest;
      outbox.emplace_back(
          bus::replication_ack_topic(to, frame.from, sites_[to]),
          serialize(ack));
    }
  }
  for (auto& [topic, payload] : outbox) {
    context_.bus.publish(topic, std::move(payload));
  }
}

void ReplicaGroup::on_ack_frame(std::uint32_t to,
                                const ReplicationFrame& frame) {
  std::vector<std::function<void()>> resumes;
  bool compact = false;
  {
    const swb::MutexLock lock{mutex_};
    // Only the current leader consumes acks, and only for its own epoch —
    // acks addressed to a deposed incarnation are fenced here exactly
    // like its own continuations are fenced by the epoch guard.
    if (to != leader_ || !replicas_[to].up) return;
    if (frame.epoch != global_.epoch()) return;
    if (frame.from >= replicas_.size() || frame.from == leader_) return;
    Replica& follower = replicas_[frame.from];
    if (frame.seq > follower.acked) {
      follower.acked = frame.seq;
      follower.stalled_beats = 0;
    }
    if (frame.kind == ReplicationKind::kSnapshotAck && install_pending_ &&
        frame.seq >= install_seq_) {
      install_acks_.insert(frame.from);
      // The leader's own log always covers the snapshot; it counts
      // toward the install quorum like it counts toward ack quorums.
      if (1 + install_acks_.size() >= quorum_) {
        install_pending_ = false;
        compact = true;
        ++replicated_compactions_;
      }
    }
    // Divergence cross-check at the quiescent point: a follower claiming
    // the leader's exact stream position must carry its exact digest.
    if (frame.seq == stream_seq_ &&
        frame.digest != replicas_[leader_].digest) {
      ++divergences_;
      SB_LOG(kWarn) << "replication: follower " << frame.from
                    << " digest diverged at seq " << frame.seq;
    }
    resumes = collect_released_barriers();
  }
  if (compact) global_.compact_journal_now();
  for (auto& resume : resumes) resume();
}

bool ReplicaGroup::quorum_satisfied(std::uint64_t seq) const {
  std::uint32_t durable = 1;   // the leader's own journal
  for (std::uint32_t f = 0; f < replicas_.size(); ++f) {
    if (f == leader_ || !replicas_[f].up) continue;
    if (replicas_[f].acked >= seq) ++durable;
  }
  return durable >= quorum_;
}

std::vector<std::function<void()>> ReplicaGroup::collect_released_barriers()
    SWB_REQUIRES(mutex_) {
  std::vector<std::function<void()>> resumes;
  while (!pending_.empty() && quorum_satisfied(pending_.front().seq)) {
    Barrier barrier = std::move(pending_.front());
    pending_.pop_front();
    ++barriers_released_;
    barrier_wait_us_total_ +=
        static_cast<std::uint64_t>(context_.sim.now() - barrier.created);
    resumes.push_back(std::move(barrier.resume));
  }
  return resumes;
}

void ReplicaGroup::beat() {
  std::vector<std::pair<bus::Topic, std::string>> outbox;
  {
    const swb::MutexLock lock{mutex_};
    if (!beating_) return;
    for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
      Replica& replica = replicas_[r];
      if (!replica.up) continue;
      if (r == leader_ && !global_.up()) continue;
      Heartbeat hb;
      hb.site = replica_health_key(r);
      hb.seq = ++replica.beat_seq;
      outbox.emplace_back(bus::replica_health_topic(r, sites_[r]),
                          serialize(hb));
    }
    // Leader-side repair: a live follower whose ack has stalled below the
    // stream head for `repair_stall_beats` checks lost frames for good
    // (retransmit budget exhausted across a partition) — re-sync it with
    // a full snapshot install.
    if (replicas_[leader_].up && global_.up()) {
      for (std::uint32_t f = 0; f < replicas_.size(); ++f) {
        if (f == leader_ || !replicas_[f].up) continue;
        if (replicas_[f].acked >= stream_seq_) {
          replicas_[f].stalled_beats = 0;
          continue;
        }
        if (++replicas_[f].stalled_beats >= config_.repair_stall_beats) {
          push_install_to(f);
        }
      }
      outbox.insert(outbox.end(),
                    std::make_move_iterator(install_outbox_.begin()),
                    std::make_move_iterator(install_outbox_.end()));
      install_outbox_.clear();
    }
    beat_event_ = context_.sim.schedule(config_.detector.period,
                                       [this] { beat(); });
  }
  for (auto& [topic, payload] : outbox) {
    context_.bus.publish(topic, std::move(payload));
  }
}

void ReplicaGroup::on_replica_suspected(std::uint32_t replica) {
  {
    const swb::MutexLock lock{mutex_};
    if (replica >= replicas_.size()) return;
    if (replica != leader_) return;   // follower silence: nothing to elect
    if (replicas_[replica].up) {
      // The leader process is alive — this is a partition between it and
      // the detector.  The CP choice: no election (a second coordinator
      // would split the brain); consistency waits for the heal.
      ++false_suspicions_;
      return;
    }
  }
  elect_and_promote();
}

void ReplicaGroup::elect_and_promote() {
  std::uint32_t winner = 0;
  StateJournal* winner_journal = nullptr;
  {
    const swb::MutexLock lock{mutex_};
    if (replicas_[leader_].up) return;   // raced with a restore
    bool found = false;
    std::tuple<std::uint64_t, std::uint64_t, std::uint32_t> best{0, 0, 0};
    for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
      if (!replicas_[r].up) continue;
      const std::tuple<std::uint64_t, std::uint64_t, std::uint32_t> key{
          replicas_[r].epoch_seen, replicas_[r].applied_seq, r};
      if (!found || key > best) {
        best = key;
        winner = r;
        found = true;
      }
    }
    if (!found) {
      // Total controller outage: nothing to promote.  The next restored
      // replica recovers via the cold path.
      SB_LOG(kWarn) << "replication: leader dead and no live candidate";
      return;
    }
    // Barriers raised by the dead incarnation can never be satisfied in
    // its epoch; their resumes are epoch-guarded no-ops anyway.
    barriers_dropped_ += pending_.size();
    pending_.clear();
    install_pending_ = false;
    install_outbox_.clear();
    leader_ = winner;
    promoting_ = true;
    winner_journal = replicas_[winner].journal.get();
    SB_LOG(kInfo) << "replication: electing replica " << winner
                  << " (applied " << replicas_[winner].applied_seq
                  << " records)";
  }

  // Hot promotion: rebuild the coordinator from the winner's journal with
  // zero replay cost (the standby already applied everything), bumping
  // the epoch so the dead incarnation's continuations and frames fence.
  global_.warm_failover(winner_journal);

  std::vector<std::pair<bus::Topic, std::string>> outbox;
  {
    const swb::MutexLock lock{mutex_};
    promoting_ = false;
    stream_seq_ = 0;
    Replica& lead = replicas_[winner];
    lead.applied_seq = 0;
    lead.epoch_seen = global_.epoch();
    lead.reorder.clear();
    for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
      replicas_[r].acked = 0;
      replicas_[r].stalled_beats = 0;
    }
    ++elections_;
    std::ostringstream entry;
    entry << "t=" << context_.sim.now() << ";winner=" << winner
          << ";epoch=" << global_.epoch()
          << ";applied=" << lead.mirror.applied_records << "\n";
    election_log_ += entry.str();
    // The new epoch starts every follower from a fresh install (seq 0):
    // whatever the old leader half-streamed becomes irrelevant history.
    for (std::uint32_t f = 0; f < replicas_.size(); ++f) {
      if (f == winner || !replicas_[f].up) continue;
      push_install_to(f);
    }
    outbox.swap(install_outbox_);
  }
  for (auto& [topic, payload] : outbox) {
    context_.bus.publish(topic, std::move(payload));
  }
}

void ReplicaGroup::crash_replica(std::uint32_t replica) {
  bool was_leader = false;
  {
    const swb::MutexLock lock{mutex_};
    SWB_CHECK(replica < replicas_.size());
    if (!replicas_[replica].up) return;
    replicas_[replica].up = false;
    replicas_[replica].reorder.clear();
    was_leader = replica == leader_;
    if (was_leader) {
      barriers_dropped_ += pending_.size();
      pending_.clear();
      install_pending_ = false;
      install_outbox_.clear();
    }
  }
  // A dead leader takes the coordinator down with it; the election waits
  // for the heartbeat silence to cross the detection threshold.
  if (was_leader) global_.set_up(false);
}

void ReplicaGroup::restore_replica(std::uint32_t replica) {
  bool cold = false;
  bool leader_live = false;
  {
    const swb::MutexLock lock{mutex_};
    SWB_CHECK(replica < replicas_.size());
    if (replicas_[replica].up) return;
    replicas_[replica].up = true;
    replicas_[replica].stalled_beats = 0;
    cold = replica == leader_;
    if (cold) promoting_ = true;
    leader_live = replicas_[leader_].up && leader_ != replica;
  }

  if (cold) {
    // The dead leader came back before (or instead of) an election: the
    // legacy §13 path — full journal replay, replay cost charged.  This
    // is exactly the cold/hot contrast the failover bench measures.
    global_.cold_start();
    std::vector<std::pair<bus::Topic, std::string>> outbox;
    {
      const swb::MutexLock lock{mutex_};
      promoting_ = false;
      ++cold_restarts_;
      rebuild_leader_mirror_from_journal();
      stream_seq_ = 0;
      for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
        replicas_[r].acked = 0;
        replicas_[r].stalled_beats = 0;
      }
      for (std::uint32_t f = 0; f < replicas_.size(); ++f) {
        if (f == leader_ || !replicas_[f].up) continue;
        push_install_to(f);
      }
      outbox.swap(install_outbox_);
    }
    for (auto& [topic, payload] : outbox) {
      context_.bus.publish(topic, std::move(payload));
    }
    return;
  }

  // A restored follower lost its volatile mirror; the live leader
  // re-syncs it with a fresh snapshot install.  With the leader also
  // dead, the next election or cold restart installs instead.
  if (leader_live && global_.up()) {
    std::vector<std::pair<bus::Topic, std::string>> outbox;
    {
      const swb::MutexLock lock{mutex_};
      replicas_[replica].mirror = ReplicaMirror{};
      replicas_[replica].digest = kFnvOffset;
      replicas_[replica].applied_seq = 0;
      replicas_[replica].acked = 0;
      replicas_[replica].reorder.clear();
      push_install_to(replica);
      outbox.swap(install_outbox_);
    }
    for (auto& [topic, payload] : outbox) {
      context_.bus.publish(topic, std::move(payload));
    }
  }
}

void ReplicaGroup::rebuild_leader_mirror_from_journal() {
  Replica& lead = replicas_[leader_];
  lead.mirror = ReplicaMirror{};
  lead.digest = kFnvOffset;
  for (const std::string& record : lead.journal->snapshot_records()) {
    lead.mirror.apply(record);
    lead.digest = fold_record(lead.digest, record);
  }
  for (const std::string& record : lead.journal->log_records()) {
    lead.mirror.apply(record);
    lead.digest = fold_record(lead.digest, record);
  }
  lead.applied_seq = 0;
  lead.epoch_seen = global_.epoch();
  lead.reorder.clear();
}

double ReplicaGroup::mean_quorum_ack_ms() const {
  const swb::MutexLock lock{mutex_};
  if (barriers_released_ == 0) return 0.0;
  return static_cast<double>(barrier_wait_us_total_) /
         static_cast<double>(barriers_released_) / 1000.0;
}

void ReplicaGroup::verify_convergence() const {
  const swb::MutexLock lock{mutex_};
  SWB_CHECK_EQ(divergences_, 0u) << "replica digests diverged mid-run";
  const Replica& lead = replicas_[leader_];
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    const Replica& replica = replicas_[r];
    replica.mirror.check_invariants();
    if (r == leader_ || !replica.up) continue;
    if (replica.epoch_seen != lead.epoch_seen ||
        replica.applied_seq != stream_seq_) {
      continue;   // not caught up — nothing to compare yet
    }
    // Digest equality is the convergence proof; applied_records counts are
    // NOT compared — a snapshot install legitimately restarts a follower's
    // count from the install set while the leader's keeps its history.
    SWB_CHECK_EQ(replica.digest, lead.digest)
        << "caught-up replica " << r << " diverged from the leader";
  }
}

void ReplicaGroup::check_invariants() const {
  const swb::MutexLock lock{mutex_};
  SWB_CHECK_LT(leader_, replicas_.size());
  SWB_CHECK_GE(quorum_, 1u);
  SWB_CHECK_LE(quorum_, replicas_.size());
  std::uint64_t last_seq = 0;
  for (const Barrier& barrier : pending_) {
    SWB_CHECK_GE(barrier.seq, last_seq) << "quorum barriers out of order";
    SWB_CHECK_LE(barrier.seq, stream_seq_)
        << "barrier ahead of the stream head";
    last_seq = barrier.seq;
  }
  for (std::uint32_t r = 0; r < replicas_.size(); ++r) {
    const Replica& replica = replicas_[r];
    replica.mirror.check_invariants();
    if (r != leader_) {
      SWB_CHECK_LE(replica.acked, stream_seq_)
          << "follower " << r << " acked past the stream head";
    }
  }
  detector_->check_invariants();
}

}  // namespace switchboard::control
