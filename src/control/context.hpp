// Shared state handed to every controller: the simulator, the global
// message bus, the network model, the element registry, and the timing
// constants of control-plane operations.
#pragma once

#include "bus/message_bus.hpp"
#include "control/elements.hpp"
#include "model/network_model.hpp"
#include "sim/simulator.hpp"

namespace switchboard::control {

/// Processing/propagation delays of control operations.  Defaults are in
/// the range observed by the paper's prototype (Table 2 / Fig. 10a).
struct ControlTimings {
  /// One-way Global Switchboard <-> controller RPC.
  sim::Duration controller_rpc{sim::from_ms(15.0)};
  /// Controller-side processing of one request.
  sim::Duration controller_processing{sim::from_ms(5.0)};
  /// Wide-area route computation at Global Switchboard.
  sim::Duration route_compute{sim::from_ms(20.0)};
  /// Installing load-balancing rules at a forwarder.
  sim::Duration rule_install{sim::from_ms(30.0)};
  /// Setting up a wide-area tunnel endpoint at a forwarder.
  sim::Duration tunnel_setup{sim::from_ms(60.0)};

  // --- fault tolerance ----------------------------------------------------
  /// Coordinator-side wait before retrying a 2PC round whose participant
  /// did not answer (an unreachable controller never replies; the
  /// coordinator times out instead of hanging).
  sim::Duration rpc_timeout{sim::from_ms(200.0)};
  /// Extra backoff added per retry (doubles each attempt).
  sim::Duration rpc_retry_backoff{sim::from_ms(50.0)};
  /// Retries per 2PC round before the coordinator aborts the transaction.
  std::size_t max_rpc_retries{3};
  /// A reservation still prepared this long after its last prepare is
  /// garbage-collected (auto-aborted) by its controller — the coordinator
  /// that reserved it is presumed dead.  0 disables GC (the default:
  /// long-running experiments keep out-of-band reservations alive).
  sim::Duration reservation_ttl{0};
};

struct ControlContext {
  sim::Simulator& sim;
  bus::MessageBus& bus;
  model::NetworkModel& model;
  ElementRegistry& elements;
  ControlTimings timings{};

  /// Pseudo-VNF id used in bus topics for edge-service elements (the edge
  /// behaves as "the VNF before/after the chain" in rule wiring).
  [[nodiscard]] static VnfId edge_marker() { return VnfId{0x00FFFFFF}; }
};

}  // namespace switchboard::control
