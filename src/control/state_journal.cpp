#include "control/state_journal.hpp"

#include <utility>

#include "common/check.hpp"

namespace switchboard::control {

StateJournal::StateJournal(sim::DurableStore& store, JournalConfig config)
    : store_{store}, config_{std::move(config)} {
  SWB_CHECK(!config_.name.empty());
}

void StateJournal::append(const std::string& record) {
  SWB_CHECK(!record.empty());
  SWB_CHECK(record.find('\n') == std::string::npos)
      << "journal record with embedded newline";
  // Lock across store write + counter bump so a record is committed and
  // counted atomically (journal mutex_ -> store mutex_, see header).
  const swb::MutexLock lock{mutex_};
  if (!sealed_) {
    // A crash mid-append can leave the blob ending in an unterminated
    // record; appending onto it would fuse two records into one corrupt
    // line.  Truncate the torn tail permanently before the first write —
    // it was never durably committed, so dropping it is the only safe
    // interpretation.
    sealed_ = true;
    const std::string bytes = store_.read(log_blob());
    if (!bytes.empty() && bytes.back() != '\n') {
      const std::size_t last = bytes.rfind('\n');
      store_.write(log_blob(), last == std::string::npos
                                   ? std::string{}
                                   : bytes.substr(0, last + 1));
      ++torn_records_dropped_;
    }
  }
  store_.append(log_blob(), record + "\n");
  ++appends_;
  ++appends_since_snapshot_;
}

bool StateJournal::wants_snapshot() const {
  const swb::MutexLock lock{mutex_};
  return config_.snapshot_interval > 0 &&
         appends_since_snapshot_ >= config_.snapshot_interval;
}

void StateJournal::write_snapshot(const std::vector<std::string>& records) {
  std::string bytes;
  for (const std::string& record : records) {
    SWB_CHECK(!record.empty());
    SWB_CHECK(record.find('\n') == std::string::npos);
    bytes += record;
    bytes += '\n';
  }
  const swb::MutexLock lock{mutex_};
  sealed_ = true;   // the log is truncated below; no torn tail survives
  records_compacted_ += appends_since_snapshot_;
  store_.write(snap_blob(), bytes);
  store_.write(log_blob(), "");
  appends_since_snapshot_ = 0;
  ++snapshots_taken_;
}

std::vector<std::string> StateJournal::split_lines(
    const std::string& bytes) const {
  std::vector<std::string> lines;
  std::size_t begin = 0;
  while (begin < bytes.size()) {
    const std::size_t end = bytes.find('\n', begin);
    if (end == std::string::npos) {
      // A crash mid-append leaves a torn trailing record: the final line
      // never got its terminator.  Everything before it was committed
      // whole, so replay proceeds on those; the torn tail is shed and
      // counted rather than failing the entire recovery.
      const swb::MutexLock lock{mutex_};
      ++torn_records_dropped_;
      break;
    }
    lines.push_back(bytes.substr(begin, end - begin));
    begin = end + 1;
  }
  return lines;
}

std::vector<std::string> StateJournal::snapshot_records() const {
  return split_lines(store_.read(snap_blob()));
}

std::vector<std::string> StateJournal::log_records() const {
  return split_lines(store_.read(log_blob()));
}

sim::Duration StateJournal::replay_cost() const {
  const std::size_t records =
      snapshot_records().size() + log_records().size();
  return static_cast<sim::Duration>(records) * config_.replay_cost_per_record;
}

void StateJournal::check_invariants() const {
  for (const std::string& record : snapshot_records()) {
    SWB_CHECK(!record.empty()) << "empty snapshot record";
  }
  for (const std::string& record : log_records()) {
    SWB_CHECK(!record.empty()) << "empty log record";
  }
  const swb::MutexLock lock{mutex_};
  SWB_CHECK_LE(appends_since_snapshot_, appends_);
}

}  // namespace switchboard::control
