#include "control/local_switchboard.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {
namespace {

/// Upserts an announcement list by element id.
template <typename T, typename IdFn>
void upsert(std::vector<T>& list, const T& item, IdFn id_of) {
  for (T& existing : list) {
    if (id_of(existing) == id_of(item)) {
      existing = item;
      return;
    }
  }
  list.push_back(item);
}

/// Topic paths of an announcement map in sorted order.  The maps are
/// unordered (hash iteration order is seed- and library-dependent), but
/// what their contents feed — WeightedChoice rule construction, published
/// weight sums — must not depend on iteration order (determinism
/// contract, DESIGN.md §14).
template <typename Map>
std::vector<std::string> sorted_paths(const Map& by_path) {
  std::vector<std::string> paths;
  paths.reserve(by_path.size());
  for (const auto& entry : by_path) paths.push_back(entry.first);
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace

LocalSwitchboard::LocalSwitchboard(ControlContext& context, SiteId site)
    : context_{context}, site_{site} {}

void LocalSwitchboard::set_ready_callback(ReadyCallback callback) {
  ready_callback_ = std::move(callback);
}

void LocalSwitchboard::set_peer_lookup(PeerLookup lookup) {
  peer_lookup_ = std::move(lookup);
}

void LocalSwitchboard::set_route_observer(RouteObserver observer) {
  route_observer_ = std::move(observer);
}

void LocalSwitchboard::start(const bus::Topic& routes_topic) {
  context_.bus.subscribe(site_, routes_topic, [this](const bus::Message& m) {
    const auto route = parse_route(m.payload);
    if (route.has_value()) {
      handle_route(*route);
    } else {
      SB_LOG(kWarn) << "local-sb site " << site_ << ": bad route payload";
    }
  });
}

LocalSwitchboard::PerChain& LocalSwitchboard::chain_state(
    const RouteAnnouncement& announcement) {
  PerChain& pc = chains_[announcement.chain.value()];
  pc.chain = announcement.chain;
  pc.labels =
      dataplane::Labels{announcement.chain_label, announcement.egress_label};
  pc.ingress_site = announcement.ingress_site;
  pc.egress_site = announcement.egress_site;
  return pc;
}

void LocalSwitchboard::subscribe_instances(PerChain& pc, VnfId vnf,
                                           SiteId site) {
  const bus::Topic topic = bus::instances_topic(
      pc.chain, pc.labels.egress_site, vnf, site);
  if (!pc.subscribed.insert(topic.path).second) return;
  const ChainId chain = pc.chain;
  context_.bus.subscribe(
      site_, topic, [this, chain, path = topic.path](const bus::Message& m) {
        const auto announcement = parse_instance(m.payload);
        if (!announcement.has_value()) return;
        PerChain& state = chains_[chain.value()];
        upsert(state.instances[path], *announcement,
               [](const InstanceAnnouncement& a) { return a.instance; });
        // Weight 0 announces a dead instance: invalidate the pinned flow
        // entries on its fronting forwarder so the next packet of each
        // flow re-pins onto a survivor (drain).
        if (announcement->weight <= 0 &&
            context_.elements.exists(announcement->forwarder) &&
            context_.elements.info(announcement->forwarder).site == site_) {
          context_.elements.forwarder(announcement->forwarder)
              .drain_element(announcement->instance);
        }
        reconcile(state);
      });
}

void LocalSwitchboard::subscribe_forwarders(PerChain& pc, VnfId vnf,
                                            SiteId site) {
  const bus::Topic topic = bus::forwarders_topic(
      pc.chain, pc.labels.egress_site, vnf, site);
  if (!pc.subscribed.insert(topic.path).second) return;
  const ChainId chain = pc.chain;
  context_.bus.subscribe(
      site_, topic,
      [this, chain, vnf, site, path = topic.path](const bus::Message& m) {
        const auto announcement = parse_forwarder(m.payload);
        if (!announcement.has_value()) return;
        PerChain& state = chains_[chain.value()];
        upsert(state.forwarders[path], *announcement,
               [](const ForwarderAnnouncement& a) { return a.forwarder; });
        // Weight 0 retracts a next-hop forwarder (it died, or everything
        // behind it did): drop the pinned next-hop choices referencing it
        // on every local forwarder so flows re-pin.
        if (announcement->weight <= 0) {
          for (const dataplane::ElementId local :
               context_.elements.forwarders_at(site_)) {
            context_.elements.forwarder(local).drain_element(
                announcement->forwarder);
          }
        }
        reconcile(state);
        if (vnf == ControlContext::edge_marker() && site != site_) {
          handle_new_edge_forwarder(state, site, *announcement);
        }
      });
}

void LocalSwitchboard::handle_new_edge_forwarder(
    PerChain& pc, SiteId edge_site, const ForwarderAnnouncement& announcement) {
  // On-demand edge addition, remote side (Table 2 steps 4-6): this site
  // hosts the first VNF of some route; a forwarder at a *new* edge site
  // appeared; configure the return path (rule + tunnel endpoint) and tell
  // the initiating Local Switchboard.
  if (edge_site == pc.ingress_site) return;   // the original ingress
  if (edge_site == pc.egress_site) return;    // the egress edge, not mobility
  bool hosts_first_vnf = false;
  for (const RouteAnnouncement& route : pc.routes) {
    if (!route.hops.empty() && route.hops.front().site == site_) {
      hosts_first_vnf = true;
      break;
    }
  }
  if (!hosts_first_vnf) return;
  if (!pc.return_paths_configured.insert(announcement.forwarder).second) {
    return;   // already configured for this edge forwarder
  }

  const sim::SimTime received = context_.sim.now();
  const ChainId chain = pc.chain;
  context_.sim.schedule(
      context_.timings.controller_processing,
      [this, chain, edge_site, received] {
        const sim::SimTime started = context_.sim.now();
        context_.sim.schedule(
            context_.timings.tunnel_setup + context_.timings.rule_install,
            [this, chain, edge_site, received, started] {
              const sim::SimTime finished = context_.sim.now();
              if (!peer_lookup_) return;
              LocalSwitchboard* peer = peer_lookup_(edge_site);
              if (peer == nullptr) return;
              context_.sim.schedule(
                  context_.timings.controller_rpc,
                  [peer, chain, received, started, finished] {
                    peer->on_return_path_configured(chain, received, started,
                                                    finished);
                  });
            });
      });
}

void LocalSwitchboard::handle_route(const RouteAnnouncement& announcement) {
  // Epoch fence: once any announcement from incarnation N arrived, older
  // incarnations are dead to this site — their commands may contradict
  // state the restarted controller already rebuilt.
  if (announcement.epoch < max_route_epoch_) {
    ++stale_routes_rejected_;
    SB_LOG(kDebug) << "local-sb site " << site_ << ": fenced route "
                   << announcement.route << " from stale epoch "
                   << announcement.epoch << " (highest " << max_route_epoch_
                   << ")";
    return;
  }
  max_route_epoch_ = announcement.epoch;
  PerChain& pc = chain_state(announcement);
  upsert(pc.routes, announcement,
         [](const RouteAnnouncement& r) { return r.route; });
  if (route_observer_) route_observer_(announcement);

  // Set up this site's subscriptions.
  for (const RouteAnnouncement& route : pc.routes) {
    for (std::size_t i = 0; i < route.hops.size(); ++i) {
      const RouteHop& hop = route.hops[i];
      if (hop.site != site_) continue;
      subscribe_instances(pc, hop.vnf, site_);
      // Next hop: following VNF's forwarders, or the egress edge's.
      if (i + 1 < route.hops.size()) {
        subscribe_forwarders(pc, route.hops[i + 1].vnf, route.hops[i + 1].site);
      } else {
        subscribe_forwarders(pc, ControlContext::edge_marker(),
                             route.egress_site);
      }
      // Mobility: the first VNF's site listens for edge forwarders
      // appearing at any site (on-demand edge addition, Section 6).
      if (i == 0) {
        for (const model::CloudSite& any_site : context_.model.sites()) {
          subscribe_forwarders(pc, ControlContext::edge_marker(),
                               any_site.id);
        }
      }
    }
    if (pc.ingress_site == site_) {
      subscribe_instances(pc, ControlContext::edge_marker(), site_);
      if (!route.hops.empty()) {
        subscribe_forwarders(pc, route.hops.front().vnf,
                             route.hops.front().site);
      } else {
        // A chain with no VNFs: the ingress forwards straight to the
        // egress edge (the demo's "default chain", Section 2).
        subscribe_forwarders(pc, ControlContext::edge_marker(),
                             route.egress_site);
      }
    }
    if (pc.egress_site == site_) {
      subscribe_instances(pc, ControlContext::edge_marker(), site_);
    }
  }
  reconcile(pc);
}

void LocalSwitchboard::install_rule(PerChain& pc,
                                    dataplane::ElementId forwarder) {
  dataplane::Forwarder& engine = context_.elements.forwarder(forwarder);
  dataplane::LoadBalanceRule rule;

  // Local attachments this forwarder fronts (VNF instances, or the edge
  // instance at the egress).  One forwarder fronts one service per site.
  VnfId fronted_vnf;   // invalid if this forwarder fronts an edge
  bool is_ingress_forwarder = false;
  bool is_egress_forwarder = false;
  for (const std::string& path : sorted_paths(pc.instances)) {
    for (const InstanceAnnouncement& ann : pc.instances.at(path)) {
      if (ann.forwarder != forwarder) continue;
      const ElementInfo& info = context_.elements.info(ann.instance);
      // Weight 0 marks a dead attachment: keep the attachment wiring (the
      // element may come back) but exclude it from the weighted choice —
      // WeightedChoice requires strictly positive weights.
      if (info.type == ElementType::kVnfInstance) {
        fronted_vnf = info.vnf;
        if (ann.weight > 0) rule.vnf_instances.add(ann.instance, ann.weight);
        engine.register_attachment(ann.instance, pc.labels);
      } else if (info.type == ElementType::kEdgeInstance) {
        engine.register_attachment(ann.instance, pc.labels);
        if (pc.egress_site == site_) {
          is_egress_forwarder = true;
          if (ann.weight > 0) rule.vnf_instances.add(ann.instance, ann.weight);
        }
        if (pc.ingress_site == site_) is_ingress_forwarder = true;
      }
    }
  }

  // Next-hop forwarders, merged across routes.
  for (const RouteAnnouncement& route : pc.routes) {
    if (route.weight <= 0) continue;
    // The stage this forwarder serves in this route.
    if (fronted_vnf.valid()) {
      for (std::size_t i = 0; i < route.hops.size(); ++i) {
        if (route.hops[i].site != site_ || route.hops[i].vnf != fronted_vnf) {
          continue;
        }
        const bus::Topic next = i + 1 < route.hops.size()
            ? bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                    route.hops[i + 1].vnf,
                                    route.hops[i + 1].site)
            : bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                    ControlContext::edge_marker(),
                                    route.egress_site);
        const auto it = pc.forwarders.find(next.path);
        if (it == pc.forwarders.end()) continue;
        for (const ForwarderAnnouncement& ann : it->second) {
          rule.next_forwarders.add(ann.forwarder,
                                   route.weight * ann.weight);
        }
      }
    } else if (is_ingress_forwarder) {
      const bus::Topic next = route.hops.empty()
          ? bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                  ControlContext::edge_marker(),
                                  route.egress_site)
          : bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                  route.hops.front().vnf,
                                  route.hops.front().site);
      const auto it = pc.forwarders.find(next.path);
      if (it == pc.forwarders.end()) continue;
      for (const ForwarderAnnouncement& ann : it->second) {
        rule.next_forwarders.add(ann.forwarder, route.weight * ann.weight);
      }
    }
  }
  (void)is_egress_forwarder;

  engine.rules().install(pc.labels, std::move(rule));
}

void LocalSwitchboard::reconcile(PerChain& pc) {
  // Forwarders at this site involved in the chain: those fronting any
  // announced local instance (VNF or edge).
  std::set<dataplane::ElementId> local_forwarders;
  double published_weight_sum = 0.0;
  (void)published_weight_sum;
  for (const std::string& path : sorted_paths(pc.instances)) {
    for (const InstanceAnnouncement& ann : pc.instances.at(path)) {
      if (context_.elements.exists(ann.instance) &&
          context_.elements.info(ann.instance).site == site_) {
        local_forwarders.insert(ann.forwarder);
      }
    }
  }
  for (const dataplane::ElementId forwarder : local_forwarders) {
    install_rule(pc, forwarder);
  }

  // Publish forwarder announcements for fronted services whose aggregate
  // weight changed (weight = sum of fronted instance weights, Sec. 5.2).
  for (const dataplane::ElementId forwarder : local_forwarders) {
    double weight = 0.0;
    VnfId fronted;
    bool edge_fronted = false;
    // Sorted path order: the float sum's rounding (and therefore the
    // 1e-12 change detection below) must not depend on hash order.
    for (const std::string& path : sorted_paths(pc.instances)) {
      for (const InstanceAnnouncement& ann : pc.instances.at(path)) {
        if (ann.forwarder != forwarder) continue;
        weight += ann.weight;
        const ElementInfo& info = context_.elements.info(ann.instance);
        if (info.type == ElementType::kVnfInstance) {
          fronted = info.vnf;
        } else {
          edge_fronted = true;
        }
      }
    }
    // A drop to 0 must publish too: upstream sites drain their pinned
    // next-forwarder choices on a weight-0 announcement.  The map default
    // (last = 0) keeps forwarders that never had live instances silent.
    auto& last = pc.published_weight[forwarder];
    if (std::abs(last - weight) < 1e-12) continue;
    last = weight;
    ForwarderAnnouncement announcement;
    announcement.forwarder = forwarder;
    announcement.weight = weight;
    const VnfId topic_vnf =
        edge_fronted ? ControlContext::edge_marker() : fronted;
    const bus::Topic topic = bus::forwarders_topic(
        pc.chain, pc.labels.egress_site, topic_vnf, site_);
    context_.sim.schedule(
        context_.timings.controller_processing,
        [this, topic, announcement] {
          context_.bus.publish(topic, serialize(announcement));
        });
  }

  // Route readiness.
  for (const RouteAnnouncement& route : pc.routes) {
    if (pc.ready_routes.count(route.route.value()) != 0) continue;
    bool ready = true;
    bool involved = false;
    for (std::size_t i = 0; i < route.hops.size() && ready; ++i) {
      const RouteHop& hop = route.hops[i];
      if (hop.site != site_) continue;
      involved = true;
      const bus::Topic mine = bus::instances_topic(
          pc.chain, pc.labels.egress_site, hop.vnf, site_);
      const auto have_instances = pc.instances.find(mine.path);
      if (have_instances == pc.instances.end() ||
          have_instances->second.empty()) {
        ready = false;
        break;
      }
      const bus::Topic next = i + 1 < route.hops.size()
          ? bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                  route.hops[i + 1].vnf,
                                  route.hops[i + 1].site)
          : bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                  ControlContext::edge_marker(),
                                  route.egress_site);
      const auto have_next = pc.forwarders.find(next.path);
      if (have_next == pc.forwarders.end() || have_next->second.empty()) {
        ready = false;
      }
    }
    if (pc.ingress_site == site_) {
      involved = true;
      const bus::Topic edge = bus::instances_topic(
          pc.chain, pc.labels.egress_site, ControlContext::edge_marker(),
          site_);
      const auto have_edge = pc.instances.find(edge.path);
      if (have_edge == pc.instances.end() || have_edge->second.empty()) {
        ready = false;
      }
      const bus::Topic first = route.hops.empty()
          ? bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                  ControlContext::edge_marker(),
                                  route.egress_site)
          : bus::forwarders_topic(pc.chain, pc.labels.egress_site,
                                  route.hops.front().vnf,
                                  route.hops.front().site);
      const auto have_first = pc.forwarders.find(first.path);
      if (have_first == pc.forwarders.end() || have_first->second.empty()) {
        ready = false;
      }
    }
    if (pc.egress_site == site_) {
      involved = true;
      const bus::Topic edge = bus::instances_topic(
          pc.chain, pc.labels.egress_site, ControlContext::edge_marker(),
          site_);
      const auto have_edge = pc.instances.find(edge.path);
      if (have_edge == pc.instances.end() || have_edge->second.empty()) {
        ready = false;
      }
    }
    if (involved && ready) {
      pc.ready_routes.insert(route.route.value());
      if (ready_callback_) {
        const ChainId chain = pc.chain;
        const RouteId route_id = route.route;
        context_.sim.schedule(
            context_.timings.rule_install + context_.timings.tunnel_setup,
            [this, chain, route_id] { ready_callback_(chain, route_id, site_); });
      }
    }
  }

}

void LocalSwitchboard::attach_edge(
    ChainId chain, dataplane::ElementId edge_instance,
    std::function<void(Result<EdgeAdditionTrace>)> done) {
  const auto it = chains_.find(chain.value());
  if (it == chains_.end() || it->second.routes.empty()) {
    context_.sim.schedule(0, [done = std::move(done)] {
      done(Result<EdgeAdditionTrace>{ErrorCode::kNotFound,
                                     "chain has no replicated routes"});
    });
    return;
  }
  PerChain& pc = it->second;

  // Step 1 (0 ms): pick the route with the least latency from this edge
  // site to the egress.
  const NodeId here = context_.model.site(site_).node;
  const RouteAnnouncement* best = nullptr;
  double best_latency = std::numeric_limits<double>::infinity();
  for (const RouteAnnouncement& route : pc.routes) {
    if (route.hops.empty()) continue;
    double latency = context_.model.delay_ms(
        here, context_.model.site(route.hops.front().site).node);
    for (std::size_t i = 0; i + 1 < route.hops.size(); ++i) {
      latency += context_.model.delay_ms(
          context_.model.site(route.hops[i].site).node,
          context_.model.site(route.hops[i + 1].site).node);
    }
    latency += context_.model.delay_ms(
        context_.model.site(route.hops.back().site).node,
        context_.model.site(route.egress_site).node);
    if (latency < best_latency) {
      best_latency = latency;
      best = &route;
    }
  }
  if (best == nullptr) {
    context_.sim.schedule(0, [done = std::move(done)] {
      done(Result<EdgeAdditionTrace>{ErrorCode::kNotFound,
                                     "no usable route for chain"});
    });
    return;
  }

  PendingEdgeAddition pending;
  pending.chain = chain;
  pending.edge_instance = edge_instance;
  pending.edge_forwarder =
      context_.elements.info(edge_instance).attached_forwarder;
  pending.target_site = best->hops.front().site;
  pending.trace.started = context_.sim.now();
  pending.trace.site_chosen = context_.sim.now();
  pending.done = std::move(done);
  pending_edges_.push_back(std::move(pending));
  const std::size_t index = pending_edges_.size() - 1;

  // Step 2: receive the first VNF's forwarder info (bus-replicated state;
  // retained messages serve late subscribers).
  const VnfId first_vnf = best->hops.front().vnf;
  const SiteId first_site = best->hops.front().site;
  const bus::Topic topic = bus::forwarders_topic(
      pc.chain, pc.labels.egress_site, first_vnf, first_site);
  const dataplane::Labels labels = pc.labels;
  context_.bus.subscribe(
      site_, topic,
      [this, index, labels](const bus::Message& m) {
        const auto announcement = parse_forwarder(m.payload);
        if (!announcement.has_value()) return;
        if (index >= pending_edges_.size()) return;
        PendingEdgeAddition& p = pending_edges_[index];
        if (p.local_configured) return;
        p.trace.forwarder_info_received = context_.sim.now();

        // Step 3: configure the edge forwarder's data plane.
        dataplane::Forwarder& engine =
            context_.elements.forwarder(p.edge_forwarder);
        engine.register_attachment(p.edge_instance, labels);
        dataplane::LoadBalanceRule rule;
        rule.next_forwarders.add(announcement->forwarder,
                                 announcement->weight);
        context_.sim.schedule(
            context_.timings.rule_install,
            [this, index, labels, rule = std::move(rule)]() mutable {
              if (index >= pending_edges_.size()) return;
              PendingEdgeAddition& p2 = pending_edges_[index];
              context_.elements.forwarder(p2.edge_forwarder)
                  .rules()
                  .install(labels, std::move(rule));
              p2.trace.edge_configured = context_.sim.now();
              p2.local_configured = true;

              // Publish our edge forwarder so the first VNF's Local SB
              // configures the return path (steps 4-6).
              ForwarderAnnouncement mine;
              mine.forwarder = p2.edge_forwarder;
              mine.weight = 1.0;
              const bus::Topic my_topic = bus::forwarders_topic(
                  p2.chain, labels.egress_site,
                  ControlContext::edge_marker(), site_);
              context_.bus.publish(my_topic, serialize(mine));
              maybe_finish_edge_addition(p2);
            });
      });
}

void LocalSwitchboard::on_return_path_configured(ChainId chain,
                                                 sim::SimTime received,
                                                 sim::SimTime started,
                                                 sim::SimTime finished) {
  for (PendingEdgeAddition& pending : pending_edges_) {
    if (pending.chain != chain || pending.remote_configured) continue;
    pending.trace.remote_received = received;
    pending.trace.remote_config_started = started;
    pending.trace.remote_config_finished = finished;
    pending.remote_configured = true;
    maybe_finish_edge_addition(pending);
    return;
  }
}

void LocalSwitchboard::maybe_finish_edge_addition(
    PendingEdgeAddition& pending) {
  if (!pending.local_configured || !pending.remote_configured) return;
  if (!pending.done) return;
  auto done = std::move(pending.done);
  pending.done = nullptr;
  done(Result<EdgeAdditionTrace>{pending.trace});
}

std::size_t LocalSwitchboard::active_chain_count() const {
  return chains_.size();
}

void LocalSwitchboard::start_heartbeats(sim::Duration period) {
  SWB_CHECK(period > 0) << "heartbeat period must be positive";
  heartbeat_period_ = period;
  if (heartbeats_on_) return;
  heartbeats_on_ = true;
  publish_heartbeat();
}

void LocalSwitchboard::stop_heartbeats() {
  heartbeats_on_ = false;
  if (heartbeat_event_.valid()) {
    context_.sim.cancel(heartbeat_event_);
    heartbeat_event_ = sim::EventHandle{};
  }
}

void LocalSwitchboard::publish_heartbeat() {
  if (!heartbeats_on_) return;
  // A crashed Local Switchboard stays silent (that silence IS the site-down
  // signal) but keeps ticking so heartbeats resume on restore.
  if (up_) {
    Heartbeat beat;
    beat.site = site_;
    beat.seq = ++heartbeat_seq_;
    for (const dataplane::ElementId element : context_.elements.elements_at(site_)) {
      if (!context_.elements.info(element).up) {
        beat.down_elements.push_back(element);
      }
    }
    context_.bus.publish(bus::health_topic(site_), serialize(beat));
  }
  heartbeat_event_ = context_.sim.schedule(heartbeat_period_,
                                           [this] { publish_heartbeat(); });
}

}  // namespace switchboard::control
