// Heartbeat-based failure detector (the recovery pipeline's first stage).
//
// Every Local Switchboard beats on /health/site_<s> (a transient topic:
// not retained, not retransmitted — a stale or duplicated beat is worse
// than a missed one).  The detector, running at the Global Switchboard's
// site, subscribes to every watched site's health topic and sweeps at the
// beat period: a site silent for `suspicion_threshold` periods is declared
// down; element failures ride inside the beats (a Local Switchboard
// reports its locally-down elements), so an instance crash is detected in
// one beat period even though its site stays up.  A beat from a suspected
// site clears the suspicion (partition healed / Local Switchboard
// restored).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "bus/topic.hpp"
#include "common/thread_annotations.hpp"
#include "control/context.hpp"
#include "control/messages.hpp"

namespace switchboard::control {

struct FailureDetectorConfig {
  /// Expected heartbeat period (sweep cadence; Local Switchboards should
  /// beat at the same period).
  sim::Duration period{sim::from_ms(50.0)};
  /// Beats missed before a site is suspected down.
  std::uint32_t suspicion_threshold{3};
  /// Consecutive beats an element must be reported down before the
  /// failure is relayed upward (1 = relay on first sight).  Debouncing
  /// keeps a flapping element — down in one beat, back in the next — from
  /// triggering a route retirement per flap.
  std::uint32_t element_debounce_beats{2};
};

class FailureDetector {
 public:
  using SiteCallback = std::function<void(SiteId)>;
  using ElementCallback = std::function<void(dataplane::ElementId, SiteId)>;

  FailureDetector(ControlContext& context, SiteId home_site,
                  FailureDetectorConfig config = {});

  [[nodiscard]] const FailureDetectorConfig& config() const { return config_; }

  void set_site_down_callback(SiteCallback callback);
  /// A suspected site resumed beating (restore / partition heal).
  void set_site_up_callback(SiteCallback callback);
  void set_element_down_callback(ElementCallback callback);

  /// Subscribes to `site`'s health topic and includes it in the sweep.
  /// Idempotent.  The silence clock starts now (grace for slow starters).
  void watch_site(SiteId site);

  /// General form: watches heartbeats on an arbitrary transient topic,
  /// keyed by `key` (the Heartbeat's `site` field must carry the same
  /// key).  This is how controller-replica liveness rides the same sweep
  /// as site liveness (DESIGN.md §18): replicas beat on
  /// /health/ctl/replica_<r> under a synthetic SiteId key that cannot
  /// collide with real sites.  Idempotent per key.
  void watch_heartbeats(SiteId key, const bus::Topic& topic);

  /// Starts the periodic sweep.  Self-rescheduling: call stop() before
  /// draining the simulator to completion.  Idempotent.
  void start();
  void stop();

  /// Forgets the element-relay dedup history (and debounce streaks) so
  /// still-down elements are re-reported.  Called after the Global
  /// Switchboard recovers from crash-with-amnesia: the fresh incarnation
  /// must hear about failures the old one already consumed (re-reports
  /// are idempotent there).  Site suspicion state is kept — site liveness
  /// is the detector's own observation, not controller memory.
  void resync();

  [[nodiscard]] bool running() const {
    const swb::MutexLock lock{mutex_};
    return running_;
  }
  [[nodiscard]] std::size_t watched_count() const {
    const swb::MutexLock lock{mutex_};
    return sites_.size();
  }
  [[nodiscard]] bool suspects(SiteId site) const;
  /// Total site-down declarations (re-suspecting after a recovery counts
  /// again).
  [[nodiscard]] std::uint64_t suspicions_raised() const {
    const swb::MutexLock lock{mutex_};
    return suspicions_raised_;
  }
  [[nodiscard]] std::uint64_t recoveries_observed() const {
    const swb::MutexLock lock{mutex_};
    return recoveries_observed_;
  }
  [[nodiscard]] std::uint64_t element_failures_reported() const {
    const swb::MutexLock lock{mutex_};
    return element_failures_reported_;
  }

  /// Audits the detector (aborts via SWB_CHECK on violation): config sane,
  /// per-site beat times never ahead of now, sequence numbers monotone,
  /// counter arithmetic consistent (suspicions >= recoveries, currently
  /// suspected sites account for the difference).
  void check_invariants() const;

 private:
  struct SiteState {
    sim::SimTime last_beat{0};        // arrival time of the last beat
    std::uint64_t last_seq{0};
    bool suspected{false};
    /// Elements this site reported down that we already relayed upward.
    std::set<dataplane::ElementId> down_reported;
    /// Consecutive beats each element has been reported down (debounce).
    std::map<dataplane::ElementId, std::uint32_t> down_streak;
  };

  void on_heartbeat(const Heartbeat& beat);
  void sweep();

  ControlContext& context_;
  SiteId home_site_;
  FailureDetectorConfig config_;
  /// One lock covers detector state, counters, and the callback slots.
  /// Contract: callbacks NEVER run under it — site_down relays re-enter
  /// the recovery pipeline (registry, routing, the bus) and may call back
  /// into the detector (suspects(), resync(), even stop()).  on_heartbeat
  /// and sweep() collect pending notifications under the lock and invoke
  /// them after release; sweep() reschedules itself *before* notifying so
  /// a stop() from inside a callback cancels the already-scheduled next
  /// sweep instead of leaving a stray one behind.
  mutable swb::Mutex mutex_;
  SiteCallback site_down_ SWB_GUARDED_BY(mutex_);
  SiteCallback site_up_ SWB_GUARDED_BY(mutex_);
  ElementCallback element_down_ SWB_GUARDED_BY(mutex_);
  std::map<std::uint32_t, SiteState> sites_ SWB_GUARDED_BY(mutex_);
  bool running_ SWB_GUARDED_BY(mutex_){false};
  sim::EventHandle sweep_event_ SWB_GUARDED_BY(mutex_){};
  std::uint64_t suspicions_raised_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t recoveries_observed_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t element_failures_reported_ SWB_GUARDED_BY(mutex_){0};
};

}  // namespace switchboard::control
