#include "control/messages.hpp"

#include <sstream>
#include <unordered_map>

namespace switchboard::control {
namespace {

/// Parses "k1=v1;k2=v2;..." into a map.
std::unordered_map<std::string, std::string> parse_fields(
    const std::string& payload) {
  std::unordered_map<std::string, std::string> fields;
  std::istringstream in{payload};
  std::string pair;
  while (std::getline(in, pair, ';')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    fields[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return fields;
}

bool get_u64(const std::unordered_map<std::string, std::string>& fields,
             const std::string& key, std::uint64_t& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return false;
  try {
    out = std::stoull(it->second);
  } catch (...) {
    return false;
  }
  return true;
}

bool get_double(const std::unordered_map<std::string, std::string>& fields,
                const std::string& key, double& out) {
  const auto it = fields.find(key);
  if (it == fields.end()) return false;
  try {
    out = std::stod(it->second);
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

std::string serialize(const InstanceAnnouncement& m) {
  std::ostringstream out;
  out << "type=instance;id=" << m.instance << ";fw=" << m.forwarder
      << ";w=" << m.weight;
  return out.str();
}

std::string serialize(const ForwarderAnnouncement& m) {
  std::ostringstream out;
  out << "type=forwarder;id=" << m.forwarder << ";w=" << m.weight;
  return out.str();
}

std::string serialize(const RouteAnnouncement& m) {
  std::ostringstream out;
  out << "type=route;chain=" << m.chain.value() << ";route=" << m.route.value()
      << ";cl=" << m.chain_label << ";el=" << m.egress_label
      << ";in=" << m.ingress_site.value() << ";out=" << m.egress_site.value()
      << ";w=" << m.weight << ";ep=" << m.epoch << ";hops=";
  for (std::size_t i = 0; i < m.hops.size(); ++i) {
    if (i > 0) out << ',';
    out << m.hops[i].stage << ':' << m.hops[i].vnf.value() << ':'
        << m.hops[i].site.value();
  }
  return out.str();
}

std::string serialize(const Heartbeat& m) {
  std::ostringstream out;
  out << "type=heartbeat;site=" << m.site.value() << ";seq=" << m.seq
      << ";down=";
  for (std::size_t i = 0; i < m.down_elements.size(); ++i) {
    if (i > 0) out << ',';
    out << m.down_elements[i];
  }
  return out.str();
}

std::optional<Heartbeat> parse_heartbeat(const std::string& payload) {
  const auto fields = parse_fields(payload);
  std::uint64_t site = 0;
  Heartbeat m;
  if (!get_u64(fields, "site", site) || !get_u64(fields, "seq", m.seq)) {
    return std::nullopt;
  }
  m.site = SiteId{static_cast<SiteId::underlying_type>(site)};
  const auto down_it = fields.find("down");
  if (down_it == fields.end()) return std::nullopt;
  std::istringstream down_in{down_it->second};
  std::string id;
  while (std::getline(down_in, id, ',')) {
    if (id.empty()) continue;
    try {
      m.down_elements.push_back(
          static_cast<dataplane::ElementId>(std::stoul(id)));
    } catch (...) {
      return std::nullopt;
    }
  }
  return m;
}

std::optional<InstanceAnnouncement> parse_instance(const std::string& payload) {
  const auto fields = parse_fields(payload);
  std::uint64_t id = 0;
  std::uint64_t fw = 0;
  InstanceAnnouncement m;
  if (!get_u64(fields, "id", id) || !get_u64(fields, "fw", fw) ||
      !get_double(fields, "w", m.weight)) {
    return std::nullopt;
  }
  m.instance = static_cast<dataplane::ElementId>(id);
  m.forwarder = static_cast<dataplane::ElementId>(fw);
  return m;
}

std::optional<ForwarderAnnouncement> parse_forwarder(
    const std::string& payload) {
  const auto fields = parse_fields(payload);
  std::uint64_t id = 0;
  ForwarderAnnouncement m;
  if (!get_u64(fields, "id", id) || !get_double(fields, "w", m.weight)) {
    return std::nullopt;
  }
  m.forwarder = static_cast<dataplane::ElementId>(id);
  return m;
}

std::optional<RouteAnnouncement> parse_route(const std::string& payload) {
  const auto fields = parse_fields(payload);
  std::uint64_t chain = 0;
  std::uint64_t route = 0;
  std::uint64_t cl = 0;
  std::uint64_t el = 0;
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  RouteAnnouncement m;
  if (!get_u64(fields, "chain", chain) || !get_u64(fields, "route", route) ||
      !get_u64(fields, "cl", cl) || !get_u64(fields, "el", el) ||
      !get_u64(fields, "in", in) || !get_u64(fields, "out", out) ||
      !get_double(fields, "w", m.weight)) {
    return std::nullopt;
  }
  m.chain = ChainId{static_cast<ChainId::underlying_type>(chain)};
  m.route = RouteId{static_cast<RouteId::underlying_type>(route)};
  m.chain_label = static_cast<std::uint32_t>(cl);
  m.egress_label = static_cast<std::uint32_t>(el);
  m.ingress_site = SiteId{static_cast<SiteId::underlying_type>(in)};
  m.egress_site = SiteId{static_cast<SiteId::underlying_type>(out)};
  // Optional for wire compatibility with pre-epoch senders: absent => 0.
  get_u64(fields, "ep", m.epoch);

  const auto hops_it = fields.find("hops");
  if (hops_it == fields.end()) return std::nullopt;
  std::istringstream hops_in{hops_it->second};
  std::string hop;
  while (std::getline(hops_in, hop, ',')) {
    if (hop.empty()) continue;
    RouteHop h;
    const auto c1 = hop.find(':');
    const auto c2 = hop.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      return std::nullopt;
    }
    try {
      h.stage = std::stoul(hop.substr(0, c1));
      h.vnf = VnfId{static_cast<VnfId::underlying_type>(
          std::stoul(hop.substr(c1 + 1, c2 - c1 - 1)))};
      h.site = SiteId{static_cast<SiteId::underlying_type>(
          std::stoul(hop.substr(c2 + 1)))};
    } catch (...) {
      return std::nullopt;
    }
    m.hops.push_back(h);
  }
  return m;
}

std::string serialize(const AnycastAnnouncement& m) {
  std::ostringstream out;
  out << "type=anycast;origin=" << m.origin.value() << ";seq=" << m.seq
      << ";pd=" << m.path_delay_ms << ";vnfs=";
  for (std::size_t i = 0; i < m.entries.size(); ++i) {
    if (i > 0) out << ',';
    out << m.entries[i].vnf.value() << ':' << m.entries[i].live_instances
        << ':' << m.entries[i].residual_capacity;
  }
  return out.str();
}

std::optional<AnycastAnnouncement> parse_anycast(const std::string& payload) {
  const auto fields = parse_fields(payload);
  std::uint64_t origin = 0;
  AnycastAnnouncement m;
  if (!get_u64(fields, "origin", origin) || !get_u64(fields, "seq", m.seq) ||
      !get_double(fields, "pd", m.path_delay_ms)) {
    return std::nullopt;
  }
  m.origin = SiteId{static_cast<SiteId::underlying_type>(origin)};
  const auto vnfs_it = fields.find("vnfs");
  if (vnfs_it == fields.end()) return std::nullopt;
  std::istringstream vnfs_in{vnfs_it->second};
  std::string entry;
  while (std::getline(vnfs_in, entry, ',')) {
    if (entry.empty()) continue;
    const auto c1 = entry.find(':');
    const auto c2 = entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      return std::nullopt;
    }
    AnycastVnfEntry e;
    try {
      e.vnf = VnfId{static_cast<VnfId::underlying_type>(
          std::stoul(entry.substr(0, c1)))};
      e.live_instances =
          static_cast<std::uint32_t>(std::stoul(entry.substr(c1 + 1, c2 - c1 - 1)));
      e.residual_capacity = std::stod(entry.substr(c2 + 1));
    } catch (...) {
      return std::nullopt;
    }
    m.entries.push_back(e);
  }
  return m;
}

std::string serialize(const ReplicationFrame& m) {
  std::ostringstream out;
  out << "type=repl;k=" << static_cast<unsigned>(m.kind)
      << ";from=" << m.from << ";ep=" << m.epoch << ";seq=" << m.seq
      << ";dg=" << m.digest << ";body=";
  for (std::size_t i = 0; i < m.records.size(); ++i) {
    if (i > 0) out << '\n';
    out << m.records[i];
  }
  return out.str();
}

std::optional<ReplicationFrame> parse_replication(const std::string& payload) {
  // The body carries raw journal records, which embed ';' and '=' freely —
  // it is always the LAST field, split off verbatim before the k=v parse.
  const std::string marker = ";body=";
  const auto body_at = payload.find(marker);
  if (body_at == std::string::npos) return std::nullopt;
  const auto fields = parse_fields(payload.substr(0, body_at));
  std::uint64_t kind = 0;
  std::uint64_t from = 0;
  ReplicationFrame m;
  if (!get_u64(fields, "k", kind) || !get_u64(fields, "from", from) ||
      !get_u64(fields, "ep", m.epoch) || !get_u64(fields, "seq", m.seq) ||
      !get_u64(fields, "dg", m.digest) ||
      kind > static_cast<std::uint64_t>(ReplicationKind::kSnapshotAck)) {
    return std::nullopt;
  }
  m.kind = static_cast<ReplicationKind>(kind);
  m.from = static_cast<std::uint32_t>(from);
  const std::string body = payload.substr(body_at + marker.size());
  std::istringstream body_in{body};
  std::string record;
  while (std::getline(body_in, record)) {
    if (record.empty()) return std::nullopt;
    m.records.push_back(record);
  }
  return m;
}

}  // namespace switchboard::control
