// VNF service controller (Sections 3 and 4): manages one VNF's instances
// across sites, participates in Global Switchboard's two-phase commit
// (voting abort when a site lacks compute headroom), and publishes
// committed instance allocations on the message bus.
//
// Instances are shared across chains by default (the paper's
// service-oriented design, evaluated in Section 7.2's shared-cache
// experiment); capacity accounting is per site.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <string>
#include <vector>

#include "bus/topic.hpp"
#include "common/types.hpp"
#include "control/context.hpp"
#include "control/messages.hpp"
#include "control/two_phase.hpp"

namespace switchboard::control {

class VnfController {
 public:
  VnfController(ControlContext& context, VnfId vnf);

  [[nodiscard]] VnfId vnf() const { return vnf_; }

  /// --- two-phase commit participant ------------------------------------
  /// Reserves `load` compute at `site` for (chain, route).  Returns false
  /// (vote abort) when committed + pending load would exceed the site
  /// capacity m_sf.
  bool prepare(ChainId chain, RouteId route, SiteId site, double load);

  /// Converts the reservation into a committed allocation, allocates (or
  /// reuses) an instance at each reserved site, and publishes the
  /// instance on the chain's instances topic.
  void commit(ChainId chain, RouteId route, std::uint32_t egress_label);

  /// Drops the reservation.
  void abort(ChainId chain, RouteId route);

  /// Committed + pending load at a site.
  [[nodiscard]] double allocated(SiteId site) const;
  /// Remaining headroom at a site (capacity m_sf minus allocated).
  [[nodiscard]] double headroom(SiteId site) const;

  /// Ensures an instance of this VNF exists at `site` (reusing a shared
  /// instance if present); returns its element id.
  dataplane::ElementId ensure_instance(SiteId site);

  /// Horizontal scaling (Fig. 5: instances G1, G2 behind forwarder F1):
  /// grows the instance pool at `site` to `count` instances, all behind
  /// the VNF's forwarder, and re-announces them on every chain topic this
  /// controller has committed at the site so Local Switchboards rebalance.
  /// Returns the new instance ids (existing ones excluded).
  std::vector<dataplane::ElementId> scale_instances(SiteId site,
                                                    std::size_t count);

  /// Protocol state observed for a (chain, route) at this participant.
  [[nodiscard]] TwoPhaseState two_phase_state(ChainId chain,
                                              RouteId route) const {
    return two_phase_.state(chain, route);
  }

  /// Audits the participant (aborts via SWB_CHECK on violation): per-site
  /// pending load equals the sum of outstanding reservations, committed and
  /// pending loads are finite and non-negative, every pending (chain,
  /// route) is in 2PC state kPrepared, and no prepared pair lacks its
  /// reservation list.
  void check_invariants() const;

 private:
  struct Reservation {
    SiteId site;
    double load{0.0};
  };

  ControlContext& context_;
  VnfId vnf_;
  // Pending 2PC reservations keyed by (chain, route).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Reservation>>
      pending_;
  // Committed announcement topics: (chain, egress label, site) — used to
  // re-announce when instances scale.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
      announced_;
  std::vector<double> committed_load_;   // per site
  std::vector<double> pending_load_;     // per site
  TwoPhaseTracker two_phase_;            // per-(chain, route) protocol state
};

}  // namespace switchboard::control
