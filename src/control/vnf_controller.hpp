// VNF service controller (Sections 3 and 4): manages one VNF's instances
// across sites, participates in Global Switchboard's two-phase commit
// (voting abort when a site lacks compute headroom), and publishes
// committed instance allocations on the message bus.
//
// Instances are shared across chains by default (the paper's
// service-oriented design, evaluated in Section 7.2's shared-cache
// experiment); capacity accounting is per site.
//
// Fault tolerance: the participant side of the hardened 2PC.  Duplicate
// prepares (coordinator retries / message duplication) are deduplicated
// per stage; a late abort for a committed route and a late commit for a
// garbage-collected route are rejected-and-counted instead of crashing;
// reservations left prepared past `ControlTimings::reservation_ttl` are
// auto-aborted (their coordinator is presumed dead).  An `up()` flag
// models crash/restore: a down controller is unreachable (RPCs time out
// at the coordinator), but keeps its state for when it returns.
//
// Epoch fencing: every 2PC verb carries the coordinator's incarnation
// epoch.  The participant tracks the highest epoch it has seen and
// rejects-and-counts commands from older incarnations — a coordinator
// that crashed, lost its memory, and was superseded must not mutate
// reservations here.  kUnfencedEpoch (pre-durability callers and tests)
// bypasses the fence without advancing it.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <string>
#include <utility>
#include <vector>

#include "bus/topic.hpp"
#include "common/types.hpp"
#include "control/context.hpp"
#include "control/messages.hpp"
#include "control/two_phase.hpp"

namespace switchboard::control {

/// Sentinel epoch that bypasses fencing (and never advances the fence).
inline constexpr std::uint64_t kUnfencedEpoch = ~0ULL;

class VnfController {
 public:
  VnfController(ControlContext& context, VnfId vnf);

  [[nodiscard]] VnfId vnf() const { return vnf_; }

  /// Reachability (fault injection): a down controller never answers an
  /// RPC — coordinators check up() and drive their timeout path.  State is
  /// kept across crash/restore.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool up() const { return up_; }

  /// --- two-phase commit participant ------------------------------------
  /// Reserves `load` compute at `site` for (chain, route).  Returns false
  /// (vote abort) when committed + pending load would exceed the site
  /// capacity m_sf.  `stage` identifies the chain stage making the
  /// reservation: re-delivery of an already-recorded (chain, route, stage)
  /// prepare is an idempotent yes (no double reservation).
  bool prepare(ChainId chain, RouteId route, SiteId site, double load,
               std::size_t stage = 0, std::uint64_t epoch = kUnfencedEpoch);

  /// Converts the reservation into a committed allocation, allocates (or
  /// reuses) an instance at each reserved site, and publishes the
  /// instance on the chain's instances topic.  A commit arriving after
  /// the reservation was garbage-collected (kAborted) is rejected and
  /// counted; a commit while kIdle still crashes (coordinator bug).
  void commit(ChainId chain, RouteId route, std::uint32_t egress_label,
              std::uint64_t epoch = kUnfencedEpoch);

  /// Drops the reservation.  A late abort for an already-committed route
  /// (message duplication / coordinator retry) is rejected-and-counted —
  /// un-accounting committed capacity would corrupt it.
  void abort(ChainId chain, RouteId route,
             std::uint64_t epoch = kUnfencedEpoch);

  /// Releases the committed allocation of (chain, route) — the recovery
  /// path's "this route no longer exists".  The 2PC state stays
  /// kCommitted (terminal); only the capacity accounting is returned.
  void release(ChainId chain, RouteId route,
               std::uint64_t epoch = kUnfencedEpoch);

  /// Committed + pending load at a site.
  [[nodiscard]] double allocated(SiteId site) const;
  /// Remaining headroom at a site (capacity m_sf minus allocated).
  [[nodiscard]] double headroom(SiteId site) const;

  /// Ensures an instance of this VNF exists at `site` (reusing a shared
  /// instance if present); returns its element id.
  dataplane::ElementId ensure_instance(SiteId site);

  /// Horizontal scaling (Fig. 5: instances G1, G2 behind forwarder F1):
  /// grows the instance pool at `site` to `count` instances, all behind
  /// the VNF's forwarder, and re-announces them on every chain topic this
  /// controller has committed at the site so Local Switchboards rebalance.
  /// Returns the new instance ids (existing ones excluded).
  std::vector<dataplane::ElementId> scale_instances(SiteId site,
                                                    std::size_t count);

  /// Re-announces every instance of this VNF at `site` on all committed
  /// chain topics with its current registry weight — 0 for instances
  /// marked down — so Local Switchboards rebalance onto survivors and
  /// drain flows off dead instances.  The recovery pipeline's drain
  /// trigger.
  void reannounce_instances(SiteId site);

  /// Protocol state observed for a (chain, route) at this participant.
  [[nodiscard]] TwoPhaseState two_phase_state(ChainId chain,
                                              RouteId route) const {
    return two_phase_.state(chain, route);
  }

  // Fault-handling counters.
  /// Illegal re-deliveries shed by the transition matrix (late aborts of
  /// committed routes, late commits of GC'd routes).
  [[nodiscard]] std::uint64_t rejected_transitions() const {
    return two_phase_.rejected();
  }
  /// Duplicate (chain, route, stage) prepares deduplicated.
  [[nodiscard]] std::uint64_t duplicate_prepares() const {
    return duplicate_prepares_;
  }
  /// Reservations auto-aborted by the TTL garbage collector.
  [[nodiscard]] std::uint64_t gc_aborts() const { return gc_aborts_; }
  /// Commands fenced because they carried an epoch older than the highest
  /// seen (stale controller incarnation).
  [[nodiscard]] std::uint64_t stale_commands_rejected() const {
    return stale_commands_rejected_;
  }
  [[nodiscard]] std::uint64_t highest_epoch() const { return highest_epoch_; }

  /// Every (chain, route) holding committed capacity here — what a
  /// cold-started coordinator reconciles against to find orphans.
  [[nodiscard]] std::vector<std::pair<ChainId, RouteId>> committed_routes()
      const;

  /// Audits the participant (aborts via SWB_CHECK on violation): per-site
  /// pending load equals the sum of outstanding reservations, committed
  /// load equals the sum of committed reservations, both finite and
  /// non-negative, every pending (chain, route) is in 2PC state kPrepared
  /// or kAborted, and no prepared pair lacks its reservation list.
  void check_invariants() const;

 private:
  struct Reservation {
    SiteId site;
    double load{0.0};
    std::size_t stage{0};
  };

  void publish_instance(ChainId chain, std::uint32_t egress_label,
                        SiteId site, dataplane::ElementId instance);
  /// True when `epoch` is stale (command must be dropped); advances the
  /// fence otherwise.
  bool fenced(std::uint64_t epoch, const char* verb);

  ControlContext& context_;
  VnfId vnf_;
  bool up_{true};
  // Pending 2PC reservations keyed by (chain, route).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Reservation>>
      pending_;
  // Committed reservations, kept so release() can free capacity when the
  // recovery path retires a route.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Reservation>>
      committed_;
  // Reservation GC: last prepare time per pending (chain, route).
  std::map<std::pair<std::uint32_t, std::uint32_t>, sim::SimTime>
      prepared_at_;
  // Committed announcement topics: (chain, egress label, site) — used to
  // re-announce when instances scale.
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>>
      announced_;
  std::vector<double> committed_load_;   // per site
  std::vector<double> pending_load_;     // per site
  TwoPhaseTracker two_phase_;            // per-(chain, route) protocol state
  std::uint64_t duplicate_prepares_{0};
  std::uint64_t gc_aborts_{0};
  std::uint64_t highest_epoch_{0};
  std::uint64_t stale_commands_rejected_{0};
};

}  // namespace switchboard::control
