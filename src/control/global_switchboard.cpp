#include "control/global_switchboard.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace switchboard::control {
namespace {

// --- journal-record grammar helpers --------------------------------------
// Records reuse the bus messages' "k=v;" style (one record per line, no
// embedded newlines); the parse side mirrors messages.cpp.

std::unordered_map<std::string, std::string> journal_fields(
    const std::string& record) {
  std::unordered_map<std::string, std::string> fields;
  std::istringstream in{record};
  std::string pair;
  while (std::getline(in, pair, ';')) {
    const auto eq = pair.find('=');
    if (eq == std::string::npos) continue;
    fields[pair.substr(0, eq)] = pair.substr(eq + 1);
  }
  return fields;
}

std::uint64_t field_u64(
    const std::unordered_map<std::string, std::string>& fields,
    const std::string& key) {
  const auto it = fields.find(key);
  SWB_CHECK(it != fields.end()) << "journal record missing field " << key;
  return std::stoull(it->second);
}

double field_double(
    const std::unordered_map<std::string, std::string>& fields,
    const std::string& key) {
  const auto it = fields.find(key);
  SWB_CHECK(it != fields.end()) << "journal record missing field " << key;
  return std::stod(it->second);
}

std::vector<std::uint32_t> field_u32_list(
    const std::unordered_map<std::string, std::string>& fields,
    const std::string& key) {
  const auto it = fields.find(key);
  SWB_CHECK(it != fields.end()) << "journal record missing field " << key;
  std::vector<std::uint32_t> values;
  std::istringstream in{it->second};
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    values.push_back(static_cast<std::uint32_t>(std::stoul(item)));
  }
  return values;
}

/// Round-trip-exact double formatting for journal records.
std::string exact(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

std::string pair_record(const char* type, ChainId chain, RouteId route) {
  std::ostringstream out;
  out << "t=" << type << ";chain=" << chain.value()
      << ";route=" << route.value();
  return out.str();
}

std::string encode_chain(const ChainRecord& record) {
  SWB_CHECK(record.spec.name.find(';') == std::string::npos &&
            record.spec.name.find('\n') == std::string::npos)
      << "chain name unserializable for the journal";
  std::ostringstream out;
  out << "t=chain;id=" << record.id.value() << ";name=" << record.spec.name
      << ";ins=" << record.spec.ingress_service.value()
      << ";inn=" << record.spec.ingress_node.value()
      << ";egs=" << record.spec.egress_service.value()
      << ";egn=" << record.spec.egress_node.value() << ";vnfs=";
  for (std::size_t i = 0; i < record.spec.vnfs.size(); ++i) {
    if (i > 0) out << ',';
    out << record.spec.vnfs[i].value();
  }
  out << ";ft=" << exact(record.spec.forward_traffic)
      << ";rt=" << exact(record.spec.reverse_traffic)
      << ";cl=" << record.labels.chain << ";el=" << record.labels.egress_site
      << ";insite=" << record.ingress_site.value()
      << ";egsite=" << record.egress_site.value();
  return out.str();
}

std::string encode_begin(ChainId chain, RouteId route,
                         const std::vector<SiteId>& sites) {
  std::ostringstream out;
  out << "t=begin;chain=" << chain.value() << ";route=" << route.value()
      << ";sites=";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (i > 0) out << ',';
    out << sites[i].value();
  }
  return out.str();
}

}  // namespace

GlobalSwitchboard::GlobalSwitchboard(ControlContext& context, SiteId home_site)
    : context_{context}, home_site_{home_site}, loads_{context.model} {}

bus::Topic GlobalSwitchboard::routes_topic() const {
  return bus::Topic{"/chains/all", home_site_};
}

void GlobalSwitchboard::register_edge_controller(EdgeController* controller) {
  SWB_CHECK(controller != nullptr);
  if (edge_controllers_.size() <= controller->id().value()) {
    edge_controllers_.resize(controller->id().value() + 1, nullptr);
  }
  edge_controllers_[controller->id().value()] = controller;
}

void GlobalSwitchboard::register_vnf_controller(VnfController* controller) {
  SWB_CHECK(controller != nullptr);
  if (vnf_controllers_.size() <= controller->vnf().value()) {
    vnf_controllers_.resize(controller->vnf().value() + 1, nullptr);
  }
  vnf_controllers_[controller->vnf().value()] = controller;
}

void GlobalSwitchboard::register_local_switchboard(LocalSwitchboard* local) {
  SWB_CHECK(local != nullptr);
  if (local_switchboards_.size() <= local->site().value()) {
    local_switchboards_.resize(local->site().value() + 1, nullptr);
  }
  local_switchboards_[local->site().value()] = local;
}

const ChainRecord& GlobalSwitchboard::record(ChainId chain) const {
  const ChainRecord* found = find_record(chain);
  SWB_CHECK(found != nullptr) << "unknown chain " << chain.value();
  return *found;
}

const ChainRecord* GlobalSwitchboard::find_record(ChainId chain) const {
  for (const ChainRecord& r : chains_) {
    if (r.id == chain) return &r;
  }
  return nullptr;
}

RouteAnnouncement GlobalSwitchboard::to_announcement(
    const ChainRecord& record, const RouteRecord& route) const {
  RouteAnnouncement announcement;
  announcement.chain = record.id;
  announcement.route = route.id;
  announcement.chain_label = record.labels.chain;
  announcement.egress_label = record.labels.egress_site;
  announcement.ingress_site = record.ingress_site;
  announcement.egress_site = record.egress_site;
  announcement.weight = route.weight;
  announcement.epoch = epoch_;
  for (std::size_t z = 1; z <= record.spec.vnfs.size(); ++z) {
    announcement.hops.push_back(RouteHop{z, record.spec.vnfs[z - 1],
                                         route.vnf_sites[z - 1]});
  }
  return announcement;
}

std::set<std::uint32_t> GlobalSwitchboard::involved_sites(
    const ChainRecord& record, const RouteRecord& route) const {
  std::set<std::uint32_t> sites;
  sites.insert(record.ingress_site.value());
  sites.insert(record.egress_site.value());
  for (const SiteId site : route.vnf_sites) sites.insert(site.value());
  return sites;
}

void GlobalSwitchboard::publish_routes(const ChainRecord& record) {
  for (const RouteRecord& route : record.routes) {
    context_.bus.publish(routes_topic(),
                         serialize(to_announcement(record, route)));
  }
}

GlobalSwitchboard::ModelShape GlobalSwitchboard::model_shape() const {
  return ModelShape{context_.model.topology().link_count(),
                    context_.model.sites().size(),
                    context_.model.vnfs().size()};
}

void GlobalSwitchboard::rebuild_loads_into(te::Loads& loads) const {
  loads.reset();
  for (const ChainRecord& record : chains_) {
    if (!record.active) continue;
    const model::Chain& chain = context_.model.chain(record.id);
    for (const RouteRecord& route : record.routes) {
      const NodeId ingress_node = context_.model.site(record.ingress_site).node;
      const NodeId egress_node = context_.model.site(record.egress_site).node;
      NodeId prev = ingress_node;
      for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
        const NodeId next = z <= route.vnf_sites.size()
            ? context_.model.site(route.vnf_sites[z - 1]).node
            : egress_node;
        loads.add_stage_flow(chain, z, prev, next, route.weight);
        prev = next;
      }
    }
  }
}

void GlobalSwitchboard::rebuild_loads() {
  rebuild_loads_into(loads_);
  loads_shape_ = model_shape();
  loads_primed_ = true;
}

void GlobalSwitchboard::ensure_loads_current() {
  if (!loads_primed_ || !(model_shape() == loads_shape_)) rebuild_loads();
}

void GlobalSwitchboard::apply_route_loads(const ChainRecord& record,
                                          const RouteRecord& route,
                                          double weight_delta) {
  if (weight_delta == 0.0) return;
  const model::Chain& chain = context_.model.chain(record.id);
  const NodeId ingress_node = context_.model.site(record.ingress_site).node;
  const NodeId egress_node = context_.model.site(record.egress_site).node;
  NodeId prev = ingress_node;
  for (std::size_t z = 1; z <= chain.stage_count(); ++z) {
    const NodeId next = z <= route.vnf_sites.size()
        ? context_.model.site(route.vnf_sites[z - 1]).node
        : egress_node;
    loads_.add_stage_flow(chain, z, prev, next, weight_delta);
    prev = next;
  }
}

void GlobalSwitchboard::create_chain(const ChainSpec& spec,
                                     CreationCallback done) {
  CreationReport report;
  report.started = context_.sim.now();
  report.events.push_back({"spec_received", context_.sim.now()});

  // Fig. 4 step 1: obtain ingress/egress sites from the edge controllers
  // (parallel RPC round trip + controller processing).
  const sim::Duration resolve_delay = 2 * context_.timings.controller_rpc +
                                      context_.timings.controller_processing;
  const std::uint64_t ep = epoch_;
  context_.sim.schedule(resolve_delay, [this, ep, spec, report,
                                        done = std::move(done)]() mutable {
    if (!up_ || ep != epoch_) return;   // the requesting incarnation died
    if (spec.ingress_service.value() >= edge_controllers_.size() ||
        edge_controllers_[spec.ingress_service.value()] == nullptr ||
        spec.egress_service.value() >= edge_controllers_.size() ||
        edge_controllers_[spec.egress_service.value()] == nullptr) {
      done(Result<CreationReport>{ErrorCode::kUnavailable,
                                  "edge service not registered"});
      return;
    }
    const auto ingress =
        edge_controllers_[spec.ingress_service.value()]->resolve_site(
            spec.ingress_node);
    const auto egress =
        edge_controllers_[spec.egress_service.value()]->resolve_site(
            spec.egress_node);
    if (!ingress.ok() || !egress.ok()) {
      done(Result<CreationReport>{ErrorCode::kNotFound,
                                  "cannot resolve ingress/egress site"});
      return;
    }
    report.events.push_back({"sites_resolved", context_.sim.now()});

    // Register the chain in the network model.
    model::Chain chain;
    chain.name = spec.name;
    chain.ingress = spec.ingress_node;
    chain.egress = spec.egress_node;
    chain.vnfs = spec.vnfs;
    chain.forward_traffic.assign(spec.vnfs.size() + 1, spec.forward_traffic);
    chain.reverse_traffic.assign(spec.vnfs.size() + 1, spec.reverse_traffic);
    const ChainId chain_id = context_.model.add_chain(std::move(chain));

    ChainRecord record;
    record.id = chain_id;
    record.spec = spec;
    record.labels = dataplane::Labels{1000 + chain_id.value(),
                                      egress.value().value()};
    record.ingress_site = *ingress;
    record.egress_site = *egress;
    chains_.push_back(record);
    journal_append(encode_chain(record));
    report.chain = chain_id;
    report.labels = record.labels;

    // Fig. 4 step 2: compute the wide-area route.
    context_.sim.schedule(
        context_.timings.route_compute,
        [this, ep, chain_id, report, done = std::move(done)]() mutable {
          if (!up_ || ep != epoch_) return;
          ChainRecord* rec = nullptr;
          for (ChainRecord& r : chains_) {
            if (r.id == chain_id) rec = &r;
          }
          SWB_CHECK(rec != nullptr);
          te::DpOptions options = dp_options_;
          ensure_loads_current();   // resizes after late VNF registration
          std::optional<std::vector<SiteId>> vnf_sites;
          if (te_mode_ == TeMode::kSbLp) vnf_sites = lp_route_sites(chain_id);
          if (!vnf_sites) {
            const te::SingleRoute route = te::find_single_route(
                context_.model, context_.model.chain(chain_id), loads_,
                options, 1.0, te::TeContext{nullptr, &scratch_});
            if (route.found && route.admissible_fraction > 0) {
              vnf_sites.emplace();
              for (std::size_t z = 1; z <= rec->spec.vnfs.size(); ++z) {
                vnf_sites->push_back(route.sites[z]);
              }
            }
          }
          report.events.push_back({"route_computed", context_.sim.now()});
          if (!vnf_sites) {
            done(Result<CreationReport>{ErrorCode::kInfeasible,
                                        "no feasible wide-area route"});
            return;
          }
          RouteRecord route_record;
          route_record.id = RouteId{next_route_id_++};
          route_record.weight = 1.0;
          route_record.vnf_sites = std::move(*vnf_sites);
          report.route = route_record.id;
          commit_route(*rec, std::move(route_record), std::move(report),
                       std::move(done), {}, 0);
        });
  });
}

namespace {

/// Bounded exponential backoff before RPC retry `rpc_retry` (0-based).
sim::Duration rpc_backoff(const ControlTimings& timings,
                          std::size_t rpc_retry) {
  return timings.rpc_retry_backoff
         << static_cast<sim::Duration>(std::min<std::size_t>(rpc_retry, 6));
}

}  // namespace

void GlobalSwitchboard::commit_route(
    ChainRecord& record, RouteRecord route, CreationReport report,
    CreationCallback done,
    std::set<std::pair<std::uint32_t, std::uint32_t>> excluded,
    std::size_t attempt) {
  const ChainId chain_id = record.id;

  // Journal the 2PC intent before any participant hears about it: after a
  // crash anywhere in the round, recovery knows this (chain, route, sites)
  // begun and can re-drive or abort it.
  journal_append(encode_begin(chain_id, route.id, route.vnf_sites));
  inflight_[{chain_id.value(), route.id.value()}] =
      Inflight{route.vnf_sites, /*prepared=*/false};

  // Two-phase commit, prepare round: parallel RPCs to each VNF controller
  // (round trip + processing).
  const sim::Duration prepare_delay = 2 * context_.timings.controller_rpc +
                                      context_.timings.controller_processing;
  const std::uint64_t ep = epoch_;
  context_.sim.schedule(
      prepare_delay,
      [this, ep, chain_id, route, report, done = std::move(done), excluded,
       attempt]() mutable {
        if (!up_ || ep != epoch_) return;
        start_prepare_round(chain_id, std::move(route), std::move(report),
                            std::move(done), std::move(excluded), attempt,
                            /*rpc_retry=*/0);
      });
}

void GlobalSwitchboard::start_prepare_round(
    ChainId chain_id, RouteRecord route, CreationReport report,
    CreationCallback done,
    std::set<std::pair<std::uint32_t, std::uint32_t>> excluded,
    std::size_t attempt, std::size_t rpc_retry) {
  ChainRecord* rec = nullptr;
  for (ChainRecord& r : chains_) {
    if (r.id == chain_id) rec = &r;
  }
  SWB_CHECK(rec != nullptr);
  const model::Chain& chain = context_.model.chain(chain_id);

  // Parallel prepares: collect a vote from every reachable participant; a
  // down controller answers nothing and leaves a timeout.  Re-delivered
  // prepares on a later retry are deduplicated per (chain, route, stage).
  bool all_prepared = true;
  bool timed_out = false;
  std::pair<std::uint32_t, std::uint32_t> rejected{0, 0};
  std::set<std::uint32_t> prepared_vnfs;
  for (std::size_t z = 1; z <= rec->spec.vnfs.size(); ++z) {
    const VnfId vnf = rec->spec.vnfs[z - 1];
    const SiteId site = route.vnf_sites[z - 1];
    VnfController* controller = vnf_controllers_[vnf.value()];
    SWB_CHECK(controller != nullptr);
    if (!controller->up()) {
      timed_out = true;
      continue;
    }
    const double load =
        context_.model.vnf(vnf).load_per_unit *
        (chain.stage_traffic(z) + chain.stage_traffic(z + 1)) *
        route.weight;
    if (controller->prepare(chain_id, route.id, site, load, z, epoch_)) {
      prepared_vnfs.insert(vnf.value());
    } else {
      all_prepared = false;
      rejected = {vnf.value(), site.value()};
      break;
    }
  }

  if (!all_prepared) {
    // Abort the reservations made so far and recompute with the
    // rejecting placement excluded (Section 3, chain creation).
    for (const std::uint32_t vnf : prepared_vnfs) {
      vnf_controllers_[vnf]->abort(chain_id, route.id, epoch_);
    }
    journal_append(pair_record("abort", chain_id, route.id));
    inflight_.erase({chain_id.value(), route.id.value()});
    excluded.insert(rejected);
    report.events.push_back({"route_rejected", context_.sim.now()});
    if (attempt + 1 >= 4) {
      done(Result<CreationReport>{
          ErrorCode::kResourceExhausted,
          "2PC: no feasible route after repeated rejections"});
      return;
    }
    const std::uint64_t ep = epoch_;
    context_.sim.schedule(
        context_.timings.route_compute,
        [this, ep, chain_id, report, done = std::move(done), excluded,
         attempt]() mutable {
          if (!up_ || ep != epoch_) return;
          ChainRecord* rec2 = nullptr;
          for (ChainRecord& r : chains_) {
            if (r.id == chain_id) rec2 = &r;
          }
          SWB_CHECK(rec2 != nullptr);
          te::DpOptions options = dp_options_;
          options.site_allowed = [excluded](VnfId vnf, SiteId site) {
            return excluded.count({vnf.value(), site.value()}) == 0;
          };
          ensure_loads_current();
          const te::SingleRoute retry = te::find_single_route(
              context_.model, context_.model.chain(chain_id), loads_,
              options, 1.0, te::TeContext{nullptr, &scratch_});
          report.events.push_back({"route_recomputed", context_.sim.now()});
          if (!retry.found || retry.admissible_fraction <= 0) {
            done(Result<CreationReport>{ErrorCode::kInfeasible,
                                        "no feasible route after 2PC "
                                        "rejection"});
            return;
          }
          RouteRecord route_record;
          route_record.id = RouteId{next_route_id_++};
          route_record.weight = 1.0;
          for (std::size_t z = 1; z <= rec2->spec.vnfs.size(); ++z) {
            route_record.vnf_sites.push_back(retry.sites[z]);
          }
          report.route = route_record.id;
          commit_route(*rec2, std::move(route_record), std::move(report),
                       std::move(done), std::move(excluded), attempt + 1);
        });
    return;
  }

  if (timed_out) {
    // Some participant never answered.  The timeout clock runs from round
    // entry; the round retries with bounded exponential backoff.
    report.events.push_back({"prepare_timeout", context_.sim.now()});
    if (rpc_retry >= context_.timings.max_rpc_retries) {
      SB_LOG(kWarn) << "2pc: prepare for chain " << chain_id << " route "
                    << route.id << " gave up after " << rpc_retry
                    << " retries";
      for (const std::uint32_t vnf : prepared_vnfs) {
        vnf_controllers_[vnf]->abort(chain_id, route.id, epoch_);
      }
      journal_append(pair_record("abort", chain_id, route.id));
      inflight_.erase({chain_id.value(), route.id.value()});
      done(Result<CreationReport>{
          ErrorCode::kUnavailable,
          "2PC prepare: participant unreachable after retries"});
      return;
    }
    const std::uint64_t retry_ep = epoch_;
    context_.sim.schedule(
        context_.timings.rpc_timeout + rpc_backoff(context_.timings,
                                                   rpc_retry),
        [this, retry_ep, chain_id, route, report, done = std::move(done),
         excluded, attempt, rpc_retry]() mutable {
          if (!up_ || retry_ep != epoch_) return;
          start_prepare_round(chain_id, std::move(route), std::move(report),
                              std::move(done), std::move(excluded), attempt,
                              rpc_retry + 1);
        });
    return;
  }
  report.events.push_back({"prepared", context_.sim.now()});

  // Every participant voted yes: journal it so a crash from here on
  // re-drives the commit round instead of aborting (participants may have
  // already committed by then; re-commits are idempotent).
  journal_append(pair_record("prep", chain_id, route.id));
  inflight_[{chain_id.value(), route.id.value()}].prepared = true;

  // Commit round — behind the quorum barrier: with replication on, the
  // prep record must be durable on a quorum before any participant hears
  // commit, or a failed-over leader could abort a round whose
  // participants already committed.
  const std::uint64_t commit_ep = epoch_;
  after_quorum([this, commit_ep, chain_id, route = std::move(route),
                report = std::move(report), done = std::move(done)]() mutable {
    if (!up_ || commit_ep != epoch_) return;
    context_.sim.schedule(
        context_.timings.controller_rpc +
            context_.timings.controller_processing,
        [this, commit_ep, chain_id, route = std::move(route),
         report = std::move(report), done = std::move(done)]() mutable {
          if (!up_ || commit_ep != epoch_) return;
          start_commit_round(chain_id, std::move(route), std::move(report),
                             std::move(done), /*rpc_retry=*/0);
        });
  });
}

void GlobalSwitchboard::start_commit_round(ChainId chain_id, RouteRecord route,
                                           CreationReport report,
                                           CreationCallback done,
                                           std::size_t rpc_retry) {
  ChainRecord* rec2 = nullptr;
  for (ChainRecord& r : chains_) {
    if (r.id == chain_id) rec2 = &r;
  }
  SWB_CHECK(rec2 != nullptr);

  // Commits to reachable participants; re-delivery on retry is idempotent
  // (kCommitted -> kCommitted, no reservations left to move).
  bool timed_out = false;
  for (std::size_t z = 1; z <= rec2->spec.vnfs.size(); ++z) {
    const VnfId vnf = rec2->spec.vnfs[z - 1];
    VnfController* controller = vnf_controllers_[vnf.value()];
    if (!controller->up()) {
      timed_out = true;
      continue;
    }
    controller->commit(chain_id, route.id, rec2->labels.egress_site, epoch_);
  }

  if (timed_out) {
    report.events.push_back({"commit_timeout", context_.sim.now()});
    if (rpc_retry >= context_.timings.max_rpc_retries) {
      // Roll the route back: reachable participants get abort (rejected-
      // and-counted where already committed) and release their committed
      // capacity; unreachable ones recover via the reservation TTL GC.
      SB_LOG(kWarn) << "2pc: commit for chain " << chain_id << " route "
                    << route.id << " gave up after " << rpc_retry
                    << " retries";
      // Journal the abort and make it quorum-durable BEFORE releasing the
      // participants: an abort the standbys never saw would make a
      // failed-over leader re-drive this prepared round against
      // participants that already rolled back.
      journal_append(pair_record("abort", chain_id, route.id));
      inflight_.erase({chain_id.value(), route.id.value()});
      const std::uint64_t abort_ep = epoch_;
      after_quorum([this, abort_ep, chain_id, route_id = route.id,
                    done = std::move(done)]() mutable {
        if (!up_ || abort_ep != epoch_) return;
        const ChainRecord* rec3 = find_record(chain_id);
        SWB_CHECK(rec3 != nullptr);
        for (std::size_t z = 1; z <= rec3->spec.vnfs.size(); ++z) {
          VnfController* controller =
              vnf_controllers_[rec3->spec.vnfs[z - 1].value()];
          if (!controller->up()) continue;
          controller->abort(chain_id, route_id, epoch_);
          controller->release(chain_id, route_id, epoch_);
        }
        done(Result<CreationReport>{
            ErrorCode::kUnavailable,
            "2PC commit: participant unreachable after retries"});
      });
      return;
    }
    const std::uint64_t ep = epoch_;
    context_.sim.schedule(
        context_.timings.rpc_timeout + rpc_backoff(context_.timings,
                                                   rpc_retry),
        [this, ep, chain_id, route, report, done = std::move(done),
         rpc_retry]() mutable {
          if (!up_ || ep != epoch_) return;
          start_commit_round(chain_id, std::move(route), std::move(report),
                             std::move(done), rpc_retry + 1);
        });
    return;
  }
  report.events.push_back({"committed", context_.sim.now()});

  // The round is durable-committed from this point: replay re-applies the
  // route and recovery re-drives participant commits if needed.
  journal_append(pair_record("commit", chain_id, route.id));
  inflight_.erase({chain_id.value(), route.id.value()});

  // Apply to memory synchronously with the append — a snapshot cut while
  // the quorum barrier below is pending must already reflect this commit,
  // or its log truncation would lose the route.
  ensure_loads_current();
  rec2->routes.push_back(route);
  // Route weights rebalance equally (Fig. 10: the new route takes
  // an even share of new connections).  Loads are adjusted by the
  // per-route weight deltas instead of a full rebuild over every
  // active chain.
  const double weight = 1.0 / static_cast<double>(rec2->routes.size());
  const bool was_active = rec2->active;
  rec2->active = true;
  for (std::size_t i = 0; i < rec2->routes.size(); ++i) {
    RouteRecord& r = rec2->routes[i];
    const bool is_new = i + 1 == rec2->routes.size();
    const double previous = was_active && !is_new ? r.weight : 0.0;
    apply_route_loads(*rec2, r, weight - previous);
    r.weight = weight;
  }

  // Acknowledgment — behind the quorum barrier: routes are published,
  // edge instances announced, readiness tracked, and `done` armed only
  // once a quorum of replicas has the commit record durable.  rec2 is
  // re-found inside the resume: chains_ may reallocate while the barrier
  // is pending.
  const std::uint64_t activate_ep = epoch_;
  after_quorum([this, activate_ep, chain_id, route = std::move(route),
                report = std::move(report), done = std::move(done)]() mutable {
    if (!up_ || activate_ep != epoch_) return;
    ChainRecord* rec2 = nullptr;
    for (ChainRecord& r : chains_) {
      if (r.id == chain_id) rec2 = &r;
    }
    SWB_CHECK(rec2 != nullptr);

    publish_routes(*rec2);
    report.events.push_back({"routes_published", context_.sim.now()});

    // Edge controllers allocate + announce instances (Fig. 4 step 4).
    edge_controllers_[rec2->spec.ingress_service.value()]
        ->announce_edge_instance(chain_id, rec2->labels.egress_site,
                                 rec2->ingress_site);
    edge_controllers_[rec2->spec.egress_service.value()]
        ->announce_edge_instance(chain_id, rec2->labels.egress_site,
                                 rec2->egress_site);

    // Track readiness of every involved site.
    PendingActivation pending;
    pending.chain = chain_id;
    pending.route = route.id;
    pending.waiting_sites = involved_sites(*rec2, route);
    pending.report = std::move(report);
    pending.done = std::move(done);
    pending_.push_back(std::move(pending));
#ifndef NDEBUG
    check_invariants();
#endif
  });
}

void GlobalSwitchboard::add_route(ChainId chain,
                                  const std::vector<SiteId>& preferred_vnf_sites,
                                  CreationCallback done) {
  ChainRecord* rec = nullptr;
  for (ChainRecord& r : chains_) {
    if (r.id == chain) rec = &r;
  }
  if (rec == nullptr || !rec->active) {
    context_.sim.schedule(0, [done = std::move(done)] {
      done(Result<CreationReport>{ErrorCode::kNotFound,
                                  "chain not active"});
    });
    return;
  }

  CreationReport report;
  report.started = context_.sim.now();
  report.chain = chain;
  report.labels = rec->labels;
  report.events.push_back({"route_requested", context_.sim.now()});

  const std::uint64_t ep = epoch_;
  context_.sim.schedule(
      context_.timings.route_compute,
      [this, ep, chain, preferred_vnf_sites, report,
       done = std::move(done)]() mutable {
        if (!up_ || ep != epoch_) return;
        ChainRecord* rec2 = nullptr;
        for (ChainRecord& r : chains_) {
          if (r.id == chain) rec2 = &r;
        }
        SWB_CHECK(rec2 != nullptr);
        RouteRecord route_record;
        route_record.id = RouteId{next_route_id_++};
        // The new route takes an equal share of traffic.
        route_record.weight =
            1.0 / static_cast<double>(rec2->routes.size() + 1);
        if (!preferred_vnf_sites.empty()) {
          if (preferred_vnf_sites.size() != rec2->spec.vnfs.size()) {
            done(Result<CreationReport>{ErrorCode::kInvalidArgument,
                                        "preferred sites must cover every "
                                        "VNF in the chain"});
            return;
          }
          route_record.vnf_sites = preferred_vnf_sites;
        } else {
          ensure_loads_current();
          std::optional<std::vector<SiteId>> vnf_sites;
          if (te_mode_ == TeMode::kSbLp) vnf_sites = lp_route_sites(chain);
          if (!vnf_sites) {
            const te::SingleRoute route = te::find_single_route(
                context_.model, context_.model.chain(chain), loads_,
                dp_options_, 1.0, te::TeContext{nullptr, &scratch_});
            if (route.found) {
              vnf_sites.emplace();
              for (std::size_t z = 1; z <= rec2->spec.vnfs.size(); ++z) {
                vnf_sites->push_back(route.sites[z]);
              }
            }
          }
          if (!vnf_sites) {
            done(Result<CreationReport>{ErrorCode::kInfeasible,
                                        "no feasible additional route"});
            return;
          }
          route_record.vnf_sites = std::move(*vnf_sites);
        }
        report.events.push_back({"route_computed", context_.sim.now()});
        report.route = route_record.id;
        commit_route(*rec2, std::move(route_record), std::move(report),
                     std::move(done), {}, 0);
      });
}

void GlobalSwitchboard::check_invariants() const {
  // Chain ids are allocator-unique; names are a human label with no
  // uniqueness contract (specs may leave them empty).
  std::set<std::uint32_t> chain_ids;
  for (const ChainRecord& record : chains_) {
    SWB_CHECK(chain_ids.insert(record.id.value()).second)
        << "duplicate chain id " << record.id.value();

    std::set<std::uint32_t> route_ids;
    double weight_sum = 0.0;
    for (const RouteRecord& route : record.routes) {
      SWB_CHECK_LT(route.id.value(), next_route_id_)
          << "route id outside the allocator for chain " << record.id.value();
      SWB_CHECK(route_ids.insert(route.id.value()).second)
          << "duplicate route id " << route.id.value() << " in chain "
          << record.id.value();
      // One placement per VNF stage — the announcement builder indexes
      // vnf_sites positionally against spec.vnfs.
      SWB_CHECK_EQ(route.vnf_sites.size(), record.spec.vnfs.size())
          << "chain " << record.id.value() << " route " << route.id.value();
      SWB_CHECK(route.weight > 0.0 && route.weight <= 1.0 + 1e-9)
          << "chain " << record.id.value() << " route " << route.id.value()
          << " weight " << route.weight;
      weight_sum += route.weight;
    }
    if (record.active) {
      SWB_CHECK(!record.routes.empty())
          << "active chain " << record.id.value() << " has no routes";
      SWB_CHECK_LE(std::abs(weight_sum - 1.0), 1e-6)
          << "chain " << record.id.value() << " route weights sum to "
          << weight_sum;
      for (const VnfId vnf : record.spec.vnfs) {
        SWB_CHECK(vnf.value() < vnf_controllers_.size() &&
                  vnf_controllers_[vnf.value()] != nullptr)
            << "active chain " << record.id.value()
            << " uses unregistered vnf " << vnf.value();
      }
    }
  }

  for (const PendingActivation& pending : pending_) {
    const ChainRecord* record = find_record(pending.chain);
    SWB_CHECK(record != nullptr)
        << "pending activation for unknown chain " << pending.chain.value();
    // Drained activations are erased in on_route_ready, so a lingering
    // empty waiting set means a completion was lost.
    SWB_CHECK(!pending.waiting_sites.empty())
        << "pending activation for chain " << pending.chain.value()
        << " route " << pending.route.value() << " awaits no site";
    const bool route_known =
        std::any_of(record->routes.begin(), record->routes.end(),
                    [&](const RouteRecord& r) { return r.id == pending.route; });
    SWB_CHECK(route_known) << "pending activation for unknown route "
                           << pending.route.value();
  }

  for (const VnfController* controller : vnf_controllers_) {
    if (controller != nullptr) controller->check_invariants();
  }
  loads_.check_invariants();

  // The incrementally-maintained loads must match a rebuild from the
  // active chains (within round-off from weight-delta accumulation).
  if (loads_primed_ && model_shape() == loads_shape_) {
    constexpr double kTolerance = 1e-6;
    te::Loads rebuilt{context_.model};
    rebuild_loads_into(rebuilt);
    for (std::size_t e = 0; e < context_.model.topology().link_count(); ++e) {
      const LinkId link{static_cast<LinkId::underlying_type>(e)};
      SWB_CHECK_LE(std::abs(loads_.link_load(link) - rebuilt.link_load(link)),
                   kTolerance * std::max(1.0, rebuilt.link_load(link)))
          << "incremental link load drifted on link " << e;
    }
    for (std::size_t s = 0; s < context_.model.sites().size(); ++s) {
      const SiteId site{static_cast<SiteId::underlying_type>(s)};
      SWB_CHECK_LE(std::abs(loads_.site_load(site) - rebuilt.site_load(site)),
                   kTolerance * std::max(1.0, rebuilt.site_load(site)))
          << "incremental site load drifted on site " << s;
      for (std::size_t f = 0; f < context_.model.vnfs().size(); ++f) {
        const VnfId vnf{static_cast<VnfId::underlying_type>(f)};
        SWB_CHECK_LE(
            std::abs(loads_.vnf_site_load(vnf, site) -
                     rebuilt.vnf_site_load(vnf, site)),
            kTolerance * std::max(1.0, rebuilt.vnf_site_load(vnf, site)))
            << "incremental vnf load drifted: vnf " << f << " site " << s;
      }
    }
  }
}

RecoveryReport GlobalSwitchboard::on_instance_down(VnfId vnf, SiteId site) {
  if (!up_) return RecoveryReport{};   // a dead coordinator reacts to nothing
  SB_LOG(kInfo) << "recovery: vnf " << vnf << " down at site " << site;
  // Remember the healthy capacity (first report only — a site death fans
  // out one report per pool, and repeats must not save the zeroed value)
  // so on_instance_up can undo the zeroing, across crashes.
  const auto pool = std::make_pair(vnf.value(), site.value());
  if (dead_pools_.find(pool) == dead_pools_.end()) {
    const double capacity = context_.model.vnf(vnf).capacity_at(site);
    if (capacity > 0.0) {
      dead_pools_[pool] = capacity;
      std::ostringstream record;
      record << "t=pooldown;vnf=" << vnf.value() << ";site=" << site.value()
             << ";cap=" << exact(capacity);
      journal_append(record.str());
    }
  }
  // The dead pool contributes no capacity until restored: route
  // computation (replacements and future chains) avoids the site, and a
  // participant prepare there votes abort.
  context_.model.set_vnf_site_capacity(vnf, site, 0.0);
  // The recovery actions — the drain trigger (weight-0 instance
  // re-announcements that invalidate pinned flows) and the route
  // retirements — wait on the quorum barrier: a failed-over leader must
  // know the pool transition it is retiring routes for.  Without a gate
  // this runs synchronously and the report is returned to the caller;
  // behind a gate the report is empty (the actions settle later — the
  // detector's post-failover resync re-reports still-down pools, so a
  // dropped barrier self-heals).
  auto actions = [this, vnf, site]() -> RecoveryReport {
    if (vnf.value() < vnf_controllers_.size() &&
        vnf_controllers_[vnf.value()] != nullptr &&
        vnf_controllers_[vnf.value()]->up()) {
      vnf_controllers_[vnf.value()]->reannounce_instances(site);
    }
    return retire_routes(
        [vnf, site](const ChainRecord& record, const RouteRecord& route) {
          for (std::size_t z = 0; z < route.vnf_sites.size(); ++z) {
            if (record.spec.vnfs[z] == vnf && route.vnf_sites[z] == site) {
              return true;
            }
          }
          return false;
        });
  };
  if (quorum_gate_ == nullptr) return actions();
  const std::uint64_t ep = epoch_;
  quorum_gate_([this, ep, actions] {
    if (!up_ || ep != epoch_) return;
    actions();
  });
  return RecoveryReport{};
}

RecoveryReport GlobalSwitchboard::on_link_down(LinkId link) {
  if (!up_) return RecoveryReport{};
  SB_LOG(kInfo) << "recovery: link " << link << " down";
  // Topology capacities must stay positive (check_invariants); a dead link
  // is modeled as background traffic consuming all of it.
  context_.model.set_background_traffic(
      link, context_.model.topology().link(link).capacity);
  return retire_routes(
      [this, link](const ChainRecord& record, const RouteRecord& route) {
        return route_uses_link(record, route, link);
      });
}

bool GlobalSwitchboard::route_uses_link(const ChainRecord& record,
                                        const RouteRecord& route,
                                        LinkId link) const {
  // Walk the route's site-to-site segments and test each segment's ECMP
  // footprint for the link.
  const NodeId egress_node = context_.model.site(record.egress_site).node;
  NodeId prev = context_.model.site(record.ingress_site).node;
  for (std::size_t z = 1; z <= route.vnf_sites.size() + 1; ++z) {
    const NodeId next = z <= route.vnf_sites.size()
        ? context_.model.site(route.vnf_sites[z - 1]).node
        : egress_node;
    for (const net::LinkShare& share :
         context_.model.routing().link_shares(prev, next)) {
      if (share.link == link && share.fraction > 0.0) return true;
    }
    prev = next;
  }
  return false;
}

std::optional<std::vector<SiteId>> GlobalSwitchboard::lp_route_sites(
    ChainId chain) {
  te::LpRoutingOptions options;
  options.objective = te::LpObjective::kMaxThroughput;
  if (lp_basis_valid_) options.warm_start = &lp_basis_;
  te::LpRoutingResult result = te::solve_lp_routing(context_.model, options);
  if (!result.optimal()) return std::nullopt;
  lp_basis_ = std::move(result.basis);
  lp_basis_valid_ = true;
  return te::primary_route_sites(context_.model, result.routing, chain);
}

RecoveryReport GlobalSwitchboard::retire_routes(
    const std::function<bool(const ChainRecord&, const RouteRecord&)>&
        doomed) {
  RecoveryReport report;
  ensure_loads_current();
  for (ChainRecord& record : chains_) {
    if (!record.active) continue;
    std::vector<RouteRecord> removed;
    std::vector<RouteRecord> kept;
    for (const RouteRecord& route : record.routes) {
      (doomed(record, route) ? removed : kept).push_back(route);
    }
    if (removed.empty()) continue;
    ++report.affected_chains;

    for (const RouteRecord& route : removed) {
      ++report.routes_removed;
      report.rerouted_volume +=
          route.weight *
          (record.spec.forward_traffic + record.spec.reverse_traffic);

      // Weight-0 tombstone: Local Switchboards keep the route record (its
      // id may linger in flow pinnings) but stop steering traffic onto it.
      RouteAnnouncement tombstone = to_announcement(record, route);
      tombstone.weight = 0.0;
      context_.bus.publish(routes_topic(), serialize(tombstone));

      // Return the committed 2PC capacity at every reachable participant;
      // unreachable ones reconcile when they come back (their state is
      // kCommitted either way).
      for (const VnfId vnf : record.spec.vnfs) {
        if (vnf.value() >= vnf_controllers_.size()) continue;
        VnfController* controller = vnf_controllers_[vnf.value()];
        if (controller != nullptr && controller->up()) {
          controller->release(record.id, route.id, epoch_);
        }
      }
      journal_append(pair_record("retire", record.id, route.id));
      apply_route_loads(record, route, -route.weight);

      // A failure racing activation: complete the waiting creation with an
      // error instead of leaving it stranded forever.
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].chain != record.id || pending_[i].route != route.id) {
          continue;
        }
        CreationCallback stranded = std::move(pending_[i].done);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        if (stranded) {
          stranded(Result<CreationReport>{
              ErrorCode::kUnavailable,
              "route retired by failure recovery during activation"});
        }
        break;
      }
    }
    record.routes = std::move(kept);

    if (!record.routes.empty()) {
      // Survivors split the chain's traffic evenly again; only the
      // affected chain's load deltas are applied (incremental re-solve).
      const double weight = 1.0 / static_cast<double>(record.routes.size());
      for (RouteRecord& route : record.routes) {
        apply_route_loads(record, route, weight - route.weight);
        route.weight = weight;
      }
      publish_routes(record);
    } else {
      // The failure took the chain's last route: deactivate and request a
      // replacement through the normal compute + 2PC pipeline.
      record.active = false;
      ++report.replacements_requested;
      replace_route(record.id);
    }
  }
  SB_LOG(kInfo) << "recovery: " << report.routes_removed
                << " route(s) retired across " << report.affected_chains
                << " chain(s), " << report.replacements_requested
                << " replacement(s) requested";
#ifndef NDEBUG
  check_invariants();
#endif
  return report;
}

void GlobalSwitchboard::replace_route(ChainId chain) {
  CreationReport report;
  report.started = context_.sim.now();
  report.chain = chain;
  report.events.push_back({"replacement_requested", context_.sim.now()});
  const std::uint64_t ep = epoch_;
  context_.sim.schedule(
      context_.timings.route_compute, [this, ep, chain, report]() mutable {
        if (!up_ || ep != epoch_) return;
        ChainRecord* rec = nullptr;
        for (ChainRecord& r : chains_) {
          if (r.id == chain) rec = &r;
        }
        SWB_CHECK(rec != nullptr);
        report.labels = rec->labels;
        ensure_loads_current();
        std::optional<std::vector<SiteId>> vnf_sites;
        if (te_mode_ == TeMode::kSbLp) vnf_sites = lp_route_sites(chain);
        if (!vnf_sites) {
          const te::SingleRoute route = te::find_single_route(
              context_.model, context_.model.chain(chain), loads_,
              dp_options_, 1.0, te::TeContext{nullptr, &scratch_});
          if (route.found && route.admissible_fraction > 0) {
            vnf_sites.emplace();
            for (std::size_t z = 1; z <= rec->spec.vnfs.size(); ++z) {
              vnf_sites->push_back(route.sites[z]);
            }
          }
        }
        report.events.push_back({"route_computed", context_.sim.now()});
        if (!vnf_sites) {
          SB_LOG(kWarn) << "recovery: no feasible replacement route for "
                        << "chain " << chain;
          return;
        }
        RouteRecord route_record;
        route_record.id = RouteId{next_route_id_++};
        route_record.weight = 1.0;
        route_record.vnf_sites = std::move(*vnf_sites);
        report.route = route_record.id;
        commit_route(*rec, std::move(route_record), std::move(report),
                     [chain](Result<CreationReport> result) {
                       if (result.ok()) {
                         SB_LOG(kInfo)
                             << "recovery: replacement route active for "
                             << "chain " << chain;
                       } else {
                         SB_LOG(kWarn)
                             << "recovery: replacement route failed for "
                             << "chain " << chain << ": "
                             << result.error().message;
                       }
                     },
                     {}, 0);
      });
}

void GlobalSwitchboard::on_route_ready(ChainId chain, RouteId route,
                                       SiteId site) {
  if (!up_) return;   // readiness from the old incarnation is re-derived
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PendingActivation& pending = pending_[i];
    if (pending.chain != chain || pending.route != route) continue;
    pending.waiting_sites.erase(site.value());
    pending.report.events.push_back(
        {"site_" + std::to_string(site.value()) + "_ready",
         context_.sim.now()});
    if (!pending.waiting_sites.empty()) return;
    pending.report.completed = context_.sim.now();
    pending.report.events.push_back({"activated", context_.sim.now()});
    CreationCallback done = std::move(pending.done);
    CreationReport report = std::move(pending.report);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
#ifndef NDEBUG
    check_invariants();
#endif
    if (done) done(Result<CreationReport>{std::move(report)});
    return;
  }
}

// --- durability & crash-with-amnesia recovery ----------------------------

void GlobalSwitchboard::enable_durability(StateJournal* journal) {
  SWB_CHECK(journal != nullptr) << "enable_durability(nullptr)";
  journal_ = journal;
  // Persist the current state as the base snapshot so a crash before the
  // first journaled change still recovers the epoch and any pre-existing
  // chains.
  journal_->write_snapshot(encode_snapshot());
}

void GlobalSwitchboard::journal_append(const std::string& record) {
  if (journal_ == nullptr) return;
  journal_->append(record);
  // The replication stream taps every append, in order, right here.
  if (journal_observer_) journal_observer_(record);
  if (journal_->wants_snapshot()) {
    if (compaction_gate_) {
      // Replicated mode: the snapshot is first installed on a quorum of
      // followers; the gate calls compact_journal_now() on their ack.
      compaction_gate_();
    } else {
      journal_->write_snapshot(encode_snapshot());
    }
  }
}

void GlobalSwitchboard::set_journal_observer(
    std::function<void(const std::string&)> observer) {
  journal_observer_ = std::move(observer);
}

void GlobalSwitchboard::set_quorum_gate(
    std::function<void(std::function<void()>)> gate) {
  quorum_gate_ = std::move(gate);
}

void GlobalSwitchboard::set_compaction_gate(std::function<void()> gate) {
  compaction_gate_ = std::move(gate);
}

void GlobalSwitchboard::after_quorum(std::function<void()> resume) {
  if (quorum_gate_ == nullptr) {
    resume();   // single-controller mode: no barrier, identical timing
    return;
  }
  quorum_gate_(std::move(resume));
}

void GlobalSwitchboard::compact_journal_now() {
  if (journal_ == nullptr) return;
  // Re-encode at call time: records appended while the replicated install
  // was in flight are part of the state by now, so truncation loses
  // nothing.
  journal_->write_snapshot(encode_snapshot());
}

std::vector<std::string> GlobalSwitchboard::encode_snapshot() const {
  // One grammar for snapshot and log: a snapshot is just the shortest
  // record sequence that replays to the current state.
  std::vector<std::string> records;
  records.push_back("t=epoch;n=" + std::to_string(epoch_));
  records.push_back("t=nri;n=" + std::to_string(next_route_id_));
  for (const ChainRecord& record : chains_) {
    records.push_back(encode_chain(record));
    for (const RouteRecord& route : record.routes) {
      records.push_back(encode_begin(record.id, route.id, route.vnf_sites));
      records.push_back(pair_record("commit", record.id, route.id));
    }
  }
  for (const auto& [pool, capacity] : dead_pools_) {
    std::ostringstream out;
    out << "t=pooldown;vnf=" << pool.first << ";site=" << pool.second
        << ";cap=" << exact(capacity);
    records.push_back(out.str());
  }
  for (const auto& [key, round] : inflight_) {
    const ChainId chain{key.first};
    const RouteId route{key.second};
    records.push_back(encode_begin(chain, route, round.vnf_sites));
    if (round.prepared) {
      records.push_back(pair_record("prep", chain, route));
    }
  }
  return records;
}

void GlobalSwitchboard::replay_record(const std::string& record,
                                      std::uint64_t& max_epoch) {
  const auto fields = journal_fields(record);
  const auto type_it = fields.find("t");
  SWB_CHECK(type_it != fields.end()) << "journal record without type";
  const std::string& type = type_it->second;

  if (type == "epoch") {
    max_epoch = std::max(max_epoch, field_u64(fields, "n"));
  } else if (type == "nri") {
    next_route_id_ = std::max<std::uint32_t>(
        next_route_id_, static_cast<std::uint32_t>(field_u64(fields, "n")));
  } else if (type == "chain") {
    // The network model is shared infrastructure state, not coordinator
    // memory: the chain is still registered there, only the coordinator's
    // record is rebuilt.
    ChainRecord rec;
    rec.id = ChainId{static_cast<std::uint32_t>(field_u64(fields, "id"))};
    const auto name = fields.find("name");
    rec.spec.name = name != fields.end() ? name->second : std::string{};
    rec.spec.ingress_service =
        EdgeServiceId{static_cast<std::uint32_t>(field_u64(fields, "ins"))};
    rec.spec.ingress_node =
        NodeId{static_cast<std::uint32_t>(field_u64(fields, "inn"))};
    rec.spec.egress_service =
        EdgeServiceId{static_cast<std::uint32_t>(field_u64(fields, "egs"))};
    rec.spec.egress_node =
        NodeId{static_cast<std::uint32_t>(field_u64(fields, "egn"))};
    for (const std::uint32_t vnf : field_u32_list(fields, "vnfs")) {
      rec.spec.vnfs.push_back(VnfId{vnf});
    }
    rec.spec.forward_traffic = field_double(fields, "ft");
    rec.spec.reverse_traffic = field_double(fields, "rt");
    rec.labels = dataplane::Labels{
        static_cast<std::uint32_t>(field_u64(fields, "cl")),
        static_cast<std::uint32_t>(field_u64(fields, "el"))};
    rec.ingress_site =
        SiteId{static_cast<std::uint32_t>(field_u64(fields, "insite"))};
    rec.egress_site =
        SiteId{static_cast<std::uint32_t>(field_u64(fields, "egsite"))};
    chains_.push_back(std::move(rec));
  } else if (type == "begin") {
    const std::uint32_t chain =
        static_cast<std::uint32_t>(field_u64(fields, "chain"));
    const std::uint32_t route =
        static_cast<std::uint32_t>(field_u64(fields, "route"));
    Inflight round;
    for (const std::uint32_t site : field_u32_list(fields, "sites")) {
      round.vnf_sites.push_back(SiteId{site});
    }
    inflight_[{chain, route}] = std::move(round);
    next_route_id_ = std::max(next_route_id_, route + 1);
  } else if (type == "prep") {
    const auto key = std::make_pair(
        static_cast<std::uint32_t>(field_u64(fields, "chain")),
        static_cast<std::uint32_t>(field_u64(fields, "route")));
    const auto it = inflight_.find(key);
    SWB_CHECK(it != inflight_.end()) << "prep without begin: " << record;
    it->second.prepared = true;
  } else if (type == "commit") {
    const auto key = std::make_pair(
        static_cast<std::uint32_t>(field_u64(fields, "chain")),
        static_cast<std::uint32_t>(field_u64(fields, "route")));
    const auto it = inflight_.find(key);
    SWB_CHECK(it != inflight_.end()) << "commit without begin: " << record;
    for (ChainRecord& rec : chains_) {
      if (rec.id.value() != key.first) continue;
      RouteRecord route;
      route.id = RouteId{key.second};
      route.vnf_sites = std::move(it->second.vnf_sites);
      route.weight = 1.0;   // rebalanced to 1/N once replay finishes
      rec.routes.push_back(std::move(route));
      inflight_.erase(it);
      return;
    }
    SWB_CHECK(false) << "commit for unknown chain: " << record;
  } else if (type == "abort" || type == "retire") {
    const auto key = std::make_pair(
        static_cast<std::uint32_t>(field_u64(fields, "chain")),
        static_cast<std::uint32_t>(field_u64(fields, "route")));
    inflight_.erase(key);
    for (ChainRecord& rec : chains_) {
      if (rec.id.value() != key.first) continue;
      std::erase_if(rec.routes, [&](const RouteRecord& route) {
        return route.id.value() == key.second;
      });
    }
  } else if (type == "pooldown") {
    dead_pools_[{static_cast<std::uint32_t>(field_u64(fields, "vnf")),
                 static_cast<std::uint32_t>(field_u64(fields, "site"))}] =
        field_double(fields, "cap");
  } else if (type == "poolup") {
    dead_pools_.erase(
        {static_cast<std::uint32_t>(field_u64(fields, "vnf")),
         static_cast<std::uint32_t>(field_u64(fields, "site"))});
  } else {
    SWB_CHECK(false) << "unknown journal record type: " << record;
  }
}

ColdStartReport GlobalSwitchboard::cold_start() {
  SWB_CHECK(journal_ != nullptr) << "cold_start requires enable_durability";
  SB_LOG(kInfo) << "durability: cold start from journal '"
                << journal_->config().name << "'";
  return restart_from_journal(journal_->replay_cost());
}

ColdStartReport GlobalSwitchboard::warm_failover(StateJournal* journal) {
  SWB_CHECK(journal != nullptr);
  journal_ = journal;
  SB_LOG(kInfo) << "replication: warm failover onto journal '"
                << journal_->config().name << "'";
  // The promoted standby applied every record as it arrived: the rebuild
  // below is bookkeeping, not recovery — no replay cost is charged, the
  // resolution sweep runs one tick out.
  return restart_from_journal(sim::Duration{0});
}

ColdStartReport GlobalSwitchboard::restart_from_journal(
    sim::Duration charged_replay_cost) {
  // Amnesia: every volatile structure is forgotten, including the epoch —
  // it is recovered from the journal below.
  chains_.clear();
  pending_.clear();
  inflight_.clear();
  dead_pools_.clear();
  next_route_id_ = 0;

  ColdStartReport report;
  std::uint64_t max_epoch = 0;
  for (const std::string& record : journal_->snapshot_records()) {
    replay_record(record, max_epoch);
    ++report.replayed_records;
  }
  for (const std::string& record : journal_->log_records()) {
    replay_record(record, max_epoch);
    ++report.replayed_records;
  }

  // Post-replay normalization: weights rebalance to the same 1/N the live
  // path maintains, and a chain is active iff it has routes.
  for (ChainRecord& record : chains_) {
    record.active = !record.routes.empty();
    if (record.routes.empty()) continue;
    const double weight = 1.0 / static_cast<double>(record.routes.size());
    for (RouteRecord& route : record.routes) route.weight = weight;
    report.routes_restored += record.routes.size();
  }
  report.chains_restored = chains_.size();
  rebuild_loads();

  // The new incarnation outranks everything the journal has seen; persist
  // the bump so a second crash recovers a still-higher epoch.
  report.replay_cost = charged_replay_cost;
  epoch_ = max_epoch + 1;
  up_ = true;
  report.epoch = epoch_;
  journal_append("t=epoch;n=" + std::to_string(epoch_));
  last_cold_start_ = report;

  // Charge the replay as simulated downtime, then resolve what the crash
  // interrupted and reconcile the participants.
  const std::uint64_t ep = epoch_;
  context_.sim.schedule(
      std::max<sim::Duration>(sim::Duration{1}, report.replay_cost),
      [this, ep] {
        if (!up_ || ep != epoch_) return;
        resolve_inflight_and_reconcile();
      });
  SB_LOG(kInfo) << "durability: replayed " << report.replayed_records
                << " record(s), " << report.chains_restored << " chain(s), "
                << report.routes_restored << " route(s), new epoch "
                << epoch_;
  return report;
}

void GlobalSwitchboard::resolve_inflight_and_reconcile() {
  // Resolve every 2PC round the crash interrupted.  Prepared rounds hold
  // unanimous votes, so commit is the only outcome that cannot strand a
  // participant reservation; unprepared rounds abort (no participant may
  // have heard anything, and an abort for an unknown round is a no-op).
  const auto inflight = inflight_;   // re-drives mutate inflight_
  for (const auto& [key, round] : inflight) {
    const ChainId chain{key.first};
    const RouteId route_id{key.second};
    if (round.prepared) {
      ++last_cold_start_.redriven_commits;
      SB_LOG(kInfo) << "durability: re-driving commit for chain " << chain
                    << " route " << route_id;
      RouteRecord route;
      route.id = route_id;
      route.vnf_sites = round.vnf_sites;
      route.weight = 1.0;
      CreationReport report;
      report.started = context_.sim.now();
      report.chain = chain;
      report.route = route_id;
      start_commit_round(
          chain, std::move(route), std::move(report),
          [chain, route_id](Result<CreationReport> result) {
            if (result.ok()) {
              SB_LOG(kInfo) << "durability: re-driven commit active for "
                            << "chain " << chain << " route " << route_id;
            } else {
              SB_LOG(kWarn) << "durability: re-driven commit failed for "
                            << "chain " << chain << " route " << route_id
                            << ": " << result.error().message;
            }
          },
          /*rpc_retry=*/0);
    } else {
      ++last_cold_start_.aborted_inflight;
      const ChainRecord* rec = find_record(chain);
      if (rec != nullptr) {
        for (const VnfId vnf : rec->spec.vnfs) {
          if (vnf.value() >= vnf_controllers_.size()) continue;
          VnfController* controller = vnf_controllers_[vnf.value()];
          if (controller != nullptr && controller->up()) {
            controller->abort(chain, route_id, epoch_);
            ++last_cold_start_.reconciliation_messages;
          }
        }
      }
      journal_append(pair_record("abort", chain, route_id));
      inflight_.erase(key);
    }
  }

  // Reconciliation sweep: any capacity a participant holds committed for a
  // (chain, route) the journal does not own — routes retired or aborted
  // whose release the crash swallowed — is orphaned; release it.
  for (VnfController* controller : vnf_controllers_) {
    if (controller == nullptr || !controller->up()) continue;
    ++last_cold_start_.reconciliation_messages;   // the sweep query itself
    for (const auto& [chain, route_id] : controller->committed_routes()) {
      bool owned =
          inflight_.count({chain.value(), route_id.value()}) > 0;
      if (!owned) {
        const ChainRecord* rec = find_record(chain);
        if (rec != nullptr) {
          owned = std::any_of(
              rec->routes.begin(), rec->routes.end(),
              [&](const RouteRecord& r) { return r.id == route_id; });
        }
      }
      if (owned) continue;
      SB_LOG(kInfo) << "durability: releasing orphaned capacity for chain "
                    << chain << " route " << route_id;
      controller->release(chain, route_id, epoch_);
      ++last_cold_start_.orphans_released;
      ++last_cold_start_.reconciliation_messages;
    }
  }

  // Re-publish every active chain under the new epoch so the Local
  // Switchboards' fences advance and any stale-incarnation announcement
  // still in flight is rejected on arrival.
  for (const ChainRecord& record : chains_) {
    if (!record.active) continue;
    publish_routes(record);
    last_cold_start_.reconciliation_messages += record.routes.size();
  }
#ifndef NDEBUG
  check_invariants();
#endif
}

void GlobalSwitchboard::on_instance_up(VnfId vnf, SiteId site) {
  if (!up_) return;
  const auto it = dead_pools_.find({vnf.value(), site.value()});
  if (it == dead_pools_.end()) return;   // never seen down, or already up
  SB_LOG(kInfo) << "recovery: vnf " << vnf << " back up at site " << site
                << ", restoring capacity " << it->second;
  context_.model.set_vnf_site_capacity(vnf, site, it->second);
  std::ostringstream record;
  record << "t=poolup;vnf=" << vnf.value() << ";site=" << site.value();
  journal_append(record.str());
  dead_pools_.erase(it);
  // Re-announce the pool so Local Switchboards rebalance onto it — behind
  // the quorum barrier, like the pool-down drain.
  const std::uint64_t ep = epoch_;
  after_quorum([this, ep, vnf, site] {
    if (!up_ || ep != epoch_) return;
    if (vnf.value() < vnf_controllers_.size() &&
        vnf_controllers_[vnf.value()] != nullptr &&
        vnf_controllers_[vnf.value()]->up()) {
      vnf_controllers_[vnf.value()]->reannounce_instances(site);
    }
  });
}

}  // namespace switchboard::control
