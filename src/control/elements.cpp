#include "control/elements.hpp"

#include "common/check.hpp"

namespace switchboard::control {

dataplane::ElementId ElementRegistry::create_forwarder(
    SiteId site, std::size_t flow_capacity) {
  const auto id = static_cast<dataplane::ElementId>(elements_.size());
  ElementInfo info;
  info.id = id;
  info.type = ElementType::kForwarder;
  info.site = site;
  elements_.push_back(info);
  engines_.push_back(std::make_unique<dataplane::Forwarder>(id, flow_capacity));
  return id;
}

dataplane::ElementId ElementRegistry::create_vnf_instance(
    SiteId site, VnfId vnf, dataplane::ElementId forwarder, double weight,
    double capacity) {
  SWB_CHECK(exists(forwarder));
  SWB_CHECK(elements_[forwarder].type == ElementType::kForwarder);
  const auto id = static_cast<dataplane::ElementId>(elements_.size());
  ElementInfo info;
  info.id = id;
  info.type = ElementType::kVnfInstance;
  info.site = site;
  info.vnf = vnf;
  info.attached_forwarder = forwarder;
  info.weight = weight;
  info.capacity = capacity;
  elements_.push_back(info);
  engines_.push_back(nullptr);
  return id;
}

dataplane::ElementId ElementRegistry::create_edge_instance(
    SiteId site, dataplane::ElementId forwarder) {
  SWB_CHECK(exists(forwarder));
  SWB_CHECK(elements_[forwarder].type == ElementType::kForwarder);
  const auto id = static_cast<dataplane::ElementId>(elements_.size());
  ElementInfo info;
  info.id = id;
  info.type = ElementType::kEdgeInstance;
  info.site = site;
  info.attached_forwarder = forwarder;
  elements_.push_back(info);
  engines_.push_back(nullptr);
  return id;
}

const ElementInfo& ElementRegistry::info(dataplane::ElementId id) const {
  SWB_CHECK(exists(id));
  return elements_[id];
}

ElementInfo& ElementRegistry::info_mutable(dataplane::ElementId id) {
  SWB_CHECK(exists(id));
  return elements_[id];
}

dataplane::Forwarder& ElementRegistry::forwarder(dataplane::ElementId id) {
  SWB_CHECK(exists(id));
  SWB_CHECK(engines_[id] != nullptr);
  return *engines_[id];
}

const dataplane::Forwarder& ElementRegistry::forwarder(
    dataplane::ElementId id) const {
  SWB_CHECK(exists(id));
  SWB_CHECK(engines_[id] != nullptr);
  return *engines_[id];
}

std::vector<dataplane::ElementId> ElementRegistry::forwarders_at(
    SiteId site) const {
  std::vector<dataplane::ElementId> result;
  for (const ElementInfo& info : elements_) {
    if (info.type == ElementType::kForwarder && info.site == site) {
      result.push_back(info.id);
    }
  }
  return result;
}

std::vector<dataplane::ElementId> ElementRegistry::elements_at(
    SiteId site) const {
  std::vector<dataplane::ElementId> result;
  for (const ElementInfo& info : elements_) {
    if (info.site == site) result.push_back(info.id);
  }
  return result;
}

bool ElementRegistry::set_up(dataplane::ElementId id, bool up) {
  SWB_CHECK(exists(id));
  const bool was = elements_[id].up;
  elements_[id].up = up;
  return was;
}

std::vector<dataplane::ElementId> ElementRegistry::vnf_instances_at(
    SiteId site, VnfId vnf) const {
  std::vector<dataplane::ElementId> result;
  for (const ElementInfo& info : elements_) {
    if (info.type == ElementType::kVnfInstance && info.site == site &&
        info.vnf == vnf) {
      result.push_back(info.id);
    }
  }
  return result;
}

}  // namespace switchboard::control
