// Local Switchboard (Sections 3, 5.2, 6): the per-site control agent.
//
// It learns chain routes from the bus (replicated to every site), figures
// out this site's roles in each route (VNF host, ingress, egress),
// subscribes to the instance/forwarder topics those roles require,
// derives the hierarchical weighted load-balancing rules (site-level
// routing weight x instance weight), installs them on the site's
// forwarders, publishes forwarder announcements, and reports readiness
// back to Global Switchboard.
//
// It also implements on-demand edge-site addition (Section 6, Table 2):
// when a chain's user appears at a new edge site, the Local Switchboard
// picks the nearest existing route, configures the local edge forwarder
// from the bus-replicated state, and triggers the return-path
// configuration at the first VNF's forwarder.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/topic.hpp"
#include "common/result.hpp"
#include "control/context.hpp"
#include "control/messages.hpp"

namespace switchboard::control {

/// Timestamps of the six operations in Table 2.
struct EdgeAdditionTrace {
  sim::SimTime started{0};
  sim::SimTime site_chosen{0};              // Local SB picks the route
  sim::SimTime forwarder_info_received{0};  // edge fwrdr gets 1st VNF info
  sim::SimTime edge_configured{0};          // edge fwrdr dataplane ready
  sim::SimTime remote_received{0};          // VNF fwrdr gets edge info
  sim::SimTime remote_config_started{0};
  sim::SimTime remote_config_finished{0};
};

class LocalSwitchboard {
 public:
  using ReadyCallback = std::function<void(ChainId, RouteId, SiteId)>;
  using PeerLookup = std::function<LocalSwitchboard*(SiteId)>;
  using RouteObserver = std::function<void(const RouteAnnouncement&)>;

  LocalSwitchboard(ControlContext& context, SiteId site);

  [[nodiscard]] SiteId site() const { return site_; }

  /// Readiness notifications toward Global Switchboard.
  void set_ready_callback(ReadyCallback callback);
  /// Peer Local Switchboards, for return-path RPCs in edge addition.
  void set_peer_lookup(PeerLookup lookup);
  /// Observer of every accepted (non-fenced) route announcement — how the
  /// site's AnycastRouter learns chain definitions without ever talking
  /// to the Global Switchboard (DESIGN.md §17).
  void set_route_observer(RouteObserver observer);

  /// Subscribes to the global routes topic (call once, before any chain
  /// is created).  `routes_topic` is Global Switchboard's announcement
  /// topic for all chains.
  void start(const bus::Topic& routes_topic);

  /// Entry point for route announcements (normally via the bus).  Fences
  /// announcements whose controller epoch is older than the highest this
  /// site has seen (a stale Global Switchboard incarnation — or a retained
  /// pre-crash message replayed after the controller already restarted).
  void handle_route(const RouteAnnouncement& announcement);

  /// Route announcements fenced for carrying a stale controller epoch.
  [[nodiscard]] std::uint64_t stale_routes_rejected() const {
    return stale_routes_rejected_;
  }
  [[nodiscard]] std::uint64_t highest_route_epoch() const {
    return max_route_epoch_;
  }

  /// On-demand edge-site addition for mobility (Table 2).  The chain must
  /// already be active elsewhere.  `edge_instance` is the local edge
  /// instance taking the traffic (created via the edge controller or
  /// directly in the registry).
  void attach_edge(ChainId chain, dataplane::ElementId edge_instance,
                   std::function<void(Result<EdgeAdditionTrace>)> done);

  /// Number of chains this site participates in (for tests).
  [[nodiscard]] std::size_t active_chain_count() const;

  /// Liveness (fault injection): a down Local Switchboard stops emitting
  /// heartbeats (the failure detector's site-death signal) but keeps its
  /// replicated state for restore.
  void set_up(bool up) { up_ = up; }
  [[nodiscard]] bool up() const { return up_; }

  /// Starts periodic heartbeats on /health/site_<s>, carrying the local
  /// elements currently marked down.  Heartbeats self-reschedule forever:
  /// call stop_heartbeats() (or Deployment::stop_recovery) before draining
  /// the simulator to completion.
  void start_heartbeats(sim::Duration period);
  void stop_heartbeats();

  /// Called by a peer when it finished configuring the return path for an
  /// edge addition started at this site.
  void on_return_path_configured(ChainId chain, sim::SimTime received,
                                 sim::SimTime started, sim::SimTime finished);

 private:
  struct PerChain {
    ChainId chain;
    dataplane::Labels labels;
    SiteId ingress_site;
    SiteId egress_site;
    /// Routes merged by route id (weights update in place).
    std::vector<RouteAnnouncement> routes;
    /// Announcements gathered from the bus, keyed by topic path; within a
    /// topic, entries are upserted by element id.
    std::unordered_map<std::string, std::vector<InstanceAnnouncement>>
        instances;
    std::unordered_map<std::string, std::vector<ForwarderAnnouncement>>
        forwarders;
    std::set<std::string> subscribed;
    std::set<std::uint32_t> ready_routes;           // notified route ids
    std::map<dataplane::ElementId, double> published_weight;
    /// Edge forwarders whose return path this site already configured.
    std::set<dataplane::ElementId> return_paths_configured;
  };

  struct PendingEdgeAddition {
    ChainId chain;
    dataplane::ElementId edge_instance{dataplane::kNoElement};
    dataplane::ElementId edge_forwarder{dataplane::kNoElement};
    SiteId target_site;                // first VNF's site on chosen route
    EdgeAdditionTrace trace;
    bool local_configured{false};
    bool remote_configured{false};
    std::function<void(Result<EdgeAdditionTrace>)> done;
  };

  PerChain& chain_state(const RouteAnnouncement& announcement);
  void subscribe_instances(PerChain& pc, VnfId vnf, SiteId site);
  void subscribe_forwarders(PerChain& pc, VnfId vnf, SiteId site);
  void handle_new_edge_forwarder(PerChain& pc, SiteId edge_site,
                                 const ForwarderAnnouncement& announcement);
  void reconcile(PerChain& pc);
  void maybe_finish_edge_addition(PendingEdgeAddition& pending);
  void publish_heartbeat();

  /// Rebuilds and installs the LB rule on one forwarder for one chain.
  void install_rule(PerChain& pc, dataplane::ElementId forwarder);

  /// Topic helpers bound to this chain's labels.
  [[nodiscard]] static std::string topic_key(const bus::Topic& topic) {
    return topic.path;
  }

  ControlContext& context_;
  SiteId site_;
  ReadyCallback ready_callback_;
  PeerLookup peer_lookup_;
  RouteObserver route_observer_;
  std::map<std::uint32_t, PerChain> chains_;          // by chain id
  std::vector<PendingEdgeAddition> pending_edges_;
  bool up_{true};
  std::uint64_t max_route_epoch_{0};
  std::uint64_t stale_routes_rejected_{0};
  bool heartbeats_on_{false};
  sim::Duration heartbeat_period_{0};
  std::uint64_t heartbeat_seq_{0};
  sim::EventHandle heartbeat_event_{};
};

}  // namespace switchboard::control
