// Registry of data-plane elements: forwarders, VNF instances, and edge
// instances, each with a globally unique ElementId.  Owned by the
// deployment; controllers create and look up elements here.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "dataplane/forwarder.hpp"

namespace switchboard::control {

enum class ElementType : std::uint8_t {
  kForwarder,
  kVnfInstance,
  kEdgeInstance,
};

struct ElementInfo {
  dataplane::ElementId id{dataplane::kNoElement};
  ElementType type{ElementType::kForwarder};
  SiteId site;
  /// kVnfInstance: which VNF this instance belongs to.
  VnfId vnf;
  /// kVnfInstance / kEdgeInstance: the forwarder it attaches to.
  dataplane::ElementId attached_forwarder{dataplane::kNoElement};
  /// Load-balancing weight published on the bus.
  double weight{1.0};
  /// kVnfInstance: packets/interval the instance can process (used by the
  /// runtime throughput model; <= 0 means unlimited).
  double capacity{0.0};
  /// False while crashed (fault injection): a down element neither
  /// processes packets nor emits heartbeats.  State survives restore.
  bool up{true};
};

class ElementRegistry {
 public:
  /// Creates a forwarder at a site.  Returns its element id.
  dataplane::ElementId create_forwarder(SiteId site,
                                        std::size_t flow_capacity = 4096);

  /// Creates a VNF instance attached to `forwarder`.
  dataplane::ElementId create_vnf_instance(SiteId site, VnfId vnf,
                                           dataplane::ElementId forwarder,
                                           double weight = 1.0,
                                           double capacity = 0.0);

  /// Creates an edge instance attached to `forwarder`.
  dataplane::ElementId create_edge_instance(SiteId site,
                                            dataplane::ElementId forwarder);

  [[nodiscard]] const ElementInfo& info(dataplane::ElementId id) const;
  [[nodiscard]] ElementInfo& info_mutable(dataplane::ElementId id);
  [[nodiscard]] bool exists(dataplane::ElementId id) const {
    return id < elements_.size();
  }
  [[nodiscard]] std::size_t size() const { return elements_.size(); }

  /// The forwarder engine of a kForwarder element.
  [[nodiscard]] dataplane::Forwarder& forwarder(dataplane::ElementId id);
  [[nodiscard]] const dataplane::Forwarder& forwarder(
      dataplane::ElementId id) const;

  /// All forwarder elements at a site.
  [[nodiscard]] std::vector<dataplane::ElementId> forwarders_at(
      SiteId site) const;
  /// All VNF instances of `vnf` at `site`.
  [[nodiscard]] std::vector<dataplane::ElementId> vnf_instances_at(
      SiteId site, VnfId vnf) const;
  /// Every element at a site (any type), ascending id.
  [[nodiscard]] std::vector<dataplane::ElementId> elements_at(
      SiteId site) const;

  /// Marks an element up/down (fault injection).  Returns the previous
  /// state.
  bool set_up(dataplane::ElementId id, bool up);

 private:
  std::vector<ElementInfo> elements_;
  // Index parallel to elements_: engine for forwarders, null otherwise.
  std::vector<std::unique_ptr<dataplane::Forwarder>> engines_;
};

}  // namespace switchboard::control
