// control::StateJournal — write-ahead log + snapshots for the controller.
//
// The Global Switchboard writes one journal record through this layer for
// every committed state change (chain registration, 2PC begin/prepare/
// commit/abort, route retirement, pool capacity changes, epoch bumps).
// Records are newline-delimited "k=v;" lines — the same compact grammar
// as the bus messages — appended to a `<name>.log` blob in a
// sim::DurableStore.  Every `snapshot_interval` appends the journal
// compacts: the owner re-encodes its full state with the same record
// grammar, the snapshot replaces `<name>.snap`, and the log truncates.
// Recovery after crash-with-amnesia is therefore always
// "replay snapshot records, then replay log records" through one parser.
//
// The journal charges a configurable per-record replay cost so recovery
// latency scales with journal size in simulated time — the knob the
// bench_fig13_recovery controller-restart series sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "sim/durable_store.hpp"
#include "sim/time.hpp"

namespace switchboard::control {

struct JournalConfig {
  /// Blob-name prefix inside the durable store ("<name>.log"/"<name>.snap").
  std::string name{"gsb"};
  /// Compact after this many appends since the last snapshot (0 = never).
  std::uint32_t snapshot_interval{64};
  /// Simulated time to replay one record at cold start.
  sim::Duration replay_cost_per_record{50};
};

class StateJournal {
 public:
  StateJournal(sim::DurableStore& store, JournalConfig config = {});

  /// Appends one record (no embedded newlines) to the log.  The first
  /// append after construction seals any torn trailing record left by a
  /// crash mid-append — truncating it rather than letting the new record
  /// concatenate onto the unterminated tail into one corrupt line.
  void append(const std::string& record);

  /// Replaces the snapshot with `records` and truncates the log.  Called
  /// by the owner when the journal asks for compaction (wants_snapshot())
  /// and by recovery code after a cold start.
  void write_snapshot(const std::vector<std::string>& records);

  /// True when the append counter crossed the snapshot interval; the
  /// owner responds with write_snapshot(full state).
  [[nodiscard]] bool wants_snapshot() const;

  [[nodiscard]] std::vector<std::string> snapshot_records() const;
  [[nodiscard]] std::vector<std::string> log_records() const;

  /// Simulated cost of replaying everything currently persisted.
  [[nodiscard]] sim::Duration replay_cost() const;

  [[nodiscard]] std::uint64_t appends() const {
    const swb::MutexLock lock{mutex_};
    return appends_;
  }
  [[nodiscard]] std::uint64_t appends_since_snapshot() const {
    const swb::MutexLock lock{mutex_};
    return appends_since_snapshot_;
  }
  [[nodiscard]] std::uint64_t snapshots_taken() const {
    const swb::MutexLock lock{mutex_};
    return snapshots_taken_;
  }
  [[nodiscard]] std::uint64_t records_compacted() const {
    const swb::MutexLock lock{mutex_};
    return records_compacted_;
  }
  /// Torn trailing records (a final line with no terminator — the blob
  /// tail of a crash mid-append) dropped during replay instead of
  /// failing the whole recovery.
  [[nodiscard]] std::uint64_t torn_records_dropped() const {
    const swb::MutexLock lock{mutex_};
    return torn_records_dropped_;
  }
  [[nodiscard]] const JournalConfig& config() const { return config_; }
  /// Blob names inside the durable store — for tests and tools that
  /// inspect or corrupt the persisted bytes directly.
  [[nodiscard]] std::string log_blob() const { return config_.name + ".log"; }
  [[nodiscard]] std::string snap_blob() const {
    return config_.name + ".snap";
  }

  /// Audits persisted framing: no empty records among the replayable
  /// (terminated) lines; a torn trailing record is tolerated and counted.
  void check_invariants() const;

 private:
  std::vector<std::string> split_lines(const std::string& bytes) const;

  sim::DurableStore& store_;
  JournalConfig config_;
  /// Guards the append/snapshot counters and keeps append's
  /// counter-bump + store write atomic as one committed record.
  /// Lock order: journal mutex_ -> store mutex_ (the store is a leaf and
  /// never calls back up), never the reverse.
  mutable swb::Mutex mutex_;
  std::uint64_t appends_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t appends_since_snapshot_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t snapshots_taken_ SWB_GUARDED_BY(mutex_){0};
  std::uint64_t records_compacted_ SWB_GUARDED_BY(mutex_){0};
  /// mutable: bumped from the const replay readers when they shed a torn
  /// trailing record.
  mutable std::uint64_t torn_records_dropped_ SWB_GUARDED_BY(mutex_){0};
  /// First append already checked the blob for a torn tail.
  bool sealed_ SWB_GUARDED_BY(mutex_){false};
};

}  // namespace switchboard::control
